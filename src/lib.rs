//! # faultmit — significance-driven fault mitigation for unreliable memories
//!
//! A from-scratch Rust reproduction of Ganapathy, Karakonstantis, Teman &
//! Burg, *Mitigating the Impact of Faults in Unreliable Memories for
//! Error-Resilient Applications*, DAC 2015.
//!
//! Instead of correcting memory faults with ECC, the proposed **bit-shuffling
//! scheme** rotates every stored word so that the least significant bits land
//! on the faulty bit-cells found by BIST, bounding the error magnitude at
//! `2^(S−1)` for segment size `S = W / 2^{n_FM}` at a fraction of the ECC
//! read-power, delay and area overhead.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`obs`] | allocation-free observability: typed counters, fixed-bucket histograms, pipeline-stage spans and deterministic [`obs::MetricsSnapshot`]s |
//! | [`memsim`] | SRAM functional model, fault maps, `P_cell(V_DD)` model, BIST, Monte-Carlo die sampling, stream-split seeding, and the [`memsim::backend`] fault-technology layer (SRAM voltage scaling, DRAM retention, MLC NVM) |
//! | [`ecc`] | Hamming SECDED (H(39,32), H(22,16)) and priority-ECC baselines |
//! | [`core`] | segment geometry, FM-LUT, barrel shifter, [`ShuffledMemory`], the [`Scheme`] catalogue |
//! | [`sim`] | the parallel fault-injection pipeline: deterministic per-sample RNG streams, paired scheme evaluation, mergeable accumulators, backend-generic campaigns |
//! | [`analysis`] | MSE quality model (Eq. 6), yield criterion (Eq. 3–5), pipeline-backed Monte-Carlo engine, CDF sketches |
//! | [`hwmodel`] | analytical 28 nm read-power / delay / area overhead model (Fig. 6) |
//! | [`apps`] | Elasticnet, PCA, KNN benchmarks with synthetic datasets and the pipeline-backed Fig. 7 harness (per-technology via the backend axis) |
//!
//! Every Monte-Carlo figure (Fig. 5 MSE CDFs, Fig. 7 application quality,
//! the ablations, the Fig. 8 backend matrix) runs through one engine,
//! [`sim::Campaign`]: each sampled die derives its RNG from the campaign
//! seed and its global sample index, every protection scheme is scored on
//! the *same* die (paired comparison), and chunk results merge in
//! deterministic order — so campaigns are bit-identical whether they run on
//! one worker thread or many. Campaigns are generic over the
//! [`memsim::FaultBackend`] that generates the dies: the default
//! [`memsim::SramVddBackend`] reproduces the paper's model bit-for-bit,
//! while [`memsim::DramRetentionBackend`] / [`memsim::MlcNvmBackend`] run
//! the identical protocol against clustered retention failures or
//! level-dependent MLC read errors.
//!
//! # Quickstart
//!
//! ```
//! use faultmit::core::{SegmentGeometry, ShuffledMemory};
//! use faultmit::memsim::{Fault, FaultMap, MemoryConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small memory with a broken MSB cell in row 0.
//! let config = MemoryConfig::new(64, 32)?;
//! let mut faults = FaultMap::new(config);
//! faults.insert(Fault::bit_flip(0, 31))?;
//!
//! // Protect it with single-bit-segment bit-shuffling.
//! let mut memory = ShuffledMemory::from_fault_map(SegmentGeometry::new(32, 5)?, faults)?;
//! memory.write(0, 1_000_000)?;
//! assert!(memory.read(0)?.abs_diff(1_000_000) <= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use faultmit_analysis as analysis;
pub use faultmit_apps as apps;
pub use faultmit_core as core;
pub use faultmit_ecc as ecc;
pub use faultmit_hwmodel as hwmodel;
pub use faultmit_memsim as memsim;
pub use faultmit_obs as obs;
pub use faultmit_sim as sim;

pub use faultmit_core::{MitigationScheme, Scheme, SegmentGeometry, ShuffledMemory};
pub use faultmit_memsim::{Fault, FaultKind, FaultMap, MemoryConfig, SramArray};

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        let scheme = crate::Scheme::secded32();
        assert_eq!(crate::core::MitigationScheme::word_bits(&scheme), 32);
        let config = crate::MemoryConfig::paper_16kb();
        assert_eq!(config.total_cells(), 131_072);
    }
}
