//! Lane-interleaved xoshiro256++ streams in structure-of-arrays form.
//!
//! [`WideXoshiro<N>`] advances `N` *independent* xoshiro256++ generators
//! simultaneously. The state is stored word-major (`s[w][j]` is word `w` of
//! lane `j`), so every operation is a plain element-wise loop over fixed-size
//! arrays — the shape the compiler autovectorises. Lane `j` seeded from seed
//! `x` produces **bit-for-bit** the stream `StdRng::seed_from_u64(x)`
//! produces: the wide type changes how many streams advance per instruction,
//! never what any stream contains. The golden-vector tests in this module
//! (and the `wide_rng_golden` integration suite) pin that identity.
//!
//! Three masked primitives cover the consumers' divergence patterns:
//!
//! * [`WideXoshiro::next_u64_masked`] — advance only the active lanes
//!   (inactive lanes' states do not move), for schedules where lanes draw
//!   different numbers of values;
//! * [`WideXoshiro::gen_bounded_masked`] — the wide twin of
//!   `Rng::gen_range(0..=bound)` with per-lane bounds and per-lane rejection
//!   (a lane that rejects redraws alone, without advancing accepted lanes);
//! * [`WideXoshiro::lane_rng`] / [`WideXoshiro::store_lane`] — extract one
//!   lane as a scalar [`StdRng`] to drain a divergent tail serially, then
//!   store the advanced state back. Because extraction copies the exact
//!   state, the drained lane's stream is schedule-identical by construction.

use crate::rngs::StdRng;
use crate::splitmix64;

/// `N` lane-interleaved xoshiro256++ generators (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideXoshiro<const N: usize> {
    /// `s[w][j]` = state word `w` of lane `j`.
    s: [[u64; N]; 4],
}

/// One inclusive bound's acceptance state for
/// [`WideXoshiro::gen_bounded_masked`]: the scalar
/// `uniform_u64_below(bound + 1)` rejection zone plus a multiply-based
/// reduction returning exactly `v % (bound + 1)` — same value, no per-draw
/// hardware division.
#[derive(Debug, Clone, Copy)]
struct BoundedZone {
    bound: u64,
    /// Highest draw accepted without rejection (`u64::MAX` = none rejected).
    zone: u64,
    reduce: Reduce,
}

#[derive(Debug, Clone, Copy)]
enum Reduce {
    /// `bound == u64::MAX`: the scalar path returns the raw draw.
    Raw,
    /// Power-of-two modulus: `v & mask`.
    Mask(u64),
    /// General modulus `d`: `(v * magic) >> (64 + shift)` underestimates
    /// `v / d` by at most one, so a single conditional correction makes
    /// `v - q·d` the exact remainder.
    Magic { d: u64, magic: u64, shift: u32 },
}

impl BoundedZone {
    const RAW: Self = Self {
        bound: u64::MAX,
        zone: u64::MAX,
        reduce: Reduce::Raw,
    };

    fn new(bound: u64) -> Self {
        if bound == u64::MAX {
            return Self::RAW;
        }
        let d = bound + 1;
        let zone = u64::MAX - (u64::MAX - d + 1) % d;
        let reduce = if d.is_power_of_two() {
            Reduce::Mask(d - 1)
        } else {
            // `d ≥ 3` and not a power of two here, so `2^shift < d` and the
            // magic `⌊2^(64+shift) / d⌋` fits in 64 bits.
            let shift = 63 - d.leading_zeros();
            let magic = ((1u128 << (64 + shift)) / u128::from(d)) as u64;
            Reduce::Magic { d, magic, shift }
        };
        Self {
            bound,
            zone,
            reduce,
        }
    }

    /// The scalar acceptance step: `None` rejects (redraw), otherwise the
    /// exact `v % (bound + 1)` the scalar stream would produce.
    #[inline]
    fn accept(&self, v: u64) -> Option<u64> {
        if v > self.zone {
            return None;
        }
        Some(match self.reduce {
            Reduce::Raw => v,
            Reduce::Mask(mask) => v & mask,
            Reduce::Magic { d, magic, shift } => {
                let q = ((u128::from(v) * u128::from(magic)) >> (64 + shift)) as u64;
                let r = v - q * d;
                if r >= d {
                    r - d
                } else {
                    r
                }
            }
        })
    }
}

impl<const N: usize> WideXoshiro<N> {
    /// Seeds lane `j` from `seeds[j]`, exactly as
    /// [`StdRng::seed_from_u64`](crate::SeedableRng::seed_from_u64) would:
    /// four SplitMix64 expansion steps per lane plus the all-zero-state
    /// guard.
    #[must_use]
    pub fn from_seeds(seeds: &[u64; N]) -> Self {
        let mut s = [[0u64; N]; 4];
        let mut sm = *seeds;
        for word in &mut s {
            for j in 0..N {
                word[j] = splitmix64(&mut sm[j]);
            }
        }
        #[allow(clippy::needless_range_loop)] // lane index spans all four state rows
        for j in 0..N {
            if s[0][j] == 0 && s[1][j] == 0 && s[2][j] == 0 && s[3][j] == 0 {
                s[0][j] = 0x9E37_79B9_7F4A_7C15;
            }
        }
        Self { s }
    }

    /// Advances every lane one step and returns the `N` outputs.
    #[inline]
    pub fn next_u64_all(&mut self) -> [u64; N] {
        let mut out = [0u64; N];
        for (j, out_j) in out.iter_mut().enumerate() {
            let s0 = self.s[0][j];
            let s1 = self.s[1][j];
            let s2 = self.s[2][j];
            let s3 = self.s[3][j];
            *out_j = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let n2 = s2 ^ s0;
            let n3 = s3 ^ s1;
            self.s[1][j] = s1 ^ n2;
            self.s[0][j] = s0 ^ n3;
            self.s[2][j] = n2 ^ t;
            self.s[3][j] = n3.rotate_left(45);
        }
        out
    }

    /// Advances only the lanes with `active[j] == true` and returns their
    /// outputs (inactive lanes report 0 and their state does not move).
    ///
    /// The per-lane select is branch-free, so the loop stays element-wise
    /// and vectorisable even under ragged masks.
    #[inline]
    pub fn next_u64_masked(&mut self, active: &[bool; N]) -> [u64; N] {
        let mut out = [0u64; N];
        for j in 0..N {
            let m = (active[j] as u64).wrapping_neg();
            let s0 = self.s[0][j];
            let s1 = self.s[1][j];
            let s2 = self.s[2][j];
            let s3 = self.s[3][j];
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let n2 = s2 ^ s0;
            let n3 = s3 ^ s1;
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            let n2 = n2 ^ t;
            let n3 = n3.rotate_left(45);
            self.s[0][j] = (n0 & m) | (s0 & !m);
            self.s[1][j] = (n1 & m) | (s1 & !m);
            self.s[2][j] = (n2 & m) | (s2 & !m);
            self.s[3][j] = (n3 & m) | (s3 & !m);
            out[j] = result & m;
        }
        out
    }

    /// The wide twin of `rng.gen_range(0..=bound)` with a per-lane inclusive
    /// `bound`: each active lane draws uniformly from `[0, bounds[j]]` with
    /// exactly the scalar path's rejection schedule (zone test, redraw on
    /// reject). Lanes that accept stop advancing while still-rejecting lanes
    /// redraw alone, so every lane consumes precisely the draws its scalar
    /// twin would. Inactive lanes report 0 and do not move.
    ///
    /// The per-lane reduction is the scalar `v % (bound + 1)` *value*
    /// computed without a per-lane hardware division: lanes sharing a bound
    /// share one precomputed rejection zone (consumers like Floyd sampling
    /// draw with one common bound per step), and its multiply-based
    /// reciprocal reduction returns bit-identical remainders.
    #[inline]
    pub fn gen_bounded_masked(&mut self, bounds: &[u64; N], active: &[bool; N]) -> [u64; N] {
        // Group lanes by bound: each distinct bound pays one zone/reciprocal
        // setup, shared by every lane that draws with it.
        let mut zones = [BoundedZone::RAW; N];
        let mut zone_of = [0usize; N];
        let mut distinct = 0usize;
        for j in 0..N {
            if !active[j] {
                continue;
            }
            match zones[..distinct].iter().position(|z| z.bound == bounds[j]) {
                Some(slot) => zone_of[j] = slot,
                None => {
                    zones[distinct] = BoundedZone::new(bounds[j]);
                    zone_of[j] = distinct;
                    distinct += 1;
                }
            }
        }
        let mut out = [0u64; N];
        let mut pending = *active;
        while pending.iter().any(|&p| p) {
            let draws = self.next_u64_masked(&pending);
            for j in 0..N {
                if pending[j] {
                    let zone = &zones[zone_of[j]];
                    if let Some(value) = zone.accept(draws[j]) {
                        out[j] = value;
                        pending[j] = false;
                    }
                }
            }
        }
        out
    }

    /// Lane `j` as a scalar [`StdRng`] at its current position in the
    /// stream. The lane's wide state is unchanged; callers that drain the
    /// scalar copy must either stop advancing the lane (mask it off) or
    /// write the advanced state back with [`WideXoshiro::store_lane`].
    ///
    /// # Panics
    ///
    /// Panics when `lane >= N`.
    #[must_use]
    pub fn lane_rng(&self, lane: usize) -> StdRng {
        assert!(lane < N, "lane {lane} out of range for {N} lanes");
        StdRng::from_state([
            self.s[0][lane],
            self.s[1][lane],
            self.s[2][lane],
            self.s[3][lane],
        ])
    }

    /// Stores a scalar generator's state back into lane `j` — the return
    /// half of a [`WideXoshiro::lane_rng`] scalar drain.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= N`.
    pub fn store_lane(&mut self, lane: usize, rng: &StdRng) {
        assert!(lane < N, "lane {lane} out of range for {N} lanes");
        let state = rng.state();
        for (row, &word) in self.s.iter_mut().zip(state.iter()) {
            row[lane] = word;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rng, RngCore, SeedableRng};

    fn scalar_lanes<const N: usize>(seeds: &[u64; N]) -> [StdRng; N] {
        std::array::from_fn(|j| StdRng::seed_from_u64(seeds[j]))
    }

    #[test]
    fn every_lane_matches_its_scalar_stream_bit_for_bit() {
        let seeds: [u64; 8] = [0, 1, 42, u64::MAX, 0xDEAD_BEEF, 7, 1 << 63, 12345];
        let mut wide = WideXoshiro::from_seeds(&seeds);
        let mut scalars = scalar_lanes(&seeds);
        for step in 0..256 {
            let out = wide.next_u64_all();
            for (j, scalar) in scalars.iter_mut().enumerate() {
                assert_eq!(out[j], scalar.next_u64(), "lane {j}, step {step}");
            }
        }
    }

    #[test]
    fn masked_advance_leaves_inactive_lanes_untouched() {
        let seeds: [u64; 4] = [3, 5, 7, 11];
        let mut wide = WideXoshiro::from_seeds(&seeds);
        let mut scalars = scalar_lanes(&seeds);
        // A ragged schedule: lane j draws only on steps where step % 4 >= j.
        for step in 0..64usize {
            let active: [bool; 4] = std::array::from_fn(|j| step % 4 >= j);
            let out = wide.next_u64_masked(&active);
            for j in 0..4 {
                if active[j] {
                    assert_eq!(out[j], scalars[j].next_u64(), "lane {j}, step {step}");
                } else {
                    assert_eq!(out[j], 0, "inactive lane {j} must report 0");
                }
            }
        }
        // After the ragged phase every lane resumes exactly where its scalar
        // twin stands.
        let out = wide.next_u64_all();
        for j in 0..4 {
            assert_eq!(out[j], scalars[j].next_u64(), "lane {j} resumption");
        }
    }

    #[test]
    fn bounded_draws_match_gen_range_per_lane() {
        // Small bounds (the Floyd sampling regime) and huge bounds (where
        // the rejection zone actually rejects ~half of all draws) both have
        // to match the scalar `gen_range(0..=bound)` stream exactly.
        let seeds: [u64; 4] = [100, 200, 300, 400];
        let bound_sets: [[u64; 4]; 4] = [
            [0, 1, 2, 131_071],
            [5, 5, 5, 5],
            [u64::MAX / 2 + 3, 7, u64::MAX - 1, 1],
            [u64::MAX, u64::MAX / 2 + 1, 2, u64::MAX],
        ];
        let mut wide = WideXoshiro::from_seeds(&seeds);
        let mut scalars = scalar_lanes(&seeds);
        for round in 0..64 {
            for bounds in &bound_sets {
                let out = wide.gen_bounded_masked(bounds, &[true; 4]);
                for j in 0..4 {
                    let expected = scalars[j].gen_range(0..=bounds[j]);
                    assert_eq!(out[j], expected, "lane {j}, bounds {bounds:?}, {round}");
                }
            }
        }
    }

    #[test]
    fn bounded_draws_respect_the_activity_mask() {
        let seeds: [u64; 3] = [9, 8, 7];
        let mut wide = WideXoshiro::from_seeds(&seeds);
        let mut scalars = scalar_lanes(&seeds);
        for step in 0..48usize {
            let active: [bool; 3] = std::array::from_fn(|j| (step + j) % 3 != 0);
            let bounds = [step as u64 + 1, 17, u64::MAX / 2 + 5];
            let out = wide.gen_bounded_masked(&bounds, &active);
            for j in 0..3 {
                if active[j] {
                    assert_eq!(out[j], scalars[j].gen_range(0..=bounds[j]), "lane {j}");
                } else {
                    assert_eq!(out[j], 0, "inactive lane {j}");
                }
            }
        }
    }

    #[test]
    fn lane_extraction_and_store_round_trip_the_stream() {
        let seeds: [u64; 4] = [21, 22, 23, 24];
        let mut wide = WideXoshiro::from_seeds(&seeds);
        let mut scalars = scalar_lanes(&seeds);
        // Advance everything a bit, then drain lane 2 serially.
        for _ in 0..10 {
            wide.next_u64_all();
            for scalar in &mut scalars {
                scalar.next_u64();
            }
        }
        let mut drained = wide.lane_rng(2);
        for step in 0..20 {
            assert_eq!(drained.next_u64(), scalars[2].next_u64(), "drain {step}");
        }
        wide.store_lane(2, &drained);
        // All lanes (including the stored-back one) continue in lock-step
        // with their scalar twins.
        let out = wide.next_u64_all();
        for j in 0..4 {
            assert_eq!(out[j], scalars[j].next_u64(), "lane {j} after store");
        }
    }

    #[test]
    fn bounded_zone_reduction_is_the_exact_remainder() {
        // The multiply-based reduction must equal `v % (bound + 1)` for
        // every accepted draw — probe moduli around powers of two (where
        // the magic's error bound is tightest) and draws around the
        // acceptance zone and the remainder wrap points.
        let mut bounds = vec![0u64, 1, 2, 5, 6, 30, 131_071, 131_072, u64::MAX - 1];
        for p in [1u32, 2, 16, 17, 31, 32, 62, 63] {
            let base = 1u64 << p;
            bounds.extend([base - 2, base - 1, base, base + 1]);
        }
        for &bound in &bounds {
            let zone = BoundedZone::new(bound);
            let d = bound.wrapping_add(1);
            let mut draws = vec![0u64, 1, bound, u64::MAX, u64::MAX - 1];
            for k in 1u64..=4 {
                let wrap = d.wrapping_mul(k);
                draws.extend([wrap.wrapping_sub(1), wrap, wrap.wrapping_add(1)]);
            }
            for &v in &draws {
                let expected = if v <= zone.zone {
                    Some(if d == 0 { v } else { v % d })
                } else {
                    None
                };
                assert_eq!(zone.accept(v), expected, "bound {bound}, draw {v}");
            }
        }
    }

    #[test]
    fn zero_seed_guard_matches_the_scalar_constructor() {
        // No 64-bit seed expands to the all-zero state through SplitMix64,
        // but the guard must still mirror the scalar one: compare the
        // constructed states directly via the scalar extraction.
        let seeds: [u64; 2] = [0, u64::MAX];
        let wide = WideXoshiro::from_seeds(&seeds);
        for (j, &seed) in seeds.iter().enumerate() {
            assert_eq!(
                wide.lane_rng(j).state(),
                StdRng::seed_from_u64(seed).state(),
                "lane {j}"
            );
        }
    }
}
