//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the (small) subset of the `rand 0.8` API the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits;
//! * [`rngs::StdRng`] — a seedable xoshiro256++ generator (NOT the upstream
//!   ChaCha-based `StdRng`; sequences differ from the real crate, but every
//!   consumer in this workspace only relies on determinism and statistical
//!   quality, never on exact upstream streams);
//! * [`seq::index::sample`] — distinct-index sampling without replacement;
//! * [`wide::WideXoshiro`] — `N` lane-interleaved xoshiro256++ streams in
//!   structure-of-arrays form, each lane bit-identical to the [`rngs::StdRng`]
//!   seeded the same way.
//!
//! The generator passes the workspace's statistical test-suite (binomial
//! sampling, Box-Muller normals, uniform fault placement) and is fully
//! deterministic for a given seed, which the parallel fault-injection
//! pipeline depends on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// The core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the subset of
/// `Standard`-distributed types the workspace uses).
pub trait UniformSample: Sized {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for u8 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Draws a u64 uniformly from `[0, bound)` without modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Rejection sampling on the top zone that divides evenly.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_u64_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_u64_below(rng, span + 1);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range!(i32, i64, u32, u64, usize, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// User-facing random value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, core::convert::Infallible> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }
}

/// SplitMix64 — used for seed expansion and stream splitting.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed; distinct seeds produce independent
    /// streams (seed expansion through SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl StdRng {
        /// Builds a generator at an explicit xoshiro256++ state — the
        /// scalar half of the wide-lane extract/store pair
        /// ([`crate::wide::WideXoshiro::lane_rng`]).
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }

        /// The raw xoshiro256++ state.
        pub(crate) fn state(&self) -> [u64; 4] {
            self.s
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling.
    pub mod index {
        use crate::{Rng, RngCore};
        use std::collections::HashSet;

        /// A set of distinct indices sampled from `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// `true` when no index was sampled.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Converts into a plain vector.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// (Floyd's algorithm).
        ///
        /// # Panics
        ///
        /// Panics when `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            let mut chosen = HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            sample_into(rng, length, amount, &mut chosen, &mut out);
            IndexVec(out)
        }

        /// Allocation-free twin of [`sample`]: writes the sampled indices
        /// into `out` (cleared first), using `chosen` (cleared first) as the
        /// de-duplication scratch. RNG consumption is identical to
        /// [`sample`], so the two are interchangeable in seeded pipelines.
        ///
        /// # Panics
        ///
        /// Panics when `amount > length`.
        pub fn sample_into<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
            chosen: &mut HashSet<usize>,
            out: &mut Vec<usize>,
        ) {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            chosen.clear();
            out.clear();
            for j in length - amount..length {
                let t = rng.gen_range(0..=j);
                if chosen.insert(t) {
                    out.push(t);
                } else {
                    chosen.insert(j);
                    out.push(j);
                }
            }
        }
    }
}

pub mod wide;

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(0..3);
            assert!((0..3).contains(&v));
            let u = rng.gen_range(10usize..=20);
            assert!((10..=20).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn index_sample_returns_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(length, amount) in &[(10usize, 10usize), (131_072, 150), (16, 0), (1, 1)] {
            let indices = sample(&mut rng, length, amount);
            assert_eq!(indices.len(), amount);
            let set: HashSet<usize> = indices.iter().collect();
            assert_eq!(set.len(), amount, "duplicates for ({length}, {amount})");
            assert!(indices.iter().all(|i| i < length));
        }
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn index_sample_rejects_oversized_amount() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample(&mut rng, 4, 5);
    }

    #[test]
    fn index_sample_into_matches_sample_bit_for_bit() {
        // The in-place variant must consume the RNG identically, so seeded
        // pipelines may switch between the two without changing results.
        let mut chosen = HashSet::new();
        let mut out = Vec::new();
        for seed in 0..20u64 {
            for &(length, amount) in &[(10usize, 10usize), (131_072, 150), (16, 0), (1, 1)] {
                let mut a = StdRng::seed_from_u64(seed);
                let mut b = StdRng::seed_from_u64(seed);
                let fresh = sample(&mut a, length, amount).into_vec();
                super::seq::index::sample_into(&mut b, length, amount, &mut chosen, &mut out);
                assert_eq!(fresh, out, "({length}, {amount}) at seed {seed}");
                assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "RNG states diverged");
            }
        }
    }

    #[test]
    fn index_sample_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 16];
        for _ in 0..4000 {
            for i in sample(&mut rng, 16, 4) {
                counts[i] += 1;
            }
        }
        // Each index should be picked ~1000 times (4000 draws × 4/16).
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "index {i} picked {c} times");
        }
    }
}
