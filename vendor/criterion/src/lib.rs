//! A minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of the `criterion 0.5` API the workspace's benches
//! use: benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, element throughput, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a warm-up phase followed by timed
//! batches until the measurement budget is exhausted — and reports the mean
//! wall-clock time per iteration (plus throughput when configured). It has
//! none of criterion's statistics, but the output is stable enough to track
//! order-of-magnitude regressions in BENCH logs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput configuration of a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Drives the iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(600),
            warm_up_time: Duration::from_millis(150),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, time: Duration) -> Self {
        self.warm_up_time = time;
        self
    }

    /// Sets the nominal sample count (accepted for API compatibility).
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warm_up, measurement) = (self.warm_up_time, self.measurement_time);
        run_benchmark(&id.into().to_string(), warm_up, measurement, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.sample_size = samples.max(1);
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &label,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (purely cosmetic here).
    pub fn finish(self) {}
}

fn run_benchmark<F>(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: discover an iteration count that fits the budget.
    let mut iterations = 1u64;
    let mut per_iter;
    loop {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter = bencher.elapsed.as_secs_f64() / iterations as f64;
        if bencher.elapsed >= warm_up || per_iter * iterations as f64 >= warm_up.as_secs_f64() {
            break;
        }
        iterations = iterations.saturating_mul(2);
    }

    // Measurement: run as many batches as the budget allows.
    let batch = ((measurement.as_secs_f64() / 4.0) / per_iter.max(1e-9)).clamp(1.0, 1e9) as u64;
    let started = Instant::now();
    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    while started.elapsed() < measurement {
        let mut bencher = Bencher {
            iterations: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total_iters += batch;
        total_time += bencher.elapsed;
    }
    let mean = if total_iters > 0 {
        total_time.as_secs_f64() / total_iters as f64
    } else {
        per_iter
    };

    let mut line = format!("{label:<60} {}", format_time(mean));
    if let Some(throughput) = throughput {
        let rate = match throughput {
            Throughput::Elements(n) => format!("{:.1} elem/s", n as f64 / mean),
            Throughput::Bytes(n) => format!("{:.1} B/s", n as f64 / mean),
        };
        line.push_str(&format!("   ({rate})"));
    }
    println!("{line}");
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:>10.1} ns/iter", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:>10.2} µs/iter", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:>10.2} ms/iter", seconds * 1e3)
    } else {
        format!("{:>10.3} s/iter", seconds)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; they are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut criterion = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        criterion.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut criterion = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(5));
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
