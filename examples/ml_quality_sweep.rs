//! Application-level quality sweep (a compact version of Fig. 7).
//!
//! For each of the three data-mining benchmarks, sweeps the number of
//! injected memory faults and reports the normalised quality metric under
//! no protection, P-ECC and bit-shuffling.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ml_quality_sweep
//! ```

use faultmit::analysis::report::Table;
use faultmit::apps::{Benchmark, QualityEvaluator};
use faultmit::core::{MitigationScheme, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schemes = [
        Scheme::unprotected32(),
        Scheme::pecc32(),
        Scheme::shuffle32(1)?,
        Scheme::shuffle32(2)?,
    ];
    let fault_counts = [0usize, 8, 32, 128];

    for benchmark in Benchmark::ALL {
        let evaluator = QualityEvaluator::builder(benchmark)
            .samples(240)
            .memory_rows(1024)
            .build()?;
        let baseline = evaluator.baseline_quality()?;

        let mut headers = vec!["scheme".to_owned()];
        headers.extend(fault_counts.iter().map(|n| format!("{n} faults")));
        let mut table = Table::new(
            format!(
                "{} on {} — normalised {} (fault-free = {:.3})",
                benchmark.name(),
                benchmark.dataset_name(),
                benchmark.metric_name(),
                baseline
            ),
            headers,
        );

        for scheme in &schemes {
            let mut row = vec![scheme.name()];
            for (i, &n_faults) in fault_counts.iter().enumerate() {
                let quality = evaluator.quality_with_faults(scheme, n_faults, 40 + i as u64)?;
                row.push(format!("{:.3}", (quality / baseline).clamp(0.0, 1.0)));
            }
            table.add_row(row);
        }
        println!("{table}");
    }

    Ok(())
}
