//! Quickstart: protect a faulty memory with bit-shuffling and compare what an
//! application would read back under each protection scheme.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use faultmit::analysis::memory_mse;
use faultmit::core::{MitigationScheme, Scheme, SegmentGeometry, ShuffledMemory};
use faultmit::memsim::{Fault, FaultMap, MarchBist, MemoryConfig, SramArray};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A manufactured die: a 256-word, 32-bit memory with three broken
    //    cells, two of them at high-significance bit positions.
    let config = MemoryConfig::new(256, 32)?;
    let faults = FaultMap::from_faults(
        config,
        [
            Fault::bit_flip(3, 31), // sign bit of row 3
            Fault::stuck_at_one(17, 28),
            Fault::stuck_at_zero(200, 2),
        ],
    )?;
    println!("die has {} faulty cells", faults.fault_count());

    // 2. Run the March C- BIST, exactly as a power-on self test would, and
    //    build a bit-shuffling memory from its report.
    let array = SramArray::with_faults(config, faults.clone());
    let mut probe = array.clone();
    let report = MarchBist::new().run(&mut probe)?;
    println!(
        "BIST found {} faulty cells in {} rows ({} reads, {} writes)",
        report.fault_count(),
        report.faulty_row_count(),
        report.total_reads(),
        report.total_writes()
    );

    let geometry = SegmentGeometry::new(32, 5)?; // single-bit segments
    let mut shuffled = ShuffledMemory::from_bist(geometry, array)?;

    // 3. Store a ramp of values and read them back: the worst-case error per
    //    word is bounded by 2^(S-1) = 1.
    let mut worst_error = 0u64;
    for row in 0..config.rows() {
        let value = (row as u64) * 12_345;
        shuffled.write(row, value & config.word_mask())?;
        worst_error = worst_error.max(shuffled.read(row)?.abs_diff(value & config.word_mask()));
    }
    println!(
        "bit-shuffling nFM=5: worst absolute error over {} rows = {} (bound {})",
        config.rows(),
        worst_error,
        shuffled.max_error_magnitude()
    );

    // 4. Compare the memory-level MSE (Eq. 6 of the paper) across schemes on
    //    the same fault map.
    println!("\nmemory MSE by protection scheme (same die):");
    for scheme in Scheme::fig5_catalogue() {
        println!(
            "  {:<24} {:>14.3e}",
            scheme.name(),
            memory_mse(&scheme, &faults)
        );
    }

    Ok(())
}
