//! Voltage scaling on a single die: how far can V_DD be lowered before the
//! application quality collapses, with and without bit-shuffling?
//!
//! This exercises the fault-inclusion property (§2): the same die exposes a
//! growing set of faulty cells as the supply voltage drops, and the protected
//! memory keeps the error magnitude bounded throughout.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example voltage_scaling
//! ```

use faultmit::analysis::memory_mse;
use faultmit::analysis::report::{format_sci, Table};
use faultmit::core::Scheme;
use faultmit::memsim::{
    CellFailureModel, FailureModelBuilder, MemoryConfig, VddSweep, VoltageScaledDie,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::new(2048, 32)?;
    // A deliberately pessimistic failure model so that a 2048-row die shows
    // faults across the sweep; the default 28 nm model is also available via
    // `CellFailureModel::default_28nm()`.
    let model = FailureModelBuilder::new()
        .anchor(1.0, 1e-6)
        .anchor(0.6, 3e-3)
        .build()?;
    let nominal = CellFailureModel::default_28nm();
    println!(
        "default 28nm model: P_cell(1.0V) = {:.1e}, P_cell(0.6V) = {:.1e}",
        nominal.p_cell(1.0),
        nominal.p_cell(0.6)
    );

    let mut rng = StdRng::seed_from_u64(7);
    let die = VoltageScaledDie::manufacture(config, model, &mut rng);

    let schemes = [
        Scheme::unprotected32(),
        Scheme::pecc32(),
        Scheme::shuffle32(2)?,
        Scheme::shuffle32(5)?,
    ];

    let mut table = Table::new(
        "memory MSE vs supply voltage (one die, fault inclusion holds)",
        vec![
            "V_DD (V)".into(),
            "faults".into(),
            "no-correction".into(),
            "P-ECC".into(),
            "shuffle nFM=2".into(),
            "shuffle nFM=5".into(),
        ],
    );

    for vdd in VddSweep::new(0.6, 1.0, 9)?.voltages() {
        let faults = die.fault_map_at(vdd)?;
        let mut row = vec![format!("{vdd:.2}"), faults.fault_count().to_string()];
        for scheme in &schemes {
            row.push(format_sci(memory_mse(scheme, &faults)));
        }
        table.add_row(row);
    }
    println!("{table}");

    Ok(())
}
