//! Yield analysis under the relaxed, quality-aware yield criterion (§4).
//!
//! Sweeps the cell failure probability and reports, for each protection
//! scheme, the MSE that must be tolerated to reach a 99.99 % yield target and
//! the yield achieved at the paper's example constraint MSE < 10⁶.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example yield_analysis
//! ```

use faultmit::analysis::report::{format_percent, format_sci, Table};
use faultmit::analysis::{MonteCarloConfig, MonteCarloEngine};
use faultmit::core::Scheme;
use faultmit::memsim::MemoryConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4 KB slice of the paper's memory keeps the example fast while showing
    // the same trends; bump the geometry for the full 16 KB study.
    let memory = MemoryConfig::new(1024, 32)?;
    let schemes = [
        Scheme::unprotected32(),
        Scheme::pecc32(),
        Scheme::shuffle32(1)?,
        Scheme::shuffle32(2)?,
        Scheme::shuffle32(5)?,
        Scheme::secded32(),
    ];

    for &p_cell in &[1e-5, 1e-4, 1e-3] {
        let config = MonteCarloConfig::new(memory, p_cell)?
            .with_samples_per_count(40)
            .with_coverage(0.99);
        let engine = MonteCarloEngine::new(config);

        let mut table = Table::new(
            format!("yield analysis, P_cell = {p_cell:.0e}"),
            vec![
                "scheme".into(),
                "MSE @ 99.99% yield".into(),
                "yield @ MSE<1e6".into(),
            ],
        );
        for scheme in &schemes {
            let result = engine.run(scheme, 2024)?;
            let mse_needed = result
                .mse_for_yield(0.9999)
                .map_or_else(|| "unreachable".to_owned(), format_sci);
            table.add_row(vec![
                result.scheme_name.clone(),
                mse_needed,
                format_percent(result.yield_at_mse(1e6)),
            ]);
        }
        println!("{table}");
    }

    Ok(())
}
