//! Quality metrics used in Table 1 of the paper: R² (regression), explained
//! variance (dimensionality reduction) and classification score.

use crate::error::AppError;

/// Coefficient of determination R² of a regression.
///
/// `R² = 1 − SS_res / SS_tot`. A perfect prediction scores 1.0; predicting the
/// mean scores 0.0; worse-than-mean predictions are negative.
///
/// # Errors
///
/// Returns [`AppError::DimensionMismatch`] when the slices differ in length or
/// are empty.
///
/// # Example
///
/// ```
/// use faultmit_apps::metrics::r2_score;
///
/// # fn main() -> Result<(), faultmit_apps::AppError> {
/// let perfect = r2_score(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0])?;
/// assert!((perfect - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn r2_score(truth: &[f64], predicted: &[f64]) -> Result<f64, AppError> {
    check_lengths(truth, predicted)?;
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p).powi(2))
        .sum();
    if ss_tot <= f64::EPSILON {
        // Constant target: define R² as 1 when predictions match, 0 otherwise.
        return Ok(if ss_res <= f64::EPSILON { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Explained-variance score of a reconstruction: `1 − Var(truth − predicted) / Var(truth)`.
///
/// Used as the PCA quality metric: how much of the original data's variance
/// the retained principal components capture.
///
/// # Errors
///
/// Returns [`AppError::DimensionMismatch`] when the slices differ in length or
/// are empty.
pub fn explained_variance_score(truth: &[f64], predicted: &[f64]) -> Result<f64, AppError> {
    check_lengths(truth, predicted)?;
    let n = truth.len() as f64;
    let residuals: Vec<f64> = truth.iter().zip(predicted).map(|(t, p)| t - p).collect();
    let res_mean = residuals.iter().sum::<f64>() / n;
    let res_var = residuals
        .iter()
        .map(|r| (r - res_mean).powi(2))
        .sum::<f64>()
        / n;
    let truth_mean = truth.iter().sum::<f64>() / n;
    let truth_var = truth.iter().map(|t| (t - truth_mean).powi(2)).sum::<f64>() / n;
    if truth_var <= f64::EPSILON {
        return Ok(if res_var <= f64::EPSILON { 1.0 } else { 0.0 });
    }
    Ok(1.0 - res_var / truth_var)
}

/// Classification accuracy: the fraction of predictions equal to the truth.
///
/// # Errors
///
/// Returns [`AppError::DimensionMismatch`] when the slices differ in length or
/// are empty.
pub fn accuracy_score(truth: &[usize], predicted: &[usize]) -> Result<f64, AppError> {
    if truth.is_empty() || truth.len() != predicted.len() {
        return Err(AppError::DimensionMismatch {
            reason: format!(
                "accuracy needs equal, non-empty label vectors (got {} and {})",
                truth.len(),
                predicted.len()
            ),
        });
    }
    let correct = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    Ok(correct as f64 / truth.len() as f64)
}

/// Clamps a quality value to `[0, 1]` and normalises it against a fault-free
/// baseline, as the Fig. 7 CDFs do (a fault-free run maps to 1.0).
#[must_use]
pub fn normalized_quality(quality: f64, baseline: f64) -> f64 {
    if baseline.abs() <= f64::EPSILON {
        return 0.0;
    }
    (quality / baseline).clamp(0.0, 1.0)
}

fn check_lengths(truth: &[f64], predicted: &[f64]) -> Result<(), AppError> {
    if truth.is_empty() || truth.len() != predicted.len() {
        return Err(AppError::DimensionMismatch {
            reason: format!(
                "metric needs equal, non-empty vectors (got {} and {})",
                truth.len(),
                predicted.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2_of_perfect_and_mean_predictions() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        assert!((r2_score(&truth, &truth).unwrap() - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r2_score(&truth, &mean_pred).unwrap().abs() < 1e-12);
        // Predicting badly gives a negative score.
        let bad = [10.0, -10.0, 10.0, -10.0];
        assert!(r2_score(&truth, &bad).unwrap() < 0.0);
    }

    #[test]
    fn r2_handles_constant_targets() {
        assert_eq!(r2_score(&[5.0, 5.0], &[5.0, 5.0]).unwrap(), 1.0);
        assert_eq!(r2_score(&[5.0, 5.0], &[4.0, 6.0]).unwrap(), 0.0);
    }

    #[test]
    fn explained_variance_matches_r2_for_unbiased_residuals() {
        let truth = [1.0, 2.0, 3.0, 4.0, 5.0];
        let predicted = [1.1, 1.9, 3.1, 3.9, 5.0];
        let r2 = r2_score(&truth, &predicted).unwrap();
        let ev = explained_variance_score(&truth, &predicted).unwrap();
        assert!((r2 - ev).abs() < 0.02);
        assert!(ev > 0.95);
    }

    #[test]
    fn explained_variance_ignores_constant_bias() {
        // A constant offset leaves the residual variance at zero.
        let truth = [1.0, 2.0, 3.0];
        let shifted = [2.0, 3.0, 4.0];
        assert!((explained_variance_score(&truth, &shifted).unwrap() - 1.0).abs() < 1e-12);
        // R² penalises the bias.
        assert!(r2_score(&truth, &shifted).unwrap() < 1.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy_score(&[1, 2, 3], &[1, 2, 3]).unwrap(), 1.0);
        assert_eq!(accuracy_score(&[1, 2, 3], &[1, 0, 0]).unwrap(), 1.0 / 3.0);
        assert_eq!(accuracy_score(&[0, 0], &[1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn metrics_validate_inputs() {
        assert!(r2_score(&[], &[]).is_err());
        assert!(r2_score(&[1.0], &[1.0, 2.0]).is_err());
        assert!(explained_variance_score(&[1.0], &[]).is_err());
        assert!(accuracy_score(&[], &[]).is_err());
        assert!(accuracy_score(&[1], &[1, 2]).is_err());
    }

    #[test]
    fn normalized_quality_clamps_and_scales() {
        assert_eq!(normalized_quality(0.8, 0.8), 1.0);
        assert_eq!(normalized_quality(0.4, 0.8), 0.5);
        assert_eq!(normalized_quality(-0.3, 0.8), 0.0);
        assert_eq!(normalized_quality(1.2, 0.8), 1.0);
        assert_eq!(normalized_quality(0.5, 0.0), 0.0);
    }
}
