//! The Fig. 7 harness: application quality under memory faults.
//!
//! For each benchmark the evaluation flow follows §5.2 of the paper:
//!
//! 1. generate the dataset and split it 0.8 : 0.2 into training and test
//!    partitions;
//! 2. quantise the training features to the 32-bit storage format and pass
//!    them through a faulty memory protected by the scheme under study;
//! 3. train the algorithm on the (possibly corrupted) training data;
//! 4. evaluate the quality metric on the *clean* test partition;
//! 5. normalise against the fault-free baseline, so an uncorrupted run (and
//!    the H(39,32) SECDED reference) scores 1.0.
//!
//! Repeating steps 2–5 over Monte-Carlo fault maps drawn for each failure
//! count, weighted by `Pr(N = n)`, yields the quality CDFs of Fig. 7.

use crate::datasets::{HarDataset, MadelonDataset, WineQualityDataset};
use crate::elasticnet::ElasticNet;
use crate::error::AppError;
use crate::faulty_storage::FaultyStore;
use crate::fixedpoint::FixedPointFormat;
use crate::knn::KnnClassifier;
use crate::linalg::Matrix;
use crate::metrics::{explained_variance_score, normalized_quality};
use crate::pca::Pca;
use crate::preprocessing::{train_test_split, Standardizer};
use faultmit_analysis::{CatalogueAccumulator, EmpiricalCdf, YieldModel};
use faultmit_core::MitigationScheme;
use faultmit_memsim::{FaultBackend, FaultMap, FaultMapSampler, MemoryConfig, SramVddBackend};
use faultmit_sim::{Campaign, CampaignConfig, MapPolicy, Parallelism, ShardSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three application benchmarks of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Elasticnet regression on the wine-quality dataset (metric: R²).
    Elasticnet,
    /// PCA on the Madelon-like dataset (metric: explained variance).
    Pca,
    /// KNN classification on the activity-recognition dataset (metric: score).
    Knn,
}

impl Benchmark {
    /// All benchmarks in Table 1 order.
    pub const ALL: [Benchmark; 3] = [Benchmark::Elasticnet, Benchmark::Pca, Benchmark::Knn];

    /// Human-readable benchmark name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Elasticnet => "Elasticnet",
            Benchmark::Pca => "PCA",
            Benchmark::Knn => "KNN",
        }
    }

    /// Name of the quality metric, as in Table 1.
    #[must_use]
    pub fn metric_name(&self) -> &'static str {
        match self {
            Benchmark::Elasticnet => "R2",
            Benchmark::Pca => "Explained Variance",
            Benchmark::Knn => "Score",
        }
    }

    /// Name of the (synthetic stand-in for the) dataset, as in Table 1.
    #[must_use]
    pub fn dataset_name(&self) -> &'static str {
        match self {
            Benchmark::Elasticnet => "Wine Quality (synthetic)",
            Benchmark::Pca => "Madelon (synthetic)",
            Benchmark::Knn => "Activity Recognition (synthetic)",
        }
    }
}

/// Result of a Fig. 7 Monte-Carlo campaign for one benchmark and scheme.
#[derive(Debug, Clone)]
pub struct QualityCdfResult {
    /// Benchmark evaluated.
    pub benchmark: Benchmark,
    /// Protection scheme name.
    pub scheme_name: String,
    /// Fault-free quality (denominator of the normalisation).
    pub baseline_quality: f64,
    /// Weighted CDF of the normalised quality metric over the die population.
    pub cdf: EmpiricalCdf,
    /// Full yield model over the normalised quality (note: quality is
    /// "higher is better" here, so yield at a *minimum* quality `q` is
    /// `1 − P(Q ≤ q)` plus the mass exactly at `q`).
    pub yield_model: YieldModel,
}

impl QualityCdfResult {
    /// Fraction of dies whose normalised quality is at least `min_quality`.
    #[must_use]
    pub fn yield_at_min_quality(&self, min_quality: f64) -> f64 {
        if self.cdf.is_empty() {
            return 0.0;
        }
        let below = self.cdf.probability_at_or_below(min_quality - 1e-12);
        1.0 - below
    }
}

/// Builder for [`QualityEvaluator`].
#[derive(Debug, Clone, Copy)]
pub struct QualityEvaluatorBuilder {
    benchmark: Benchmark,
    samples: usize,
    memory_rows: usize,
    dataset_seed: u64,
    format: FixedPointFormat,
    pca_components: usize,
    parallelism: Parallelism,
}

impl QualityEvaluatorBuilder {
    /// Sets the number of dataset samples to generate.
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(16);
        self
    }

    /// Sets the number of rows of the faulty memory bank.
    #[must_use]
    pub fn memory_rows(mut self, rows: usize) -> Self {
        self.memory_rows = rows.max(16);
        self
    }

    /// Sets the dataset generator seed.
    #[must_use]
    pub fn dataset_seed(mut self, seed: u64) -> Self {
        self.dataset_seed = seed;
        self
    }

    /// Sets the fixed-point storage format.
    #[must_use]
    pub fn format(mut self, format: FixedPointFormat) -> Self {
        self.format = format;
        self
    }

    /// Sets the number of principal components retained by the PCA benchmark.
    #[must_use]
    pub fn pca_components(mut self, components: usize) -> Self {
        self.pca_components = components.max(1);
        self
    }

    /// Sets the pipeline worker policy used by the Monte-Carlo campaigns
    /// (results are identical for every setting).
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builds the evaluator (generating the dataset and the clean baseline
    /// lazily on first use).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] for inconsistent configuration.
    pub fn build(self) -> Result<QualityEvaluator, AppError> {
        if self.format.word_bits() != 32 {
            return Err(AppError::InvalidParameter {
                reason: "the Fig. 7 evaluation uses 32-bit memory words".to_owned(),
            });
        }
        Ok(QualityEvaluator {
            benchmark: self.benchmark,
            samples: self.samples,
            memory_config: MemoryConfig::new(self.memory_rows, 32)?,
            dataset_seed: self.dataset_seed,
            format: self.format,
            pca_components: self.pca_components,
            parallelism: self.parallelism,
        })
    }
}

/// Evaluates a benchmark's quality metric under memory faults.
#[derive(Debug, Clone)]
pub struct QualityEvaluator {
    benchmark: Benchmark,
    samples: usize,
    memory_config: MemoryConfig,
    dataset_seed: u64,
    format: FixedPointFormat,
    pca_components: usize,
    parallelism: Parallelism,
}

impl QualityEvaluator {
    /// Starts building an evaluator for the given benchmark with the paper's
    /// defaults (16 KB memory bank, Q15.16 storage, moderate dataset size).
    #[must_use]
    pub fn builder(benchmark: Benchmark) -> QualityEvaluatorBuilder {
        QualityEvaluatorBuilder {
            benchmark,
            samples: 400,
            memory_rows: MemoryConfig::paper_16kb().rows(),
            dataset_seed: 0xF167,
            format: FixedPointFormat::q15_16(),
            pca_components: 5,
            parallelism: Parallelism::default(),
        }
    }

    /// The benchmark this evaluator runs.
    #[must_use]
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The memory geometry data is stored in.
    #[must_use]
    pub fn memory_config(&self) -> MemoryConfig {
        self.memory_config
    }

    /// Quality of the benchmark when the memory is fault-free (the
    /// normalisation baseline).
    ///
    /// # Errors
    ///
    /// Propagates dataset/model errors.
    pub fn baseline_quality(&self) -> Result<f64, AppError> {
        let clean = FaultMap::new(self.memory_config);
        self.quality_with_fault_map(&PassThrough, &clean)
    }

    /// Raw (un-normalised) quality when the training data passes through a
    /// memory with the given fault map under the given scheme.
    ///
    /// # Errors
    ///
    /// Propagates dataset/model errors.
    pub fn quality_with_fault_map<S: MitigationScheme>(
        &self,
        scheme: &S,
        faults: &FaultMap,
    ) -> Result<f64, AppError> {
        match self.benchmark {
            Benchmark::Elasticnet => self.run_elasticnet(scheme, faults),
            Benchmark::Pca => self.run_pca(scheme, faults),
            Benchmark::Knn => self.run_knn(scheme, faults),
        }
    }

    /// Raw quality with `n_faults` random bit-flips injected (one sampled
    /// fault map).
    ///
    /// # Errors
    ///
    /// Propagates sampling and evaluation errors.
    pub fn quality_with_faults<S: MitigationScheme>(
        &self,
        scheme: &S,
        n_faults: usize,
        seed: u64,
    ) -> Result<f64, AppError> {
        let sampler = FaultMapSampler::new(self.memory_config);
        let mut rng = StdRng::seed_from_u64(seed);
        let faults = sampler.sample_with_count(&mut rng, n_faults)?;
        self.quality_with_fault_map(scheme, &faults)
    }

    /// Runs the full Fig. 7 Monte-Carlo campaign for one scheme: failure
    /// counts `1..=max_failures`, `samples_per_count` fault maps each,
    /// weighted by the binomial `Pr(N = n)` at the given `p_cell`.
    ///
    /// # Errors
    ///
    /// Propagates sampling and evaluation errors.
    pub fn quality_cdf<S: MitigationScheme + Sync>(
        &self,
        scheme: &S,
        p_cell: f64,
        max_failures: u64,
        samples_per_count: usize,
        seed: u64,
    ) -> Result<QualityCdfResult, AppError> {
        self.quality_cdf_with_policy(scheme, p_cell, max_failures, samples_per_count, seed, false)
    }

    /// Like [`QualityEvaluator::quality_cdf`], but optionally discarding fault
    /// maps that place more than one fault in a single memory word — a thin
    /// shim over [`QualityEvaluator::quality_cdfs_paired`] with a one-element
    /// catalogue.
    ///
    /// # Errors
    ///
    /// Propagates sampling and evaluation errors.
    pub fn quality_cdf_with_policy<S: MitigationScheme + Sync>(
        &self,
        scheme: &S,
        p_cell: f64,
        max_failures: u64,
        samples_per_count: usize,
        seed: u64,
        discard_multi_fault_words: bool,
    ) -> Result<QualityCdfResult, AppError> {
        let mut results = self.quality_cdfs_paired(
            &[scheme],
            p_cell,
            max_failures,
            samples_per_count,
            seed,
            discard_multi_fault_words,
        )?;
        Ok(results.remove(0))
    }

    /// Runs one paired Fig. 7 campaign over a whole scheme catalogue through
    /// the parallel fault-injection pipeline: every scheme trains on data
    /// corrupted by the **same** fault map of every sampled die, so scheme
    /// comparisons are exact per die, and dies are evaluated concurrently on
    /// worker threads (bit-identical at any worker count).
    ///
    /// The paper's Fig. 7 protocol assumes "the small number of samples with
    /// more than one error per word are discarded, such that H(39,32) ECC
    /// provides error-free operation"; pass `discard_multi_fault_words =
    /// true` to reproduce that protocol.
    ///
    /// # Errors
    ///
    /// Propagates sampling and evaluation errors.
    pub fn quality_cdfs_paired<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        p_cell: f64,
        max_failures: u64,
        samples_per_count: usize,
        seed: u64,
        discard_multi_fault_words: bool,
    ) -> Result<Vec<QualityCdfResult>, AppError> {
        let backend = SramVddBackend::with_p_cell(self.memory_config, p_cell)?;
        self.quality_cdfs_paired_on(
            schemes,
            &backend,
            max_failures,
            samples_per_count,
            seed,
            discard_multi_fault_words,
        )
    }

    /// The backend axis of the Fig. 7 harness: runs the paired campaign
    /// against an arbitrary [`FaultBackend`], so per-technology quality
    /// CDFs (SRAM voltage scaling, DRAM retention, MLC NVM, or custom
    /// models) come out of the identical protocol. The backend must be
    /// built for this evaluator's memory geometry.
    ///
    /// Note that `discard_multi_fault_words` is a best-effort bounded
    /// redraw: backends whose spatial law clusters faults (DRAM retention)
    /// exhaust the budget at higher fault counts, so multi-fault words
    /// survive and the SECDED reference is **not** error-free there — that
    /// degradation is precisely the technology effect the backend axis
    /// exists to expose.
    ///
    /// [`QualityEvaluator::quality_cdfs_paired`] is the SRAM shim over this
    /// method and remains bit-identical to the historical results.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] on a geometry mismatch, and
    /// propagates sampling and evaluation errors.
    pub fn quality_cdfs_paired_on<S: MitigationScheme + Sync, B: FaultBackend + Clone>(
        &self,
        schemes: &[S],
        backend: &B,
        max_failures: u64,
        samples_per_count: usize,
        seed: u64,
        discard_multi_fault_words: bool,
    ) -> Result<Vec<QualityCdfResult>, AppError> {
        let state = self.quality_shard_on(
            schemes,
            backend,
            max_failures,
            samples_per_count,
            seed,
            discard_multi_fault_words,
            ShardSpec::solo(),
        )?;
        self.quality_results_from_state(schemes, backend, state)
    }

    /// Runs one shard of the paired Fig. 7 campaign, returning the raw
    /// accumulator state instead of finished results.
    ///
    /// Shard states merged in shard order (via
    /// [`faultmit_sim::Accumulator::merge`]) are bit-identical to the
    /// monolithic accumulation of
    /// [`QualityEvaluator::quality_cdfs_paired_on`] — which is the
    /// [`ShardSpec::solo`] special case of this method. Feed the merged
    /// state to [`QualityEvaluator::quality_results_from_state`] to obtain
    /// the exact monolithic results.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] on a geometry mismatch, and
    /// propagates sampling and evaluation errors.
    #[allow(clippy::too_many_arguments)]
    pub fn quality_shard_on<S: MitigationScheme + Sync, B: FaultBackend + Clone>(
        &self,
        schemes: &[S],
        backend: &B,
        max_failures: u64,
        samples_per_count: usize,
        seed: u64,
        discard_multi_fault_words: bool,
        shard: ShardSpec,
    ) -> Result<CatalogueAccumulator, AppError> {
        self.check_backend_geometry(backend)?;
        let baseline = self.baseline_quality()?;

        let map_policy = if discard_multi_fault_words {
            // Bounded redraws so extreme fault densities cannot loop forever.
            MapPolicy::SingleFaultPerRow { max_redraws: 1000 }
        } else {
            MapPolicy::Unrestricted
        };
        let config = CampaignConfig::for_backend(backend.clone())?
            .with_samples_per_count(samples_per_count)
            .with_max_failures(max_failures)
            .with_map_policy(map_policy)
            .with_parallelism(self.parallelism)
            // Application training runs are expensive; keep chunks small so
            // worker threads stay balanced.
            .with_chunk_size(4);

        Campaign::new(config)
            .try_run_shard(
                schemes,
                seed,
                shard,
                |scheme, faults| {
                    let quality = self.quality_with_fault_map(scheme, faults)?;
                    Ok::<f64, AppError>(normalized_quality(quality, baseline))
                },
                || CatalogueAccumulator::new(schemes.len()),
            )
            .map_err(AppError::from)
    }

    /// Converts accumulated (possibly shard-merged) campaign state into the
    /// per-scheme quality results — the reduction half of
    /// [`QualityEvaluator::quality_cdfs_paired_on`].
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] on geometry or catalogue-size
    /// mismatches, and propagates baseline evaluation errors.
    pub fn quality_results_from_state<S: MitigationScheme + Sync, B: FaultBackend>(
        &self,
        schemes: &[S],
        backend: &B,
        state: CatalogueAccumulator,
    ) -> Result<Vec<QualityCdfResult>, AppError> {
        self.check_backend_geometry(backend)?;
        if state.scheme_count() != schemes.len() {
            return Err(AppError::InvalidParameter {
                reason: format!(
                    "campaign state tracks {} schemes, catalogue has {}",
                    state.scheme_count(),
                    schemes.len()
                ),
            });
        }
        let baseline = self.baseline_quality()?;
        let distribution = backend.failure_distribution()?;

        Ok(state
            .into_yield_models(distribution)
            .into_iter()
            .zip(schemes)
            .map(|(yield_model, scheme)| {
                // The combined CDF interprets the zero-failure mass as
                // quality 0 in the MSE convention; for Fig. 7 ("higher is
                // better") we add it at the normalised optimum of 1.0
                // instead and weight every sampled quality value by
                // Pr(N = n) / samples at n.
                let mut cdf = EmpiricalCdf::new();
                cdf.add(1.0, distribution.pmf(0));
                for (&n, count_cdf) in yield_model.per_count_cdfs() {
                    if count_cdf.is_empty() {
                        continue;
                    }
                    let weight = distribution.pmf(n) / count_cdf.total_weight();
                    for (value, sample_weight) in count_cdf.samples() {
                        cdf.add(value, sample_weight * weight);
                    }
                }
                QualityCdfResult {
                    benchmark: self.benchmark,
                    scheme_name: scheme.name(),
                    baseline_quality: baseline,
                    cdf,
                    yield_model,
                }
            })
            .collect())
    }

    fn check_backend_geometry<B: FaultBackend>(&self, backend: &B) -> Result<(), AppError> {
        if backend.config() != self.memory_config {
            return Err(AppError::InvalidParameter {
                reason: format!(
                    "backend '{}' is built for {:?}, evaluator for {:?}",
                    backend.name(),
                    backend.config(),
                    self.memory_config
                ),
            });
        }
        Ok(())
    }

    fn corrupt_training_matrix<S: MitigationScheme>(
        &self,
        scheme: &S,
        faults: &FaultMap,
        matrix: &Matrix,
    ) -> Result<Matrix, AppError> {
        let store = FaultyStore::new(scheme, faults, self.format)?;
        store.round_trip_matrix(matrix)
    }

    fn run_elasticnet<S: MitigationScheme>(
        &self,
        scheme: &S,
        faults: &FaultMap,
    ) -> Result<f64, AppError> {
        let dataset = WineQualityDataset::new(self.samples, self.dataset_seed).generate();
        let split = train_test_split(&dataset.features, &dataset.targets, 0.8)?;
        // Standardise with clean statistics, then corrupt the stored training
        // matrix: what sits in memory is the prepared training set.
        let scaler = Standardizer::fit(&split.train_x);
        let clean_train = scaler.transform(&split.train_x)?;
        let test_x = scaler.transform(&split.test_x)?;
        let corrupted_train = self.corrupt_training_matrix(scheme, faults, &clean_train)?;

        let mut model = ElasticNet::paper_default()?;
        model.fit(&corrupted_train, &split.train_y)?;
        model.score(&test_x, &split.test_y)
    }

    fn run_pca<S: MitigationScheme>(&self, scheme: &S, faults: &FaultMap) -> Result<f64, AppError> {
        // A reduced Madelon geometry (5 informative + 15 redundant + 20
        // probes) keeps the informative/redundant/probe structure while the
        // retained components still explain a meaningful variance share.
        let dataset = MadelonDataset::new(self.samples, 5, 15, 20, self.dataset_seed).generate();
        let labels_f: Vec<f64> = dataset.labels.iter().map(|&l| l as f64).collect();
        let split = train_test_split(&dataset.features, &labels_f, 0.8)?;
        let scaler = Standardizer::fit(&split.train_x);
        let clean_train = scaler.transform(&split.train_x)?;
        let test_x = scaler.transform(&split.test_x)?;
        let corrupted_train = self.corrupt_training_matrix(scheme, faults, &clean_train)?;

        let mut pca = Pca::new(self.pca_components.min(corrupted_train.cols()))?;
        pca.fit(&corrupted_train)?;
        // Explained variance of the clean test data reconstructed through the
        // (possibly corrupted) principal axes.
        let projected = pca.transform(&test_x)?;
        let reconstructed = pca.inverse_transform(&projected)?;
        explained_variance_score(test_x.as_slice(), reconstructed.as_slice())
    }

    fn run_knn<S: MitigationScheme>(&self, scheme: &S, faults: &FaultMap) -> Result<f64, AppError> {
        let dataset = HarDataset::new(self.samples, self.dataset_seed).generate();
        let labels_f: Vec<f64> = dataset.labels.iter().map(|&l| l as f64).collect();
        let split = train_test_split(&dataset.features, &labels_f, 0.8)?;
        let scaler = Standardizer::fit(&split.train_x);
        let clean_train = scaler.transform(&split.train_x)?;
        let test_x = scaler.transform(&split.test_x)?;
        let corrupted_train = self.corrupt_training_matrix(scheme, faults, &clean_train)?;

        let train_y: Vec<usize> = split.train_y.iter().map(|&l| l as usize).collect();
        let test_y: Vec<usize> = split.test_y.iter().map(|&l| l as usize).collect();
        let mut knn = KnnClassifier::paper_default()?;
        knn.fit(&corrupted_train, &train_y)?;
        knn.score(&test_x, &test_y)
    }
}

/// A scheme that passes data through untouched — used to compute the
/// fault-free baseline without special-casing the storage path.
struct PassThrough;

impl MitigationScheme for PassThrough {
    fn name(&self) -> String {
        "fault-free".to_owned()
    }

    fn word_bits(&self) -> usize {
        32
    }

    fn observe(
        &self,
        _faults: &FaultMap,
        _row: usize,
        written: u64,
    ) -> faultmit_core::ObservedWord {
        faultmit_core::ObservedWord::intact(written)
    }

    fn worst_case_error_magnitude(&self, _bit: usize) -> u64 {
        0
    }

    fn extra_bits_per_row(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_core::Scheme;
    use faultmit_memsim::Fault;

    fn evaluator(benchmark: Benchmark) -> QualityEvaluator {
        QualityEvaluator::builder(benchmark)
            .samples(120)
            .memory_rows(256)
            .build()
            .unwrap()
    }

    #[test]
    fn benchmark_metadata_matches_table1() {
        assert_eq!(Benchmark::ALL.len(), 3);
        assert_eq!(Benchmark::Elasticnet.metric_name(), "R2");
        assert_eq!(Benchmark::Pca.metric_name(), "Explained Variance");
        assert_eq!(Benchmark::Knn.metric_name(), "Score");
        assert!(Benchmark::Elasticnet.dataset_name().contains("Wine"));
        assert!(Benchmark::Pca.dataset_name().contains("Madelon"));
        assert!(Benchmark::Knn.dataset_name().contains("Activity"));
    }

    #[test]
    fn builder_validates_format() {
        let result = QualityEvaluator::builder(Benchmark::Elasticnet)
            .format(FixedPointFormat::new(16, 8).unwrap())
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn baselines_are_healthy_for_all_benchmarks() {
        for benchmark in Benchmark::ALL {
            let quality = evaluator(benchmark).baseline_quality().unwrap();
            assert!(
                quality > 0.3 && quality <= 1.0,
                "{:?} baseline quality = {quality}",
                benchmark
            );
        }
    }

    #[test]
    fn fault_free_map_reproduces_baseline_for_any_scheme() {
        let eval = evaluator(Benchmark::Knn);
        let clean = FaultMap::new(eval.memory_config());
        let baseline = eval.baseline_quality().unwrap();
        let with_scheme = eval
            .quality_with_fault_map(&Scheme::shuffle32(3).unwrap(), &clean)
            .unwrap();
        assert!((baseline - with_scheme).abs() < 0.05);
    }

    #[test]
    fn unprotected_quality_degrades_with_msb_faults() {
        let eval = evaluator(Benchmark::Elasticnet);
        let baseline = eval.baseline_quality().unwrap();
        // Saturate the memory with MSB faults: every row's sign bit flips.
        let config = eval.memory_config();
        let faults =
            FaultMap::from_faults(config, (0..config.rows()).map(|r| Fault::bit_flip(r, 31)))
                .unwrap();
        let corrupted = eval
            .quality_with_fault_map(&Scheme::unprotected32(), &faults)
            .unwrap();
        assert!(
            corrupted < baseline - 0.2,
            "quality did not degrade: {corrupted} vs baseline {baseline}"
        );
    }

    #[test]
    fn bit_shuffling_preserves_quality_under_the_same_faults() {
        let eval = evaluator(Benchmark::Elasticnet);
        let baseline = eval.baseline_quality().unwrap();
        let config = eval.memory_config();
        let faults =
            FaultMap::from_faults(config, (0..config.rows()).map(|r| Fault::bit_flip(r, 31)))
                .unwrap();
        let shuffled = eval
            .quality_with_fault_map(&Scheme::shuffle32(5).unwrap(), &faults)
            .unwrap();
        assert!(
            (baseline - shuffled).abs() < 0.05,
            "shuffled quality {shuffled} vs baseline {baseline}"
        );
    }

    #[test]
    fn single_fault_per_word_policy_keeps_secded_at_baseline() {
        let eval = QualityEvaluator::builder(Benchmark::Elasticnet)
            .samples(96)
            .memory_rows(128)
            .build()
            .unwrap();
        let result = eval
            .quality_cdf_with_policy(&Scheme::secded32(), 1e-3, 6, 3, 23, true)
            .unwrap();
        // With at most one fault per word, SECDED is error-free: every
        // normalised quality sample is 1.0.
        assert!((result.cdf.min().unwrap() - 1.0).abs() < 1e-9);
        assert!((result.cdf.quantile(0.01) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backend_axis_matches_the_sram_shim_and_covers_all_technologies() {
        use faultmit_memsim::{Backend, BackendKind, SramVddBackend};
        let eval = QualityEvaluator::builder(Benchmark::Elasticnet)
            .samples(96)
            .memory_rows(128)
            .build()
            .unwrap();
        let schemes = [Scheme::unprotected32(), Scheme::secded32()];

        // The SRAM backend reproduces the p_cell-based shim bit-for-bit.
        let shim = eval
            .quality_cdfs_paired(&schemes, 1e-3, 4, 2, 19, false)
            .unwrap();
        let sram = SramVddBackend::with_p_cell(eval.memory_config(), 1e-3).unwrap();
        let explicit = eval
            .quality_cdfs_paired_on(&schemes, &sram, 4, 2, 19, false)
            .unwrap();
        for (a, b) in shim.iter().zip(&explicit) {
            assert_eq!(a.cdf, b.cdf);
            assert_eq!(a.baseline_quality.to_bits(), b.baseline_quality.to_bits());
        }

        // Every technology runs through the identical protocol.
        for kind in [BackendKind::Dram, BackendKind::Mlc] {
            let backend = Backend::at_p_cell(kind, eval.memory_config(), 1e-3).unwrap();
            let results = eval
                .quality_cdfs_paired_on(&schemes, &backend, 3, 2, 19, false)
                .unwrap();
            assert_eq!(results.len(), 2, "{kind}");
            for result in &results {
                assert!(result.cdf.total_weight() > 0.0, "{kind}");
            }
        }

        // Geometry mismatches are rejected.
        let wrong = SramVddBackend::with_p_cell(MemoryConfig::new(64, 32).unwrap(), 1e-3).unwrap();
        assert!(eval
            .quality_cdfs_paired_on(&schemes, &wrong, 3, 2, 19, false)
            .is_err());
    }

    #[test]
    fn quality_shard_states_merged_in_order_match_the_monolithic_campaign() {
        use faultmit_memsim::SramVddBackend;
        use faultmit_sim::Accumulator;
        let eval = QualityEvaluator::builder(Benchmark::Elasticnet)
            .samples(96)
            .memory_rows(128)
            .build()
            .unwrap();
        let schemes = [Scheme::unprotected32(), Scheme::secded32()];
        let backend = SramVddBackend::with_p_cell(eval.memory_config(), 1e-3).unwrap();
        let monolithic = eval
            .quality_cdfs_paired_on(&schemes, &backend, 4, 2, 19, true)
            .unwrap();
        for shard_count in [2usize, 3] {
            let mut merged = CatalogueAccumulator::new(schemes.len());
            for index in 0..shard_count {
                let shard = faultmit_sim::ShardSpec::new(index, shard_count).unwrap();
                merged.merge(
                    eval.quality_shard_on(&schemes, &backend, 4, 2, 19, true, shard)
                        .unwrap(),
                );
            }
            let results = eval
                .quality_results_from_state(&schemes, &backend, merged)
                .unwrap();
            for (a, b) in monolithic.iter().zip(&results) {
                assert_eq!(a.scheme_name, b.scheme_name, "{shard_count} shards");
                assert_eq!(a.cdf, b.cdf, "{shard_count} shards: {}", a.scheme_name);
                assert_eq!(a.baseline_quality.to_bits(), b.baseline_quality.to_bits());
            }
        }
    }

    #[test]
    fn quality_with_faults_samples_reproducibly() {
        let eval = evaluator(Benchmark::Knn);
        let scheme = Scheme::pecc32();
        let a = eval.quality_with_faults(&scheme, 10, 3).unwrap();
        let b = eval.quality_with_faults(&scheme, 10, 3).unwrap();
        assert_eq!(a, b);
    }
}
