//! K-nearest-neighbours classification.
//!
//! The paper's classification benchmark (Table 1): human activity recognition
//! from accelerometer features, evaluated with the classification score
//! (accuracy). KNN stores its entire training set in memory, which makes it a
//! natural candidate for studying memory-fault resilience — a corrupted
//! training sample only shifts a few neighbourhood votes.

use crate::error::AppError;
use crate::linalg::Matrix;
use crate::metrics::accuracy_score;

/// Brute-force KNN classifier with Euclidean distance and majority voting.
///
/// # Example
///
/// ```
/// use faultmit_apps::{KnnClassifier, Matrix};
///
/// # fn main() -> Result<(), faultmit_apps::AppError> {
/// let train = Matrix::from_rows(&[
///     vec![0.0, 0.0], vec![0.1, 0.1], vec![5.0, 5.0], vec![5.1, 4.9],
/// ])?;
/// let labels = vec![0, 0, 1, 1];
/// let mut knn = KnnClassifier::new(3)?;
/// knn.fit(&train, &labels)?;
/// let test = Matrix::from_rows(&[vec![0.05, 0.0], vec![4.9, 5.2]])?;
/// assert_eq!(knn.predict(&test)?, vec![0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnClassifier {
    k: usize,
    train_x: Option<Matrix>,
    train_y: Option<Vec<usize>>,
}

impl KnnClassifier {
    /// Creates a classifier using the `k` nearest neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] when `k` is zero.
    pub fn new(k: usize) -> Result<Self, AppError> {
        if k == 0 {
            return Err(AppError::InvalidParameter {
                reason: "k must be at least 1".to_owned(),
            });
        }
        Ok(Self {
            k,
            train_x: None,
            train_y: None,
        })
    }

    /// The paper-style configuration (`k = 5`).
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for signature uniformity.
    pub fn paper_default() -> Result<Self, AppError> {
        Self::new(5)
    }

    /// Number of neighbours consulted per prediction.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stores the training set (KNN is a lazy learner).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::DimensionMismatch`] when `x` and `labels` disagree
    /// on the sample count or the training set is smaller than `k`.
    pub fn fit(&mut self, x: &Matrix, labels: &[usize]) -> Result<(), AppError> {
        if x.rows() != labels.len() {
            return Err(AppError::DimensionMismatch {
                reason: format!("{} samples but {} labels", x.rows(), labels.len()),
            });
        }
        if x.rows() < self.k {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "need at least k = {} training samples, got {}",
                    self.k,
                    x.rows()
                ),
            });
        }
        self.train_x = Some(x.clone());
        self.train_y = Some(labels.to_vec());
        Ok(())
    }

    /// Predicts labels for each row of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::NotFitted`] before [`KnnClassifier::fit`], or a
    /// dimension error when the feature count differs from the training data.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>, AppError> {
        let (train_x, train_y) = self.fitted()?;
        if x.cols() != train_x.cols() {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "model was trained on {} features but got {}",
                    train_x.cols(),
                    x.cols()
                ),
            });
        }
        let mut predictions = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let query = x.row(r);
            predictions.push(self.vote(&query, train_x, train_y));
        }
        Ok(predictions)
    }

    /// Classification accuracy on a labelled test set — the paper's "score"
    /// metric for the activity-recognition benchmark.
    ///
    /// # Errors
    ///
    /// Propagates prediction and metric errors.
    pub fn score(&self, x: &Matrix, labels: &[usize]) -> Result<f64, AppError> {
        accuracy_score(labels, &self.predict(x)?)
    }

    fn fitted(&self) -> Result<(&Matrix, &Vec<usize>), AppError> {
        match (&self.train_x, &self.train_y) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(AppError::NotFitted {
                model: "KnnClassifier".to_owned(),
            }),
        }
    }

    fn vote(&self, query: &[f64], train_x: &Matrix, train_y: &[usize]) -> usize {
        // Collect squared distances to every training sample.
        let mut distances: Vec<(f64, usize)> = (0..train_x.rows())
            .map(|i| {
                let mut d = 0.0;
                for (c, &q) in query.iter().enumerate().take(train_x.cols()) {
                    let diff = train_x.get(i, c) - q;
                    d += diff * diff;
                }
                (d, train_y[i])
            })
            .collect();
        distances.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));

        // Majority vote over the k nearest; ties break towards the smaller
        // label for determinism.
        let mut counts: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for &(_, label) in distances.iter().take(self.k) {
            *counts.entry(label).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(label, _)| label)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.05 * i as f64, 0.0]);
            labels.push(0);
            rows.push(vec![10.0 - 0.05 * i as f64, 10.0]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn constructor_validates_k() {
        assert!(KnnClassifier::new(0).is_err());
        assert_eq!(KnnClassifier::new(3).unwrap().k(), 3);
        assert_eq!(KnnClassifier::paper_default().unwrap().k(), 5);
    }

    #[test]
    fn separable_clusters_are_classified_perfectly() {
        let (x, y) = clusters();
        let mut knn = KnnClassifier::new(3).unwrap();
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.score(&x, &y).unwrap(), 1.0);
        let test = Matrix::from_rows(&[vec![0.2, 0.1], vec![9.5, 9.8]]).unwrap();
        assert_eq!(knn.predict(&test).unwrap(), vec![0, 1]);
    }

    #[test]
    fn single_neighbour_memorises_training_data() {
        let (x, y) = clusters();
        let mut knn = KnnClassifier::new(1).unwrap();
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.predict(&x).unwrap(), y);
    }

    #[test]
    fn majority_vote_overrules_single_outlier() {
        // Two class-0 points near the query, one class-1 point exactly on it.
        let x = Matrix::from_rows(&[
            vec![0.1, 0.0],
            vec![-0.1, 0.0],
            vec![0.0, 0.0],
            vec![5.0, 5.0],
        ])
        .unwrap();
        let y = vec![0, 0, 1, 1];
        let mut knn = KnnClassifier::new(3).unwrap();
        knn.fit(&x, &y).unwrap();
        let query = Matrix::from_rows(&[vec![0.0, 0.01]]).unwrap();
        assert_eq!(knn.predict(&query).unwrap(), vec![0]);
    }

    #[test]
    fn unfitted_model_is_rejected() {
        let knn = KnnClassifier::new(3).unwrap();
        assert!(matches!(
            knn.predict(&Matrix::zeros(1, 2)),
            Err(AppError::NotFitted { .. })
        ));
    }

    #[test]
    fn fit_and_predict_validate_shapes() {
        let (x, y) = clusters();
        let mut knn = KnnClassifier::new(3).unwrap();
        assert!(knn.fit(&x, &y[..3]).is_err());
        assert!(knn.fit(&Matrix::zeros(2, 2), &[0, 1]).is_err()); // fewer than k samples
        knn.fit(&x, &y).unwrap();
        assert!(knn.predict(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        // k = 2 with one neighbour from each class: the smaller label wins.
        let x = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        let y = vec![0, 1];
        let mut knn = KnnClassifier::new(2).unwrap();
        knn.fit(&x, &y).unwrap();
        let query = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert_eq!(knn.predict(&query).unwrap(), vec![0]);
    }

    #[test]
    fn corrupting_one_training_sample_changes_few_predictions() {
        // The error-resilience property the paper relies on: a single
        // corrupted training row barely moves the decision boundary.
        let (x, y) = clusters();
        let mut clean = KnnClassifier::new(5).unwrap();
        clean.fit(&x, &y).unwrap();

        let mut corrupted_x = x.clone();
        corrupted_x.set(0, 0, 1000.0); // one wildly corrupted feature
        let mut corrupted = KnnClassifier::new(5).unwrap();
        corrupted.fit(&corrupted_x, &y).unwrap();

        let test = Matrix::from_rows(&[
            vec![0.1, 0.2],
            vec![9.9, 9.7],
            vec![0.3, -0.1],
            vec![10.2, 10.1],
        ])
        .unwrap();
        let expected = vec![0, 1, 0, 1];
        assert_eq!(clean.predict(&test).unwrap(), expected);
        assert_eq!(corrupted.predict(&test).unwrap(), expected);
    }
}
