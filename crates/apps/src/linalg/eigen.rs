//! Jacobi eigen-decomposition for symmetric matrices.
//!
//! PCA needs the eigenvalues and eigenvectors of a covariance matrix. The
//! cyclic Jacobi method is simple, numerically robust for the small feature
//! dimensionalities of the paper's datasets (≤ 500), and requires no external
//! dependencies.

use crate::error::AppError;
use crate::linalg::matrix::Matrix;

/// Eigenvalues and eigenvectors of a symmetric matrix, sorted by descending
/// eigenvalue.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Matrix whose columns are the corresponding (unit-norm) eigenvectors.
    pub vectors: Matrix,
}

/// Computes the eigen-decomposition of a symmetric matrix using the cyclic
/// Jacobi rotation method.
///
/// # Errors
///
/// Returns [`AppError::DimensionMismatch`] when the matrix is not square,
/// [`AppError::InvalidParameter`] when it is not (approximately) symmetric,
/// or [`AppError::DidNotConverge`] when the off-diagonal norm does not drop
/// below tolerance within the sweep budget.
///
/// # Example
///
/// ```
/// use faultmit_apps::linalg::{jacobi_eigen, Matrix};
///
/// # fn main() -> Result<(), faultmit_apps::AppError> {
/// let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let eigen = jacobi_eigen(&m, 100)?;
/// assert!((eigen.values[0] - 3.0).abs() < 1e-9);
/// assert!((eigen.values[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn jacobi_eigen(matrix: &Matrix, max_sweeps: usize) -> Result<EigenDecomposition, AppError> {
    let n = matrix.rows();
    if matrix.cols() != n {
        return Err(AppError::DimensionMismatch {
            reason: format!(
                "eigen-decomposition needs a square matrix, got {}x{}",
                matrix.rows(),
                matrix.cols()
            ),
        });
    }
    let scale = matrix.frobenius_norm().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (matrix.get(i, j) - matrix.get(j, i)).abs() > 1e-8 * scale {
                return Err(AppError::InvalidParameter {
                    reason: format!("matrix is not symmetric at ({i}, {j})"),
                });
            }
        }
    }

    let mut a = matrix.clone();
    let mut v = Matrix::identity(n);
    let tolerance = 1e-12 * scale;

    for _sweep in 0..max_sweeps {
        let off_diagonal: f64 = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| a.get(i, j).powi(2))
            .sum::<f64>()
            .sqrt();
        if off_diagonal < tolerance {
            return Ok(sort_descending(a, v, n));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < tolerance / (n as f64) {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Final convergence check after the sweep budget.
    let off_diagonal: f64 = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| a.get(i, j).powi(2))
        .sum::<f64>()
        .sqrt();
    if off_diagonal < tolerance.max(1e-9 * scale) {
        Ok(sort_descending(a, v, n))
    } else {
        Err(AppError::DidNotConverge {
            routine: "jacobi eigen-decomposition".to_owned(),
            iterations: max_sweeps,
        })
    }
}

fn sort_descending(a: Matrix, v: Matrix, n: usize) -> EigenDecomposition {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a.get(j, j)
            .partial_cmp(&a.get(i, i))
            .expect("eigenvalues are finite")
    });
    let values = order.iter().map(|&i| a.get(i, i)).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors.set(row, new_col, v.get(row, old_col));
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&m, 50).unwrap();
        assert_eq!(eig.values.len(), 3);
        assert!((eig.values[0] - 5.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        assert!((eig.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_decomposition() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = jacobi_eigen(&m, 50).unwrap();
        assert!((eig.values[0] - 3.0).abs() < 1e-10);
        assert!((eig.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = eig.vectors.column(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_property_holds() {
        // A = V Λ Vᵀ for a random-ish symmetric matrix.
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.5],
            vec![2.0, 0.0, 5.0, 1.0],
            vec![0.5, 1.5, 1.0, 2.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&m, 100).unwrap();
        let mut lambda = Matrix::zeros(4, 4);
        for (i, &value) in eig.values.iter().enumerate() {
            lambda.set(i, i, value);
        }
        let reconstructed = eig
            .vectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&eig.vectors.transpose())
            .unwrap();
        assert!(reconstructed.approx_eq(&m, 1e-8));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0],
            vec![2.0, 3.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&m, 100).unwrap();
        let vtv = eig.vectors.transpose().matmul(&eig.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let m = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&m, 100).unwrap();
        let trace = 6.0;
        let sum: f64 = eig.values.iter().sum();
        assert!((sum - trace).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_square_and_non_symmetric_inputs() {
        let rect = Matrix::zeros(2, 3);
        assert!(jacobi_eigen(&rect, 10).is_err());
        let asym = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!(jacobi_eigen(&asym, 10).is_err());
    }

    #[test]
    fn zero_sweep_budget_fails_to_converge_for_nontrivial_input() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        assert!(matches!(
            jacobi_eigen(&m, 0),
            Err(AppError::DidNotConverge { .. })
        ));
    }
}
