//! Row-major dense matrix of `f64` values.

use crate::error::AppError;

/// A row-major dense matrix.
///
/// # Example
///
/// ```
/// use faultmit_apps::Matrix;
///
/// # fn main() -> Result<(), faultmit_apps::AppError> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let product = a.matmul(&b)?;
/// assert_eq!(product.get(1, 0), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::DimensionMismatch`] when rows have unequal lengths
    /// or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, AppError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(AppError::DimensionMismatch {
                reason: "matrix must have at least one row and one column".to_owned(),
            });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(AppError::DimensionMismatch {
                reason: "all rows must have the same length".to_owned(),
            });
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::DimensionMismatch`] when `data.len() != rows·cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, AppError> {
        if data.len() != rows * cols {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "expected {} elements for a {rows}x{cols} matrix, got {}",
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// A copy of row `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    #[must_use]
    pub fn row(&self, row: usize) -> Vec<f64> {
        assert!(row < self.rows, "row out of range");
        self.data[row * self.cols..(row + 1) * self.cols].to_vec()
    }

    /// A copy of column `col`.
    ///
    /// # Panics
    ///
    /// Panics when `col` is out of range.
    #[must_use]
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "column out of range");
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// The underlying row-major data slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::DimensionMismatch`] when the inner dimensions
    /// differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, AppError> {
        if self.cols != other.rows {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "cannot multiply {}x{} by {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, AppError> {
        if v.len() != self.cols {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "cannot multiply {}x{} by a vector of length {}",
                    self.rows,
                    self.cols,
                    v.len()
                ),
            });
        }
        Ok((0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum::<f64>())
            .collect())
    }

    /// Per-column means.
    #[must_use]
    pub fn column_means(&self) -> Vec<f64> {
        (0..self.cols)
            .map(|c| self.column(c).iter().sum::<f64>() / self.rows as f64)
            .collect()
    }

    /// Per-column population standard deviations.
    #[must_use]
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        (0..self.cols)
            .map(|c| {
                let var = self
                    .column(c)
                    .iter()
                    .map(|v| (v - means[c]).powi(2))
                    .sum::<f64>()
                    / self.rows as f64;
                var.sqrt()
            })
            .collect()
    }

    /// Covariance matrix of the columns (population covariance of the
    /// mean-centred data).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::DimensionMismatch`] for an empty matrix.
    pub fn covariance(&self) -> Result<Matrix, AppError> {
        if self.rows == 0 {
            return Err(AppError::DimensionMismatch {
                reason: "covariance of an empty matrix".to_owned(),
            });
        }
        let means = self.column_means();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += (self.get(r, i) - means[i]) * (self.get(r, j) - means[j]);
                }
                let value = acc / self.rows as f64;
                cov.set(i, j, value);
                cov.set(j, i, value);
            }
        }
        Ok(cov)
    }

    /// Selects a subset of rows (by index) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (new_row, &old_row) in indices.iter().enumerate() {
            for c in 0..self.cols {
                out.set(new_row, c, self.get(old_row, c));
            }
        }
        out
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// `true` when every element differs from `other` by at most `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn set_and_mutate() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        m.as_mut_slice()[0] = 7.0;
        assert_eq!(m.get(0, 0), 7.0);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn get_out_of_range_panics() {
        let _ = sample().get(2, 0);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample(); // 2x3
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let product = a.matmul(&b).unwrap(); // 2x2
        assert_eq!(product.get(0, 0), 4.0);
        assert_eq!(product.get(0, 1), 5.0);
        assert_eq!(product.get(1, 0), 10.0);
        assert_eq!(product.get(1, 1), 11.0);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = sample();
        let id = Matrix::identity(3);
        assert!(a.matmul(&id).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sample();
        let v = vec![1.0, 2.0, 3.0];
        let result = a.matvec(&v).unwrap();
        assert_eq!(result, vec![14.0, 32.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn column_statistics() {
        let m = sample();
        assert_eq!(m.column_means(), vec![2.5, 3.5, 4.5]);
        let stds = m.column_stds();
        for s in stds {
            assert!((s - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let cov = m.covariance().unwrap();
        // var(x) = 2/3, var(y) = 8/3, cov = 4/3.
        assert!((cov.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 8.0 / 3.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 4.0 / 3.0).abs() < 1e-12);
        assert!((cov.get(1, 0) - cov.get(0, 1)).abs() < 1e-15);
    }

    #[test]
    fn select_rows_and_norm() {
        let m = sample();
        let sub = m.select_rows(&[1]);
        assert_eq!(sub.rows(), 1);
        assert_eq!(sub.row(0), vec![4.0, 5.0, 6.0]);
        let norm = Matrix::from_rows(&[vec![3.0, 4.0]])
            .unwrap()
            .frobenius_norm();
        assert!((norm - 5.0).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = sample();
        let mut b = sample();
        b.set(0, 0, 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        assert!(!a.approx_eq(&Matrix::zeros(2, 2), 1.0));
    }
}
