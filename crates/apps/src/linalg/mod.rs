//! Minimal dense linear-algebra substrate for the benchmark algorithms.
//!
//! Only what Elasticnet, PCA and KNN need: a row-major dense [`Matrix`] with
//! basic arithmetic, column statistics, and a Jacobi eigen-decomposition for
//! symmetric matrices ([`eigen`]).

pub mod eigen;
pub mod matrix;

pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use matrix::Matrix;
