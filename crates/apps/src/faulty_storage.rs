//! Passing application data through a faulty, protected memory.
//!
//! The paper's application study (§5.2) stores each benchmark's training data
//! in a functional model of a 16 KB memory, injects bit-flips according to a
//! random fault map, and trains on whatever comes back out. [`FaultyStore`]
//! implements that round trip for a whole feature matrix: every value is
//! quantised to the storage fixed-point format, written through the selected
//! protection scheme into a (faulty) memory row, read back and de-quantised.
//!
//! Datasets larger than one memory bank wrap around: word `k` lands in row
//! `k mod rows`, modelling a tiled/banked layout where the same physical rows
//! (and therefore the same faulty cells) are reused across tiles.

use crate::error::AppError;
use crate::fixedpoint::FixedPointFormat;
use crate::linalg::Matrix;
use faultmit_core::MitigationScheme;
use faultmit_memsim::FaultMap;

/// Stores values through a protection scheme backed by a faulty memory.
#[derive(Debug, Clone)]
pub struct FaultyStore<'a, S: MitigationScheme> {
    scheme: &'a S,
    faults: &'a FaultMap,
    format: FixedPointFormat,
}

impl<'a, S: MitigationScheme> FaultyStore<'a, S> {
    /// Creates a store for the given scheme, fault map and fixed-point
    /// format.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] when the fixed-point word width
    /// does not match the scheme's word width or the fault-map geometry.
    pub fn new(
        scheme: &'a S,
        faults: &'a FaultMap,
        format: FixedPointFormat,
    ) -> Result<Self, AppError> {
        if format.word_bits() != scheme.word_bits() {
            return Err(AppError::InvalidParameter {
                reason: format!(
                    "fixed-point width {} does not match scheme word width {}",
                    format.word_bits(),
                    scheme.word_bits()
                ),
            });
        }
        if faults.config().word_bits() != scheme.word_bits() {
            return Err(AppError::InvalidParameter {
                reason: format!(
                    "fault map word width {} does not match scheme word width {}",
                    faults.config().word_bits(),
                    scheme.word_bits()
                ),
            });
        }
        Ok(Self {
            scheme,
            faults,
            format,
        })
    }

    /// The fixed-point storage format.
    #[must_use]
    pub fn format(&self) -> FixedPointFormat {
        self.format
    }

    /// Stores a single value at logical word index `index` and reads it back
    /// through the faulty memory.
    #[must_use]
    pub fn round_trip_value(&self, index: usize, value: f64) -> f64 {
        let row = index % self.faults.config().rows();
        let written = self.format.encode(value);
        let observed = self.scheme.observe(self.faults, row, written);
        self.format.decode(observed.value)
    }

    /// Stores a slice of values sequentially and reads them back.
    #[must_use]
    pub fn round_trip_values(&self, values: &[f64]) -> Vec<f64> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| self.round_trip_value(i, v))
            .collect()
    }

    /// Stores a whole matrix (row-major) and reads it back.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed store; the `Result` mirrors matrix
    /// construction.
    pub fn round_trip_matrix(&self, matrix: &Matrix) -> Result<Matrix, AppError> {
        let corrupted = self.round_trip_values(matrix.as_slice());
        Matrix::from_vec(matrix.rows(), matrix.cols(), corrupted)
    }

    /// Number of memory words the given matrix occupies (before wrapping).
    #[must_use]
    pub fn words_required(&self, matrix: &Matrix) -> usize {
        matrix.rows() * matrix.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_core::Scheme;
    use faultmit_memsim::{Fault, MemoryConfig};

    fn fault_map(faults: &[Fault]) -> FaultMap {
        let config = MemoryConfig::new(64, 32).unwrap();
        FaultMap::from_faults(config, faults.iter().copied()).unwrap()
    }

    #[test]
    fn fault_free_round_trip_only_quantises() {
        let faults = fault_map(&[]);
        let scheme = Scheme::unprotected32();
        let store = FaultyStore::new(&scheme, &faults, FixedPointFormat::q15_16()).unwrap();
        let values = vec![1.5, -2.25, 1000.0, -0.0001];
        let out = store.round_trip_values(&values);
        for (a, b) in values.iter().zip(&out) {
            assert!((a - b).abs() <= store.format().resolution());
        }
    }

    #[test]
    fn msb_fault_devastates_unprotected_value() {
        let faults = fault_map(&[Fault::bit_flip(3, 31)]);
        let scheme = Scheme::unprotected32();
        let store = FaultyStore::new(&scheme, &faults, FixedPointFormat::q15_16()).unwrap();
        // Word index 3 maps to row 3.
        let corrupted = store.round_trip_value(3, 1.0);
        assert!(
            (corrupted - 1.0).abs() > 10_000.0,
            "corrupted = {corrupted}"
        );
        // Any other index is untouched.
        assert!((store.round_trip_value(4, 1.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn bit_shuffling_limits_the_damage() {
        let faults = fault_map(&[Fault::bit_flip(3, 31)]);
        let scheme = Scheme::shuffle32(5).unwrap();
        let store = FaultyStore::new(&scheme, &faults, FixedPointFormat::q15_16()).unwrap();
        let corrupted = store.round_trip_value(3, 1.0);
        // Worst-case error is one LSB of the fixed-point format.
        assert!((corrupted - 1.0).abs() <= store.format().resolution() + 1e-12);
    }

    #[test]
    fn secded_round_trip_is_exact_for_single_faults() {
        let faults = fault_map(&[Fault::bit_flip(0, 31), Fault::bit_flip(1, 0)]);
        let scheme = Scheme::secded32();
        let store = FaultyStore::new(&scheme, &faults, FixedPointFormat::q15_16()).unwrap();
        for index in 0..4 {
            let v = store.round_trip_value(index, -3.75);
            assert!((v + 3.75).abs() <= store.format().resolution());
        }
    }

    #[test]
    fn matrix_round_trip_wraps_across_rows() {
        // 64-row memory, matrix with 130 entries: indices 64 and 128 also hit
        // row 0's fault.
        let faults = fault_map(&[Fault::bit_flip(0, 31)]);
        let scheme = Scheme::unprotected32();
        let store = FaultyStore::new(&scheme, &faults, FixedPointFormat::q15_16()).unwrap();
        let matrix = Matrix::from_vec(13, 10, vec![1.0; 130]).unwrap();
        let corrupted = store.round_trip_matrix(&matrix).unwrap();
        let damaged: usize = corrupted
            .as_slice()
            .iter()
            .filter(|&&v| (v - 1.0).abs() > 1.0)
            .count();
        assert_eq!(damaged, 3, "indices 0, 64 and 128 must be corrupted");
        assert_eq!(store.words_required(&matrix), 130);
    }

    #[test]
    fn mismatched_configurations_are_rejected() {
        let faults = fault_map(&[]);
        let scheme = Scheme::unprotected32();
        // 16-bit fixed point with a 32-bit scheme.
        let bad_format = FixedPointFormat::new(16, 8).unwrap();
        assert!(FaultyStore::new(&scheme, &faults, bad_format).is_err());
        // Fault map with a different word width.
        let narrow_map = FaultMap::new(MemoryConfig::new(64, 16).unwrap());
        assert!(FaultyStore::new(&scheme, &narrow_map, FixedPointFormat::q15_16()).is_err());
    }
}
