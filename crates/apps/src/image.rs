//! Materialisation of data images, including the fixed-point application
//! matrices.
//!
//! `faultmit-memsim`'s [`ImageSpec`] names every image a data-aware
//! campaign can evaluate, but only the self-contained sources (zeros, ones,
//! uniform-random, sparse) materialise there. The application images —
//! benchmark feature matrices stored the way the paper stores them, as
//! 2's-complement fixed-point words ([`FixedPointFormat`]) — need the
//! synthetic dataset generators of [`crate::datasets`], so this module is
//! the one-stop resolver: [`image_words`] turns *any* [`ImageSpec`] into
//! the dense per-row word vector the data-aware MSE engine consumes.

use crate::datasets::{HarDataset, MadelonDataset, WineQualityDataset};
use crate::error::AppError;
use crate::fixedpoint::FixedPointFormat;
use faultmit_memsim::image::{AppImage, DataImage, ImageSpec, WordImage};
use faultmit_memsim::MemoryConfig;

/// The fixed-point storage format for a memory of the given word width: the
/// paper's Q15.16 for 32-bit words, and the analogous half-fractional split
/// elsewhere.
///
/// # Errors
///
/// Returns [`AppError::InvalidParameter`] for word widths below 2 bits,
/// which cannot carry a signed fixed-point value.
pub fn storage_format(word_bits: usize) -> Result<FixedPointFormat, AppError> {
    if word_bits == 32 {
        Ok(FixedPointFormat::q15_16())
    } else {
        FixedPointFormat::new(word_bits, word_bits / 2)
    }
}

/// Quantises an application image's feature matrix into memory words, in
/// row-major dataset order, using the paper's storage format for the given
/// word width.
///
/// The generators are deterministic (fixed paper-scale seeds), so the same
/// `(app, word_bits)` always yields the same words — a requirement for the
/// campaign pipeline's bit-identical sharding.
///
/// # Errors
///
/// Returns [`AppError::InvalidParameter`] for word widths below 2 bits.
pub fn app_matrix_words(app: AppImage, word_bits: usize) -> Result<Vec<u64>, AppError> {
    let format = storage_format(word_bits)?;
    let features: Vec<f64> = match app {
        AppImage::Wine => WineQualityDataset::paper_scale()
            .generate()
            .features
            .as_slice()
            .to_vec(),
        AppImage::Madelon => MadelonDataset::paper_scale()
            .generate()
            .features
            .as_slice()
            .to_vec(),
        AppImage::Har => HarDataset::paper_scale()
            .generate()
            .features
            .as_slice()
            .to_vec(),
    };
    Ok(format.encode_all(&features))
}

/// Materialises any [`ImageSpec`] — including the application matrices —
/// into one stored word per memory row.
///
/// Self-contained images delegate to
/// [`ImageSpec::try_materialise`]; application images quantise their
/// dataset through [`app_matrix_words`] and cycle it over the rows (the
/// matrices hold more values than the paper's 16 KB memory has rows, so in
/// the common case no cycling occurs).
///
/// # Errors
///
/// Propagates quantisation-format and materialisation errors.
pub fn image_words(spec: ImageSpec, config: MemoryConfig) -> Result<Vec<u64>, AppError> {
    match spec {
        ImageSpec::App(app) => {
            let words = app_matrix_words(app, config.word_bits())?;
            let image = WordImage::new(app.name(), words)?;
            Ok(image.materialise(config.rows()))
        }
        other => Ok(other.try_materialise(config)?.materialise(config.rows())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MemoryConfig {
        MemoryConfig::paper_16kb()
    }

    #[test]
    fn storage_format_matches_the_paper_for_32_bit_words() {
        let format = storage_format(32).unwrap();
        assert_eq!(format, FixedPointFormat::q15_16());
        let format = storage_format(16).unwrap();
        assert_eq!(format.word_bits(), 16);
        assert_eq!(format.frac_bits(), 8);
        assert!(storage_format(1).is_err());
    }

    #[test]
    fn app_images_are_deterministic_and_word_sized() {
        for app in AppImage::ALL {
            let words = app_matrix_words(app, 32).unwrap();
            assert!(!words.is_empty(), "{}", app.name());
            assert!(
                words.iter().all(|&w| w >> 32 == 0),
                "{}: words exceed 32 bits",
                app.name()
            );
            assert_eq!(words, app_matrix_words(app, 32).unwrap(), "{}", app.name());
            // Real feature data is not degenerate: most words are non-zero
            // and many have the sign/high bits clear — the low-significance
            // structure stuck-at campaigns are sensitive to.
            let non_zero = words.iter().filter(|&&w| w != 0).count();
            assert!(
                non_zero * 2 > words.len(),
                "{}: image is mostly zeros",
                app.name()
            );
        }
    }

    #[test]
    fn image_words_covers_every_spec_variant() {
        let specs = [
            ImageSpec::Zeros,
            ImageSpec::Ones,
            ImageSpec::UniformRandom { seed: 5 },
            ImageSpec::Sparse { seed: 5 },
            ImageSpec::App(AppImage::Wine),
            ImageSpec::App(AppImage::Madelon),
            ImageSpec::App(AppImage::Har),
        ];
        for spec in specs {
            let words = image_words(spec, config()).unwrap();
            assert_eq!(words.len(), config().rows(), "{spec}");
            assert_eq!(words, image_words(spec, config()).unwrap(), "{spec}");
        }
        assert!(image_words(ImageSpec::Zeros, config())
            .unwrap()
            .iter()
            .all(|&w| w == 0));
    }

    #[test]
    fn quantised_features_round_trip_through_the_storage_format() {
        // Spot-check that the stored words decode back to values on the
        // feature scale (the Q15.16 range easily covers them).
        let format = storage_format(32).unwrap();
        let words = app_matrix_words(AppImage::Wine, 32).unwrap();
        let decoded: Vec<f64> = words.iter().take(100).map(|&w| format.decode(w)).collect();
        assert!(decoded.iter().any(|&v| v != 0.0));
        assert!(decoded.iter().all(|&v| v.abs() < 1000.0));
    }
}
