//! Synthetic Madelon-like dataset.
//!
//! Stands in for the NIPS-2003 "Madelon" feature-selection dataset \[19\] used
//! by the paper's PCA benchmark. Madelon's structure is: a handful of
//! *informative* features placed on the vertices of a hypercube (defining a
//! two-class XOR-like problem), a set of *redundant* features that are linear
//! combinations of the informative ones, and a large number of useless
//! *probe* (noise) features. What matters for the PCA benchmark is exactly
//! this low-rank-signal-plus-noise structure: the explained variance of the
//! leading components collapses when the stored features are corrupted at
//! high-significance bit positions.

use super::ClassificationDataset;
use crate::linalg::Matrix;
use faultmit_memsim::stats::sample_standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the synthetic Madelon-like dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MadelonDataset {
    samples: usize,
    informative: usize,
    redundant: usize,
    noise: usize,
    seed: u64,
}

impl MadelonDataset {
    /// Creates a generator with explicit feature structure.
    #[must_use]
    pub fn new(
        samples: usize,
        informative: usize,
        redundant: usize,
        noise: usize,
        seed: u64,
    ) -> Self {
        Self {
            samples,
            informative: informative.max(1),
            redundant,
            noise,
            seed,
        }
    }

    /// The original Madelon geometry: 2000 samples, 5 informative features,
    /// 15 redundant, 480 probes (500 features total).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self::new(2000, 5, 15, 480, 0x4D41_4445)
    }

    /// Number of samples this generator produces.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Total feature count (informative + redundant + noise).
    #[must_use]
    pub fn feature_count(&self) -> usize {
        self.informative + self.redundant + self.noise
    }

    /// Number of informative features.
    #[must_use]
    pub fn informative(&self) -> usize {
        self.informative
    }

    /// Generates the dataset.
    #[must_use]
    pub fn generate(&self) -> ClassificationDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let p = self.feature_count();
        let mut features = Matrix::zeros(self.samples, p);
        let mut labels = Vec::with_capacity(self.samples);

        // Mixing matrix for redundant features (fixed per dataset).
        let mixing: Vec<Vec<f64>> = (0..self.redundant)
            .map(|_| {
                (0..self.informative)
                    .map(|_| sample_standard_normal(&mut rng))
                    .collect()
            })
            .collect();

        for row in 0..self.samples {
            // Informative features: cluster centres at hypercube vertices
            // (scaled), plus within-cluster noise. The label is an XOR-style
            // function of the first two vertex coordinates, as in Madelon.
            let vertex: Vec<bool> = (0..self.informative).map(|_| rng.gen::<bool>()).collect();
            let informative: Vec<f64> = vertex
                .iter()
                .map(|&bit| {
                    let centre = if bit { 2.0 } else { -2.0 };
                    centre + 0.7 * sample_standard_normal(&mut rng)
                })
                .collect();
            let label = usize::from(vertex[0] ^ vertex[self.informative.min(2) - 1]);

            for (j, &value) in informative.iter().enumerate() {
                features.set(row, j, value);
            }
            for (r, weights) in mixing.iter().enumerate() {
                let value: f64 = weights
                    .iter()
                    .zip(&informative)
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    / (self.informative as f64).sqrt()
                    + 0.1 * sample_standard_normal(&mut rng);
                features.set(row, self.informative + r, value);
            }
            for n in 0..self.noise {
                features.set(
                    row,
                    self.informative + self.redundant + n,
                    sample_standard_normal(&mut rng),
                );
            }
            labels.push(label);
        }

        ClassificationDataset {
            features,
            labels,
            class_names: vec!["class -1".into(), "class +1".into()],
        }
    }
}

impl Default for MadelonDataset {
    /// A reduced default (200 samples, 5+15+60 features) suitable for
    /// Monte-Carlo loops while keeping the informative/redundant/probe
    /// structure.
    fn default() -> Self {
        Self::new(200, 5, 15, 60, 0x4D41_4445)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::Pca;
    use crate::preprocessing::Standardizer;

    #[test]
    fn geometry_matches_configuration() {
        let ds = MadelonDataset::default().generate();
        assert_eq!(ds.features.rows(), 200);
        assert_eq!(ds.features.cols(), 80);
        assert_eq!(ds.labels.len(), 200);
        assert_eq!(ds.class_count(), 2);
        assert_eq!(MadelonDataset::paper_scale().feature_count(), 500);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = MadelonDataset::new(40, 3, 4, 10, 7).generate();
        let b = MadelonDataset::new(40, 3, 4, 10, 7).generate();
        let c = MadelonDataset::new(40, 3, 4, 10, 8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let ds = MadelonDataset::default().generate();
        let ones = ds.labels.iter().filter(|&&l| l == 1).count();
        let fraction = ones as f64 / ds.labels.len() as f64;
        assert!((0.3..=0.7).contains(&fraction), "class balance {fraction}");
    }

    #[test]
    fn informative_block_carries_most_variance() {
        // The benchmark's premise: a few leading components explain a large
        // share of the variance because redundant features are linear
        // combinations of the informative ones.
        let ds = MadelonDataset::default().generate();
        let scaled = Standardizer::fit(&ds.features)
            .transform(&ds.features)
            .unwrap();
        let mut pca = Pca::new(5).unwrap();
        pca.fit(&scaled).unwrap();
        let explained = pca.total_explained_variance().unwrap();
        // 5 of 80 standardised features (6 %) explain far more than their
        // share because of the redundant block.
        assert!(explained > 0.2, "explained variance {explained}");
        assert!(explained < 0.95);
    }

    #[test]
    fn noise_features_have_unit_scale() {
        let ds = MadelonDataset::new(500, 5, 5, 20, 3).generate();
        let stds = ds.features.column_stds();
        for (j, &std) in stds.iter().enumerate().take(30).skip(10) {
            assert!((std - 1.0).abs() < 0.2, "noise feature {j} std {std}");
        }
    }

    #[test]
    fn informative_features_are_bimodal_with_wide_spread() {
        let ds = MadelonDataset::new(500, 5, 0, 0, 11).generate();
        let stds = ds.features.column_stds();
        for (j, &std) in stds.iter().enumerate().take(5) {
            // Cluster centres at ±2 dominate: std is well above the
            // within-cluster noise of 0.7.
            assert!(std > 1.5, "informative feature {j} std {std}");
        }
    }
}
