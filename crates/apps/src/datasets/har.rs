//! Synthetic human-activity-recognition (HAR) dataset.
//!
//! Stands in for the wearable-accelerometer dataset of Casale et al. \[20\]
//! used by the paper's KNN benchmark: windows of tri-axial accelerometer
//! readings summarised into per-window features, labelled with the activity
//! being performed. The generator produces per-activity signatures (mean
//! acceleration per axis, signal magnitude, and variability) with realistic
//! overlap between similar activities (standing vs. sitting) so that KNN
//! reaches a high-but-imperfect score that degrades when the stored feature
//! windows are corrupted.

use super::ClassificationDataset;
use crate::linalg::Matrix;
use faultmit_memsim::stats::sample_standard_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator for the synthetic activity-recognition dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarDataset {
    samples: usize,
    seed: u64,
}

/// The activities modelled, mirroring the classes of [20].
const ACTIVITIES: [&str; 5] = [
    "walking",
    "standing",
    "sitting",
    "going up/down stairs",
    "running",
];

/// Per-activity feature signatures: mean x/y/z acceleration (in g), signal
/// magnitude area, and within-window standard deviation.
const SIGNATURES: [[f64; 5]; 5] = [
    // walking: moderate dynamics
    [0.10, -0.95, 0.18, 1.15, 0.35],
    // standing: static, gravity on one axis
    [0.02, -1.00, 0.02, 1.01, 0.03],
    // sitting: static, gravity split between axes
    [0.45, -0.85, 0.10, 1.02, 0.04],
    // stairs: walking-like but stronger vertical component
    [0.15, -0.90, 0.35, 1.25, 0.45],
    // running: large dynamics
    [0.20, -0.80, 0.30, 1.70, 0.85],
];

/// Per-activity within-class noise scale (how much windows of the same
/// activity differ).
const NOISE_SCALES: [f64; 5] = [0.08, 0.02, 0.04, 0.10, 0.15];

impl HarDataset {
    /// Creates a generator with the given sample count and RNG seed.
    #[must_use]
    pub fn new(samples: usize, seed: u64) -> Self {
        Self { samples, seed }
    }

    /// A paper-scale dataset (about 1900 windows, comparable to one subject's
    /// recording in \[20\]).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self::new(1900, 0x4841_5221)
    }

    /// Number of samples this generator produces.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of features per window.
    #[must_use]
    pub fn feature_count(&self) -> usize {
        SIGNATURES[0].len()
    }

    /// Number of activity classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        ACTIVITIES.len()
    }

    /// Generates the dataset.
    #[must_use]
    pub fn generate(&self) -> ClassificationDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let p = self.feature_count();
        let mut features = Matrix::zeros(self.samples, p);
        let mut labels = Vec::with_capacity(self.samples);

        for row in 0..self.samples {
            // Activities appear in contiguous bouts, as in a real recording,
            // by cycling through them in blocks.
            let activity = (row / 8) % ACTIVITIES.len();
            let signature = &SIGNATURES[activity];
            let noise = NOISE_SCALES[activity];
            for (j, &centre) in signature.iter().enumerate() {
                let value = centre + noise * sample_standard_normal(&mut rng);
                features.set(row, j, value);
            }
            labels.push(activity);
        }

        ClassificationDataset {
            features,
            labels,
            class_names: ACTIVITIES.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

impl Default for HarDataset {
    /// A moderate-size default (400 windows) suitable for Monte-Carlo loops.
    fn default() -> Self {
        Self::new(400, 0x4841_5221)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnClassifier;
    use crate::preprocessing::{train_test_split, Standardizer};

    #[test]
    fn geometry_and_classes() {
        let ds = HarDataset::default().generate();
        assert_eq!(ds.features.rows(), 400);
        assert_eq!(ds.features.cols(), 5);
        assert_eq!(ds.class_count(), 5);
        assert_eq!(ds.class_names.len(), 5);
        assert_eq!(HarDataset::paper_scale().samples(), 1900);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = HarDataset::new(60, 5).generate();
        let b = HarDataset::new(60, 5).generate();
        let c = HarDataset::new(60, 6).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_activities_are_represented() {
        let ds = HarDataset::default().generate();
        for class in 0..5 {
            let count = ds.labels.iter().filter(|&&l| l == class).count();
            assert!(count > 40, "class {class} has only {count} samples");
        }
    }

    #[test]
    fn static_activities_have_low_variability_feature() {
        let ds = HarDataset::new(1000, 2).generate();
        // Feature 4 is the within-window standard deviation: much smaller for
        // standing (class 1) than for running (class 4).
        let standing: Vec<f64> = (0..ds.len())
            .filter(|&i| ds.labels[i] == 1)
            .map(|i| ds.features.get(i, 4))
            .collect();
        let running: Vec<f64> = (0..ds.len())
            .filter(|&i| ds.labels[i] == 4)
            .map(|i| ds.features.get(i, 4))
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&standing) < 0.2);
        assert!(mean(&running) > 0.5);
    }

    #[test]
    fn knn_reaches_high_but_imperfect_score_on_clean_data() {
        let ds = HarDataset::default().generate();
        let labels_f: Vec<f64> = ds.labels.iter().map(|&l| l as f64).collect();
        let split = train_test_split(&ds.features, &labels_f, 0.8).unwrap();
        let scaler = Standardizer::fit(&split.train_x);
        let train_x = scaler.transform(&split.train_x).unwrap();
        let test_x = scaler.transform(&split.test_x).unwrap();
        let train_y: Vec<usize> = split.train_y.iter().map(|&l| l as usize).collect();
        let test_y: Vec<usize> = split.test_y.iter().map(|&l| l as usize).collect();

        let mut knn = KnnClassifier::paper_default().unwrap();
        knn.fit(&train_x, &train_y).unwrap();
        let score = knn.score(&test_x, &test_y).unwrap();
        assert!(score > 0.85, "clean score = {score}");
    }
}
