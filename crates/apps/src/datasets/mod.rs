//! Synthetic datasets standing in for the paper's UCI benchmarks (Table 1).
//!
//! The paper evaluates on three UCI datasets (wine quality, Madelon, and a
//! wearable-accelerometer activity-recognition set). Redistribution of the
//! original data is not possible here, so each generator produces a synthetic
//! dataset with matching dimensionality, feature scales, label structure and
//! difficulty — which is what determines how sensitive the downstream model
//! is to corrupted training data. The substitution is documented in
//! DESIGN.md.

pub mod har;
pub mod madelon;
pub mod wine;

pub use har::HarDataset;
pub use madelon::MadelonDataset;
pub use wine::WineQualityDataset;

use crate::linalg::Matrix;

/// A dataset with continuous targets (regression).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionDataset {
    /// Feature matrix: one row per sample.
    pub features: Matrix,
    /// Continuous target per sample.
    pub targets: Vec<f64>,
    /// Human-readable feature names.
    pub feature_names: Vec<String>,
}

impl RegressionDataset {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// `true` when the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A dataset with discrete class labels (classification).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationDataset {
    /// Feature matrix: one row per sample.
    pub features: Matrix,
    /// Class label per sample.
    pub labels: Vec<usize>,
    /// Human-readable class names.
    pub class_names: Vec<String>,
}

impl ClassificationDataset {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// `true` when the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct classes present in the labels.
    #[must_use]
    pub fn class_count(&self) -> usize {
        let mut classes: Vec<usize> = self.labels.clone();
        classes.sort_unstable();
        classes.dedup();
        classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_dataset_accessors() {
        let ds = RegressionDataset {
            features: Matrix::zeros(3, 2),
            targets: vec![1.0, 2.0, 3.0],
            feature_names: vec!["a".into(), "b".into()],
        };
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
    }

    #[test]
    fn classification_dataset_class_count() {
        let ds = ClassificationDataset {
            features: Matrix::zeros(4, 2),
            labels: vec![0, 1, 1, 3],
            class_names: vec!["w".into(), "x".into(), "y".into(), "z".into()],
        };
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.class_count(), 3);
    }
}
