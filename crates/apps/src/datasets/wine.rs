//! Synthetic wine-quality regression dataset.
//!
//! Stands in for the UCI "Wine Quality" dataset \[18\] used by the paper's
//! Elasticnet benchmark: 11 physico-chemical features per sample and a
//! quality score in the 3–8 range. The generator reproduces the original's
//! feature scales and a plausible linear-plus-interaction relationship
//! between features and quality, so that an elastic-net fit reaches an R² in
//! the same regime as on the real data and degrades comparably when the
//! training features are corrupted.

use super::RegressionDataset;
use crate::linalg::Matrix;
use faultmit_memsim::stats::sample_standard_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator for the synthetic wine-quality dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WineQualityDataset {
    samples: usize,
    seed: u64,
}

/// Typical feature means of the UCI red-wine dataset (fixed acidity, volatile
/// acidity, citric acid, residual sugar, chlorides, free SO₂, total SO₂,
/// density, pH, sulphates, alcohol).
const FEATURE_MEANS: [f64; 11] = [
    8.32, 0.53, 0.27, 2.54, 0.087, 15.9, 46.5, 0.9967, 3.31, 0.66, 10.4,
];
/// Corresponding feature standard deviations.
const FEATURE_STDS: [f64; 11] = [
    1.74, 0.18, 0.19, 1.41, 0.047, 10.5, 32.9, 0.0019, 0.15, 0.17, 1.07,
];
/// Contribution of each (standardised) feature to the quality score, sign and
/// rough magnitude mirroring the published regression analyses of the dataset
/// (alcohol and sulphates help, volatile acidity hurts).
const QUALITY_WEIGHTS: [f64; 11] = [
    0.05, -0.45, 0.05, 0.02, -0.15, 0.05, -0.20, -0.10, -0.05, 0.30, 0.55,
];

impl WineQualityDataset {
    /// Creates a generator with the given sample count and RNG seed.
    #[must_use]
    pub fn new(samples: usize, seed: u64) -> Self {
        Self { samples, seed }
    }

    /// The paper-scale dataset: 1599 samples (the UCI red-wine subset).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self::new(1599, 0x57494E45)
    }

    /// Number of samples this generator produces.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of features (11, as in the UCI dataset).
    #[must_use]
    pub fn feature_count(&self) -> usize {
        FEATURE_MEANS.len()
    }

    /// Generates the dataset.
    #[must_use]
    pub fn generate(&self) -> RegressionDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let p = self.feature_count();
        let mut features = Matrix::zeros(self.samples, p);
        let mut targets = Vec::with_capacity(self.samples);

        for row in 0..self.samples {
            // Standardised latent features with mild correlation through a
            // shared factor (grape ripeness drives sugar, alcohol and acidity).
            let shared = sample_standard_normal(&mut rng);
            let mut z = [0.0f64; 11];
            for (j, z_j) in z.iter_mut().enumerate() {
                let own = sample_standard_normal(&mut rng);
                let mix = match j {
                    3 | 10 => 0.5, // residual sugar, alcohol follow ripeness
                    0 | 1 => -0.3, // acidity anti-correlates
                    _ => 0.1,
                };
                *z_j = mix * shared + (1.0 - mix.abs()) * own;
            }
            // Quality: linear part + one interaction + noise, mapped to 3..8.
            let linear: f64 = z.iter().zip(&QUALITY_WEIGHTS).map(|(a, w)| a * w).sum();
            let interaction = 0.1 * z[10] * z[9]; // alcohol × sulphates
            let noise = 0.35 * sample_standard_normal(&mut rng);
            let quality = (5.6 + 0.8 * (linear + interaction) + noise).clamp(3.0, 8.0);

            for (j, &z_j) in z.iter().enumerate() {
                features.set(row, j, FEATURE_MEANS[j] + FEATURE_STDS[j] * z_j);
            }
            targets.push(quality);
        }

        RegressionDataset {
            features,
            targets,
            feature_names: vec![
                "fixed acidity".into(),
                "volatile acidity".into(),
                "citric acid".into(),
                "residual sugar".into(),
                "chlorides".into(),
                "free sulfur dioxide".into(),
                "total sulfur dioxide".into(),
                "density".into(),
                "pH".into(),
                "sulphates".into(),
                "alcohol".into(),
            ],
        }
    }
}

impl Default for WineQualityDataset {
    /// A moderate-size default (400 samples) suitable for Monte-Carlo loops.
    fn default() -> Self {
        Self::new(400, 0x57494E45)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elasticnet::ElasticNet;
    use crate::preprocessing::{train_test_split, Standardizer};

    #[test]
    fn geometry_matches_uci_wine() {
        let ds = WineQualityDataset::default().generate();
        assert_eq!(ds.features.cols(), 11);
        assert_eq!(ds.features.rows(), 400);
        assert_eq!(ds.targets.len(), 400);
        assert_eq!(ds.feature_names.len(), 11);
        assert_eq!(WineQualityDataset::paper_scale().samples(), 1599);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WineQualityDataset::new(50, 1).generate();
        let b = WineQualityDataset::new(50, 1).generate();
        let c = WineQualityDataset::new(50, 2).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn feature_scales_match_the_uci_statistics() {
        let ds = WineQualityDataset::new(2000, 3).generate();
        let means = ds.features.column_means();
        let stds = ds.features.column_stds();
        for j in 0..11 {
            assert!(
                (means[j] - FEATURE_MEANS[j]).abs()
                    < 3.0 * FEATURE_STDS[j] / (2000f64).sqrt() * 4.0
                        + 0.05 * FEATURE_MEANS[j].abs(),
                "feature {j}: mean {} vs expected {}",
                means[j],
                FEATURE_MEANS[j]
            );
            assert!(stds[j] > 0.0);
        }
    }

    #[test]
    fn quality_scores_stay_in_wine_range() {
        let ds = WineQualityDataset::new(500, 9).generate();
        for &t in &ds.targets {
            assert!((3.0..=8.0).contains(&t));
        }
        // The targets are not constant.
        let mean = ds.targets.iter().sum::<f64>() / ds.targets.len() as f64;
        let var =
            ds.targets.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / ds.targets.len() as f64;
        assert!(var > 0.05, "target variance {var}");
    }

    #[test]
    fn elasticnet_reaches_reasonable_r2_on_clean_data() {
        // Sanity of the benchmark itself: the learning problem must be
        // learnable (R² well above 0) but not trivial (R² below 1).
        let ds = WineQualityDataset::default().generate();
        let split = train_test_split(&ds.features, &ds.targets, 0.8).unwrap();
        let scaler = Standardizer::fit(&split.train_x);
        let train_x = scaler.transform(&split.train_x).unwrap();
        let test_x = scaler.transform(&split.test_x).unwrap();
        let mut model = ElasticNet::paper_default().unwrap();
        model.fit(&train_x, &split.train_y).unwrap();
        let r2 = model.score(&test_x, &split.test_y).unwrap();
        assert!(r2 > 0.4, "clean R² = {r2}");
        assert!(r2 < 0.99, "clean R² = {r2}");
    }
}
