//! Fixed-point quantisation of benchmark data.
//!
//! The paper stores the benchmarks' training data as 32-bit 2's-complement
//! integers in the faulty memory; the error-magnitude analysis (Fig. 4,
//! Eq. (6)) is phrased in terms of that representation. [`FixedPointFormat`]
//! converts between `f64` feature values and the signed Q-format words that
//! are written to (and corrupted by) the memory.

use crate::error::AppError;

/// A signed fixed-point format with `word_bits` total bits, of which
/// `frac_bits` are fractional (Q notation: `Q(word_bits-frac_bits-1).frac_bits`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedPointFormat {
    word_bits: usize,
    frac_bits: usize,
}

impl FixedPointFormat {
    /// Creates a format with the given total and fractional bit counts.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] when `word_bits` is not in
    /// `2..=64` or `frac_bits ≥ word_bits`.
    pub fn new(word_bits: usize, frac_bits: usize) -> Result<Self, AppError> {
        if !(2..=64).contains(&word_bits) {
            return Err(AppError::InvalidParameter {
                reason: format!("word width must be in 2..=64, got {word_bits}"),
            });
        }
        if frac_bits >= word_bits {
            return Err(AppError::InvalidParameter {
                reason: format!(
                    "fractional bits ({frac_bits}) must be less than the word width ({word_bits})"
                ),
            });
        }
        Ok(Self {
            word_bits,
            frac_bits,
        })
    }

    /// The paper's storage format: 32-bit words with 16 fractional bits
    /// (Q15.16), giving a ±32768 range with ~1.5e-5 resolution — ample for
    /// standardised features.
    #[must_use]
    pub fn q15_16() -> Self {
        Self {
            word_bits: 32,
            frac_bits: 16,
        }
    }

    /// Total word width in bits.
    #[must_use]
    pub fn word_bits(&self) -> usize {
        self.word_bits
    }

    /// Number of fractional bits.
    #[must_use]
    pub fn frac_bits(&self) -> usize {
        self.frac_bits
    }

    /// Smallest representable increment.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        2.0_f64.powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        let max_raw = (1i64 << (self.word_bits - 1)) - 1;
        max_raw as f64 * self.resolution()
    }

    /// Most negative representable value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        let min_raw = -(1i64 << (self.word_bits - 1));
        min_raw as f64 * self.resolution()
    }

    fn word_mask(&self) -> u64 {
        if self.word_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.word_bits) - 1
        }
    }

    /// Quantises a real value to its memory word (2's complement in the low
    /// `word_bits` bits). Values outside the representable range saturate.
    #[must_use]
    pub fn encode(&self, value: f64) -> u64 {
        let clamped = value.clamp(self.min_value(), self.max_value());
        let scaled = (clamped / self.resolution()).round() as i64;
        (scaled as u64) & self.word_mask()
    }

    /// Reconstructs the real value from a memory word.
    #[must_use]
    pub fn decode(&self, word: u64) -> f64 {
        let word = word & self.word_mask();
        let sign_bit = 1u64 << (self.word_bits - 1);
        let signed = if word & sign_bit != 0 {
            word as i64 - (1i64 << self.word_bits)
        } else {
            word as i64
        };
        signed as f64 * self.resolution()
    }

    /// Encodes a slice of values.
    #[must_use]
    pub fn encode_all(&self, values: &[f64]) -> Vec<u64> {
        values.iter().map(|&v| self.encode(v)).collect()
    }

    /// Decodes a slice of words.
    #[must_use]
    pub fn decode_all(&self, words: &[u64]) -> Vec<f64> {
        words.iter().map(|&w| self.decode(w)).collect()
    }
}

impl Default for FixedPointFormat {
    /// Defaults to the paper's Q15.16 storage format.
    fn default() -> Self {
        Self::q15_16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q15_16_geometry() {
        let fmt = FixedPointFormat::q15_16();
        assert_eq!(fmt.word_bits(), 32);
        assert_eq!(fmt.frac_bits(), 16);
        assert!((fmt.resolution() - 1.0 / 65536.0).abs() < 1e-15);
        assert!(fmt.max_value() > 32767.0);
        assert!(fmt.min_value() < -32767.0);
    }

    #[test]
    fn invalid_formats_are_rejected() {
        assert!(FixedPointFormat::new(1, 0).is_err());
        assert!(FixedPointFormat::new(65, 0).is_err());
        assert!(FixedPointFormat::new(16, 16).is_err());
        assert!(FixedPointFormat::new(16, 15).is_ok());
    }

    #[test]
    fn round_trip_is_within_half_lsb() {
        let fmt = FixedPointFormat::q15_16();
        for &value in &[0.0, 1.0, -1.0, 3.25159, -2.41828, 1000.5, -999.25, 0.00002] {
            let decoded = fmt.decode(fmt.encode(value));
            assert!(
                (decoded - value).abs() <= fmt.resolution() / 2.0 + 1e-12,
                "value {value} decoded as {decoded}"
            );
        }
    }

    #[test]
    fn negative_values_use_twos_complement() {
        let fmt = FixedPointFormat::q15_16();
        let word = fmt.encode(-1.0);
        // -1.0 in Q15.16 is -65536 → 0xFFFF_0000 in 2's complement.
        assert_eq!(word, 0xFFFF_0000);
        assert_eq!(fmt.decode(word), -1.0);
        // The sign bit is the MSB: flipping it produces a huge error, which is
        // exactly why significance matters.
        let corrupted = word ^ (1 << 31);
        assert!((fmt.decode(corrupted) - fmt.decode(word)).abs() > 30_000.0);
    }

    #[test]
    fn lsb_corruption_is_negligible() {
        let fmt = FixedPointFormat::q15_16();
        let word = fmt.encode(5.25);
        let corrupted = word ^ 1;
        assert!((fmt.decode(corrupted) - 5.25).abs() <= fmt.resolution() + 1e-12);
    }

    #[test]
    fn out_of_range_values_saturate() {
        let fmt = FixedPointFormat::new(8, 4).unwrap(); // range ±8
        assert_eq!(fmt.decode(fmt.encode(100.0)), fmt.max_value());
        assert_eq!(fmt.decode(fmt.encode(-100.0)), fmt.min_value());
    }

    #[test]
    fn bulk_encode_decode() {
        let fmt = FixedPointFormat::q15_16();
        let values = vec![0.5, -0.5, 2.0];
        let words = fmt.encode_all(&values);
        let decoded = fmt.decode_all(&words);
        for (a, b) in values.iter().zip(&decoded) {
            assert!((a - b).abs() < fmt.resolution());
        }
    }

    #[test]
    fn encode_masks_to_word_width() {
        let fmt = FixedPointFormat::new(16, 8).unwrap();
        let word = fmt.encode(-3.5);
        assert_eq!(word >> 16, 0, "encoded word must fit the word width");
    }

    #[test]
    fn default_is_q15_16() {
        assert_eq!(FixedPointFormat::default(), FixedPointFormat::q15_16());
    }
}
