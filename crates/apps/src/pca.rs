//! Principal component analysis (PCA).
//!
//! The paper's dimensionality-reduction benchmark (Table 1): PCA on a
//! Madelon-like dataset, with *explained variance* as the quality metric —
//! how much of the data's total variance the retained components capture.

use crate::error::AppError;
use crate::linalg::{jacobi_eigen, Matrix};

/// PCA fitted via the eigen-decomposition of the covariance matrix.
///
/// # Example
///
/// ```
/// use faultmit_apps::{Matrix, Pca};
///
/// # fn main() -> Result<(), faultmit_apps::AppError> {
/// // Points along the line y = x: one component explains everything.
/// let x = Matrix::from_rows(&[
///     vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0], vec![4.0, 4.0],
/// ])?;
/// let mut pca = Pca::new(1)?;
/// pca.fit(&x)?;
/// assert!(pca.explained_variance_ratio()?[0] > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    components: usize,
    max_sweeps: usize,
    /// Column means of the training data.
    means: Option<Vec<f64>>,
    /// Principal axes: one row per retained component.
    axes: Option<Matrix>,
    /// Variance along each retained component.
    component_variances: Option<Vec<f64>>,
    /// Total variance of the training data.
    total_variance: f64,
}

impl Pca {
    /// Creates a PCA retaining `components` principal components.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] when `components` is zero.
    pub fn new(components: usize) -> Result<Self, AppError> {
        if components == 0 {
            return Err(AppError::InvalidParameter {
                reason: "PCA needs at least one component".to_owned(),
            });
        }
        Ok(Self {
            components,
            max_sweeps: 200,
            means: None,
            axes: None,
            component_variances: None,
            total_variance: 0.0,
        })
    }

    /// Number of retained components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Fits the PCA to the rows of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] when more components are
    /// requested than features, or propagates eigen-decomposition errors.
    pub fn fit(&mut self, x: &Matrix) -> Result<(), AppError> {
        if self.components > x.cols() {
            return Err(AppError::InvalidParameter {
                reason: format!(
                    "cannot retain {} components from {} features",
                    self.components,
                    x.cols()
                ),
            });
        }
        let covariance = x.covariance()?;
        let eigen = jacobi_eigen(&covariance, self.max_sweeps)?;
        let total_variance: f64 = eigen.values.iter().map(|v| v.max(0.0)).sum();

        let mut axes = Matrix::zeros(self.components, x.cols());
        let mut variances = Vec::with_capacity(self.components);
        for k in 0..self.components {
            variances.push(eigen.values[k].max(0.0));
            for c in 0..x.cols() {
                axes.set(k, c, eigen.vectors.get(c, k));
            }
        }

        self.means = Some(x.column_means());
        self.axes = Some(axes);
        self.component_variances = Some(variances);
        self.total_variance = total_variance;
        Ok(())
    }

    /// Fraction of the total variance explained by each retained component.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::NotFitted`] before [`Pca::fit`].
    pub fn explained_variance_ratio(&self) -> Result<Vec<f64>, AppError> {
        let variances = self
            .component_variances
            .as_ref()
            .ok_or_else(|| AppError::NotFitted {
                model: "PCA".to_owned(),
            })?;
        if self.total_variance <= f64::EPSILON {
            return Ok(vec![0.0; variances.len()]);
        }
        Ok(variances.iter().map(|v| v / self.total_variance).collect())
    }

    /// Total fraction of variance explained by all retained components — the
    /// quality metric of the Fig. 7b benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::NotFitted`] before [`Pca::fit`].
    pub fn total_explained_variance(&self) -> Result<f64, AppError> {
        Ok(self.explained_variance_ratio()?.iter().sum())
    }

    /// Projects samples onto the retained principal components.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::NotFitted`] before fitting, or a dimension error
    /// when the feature count differs.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, AppError> {
        let (axes, means) = self.fitted()?;
        if x.cols() != means.len() {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "PCA was fitted on {} features but got {}",
                    means.len(),
                    x.cols()
                ),
            });
        }
        let mut centred = x.clone();
        for r in 0..x.rows() {
            for (c, &mean) in means.iter().enumerate().take(x.cols()) {
                centred.set(r, c, x.get(r, c) - mean);
            }
        }
        centred.matmul(&axes.transpose())
    }

    /// Reconstructs samples from their projection (inverse transform).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::NotFitted`] before fitting, or a dimension error
    /// when the component count differs.
    pub fn inverse_transform(&self, projected: &Matrix) -> Result<Matrix, AppError> {
        let (axes, means) = self.fitted()?;
        if projected.cols() != self.components {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "expected {} projected columns, got {}",
                    self.components,
                    projected.cols()
                ),
            });
        }
        let mut reconstructed = projected.matmul(axes)?;
        for r in 0..reconstructed.rows() {
            for (c, &mean) in means.iter().enumerate().take(reconstructed.cols()) {
                let value = reconstructed.get(r, c) + mean;
                reconstructed.set(r, c, value);
            }
        }
        Ok(reconstructed)
    }

    fn fitted(&self) -> Result<(&Matrix, &Vec<f64>), AppError> {
        match (&self.axes, &self.means) {
            (Some(axes), Some(means)) => Ok((axes, means)),
            _ => Err(AppError::NotFitted {
                model: "PCA".to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated_data() -> Matrix {
        // Strongly correlated 3-feature data: most variance along one axis.
        let mut rows = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 5.0;
            rows.push(vec![
                t,
                2.0 * t + 0.01 * (i % 3) as f64,
                -t + 0.02 * (i % 5) as f64,
            ]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn constructor_validates_component_count() {
        assert!(Pca::new(0).is_err());
        assert!(Pca::new(2).is_ok());
        assert_eq!(Pca::new(3).unwrap().components(), 3);
    }

    #[test]
    fn single_component_captures_a_line() {
        let x = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
        ])
        .unwrap();
        let mut pca = Pca::new(1).unwrap();
        pca.fit(&x).unwrap();
        let ratio = pca.explained_variance_ratio().unwrap();
        assert!(ratio[0] > 0.999);
        assert!((pca.total_explained_variance().unwrap() - ratio[0]).abs() < 1e-12);
    }

    #[test]
    fn explained_variance_sums_to_one_when_all_components_kept() {
        let x = correlated_data();
        let mut pca = Pca::new(3).unwrap();
        pca.fit(&x).unwrap();
        let total = pca.total_explained_variance().unwrap();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn first_component_dominates_for_correlated_data() {
        let x = correlated_data();
        let mut pca = Pca::new(2).unwrap();
        pca.fit(&x).unwrap();
        let ratio = pca.explained_variance_ratio().unwrap();
        assert!(ratio[0] > 0.95, "first component ratio = {}", ratio[0]);
        assert!(ratio[0] >= ratio[1]);
    }

    #[test]
    fn transform_and_inverse_reconstruct_low_rank_data() {
        let x = correlated_data();
        let mut pca = Pca::new(1).unwrap();
        pca.fit(&x).unwrap();
        let projected = pca.transform(&x).unwrap();
        assert_eq!(projected.cols(), 1);
        let reconstructed = pca.inverse_transform(&projected).unwrap();
        // The reconstruction error is small because the data is nearly rank-1.
        let mut err = 0.0;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                err += (x.get(r, c) - reconstructed.get(r, c)).powi(2);
            }
        }
        let rel = err / x.frobenius_norm().powi(2);
        assert!(rel < 0.01, "relative reconstruction error {rel}");
    }

    #[test]
    fn unfitted_model_rejects_queries() {
        let pca = Pca::new(2).unwrap();
        assert!(matches!(
            pca.explained_variance_ratio(),
            Err(AppError::NotFitted { .. })
        ));
        assert!(pca.transform(&Matrix::zeros(2, 2)).is_err());
        assert!(pca.inverse_transform(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn fit_rejects_too_many_components() {
        let x = Matrix::zeros(10, 3);
        let mut pca = Pca::new(4).unwrap();
        assert!(pca.fit(&x).is_err());
    }

    #[test]
    fn transform_rejects_wrong_feature_count() {
        let x = correlated_data();
        let mut pca = Pca::new(2).unwrap();
        pca.fit(&x).unwrap();
        assert!(pca.transform(&Matrix::zeros(5, 4)).is_err());
        assert!(pca.inverse_transform(&Matrix::zeros(5, 3)).is_err());
    }

    #[test]
    fn constant_data_explains_nothing() {
        let x = Matrix::from_rows(&vec![vec![1.0, 1.0]; 10]).unwrap();
        let mut pca = Pca::new(1).unwrap();
        pca.fit(&x).unwrap();
        assert_eq!(pca.explained_variance_ratio().unwrap()[0], 0.0);
    }
}
