//! Elasticnet regression (coordinate descent).
//!
//! The paper's regression benchmark (Table 1): an elastic-net model fitted on
//! the wine-quality dataset, evaluated with R². The combined L1/L2 penalty is
//!
//! ```text
//!   (1/2n)·‖y − Xw − b‖² + α·ρ·‖w‖₁ + (α/2)·(1 − ρ)·‖w‖²
//! ```
//!
//! minimised by cyclic coordinate descent with the standard soft-thresholding
//! update, matching scikit-learn's `ElasticNet` objective.

use crate::error::AppError;
use crate::linalg::Matrix;
use crate::metrics::r2_score;

/// Elastic-net linear regression trained by coordinate descent.
///
/// # Example
///
/// ```
/// use faultmit_apps::{ElasticNet, Matrix};
///
/// # fn main() -> Result<(), faultmit_apps::AppError> {
/// // y = 2·x0 + noise-free
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]])?;
/// let y = vec![0.0, 2.0, 4.0, 6.0];
/// let mut model = ElasticNet::new(1e-4, 0.5)?;
/// model.fit(&x, &y)?;
/// let prediction = model.predict(&x)?;
/// assert!((prediction[3] - 6.0).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticNet {
    alpha: f64,
    l1_ratio: f64,
    max_iterations: usize,
    tolerance: f64,
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl ElasticNet {
    /// Creates an elastic-net model with regularisation strength `alpha` and
    /// L1 mixing ratio `l1_ratio` (0 = ridge, 1 = lasso).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::InvalidParameter`] when `alpha` is negative or
    /// `l1_ratio` is outside `[0, 1]`.
    pub fn new(alpha: f64, l1_ratio: f64) -> Result<Self, AppError> {
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(AppError::InvalidParameter {
                reason: format!("alpha must be non-negative, got {alpha}"),
            });
        }
        if !(0.0..=1.0).contains(&l1_ratio) {
            return Err(AppError::InvalidParameter {
                reason: format!("l1_ratio must be in [0, 1], got {l1_ratio}"),
            });
        }
        Ok(Self {
            alpha,
            l1_ratio,
            max_iterations: 1000,
            tolerance: 1e-6,
            weights: None,
            intercept: 0.0,
        })
    }

    /// The configuration used for the wine-quality benchmark: light
    /// regularisation with an even L1/L2 mix.
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for signature uniformity.
    pub fn paper_default() -> Result<Self, AppError> {
        Self::new(0.01, 0.5)
    }

    /// Overrides the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Overrides the convergence tolerance on the maximum coefficient change.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.abs();
        self
    }

    /// Fitted coefficients (one per feature).
    #[must_use]
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Fitted intercept.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Fits the model to `(x, y)` by cyclic coordinate descent.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::DimensionMismatch`] when `x` and `y` disagree on
    /// the sample count or the data is empty.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), AppError> {
        let n = x.rows();
        let p = x.cols();
        if n == 0 || p == 0 || y.len() != n {
            return Err(AppError::DimensionMismatch {
                reason: format!("{n} samples x {p} features vs {} targets", y.len()),
            });
        }
        let n_f = n as f64;
        let y_mean = y.iter().sum::<f64>() / n_f;
        let x_means = x.column_means();

        // Centred copies keep the intercept out of the penalty.
        let mut xc = x.clone();
        for r in 0..n {
            for (c, &mean) in x_means.iter().enumerate() {
                xc.set(r, c, x.get(r, c) - mean);
            }
        }
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Per-feature squared norms (the coordinate-descent denominators).
        let col_sq: Vec<f64> = (0..p)
            .map(|c| xc.column(c).iter().map(|v| v * v).sum::<f64>() / n_f)
            .collect();

        let l1 = self.alpha * self.l1_ratio;
        let l2 = self.alpha * (1.0 - self.l1_ratio);

        let mut weights = vec![0.0; p];
        let mut residual = yc.clone(); // residual = yc − Xc·w (starts at yc)

        for _ in 0..self.max_iterations {
            let mut max_change = 0.0_f64;
            for j in 0..p {
                if col_sq[j] <= 1e-18 {
                    continue;
                }
                let old = weights[j];
                // rho = (1/n)·Σ x_ij·(residual_i + x_ij·w_j)
                let mut rho = 0.0;
                for (i, &res) in residual.iter().enumerate() {
                    rho += xc.get(i, j) * (res + xc.get(i, j) * old);
                }
                rho /= n_f;
                let new = soft_threshold(rho, l1) / (col_sq[j] + l2);
                if (new - old).abs() > 0.0 {
                    for (i, res) in residual.iter_mut().enumerate() {
                        *res += xc.get(i, j) * (old - new);
                    }
                }
                weights[j] = new;
                max_change = max_change.max((new - old).abs());
            }
            if max_change < self.tolerance {
                break;
            }
        }

        self.intercept = y_mean
            - weights
                .iter()
                .zip(&x_means)
                .map(|(w, m)| w * m)
                .sum::<f64>();
        self.weights = Some(weights);
        Ok(())
    }

    /// Predicts targets for new samples.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::NotFitted`] before [`ElasticNet::fit`], or
    /// [`AppError::DimensionMismatch`] when the feature count differs.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>, AppError> {
        let weights = self.weights.as_ref().ok_or_else(|| AppError::NotFitted {
            model: "ElasticNet".to_owned(),
        })?;
        if x.cols() != weights.len() {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "model has {} features but input has {}",
                    weights.len(),
                    x.cols()
                ),
            });
        }
        Ok(x.matvec(weights)?
            .into_iter()
            .map(|v| v + self.intercept)
            .collect())
    }

    /// Convenience: R² of the model on `(x, y)`.
    ///
    /// # Errors
    ///
    /// Propagates prediction and metric errors.
    pub fn score(&self, x: &Matrix, y: &[f64]) -> Result<f64, AppError> {
        r2_score(y, &self.predict(x)?)
    }
}

fn soft_threshold(value: f64, threshold: f64) -> f64 {
    if value > threshold {
        value - threshold
    } else if value < -threshold {
        value + threshold
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Matrix, Vec<f64>) {
        // y = 3·x0 − 2·x1 + 1
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let x0 = (i % 10) as f64 / 10.0;
            let x1 = (i % 7) as f64 / 7.0;
            rows.push(vec![x0, x1]);
            y.push(3.0 * x0 - 2.0 * x1 + 1.0);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn constructor_validates_hyperparameters() {
        assert!(ElasticNet::new(-1.0, 0.5).is_err());
        assert!(ElasticNet::new(f64::NAN, 0.5).is_err());
        assert!(ElasticNet::new(0.1, 1.5).is_err());
        assert!(ElasticNet::new(0.1, -0.1).is_err());
        assert!(ElasticNet::new(0.0, 0.0).is_ok());
        assert!(ElasticNet::paper_default().is_ok());
    }

    #[test]
    fn unregularised_fit_recovers_linear_relationship() {
        let (x, y) = linear_data();
        let mut model = ElasticNet::new(0.0, 0.5).unwrap();
        model.fit(&x, &y).unwrap();
        let w = model.weights().unwrap();
        assert!((w[0] - 3.0).abs() < 1e-3, "w0 = {}", w[0]);
        assert!((w[1] + 2.0).abs() < 1e-3, "w1 = {}", w[1]);
        assert!((model.intercept() - 1.0).abs() < 1e-3);
        assert!(model.score(&x, &y).unwrap() > 0.999);
    }

    #[test]
    fn light_regularisation_keeps_high_r2() {
        let (x, y) = linear_data();
        let mut model = ElasticNet::paper_default().unwrap();
        model.fit(&x, &y).unwrap();
        assert!(model.score(&x, &y).unwrap() > 0.95);
    }

    #[test]
    fn strong_l1_drives_weights_to_zero() {
        let (x, y) = linear_data();
        let mut model = ElasticNet::new(1e3, 1.0).unwrap();
        model.fit(&x, &y).unwrap();
        for &w in model.weights().unwrap() {
            assert_eq!(w, 0.0);
        }
        // Prediction degenerates to the mean → R² ≈ 0.
        assert!(model.score(&x, &y).unwrap().abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_but_does_not_sparsify() {
        let (x, y) = linear_data();
        let mut ridge = ElasticNet::new(0.5, 0.0).unwrap();
        ridge.fit(&x, &y).unwrap();
        let w = ridge.weights().unwrap();
        assert!(w.iter().all(|&v| v.abs() > 0.0));
        assert!(w[0] < 3.0, "ridge must shrink the coefficient");
    }

    #[test]
    fn predict_requires_fit_and_matching_shape() {
        let (x, y) = linear_data();
        let model = ElasticNet::new(0.1, 0.5).unwrap();
        assert!(matches!(model.predict(&x), Err(AppError::NotFitted { .. })));
        let mut model = ElasticNet::new(0.1, 0.5).unwrap();
        model.fit(&x, &y).unwrap();
        let wrong = Matrix::zeros(3, 5);
        assert!(model.predict(&wrong).is_err());
    }

    #[test]
    fn fit_rejects_mismatched_inputs() {
        let (x, _) = linear_data();
        let mut model = ElasticNet::new(0.1, 0.5).unwrap();
        assert!(model.fit(&x, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn constant_feature_is_ignored_gracefully() {
        let x = Matrix::from_rows(&[
            vec![1.0, 7.0],
            vec![2.0, 7.0],
            vec![3.0, 7.0],
            vec![4.0, 7.0],
        ])
        .unwrap();
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let mut model = ElasticNet::new(0.0, 0.5).unwrap();
        model.fit(&x, &y).unwrap();
        let w = model.weights().unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert_eq!(w[1], 0.0);
    }

    #[test]
    fn builder_style_configuration() {
        let model = ElasticNet::new(0.1, 0.5)
            .unwrap()
            .with_max_iterations(5)
            .with_tolerance(1e-3);
        // Configuration is reflected in behaviour: few iterations still fit
        // approximately.
        let (x, y) = linear_data();
        let mut model = model;
        model.fit(&x, &y).unwrap();
        assert!(model.score(&x, &y).unwrap() > 0.5);
    }
}
