//! Error types for the application crate.

use std::error::Error;
use std::fmt;

/// Errors reported by the data-mining benchmarks and their substrates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AppError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A model was asked to predict before being fitted.
    NotFitted {
        /// Name of the model.
        model: String,
    },
    /// A hyper-parameter or configuration value is invalid.
    InvalidParameter {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A numerical routine failed to converge.
    DidNotConverge {
        /// Name of the routine.
        routine: String,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An underlying memory operation failed.
    Memory(faultmit_memsim::MemError),
    /// An underlying bit-shuffling / scheme operation failed.
    Core(faultmit_core::CoreError),
    /// An underlying analysis operation failed.
    Analysis(faultmit_analysis::AnalysisError),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::DimensionMismatch { reason } => {
                write!(f, "dimension mismatch: {reason}")
            }
            AppError::NotFitted { model } => {
                write!(f, "{model} must be fitted before use")
            }
            AppError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            AppError::DidNotConverge {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} did not converge after {iterations} iterations"
            ),
            AppError::Memory(e) => write!(f, "memory error: {e}"),
            AppError::Core(e) => write!(f, "scheme error: {e}"),
            AppError::Analysis(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl Error for AppError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AppError::Memory(e) => Some(e),
            AppError::Core(e) => Some(e),
            AppError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<faultmit_memsim::MemError> for AppError {
    fn from(value: faultmit_memsim::MemError) -> Self {
        AppError::Memory(value)
    }
}

impl From<faultmit_core::CoreError> for AppError {
    fn from(value: faultmit_core::CoreError) -> Self {
        AppError::Core(value)
    }
}

impl From<faultmit_analysis::AnalysisError> for AppError {
    fn from(value: faultmit_analysis::AnalysisError) -> Self {
        AppError::Analysis(value)
    }
}

impl From<faultmit_sim::SimError> for AppError {
    fn from(value: faultmit_sim::SimError) -> Self {
        match value {
            faultmit_sim::SimError::InvalidParameter { reason } => {
                AppError::InvalidParameter { reason }
            }
            faultmit_sim::SimError::Memory(e) => AppError::Memory(e),
        }
    }
}

impl From<faultmit_sim::RunError<AppError>> for AppError {
    fn from(value: faultmit_sim::RunError<AppError>) -> Self {
        match value {
            faultmit_sim::RunError::Sim(e) => e.into(),
            faultmit_sim::RunError::Eval(e) => e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AppError::NotFitted {
            model: "PCA".to_owned()
        }
        .to_string()
        .contains("PCA"));
        assert!(AppError::DidNotConverge {
            routine: "jacobi".to_owned(),
            iterations: 100
        }
        .to_string()
        .contains("100"));
    }

    #[test]
    fn sources_are_exposed() {
        let err = AppError::from(faultmit_memsim::MemError::InvalidProbability { value: 7.0 });
        assert!(Error::source(&err).is_some());
        let err = AppError::from(faultmit_analysis::AnalysisError::EmptyDistribution);
        assert!(Error::source(&err).is_some());
        let err = AppError::DimensionMismatch {
            reason: "3x2 * 4x4".to_owned(),
        };
        assert!(Error::source(&err).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AppError>();
    }
}
