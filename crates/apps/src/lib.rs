//! Error-resilient data-mining applications running on unreliable memories.
//!
//! The paper's §5.2 measures how much application-level quality is lost when
//! the *training data* of three widely used algorithms passes through a
//! faulty 16 KB memory protected by different schemes (Table 1, Fig. 7):
//!
//! | class | algorithm | dataset | quality metric |
//! |---|---|---|---|
//! | regression | Elasticnet | wine quality | R² |
//! | dimensionality reduction | PCA | Madelon | explained variance |
//! | classification | K-nearest neighbours | activity recognition | score |
//!
//! This crate provides from-scratch implementations of the three algorithms
//! ([`ElasticNet`], [`Pca`], [`KnnClassifier`]) on top of a small dense
//! linear-algebra substrate ([`linalg`]), synthetic dataset generators that
//! substitute for the UCI datasets ([`datasets`]), a fixed-point
//! quantisation layer ([`fixedpoint`]), a faulty-memory storage path
//! ([`FaultyStore`]) and the Monte-Carlo quality-evaluation harness that
//! regenerates Fig. 7 ([`quality_eval`]).
//!
//! # Example
//!
//! ```
//! use faultmit_apps::datasets::WineQualityDataset;
//! use faultmit_apps::{Benchmark, QualityEvaluator};
//! use faultmit_core::Scheme;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let evaluator = QualityEvaluator::builder(Benchmark::Elasticnet)
//!     .samples(128)
//!     .memory_rows(512)
//!     .build()?;
//! // Quality of the benchmark with a fault-free memory (normalised to 1.0).
//! let baseline = evaluator.baseline_quality()?;
//! assert!(baseline > 0.0);
//! // Quality with 20 faults under bit-shuffling stays close to the baseline.
//! let q = evaluator.quality_with_faults(&Scheme::shuffle32(5)?, 20, 7)?;
//! assert!(q >= 0.0);
//! # let _ = WineQualityDataset::default();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod elasticnet;
pub mod error;
pub mod faulty_storage;
pub mod fixedpoint;
pub mod image;
pub mod knn;
pub mod linalg;
pub mod metrics;
pub mod pca;
pub mod preprocessing;
pub mod quality_eval;

pub use elasticnet::ElasticNet;
pub use error::AppError;
pub use faulty_storage::FaultyStore;
pub use fixedpoint::FixedPointFormat;
pub use knn::KnnClassifier;
pub use linalg::Matrix;
pub use pca::Pca;
pub use quality_eval::{Benchmark, QualityCdfResult, QualityEvaluator, QualityEvaluatorBuilder};
