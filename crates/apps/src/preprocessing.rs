//! Dataset preprocessing: standardisation and train/test splitting.

use crate::error::AppError;
use crate::linalg::Matrix;

/// A fitted per-column standardiser (z-score scaling).
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits the standardiser to the columns of `data`.
    ///
    /// Columns with zero variance keep a unit scale so they pass through
    /// unchanged (minus the mean).
    #[must_use]
    pub fn fit(data: &Matrix) -> Self {
        let means = data.column_means();
        let stds = data
            .column_stds()
            .into_iter()
            .map(|s| if s > 1e-12 { s } else { 1.0 })
            .collect();
        Self { means, stds }
    }

    /// Applies the fitted scaling to a matrix with the same column layout.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::DimensionMismatch`] when the column count differs
    /// from the fitted data.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, AppError> {
        if data.cols() != self.means.len() {
            return Err(AppError::DimensionMismatch {
                reason: format!(
                    "standardiser was fitted on {} columns but got {}",
                    self.means.len(),
                    data.cols()
                ),
            });
        }
        let mut out = data.clone();
        for r in 0..data.rows() {
            for c in 0..data.cols() {
                out.set(r, c, (data.get(r, c) - self.means[c]) / self.stds[c]);
            }
        }
        Ok(out)
    }

    /// Column means captured at fit time.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column scales captured at fit time.
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// A deterministic train/test split of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainTestSplit {
    /// Training feature matrix.
    pub train_x: Matrix,
    /// Training targets.
    pub train_y: Vec<f64>,
    /// Test feature matrix.
    pub test_x: Matrix,
    /// Test targets.
    pub test_y: Vec<f64>,
}

/// Splits `(x, y)` into train and test partitions with the given training
/// fraction, taking every k-th sample into the test set so the split is
/// deterministic and label-balanced for interleaved datasets.
///
/// The paper uses a 0.8 : 0.2 split for all three benchmarks.
///
/// # Errors
///
/// Returns [`AppError::DimensionMismatch`] when `x` and `y` disagree on the
/// number of samples, or [`AppError::InvalidParameter`] when the fraction
/// does not leave at least one sample on each side.
pub fn train_test_split(
    x: &Matrix,
    y: &[f64],
    train_fraction: f64,
) -> Result<TrainTestSplit, AppError> {
    if x.rows() != y.len() {
        return Err(AppError::DimensionMismatch {
            reason: format!("{} feature rows but {} targets", x.rows(), y.len()),
        });
    }
    if !(0.0..1.0).contains(&train_fraction) || train_fraction <= 0.0 {
        return Err(AppError::InvalidParameter {
            reason: format!("train fraction {train_fraction} must be in (0, 1)"),
        });
    }
    let n = x.rows();
    let test_every = (1.0 / (1.0 - train_fraction)).round().max(2.0) as usize;
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for i in 0..n {
        if (i + 1) % test_every == 0 {
            test_idx.push(i);
        } else {
            train_idx.push(i);
        }
    }
    if train_idx.is_empty() || test_idx.is_empty() {
        return Err(AppError::InvalidParameter {
            reason: format!(
                "split of {n} samples at fraction {train_fraction} leaves an empty partition"
            ),
        });
    }
    Ok(TrainTestSplit {
        train_x: x.select_rows(&train_idx),
        train_y: train_idx.iter().map(|&i| y[i]).collect(),
        test_x: x.select_rows(&test_idx),
        test_y: test_idx.iter().map(|&i| y[i]).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ])
        .unwrap()
    }

    #[test]
    fn standardizer_produces_zero_mean_unit_variance() {
        let x = data();
        let scaler = Standardizer::fit(&x);
        let scaled = scaler.transform(&x).unwrap();
        let means = scaled.column_means();
        let stds = scaled.column_stds();
        for c in 0..2 {
            assert!(means[c].abs() < 1e-12);
            assert!((stds[c] - 1.0).abs() < 1e-12);
        }
        assert_eq!(scaler.means().len(), 2);
        assert_eq!(scaler.stds().len(), 2);
    }

    #[test]
    fn constant_columns_do_not_blow_up() {
        let x = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]).unwrap();
        let scaler = Standardizer::fit(&x);
        let scaled = scaler.transform(&x).unwrap();
        for r in 0..3 {
            assert!(scaled.get(r, 0).abs() < 1e-12);
            assert!(scaled.get(r, 0).is_finite());
        }
    }

    #[test]
    fn transform_rejects_wrong_shape() {
        let scaler = Standardizer::fit(&data());
        let wrong = Matrix::zeros(2, 3);
        assert!(scaler.transform(&wrong).is_err());
    }

    #[test]
    fn split_ratio_is_respected() {
        let x = Matrix::zeros(100, 3);
        let y: Vec<f64> = (0..100).map(f64::from).collect();
        let split = train_test_split(&x, &y, 0.8).unwrap();
        assert_eq!(split.train_x.rows() + split.test_x.rows(), 100);
        assert_eq!(split.test_x.rows(), 20);
        assert_eq!(split.train_y.len(), 80);
        assert_eq!(split.test_y.len(), 20);
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let x = data();
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let a = train_test_split(&x, &y, 0.75).unwrap();
        let b = train_test_split(&x, &y, 0.75).unwrap();
        assert_eq!(a, b);
        // The test partition of a 4-sample split at 0.75 is exactly 1 sample.
        assert_eq!(a.test_y.len(), 1);
        assert_eq!(a.train_y.len(), 3);
        // Targets follow their features.
        assert!(!a.train_y.contains(&a.test_y[0]));
    }

    #[test]
    fn split_validates_inputs() {
        let x = data();
        assert!(train_test_split(&x, &[1.0], 0.8).is_err());
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert!(train_test_split(&x, &y, 0.0).is_err());
        assert!(train_test_split(&x, &y, 1.0).is_err());
        assert!(train_test_split(&x, &y, -0.5).is_err());
    }
}
