//! Property-based tests of the application substrates: fixed-point
//! quantisation, linear algebra and metrics.

use faultmit_apps::linalg::{jacobi_eigen, Matrix};
use faultmit_apps::metrics::{accuracy_score, explained_variance_score, r2_score};
use faultmit_apps::preprocessing::Standardizer;
use faultmit_apps::FixedPointFormat;
use proptest::prelude::*;

proptest! {
    /// Fixed-point round trips are accurate to half an LSB inside the
    /// representable range.
    #[test]
    fn fixed_point_round_trip_within_half_lsb(value in -30_000.0f64..30_000.0) {
        let fmt = FixedPointFormat::q15_16();
        let decoded = fmt.decode(fmt.encode(value));
        prop_assert!((decoded - value).abs() <= fmt.resolution() / 2.0 + 1e-12);
    }

    /// Out-of-range values saturate instead of wrapping around.
    #[test]
    fn fixed_point_saturates(value in prop::num::f64::NORMAL) {
        let fmt = FixedPointFormat::q15_16();
        let decoded = fmt.decode(fmt.encode(value));
        prop_assert!(decoded <= fmt.max_value() + 1e-9);
        prop_assert!(decoded >= fmt.min_value() - 1e-9);
        // The sign is preserved for values of non-trivial magnitude.
        if value.abs() > fmt.resolution() {
            prop_assert_eq!(decoded.signum(), value.signum());
        }
    }

    /// Flipping the MSB of the stored word always produces a large error —
    /// the significance asymmetry that motivates bit shuffling.
    #[test]
    fn msb_flips_dominate_lsb_flips(value in -20_000.0f64..20_000.0) {
        let fmt = FixedPointFormat::q15_16();
        let word = fmt.encode(value);
        let msb_error = (fmt.decode(word ^ (1 << 31)) - fmt.decode(word)).abs();
        let lsb_error = (fmt.decode(word ^ 1) - fmt.decode(word)).abs();
        prop_assert!(msb_error > 30_000.0);
        prop_assert!(lsb_error <= fmt.resolution() + 1e-12);
    }

    /// Transposition is an involution and preserves the Frobenius norm.
    #[test]
    fn transpose_is_an_involution(
        rows in 1usize..6,
        cols in 1usize..6,
        seed in any::<u64>(),
    ) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((seed.wrapping_add(i as u64).wrapping_mul(2654435761)) % 1000) as f64 / 100.0)
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let t = m.transpose();
        prop_assert!(t.transpose().approx_eq(&m, 0.0));
        prop_assert!((t.frobenius_norm() - m.frobenius_norm()).abs() < 1e-9);
    }

    /// The covariance matrix is symmetric positive semi-definite: the Jacobi
    /// eigenvalues are all non-negative (up to rounding).
    #[test]
    fn covariance_is_positive_semidefinite(
        rows in 3usize..10,
        cols in 2usize..5,
        seed in any::<u32>(),
    ) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let x = seed.wrapping_add(i as u32).wrapping_mul(747796405);
                (x % 997) as f64 / 100.0
            })
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let cov = m.covariance().unwrap();
        let eigen = jacobi_eigen(&cov, 200).unwrap();
        for &value in &eigen.values {
            prop_assert!(value >= -1e-8, "negative eigenvalue {value}");
        }
    }

    /// R² of a perfect prediction is 1; accuracy of identical labels is 1.
    #[test]
    fn perfect_predictions_score_one(values in prop::collection::vec(-100.0f64..100.0, 2..20)) {
        prop_assert!((r2_score(&values, &values).unwrap() - 1.0).abs() < 1e-9);
        prop_assert!(
            (explained_variance_score(&values, &values).unwrap() - 1.0).abs() < 1e-9
        );
        let labels: Vec<usize> = values.iter().map(|v| (v.abs() as usize) % 5).collect();
        prop_assert_eq!(accuracy_score(&labels, &labels).unwrap(), 1.0);
    }

    /// R² never exceeds 1 for any prediction.
    #[test]
    fn r2_is_at_most_one(
        truth in prop::collection::vec(-100.0f64..100.0, 3..15),
        noise in prop::collection::vec(-50.0f64..50.0, 15),
    ) {
        let predicted: Vec<f64> = truth
            .iter()
            .zip(&noise)
            .map(|(t, n)| t + n)
            .collect();
        let r2 = r2_score(&truth, &predicted).unwrap();
        prop_assert!(r2 <= 1.0 + 1e-12);
    }

    /// Standardised data has zero column means for any input.
    #[test]
    fn standardizer_centres_every_column(
        rows in 2usize..10,
        cols in 1usize..5,
        seed in any::<u32>(),
    ) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let x = seed.wrapping_add(i as u32).wrapping_mul(2891336453);
                (x % 10_007) as f64 / 50.0 - 100.0
            })
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let scaled = Standardizer::fit(&m).transform(&m).unwrap();
        for mean in scaled.column_means() {
            prop_assert!(mean.abs() < 1e-9, "column mean {mean}");
        }
    }
}
