//! Randomized property tests of the application substrates: fixed-point
//! quantisation, linear algebra and metrics.
//!
//! The offline build has no `proptest`, so each property is exercised over a
//! seeded random sweep.

use faultmit_apps::linalg::{jacobi_eigen, Matrix};
use faultmit_apps::metrics::{accuracy_score, explained_variance_score, r2_score};
use faultmit_apps::preprocessing::Standardizer;
use faultmit_apps::FixedPointFormat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fixed-point round trips are accurate to half an LSB inside the
/// representable range.
#[test]
fn fixed_point_round_trip_within_half_lsb() {
    let mut rng = rng(401);
    let fmt = FixedPointFormat::q15_16();
    for _ in 0..CASES {
        let value = rng.gen_range(-30_000.0f64..30_000.0);
        let decoded = fmt.decode(fmt.encode(value));
        assert!((decoded - value).abs() <= fmt.resolution() / 2.0 + 1e-12);
    }
}

/// Out-of-range values saturate instead of wrapping around.
#[test]
fn fixed_point_saturates() {
    let mut rng = rng(402);
    let fmt = FixedPointFormat::q15_16();
    for _ in 0..CASES {
        // Mix in-range magnitudes with far-out-of-range ones.
        let magnitude = 10f64.powf(rng.gen_range(-3.0f64..12.0));
        let value = if rng.gen::<bool>() {
            magnitude
        } else {
            -magnitude
        };
        let decoded = fmt.decode(fmt.encode(value));
        assert!(decoded <= fmt.max_value() + 1e-9);
        assert!(decoded >= fmt.min_value() - 1e-9);
        // The sign is preserved for values of non-trivial magnitude.
        if value.abs() > fmt.resolution() {
            assert_eq!(decoded.signum(), value.signum());
        }
    }
}

/// Flipping the MSB of the stored word always produces a large error —
/// the significance asymmetry that motivates bit shuffling.
#[test]
fn msb_flips_dominate_lsb_flips() {
    let mut rng = rng(403);
    let fmt = FixedPointFormat::q15_16();
    for _ in 0..CASES {
        let value = rng.gen_range(-20_000.0f64..20_000.0);
        let word = fmt.encode(value);
        let msb_error = (fmt.decode(word ^ (1 << 31)) - fmt.decode(word)).abs();
        let lsb_error = (fmt.decode(word ^ 1) - fmt.decode(word)).abs();
        assert!(msb_error > 30_000.0);
        assert!(lsb_error <= fmt.resolution() + 1e-12);
    }
}

/// Transposition is an involution and preserves the Frobenius norm.
#[test]
fn transpose_is_an_involution() {
    let mut rng = rng(404);
    for _ in 0..64 {
        let rows = rng.gen_range(1usize..6);
        let cols = rng.gen_range(1usize..6);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| rng.gen_range(-10.0f64..10.0))
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let t = m.transpose();
        assert!(t.transpose().approx_eq(&m, 0.0));
        assert!((t.frobenius_norm() - m.frobenius_norm()).abs() < 1e-9);
    }
}

/// The covariance matrix is symmetric positive semi-definite: the Jacobi
/// eigenvalues are all non-negative (up to rounding).
#[test]
fn covariance_is_positive_semidefinite() {
    let mut rng = rng(405);
    for _ in 0..64 {
        let rows = rng.gen_range(3usize..10);
        let cols = rng.gen_range(2usize..5);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| rng.gen_range(0.0f64..10.0))
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let cov = m.covariance().unwrap();
        let eigen = jacobi_eigen(&cov, 200).unwrap();
        for &value in &eigen.values {
            assert!(value >= -1e-8, "negative eigenvalue {value}");
        }
    }
}

/// R² of a perfect prediction is 1; accuracy of identical labels is 1.
#[test]
fn perfect_predictions_score_one() {
    let mut rng = rng(406);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..20);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0f64..100.0)).collect();
        assert!((r2_score(&values, &values).unwrap() - 1.0).abs() < 1e-9);
        assert!((explained_variance_score(&values, &values).unwrap() - 1.0).abs() < 1e-9);
        let labels: Vec<usize> = values.iter().map(|v| (v.abs() as usize) % 5).collect();
        assert_eq!(accuracy_score(&labels, &labels).unwrap(), 1.0);
    }
}

/// R² never exceeds 1 for any prediction.
#[test]
fn r2_is_at_most_one() {
    let mut rng = rng(407);
    for _ in 0..CASES {
        let n = rng.gen_range(3usize..15);
        let truth: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0f64..100.0)).collect();
        let predicted: Vec<f64> = truth
            .iter()
            .map(|t| t + rng.gen_range(-50.0f64..50.0))
            .collect();
        let r2 = r2_score(&truth, &predicted).unwrap();
        assert!(r2 <= 1.0 + 1e-12);
    }
}

/// Standardised data has zero column means for any input.
#[test]
fn standardizer_centres_every_column() {
    let mut rng = rng(408);
    for _ in 0..CASES {
        let rows = rng.gen_range(2usize..10);
        let cols = rng.gen_range(1usize..5);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| rng.gen_range(-100.0f64..100.0))
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let scaled = Standardizer::fit(&m).transform(&m).unwrap();
        for mean in scaled.column_means() {
            assert!(mean.abs() < 1e-9, "column mean {mean}");
        }
    }
}
