//! # faultmit-obs — allocation-free campaign observability
//!
//! A vendored-style metrics layer for the Monte-Carlo pipeline: typed
//! [`Counter`]s, fixed-bucket [`Histogram`]s and wall-clock [`Stage`] spans,
//! recorded into a [`Recorder`] and read back as immutable
//! [`MetricsSnapshot`]s. The layer is deliberately tiny — plain `u64`
//! arithmetic on fixed-size arrays, no heap allocation on any recording
//! path — so it can sit inside the hottest loops of the engine (per-die
//! generation, per-row observation) without perturbing the throughput it
//! measures.
//!
//! # Recording model
//!
//! A campaign entry point creates one shared [`Recorder`] and makes it the
//! *current* recorder with [`install`]; the guard restores the previous
//! recorder on drop. Instrumented library code never sees the recorder — it
//! calls the free functions [`count`], [`record`] and [`span`], which resolve
//! the current recorder through thread-local storage and are no-ops (a TLS
//! load and a branch) when none is installed. Worker threads spawned by the
//! pipeline executor re-[`install`] the spawning campaign's recorder, so one
//! recorder observes the whole fan-out.
//!
//! Hot loops that cannot afford one TLS resolution per event accumulate into
//! a chunk-local [`MetricsArena`] — a plain struct of `u64`s that lives in
//! the worker's scratch — and [`MetricsArena::flush`] once per chunk. Chunks
//! are the same unit the pipeline's result merge uses, so arena flushes
//! follow the exact parallel structure of the results themselves.
//!
//! # Determinism contract
//!
//! Counter totals are sums of per-event `u64` increments, and every
//! increment is a function of the campaign's deterministic per-sample
//! schedule — never of thread scheduling. Addition of unsigned integers is
//! associative and commutative, so the totals in a snapshot are
//! **bit-identical at any worker count and any shard split**, the same
//! contract the campaign results obey. Two recorded quantities are excluded
//! from that contract and live in the snapshot's *host* section instead:
//!
//! * [`Counter::ReallocEvents`] — each worker warms its own scratch arena,
//!   so the total grows with the worker count;
//! * stage spans — wall-clock time is a property of the host, not of the
//!   campaign.
//!
//! [`MetricsSnapshot::deterministic_counters`] returns exactly the portion
//! the bit-identity gate in `tests/determinism.rs` pins.
//!
//! # Worked example: adding a counter
//!
//! Suppose the DRAM backend grows a row-cluster cache and you want a hit
//! counter. Three steps, all in this workspace:
//!
//! 1. Add a `ClusterCacheHits` variant to [`Counter`], a `"cluster_cache_hits"`
//!    arm to [`Counter::name`], and list it in [`Counter::ALL`]. If the count
//!    depends on worker-local state (like a per-worker cache), also return
//!    `false` from [`Counter::is_deterministic`] so the determinism gate
//!    skips it.
//! 2. At the hit site, call `faultmit_obs::count(Counter::ClusterCacheHits, 1)`
//!    — or, inside a chunk loop that already owns a [`MetricsArena`],
//!    `arena.count(Counter::ClusterCacheHits, 1)`.
//! 3. Done. The counter now appears in every `--metrics` JSON file, shard
//!    checkpoint and cross-shard aggregate under its [`Counter::name`] key —
//!    the serialisers iterate [`Counter::ALL`], so no other code changes.
//!
//! ```
//! use faultmit_obs::{count, install, Counter, Recorder, Stage};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(Recorder::new());
//! {
//!     let _guard = install(&recorder);
//!     let _span = faultmit_obs::span(Stage::Generate);
//!     count(Counter::DiesGenerated, 64);
//! }
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter(Counter::DiesGenerated), 64);
//! assert_eq!(snapshot.stage_calls(Stage::Generate), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A typed event counter. Every variant has a stable snake_case
/// [`name`](Counter::name) used as its key in metrics JSON documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Monte-Carlo dies generated (any kernel, any generation path).
    DiesGenerated,
    /// Faults placed across all generated dies.
    FaultsGenerated,
    /// Samples evaluated through a campaign kernel.
    SamplesEvaluated,
    /// Work chunks executed by the pipeline.
    ChunksExecuted,
    /// Lane-interleaved generation chunks (up to `WIDE_LANES` dies each).
    WideGenChunks,
    /// Lane slots offered by the wide generator's lock-step Floyd loop
    /// (lane width × steps); the denominator of lane utilisation.
    WideGenLaneSteps,
    /// Lane slots that carried an active draw; the numerator of lane
    /// utilisation.
    WideGenLanesActive,
    /// Times the wide Floyd loop fell to a single divergent lane and
    /// drained it through a scalar RNG.
    WideGenScalarDrains,
    /// Die blocks transposed into lane-sliced form.
    BlocksTransposed,
    /// Campaign shard runs dispatched to the scalar kernel.
    DispatchScalar,
    /// Campaign shard runs dispatched to the event-driven sparse kernel.
    DispatchSparse,
    /// Campaign shard runs dispatched to the 64-die bit-sliced kernel.
    DispatchBitsliced,
    /// Campaign shard runs dispatched to the 256-die bit-sliced kernel.
    DispatchBitsliced256,
    /// Faulty block rows evaluated through the lane-parallel block
    /// observer.
    ObserveBlockRows,
    /// Faulty block rows a scheme declined lane-parallel evaluation for
    /// (whole-row scalar fallback).
    ObserveFallbackRows,
    /// Individual dies evaluated through the per-die scalar fallback
    /// inside an otherwise lane-parallel row.
    ObserveFallbackDies,
    /// ECC reads of fault-free rows that took the `decode_clean` fast
    /// path.
    EccCleanDecodes,
    /// ECC reads of fault-bearing rows that ran the full decoder.
    EccFullDecodes,
    /// Generation calls that grew a scratch container (warm-up, or a
    /// steady-state regression). Per-worker, therefore host-dependent.
    ReallocEvents,
}

/// Number of [`Counter`] variants (the length of [`Counter::ALL`]).
pub const COUNTER_COUNT: usize = 19;

impl Counter {
    /// Every counter, in declaration (and serialisation) order.
    pub const ALL: [Self; COUNTER_COUNT] = [
        Self::DiesGenerated,
        Self::FaultsGenerated,
        Self::SamplesEvaluated,
        Self::ChunksExecuted,
        Self::WideGenChunks,
        Self::WideGenLaneSteps,
        Self::WideGenLanesActive,
        Self::WideGenScalarDrains,
        Self::BlocksTransposed,
        Self::DispatchScalar,
        Self::DispatchSparse,
        Self::DispatchBitsliced,
        Self::DispatchBitsliced256,
        Self::ObserveBlockRows,
        Self::ObserveFallbackRows,
        Self::ObserveFallbackDies,
        Self::EccCleanDecodes,
        Self::EccFullDecodes,
        Self::ReallocEvents,
    ];

    /// The counter's stable snake_case JSON key.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::DiesGenerated => "dies_generated",
            Self::FaultsGenerated => "faults_generated",
            Self::SamplesEvaluated => "samples_evaluated",
            Self::ChunksExecuted => "chunks_executed",
            Self::WideGenChunks => "widegen_chunks",
            Self::WideGenLaneSteps => "widegen_lane_steps",
            Self::WideGenLanesActive => "widegen_lanes_active",
            Self::WideGenScalarDrains => "widegen_scalar_drains",
            Self::BlocksTransposed => "blocks_transposed",
            Self::DispatchScalar => "dispatch_scalar",
            Self::DispatchSparse => "dispatch_sparse",
            Self::DispatchBitsliced => "dispatch_bitsliced",
            Self::DispatchBitsliced256 => "dispatch_bitsliced256",
            Self::ObserveBlockRows => "observe_block_rows",
            Self::ObserveFallbackRows => "observe_fallback_rows",
            Self::ObserveFallbackDies => "observe_fallback_dies",
            Self::EccCleanDecodes => "ecc_clean_decodes",
            Self::EccFullDecodes => "ecc_full_decodes",
            Self::ReallocEvents => "realloc_events",
        }
    }

    /// Whether the counter's total is a pure function of the campaign's
    /// deterministic per-sample schedule. `false` for per-worker,
    /// host-dependent quantities, which the worker-count bit-identity gate
    /// must skip.
    #[must_use]
    pub const fn is_deterministic(self) -> bool {
        !matches!(self, Self::ReallocEvents)
    }
}

/// A fixed-bucket histogram. Buckets are powers of two:
/// bucket 0 counts zero-valued observations, bucket `i ≥ 1` counts values
/// in `[2^(i-1), 2^i)`, and the last bucket absorbs everything larger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Histogram {
    /// Fault count per generated die.
    FaultsPerDie,
}

/// Number of [`Histogram`] variants.
pub const HISTOGRAM_COUNT: usize = 1;
/// Buckets per histogram (log2-spaced; see [`Histogram`]).
pub const HISTOGRAM_BUCKETS: usize = 16;

impl Histogram {
    /// Every histogram, in declaration (and serialisation) order.
    pub const ALL: [Self; HISTOGRAM_COUNT] = [Self::FaultsPerDie];

    /// The histogram's stable snake_case JSON key.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::FaultsPerDie => "faults_per_die",
        }
    }

    /// The bucket index a value falls into.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }
}

/// A pipeline stage bracketed by wall-clock [`span`]s. Stage times are
/// host-dependent and live in the snapshot's non-deterministic section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Building the campaign's per-sample fault-count plan.
    Plan,
    /// Generating fault maps (scalar, sparse or wide path).
    Generate,
    /// Transposing generated events into lane-sliced die blocks.
    Transpose,
    /// Evaluating schemes against generated dies.
    Observe,
    /// Folding per-sample observations into chunk accumulators.
    Reduce,
    /// Merging chunk (or shard) results in deterministic order.
    Merge,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Self; STAGE_COUNT] = [
        Self::Plan,
        Self::Generate,
        Self::Transpose,
        Self::Observe,
        Self::Reduce,
        Self::Merge,
    ];

    /// The stage's stable snake_case JSON key.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Plan => "plan",
            Self::Generate => "generate",
            Self::Transpose => "transpose",
            Self::Observe => "observe",
            Self::Reduce => "reduce",
            Self::Merge => "merge",
        }
    }
}

/// The shared sink all instrumentation feeds: one atomic slot per counter,
/// histogram bucket and stage. Cheap to share across the pipeline's worker
/// threads (relaxed adds only — counter totals are order-independent).
#[derive(Debug, Default)]
pub struct Recorder {
    counters: [AtomicU64; COUNTER_COUNT],
    histograms: [[AtomicU64; HISTOGRAM_BUCKETS]; HISTOGRAM_COUNT],
    stage_nanos: [AtomicU64; STAGE_COUNT],
    stage_calls: [AtomicU64; STAGE_COUNT],
}

impl Recorder {
    /// Creates a zeroed recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&self, histogram: Histogram, value: u64) {
        self.histograms[histogram as usize][Histogram::bucket_of(value)]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Adds accumulated wall-clock time (and a call count) to a stage.
    #[inline]
    pub fn add_stage(&self, stage: Stage, nanos: u64, calls: u64) {
        self.stage_nanos[stage as usize].fetch_add(nanos, Ordering::Relaxed);
        self.stage_calls[stage as usize].fetch_add(calls, Ordering::Relaxed);
    }

    /// An immutable copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            histograms: std::array::from_fn(|h| {
                std::array::from_fn(|b| self.histograms[h][b].load(Ordering::Relaxed))
            }),
            stage_nanos: std::array::from_fn(|i| self.stage_nanos[i].load(Ordering::Relaxed)),
            stage_calls: std::array::from_fn(|i| self.stage_calls[i].load(Ordering::Relaxed)),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
}

/// Restores the previously installed recorder when dropped.
#[derive(Debug)]
pub struct InstallGuard {
    previous: Option<Arc<Recorder>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|cell| {
            *cell.borrow_mut() = self.previous.take();
        });
    }
}

/// Makes `recorder` the calling thread's current recorder until the
/// returned guard drops. Nesting is allowed; the guard restores the
/// previous recorder.
#[must_use]
pub fn install(recorder: &Arc<Recorder>) -> InstallGuard {
    CURRENT.with(|cell| InstallGuard {
        previous: cell.borrow_mut().replace(Arc::clone(recorder)),
    })
}

/// The calling thread's current recorder, if any. Pipeline executors use
/// this to propagate the campaign's recorder into their worker threads.
#[must_use]
pub fn current() -> Option<Arc<Recorder>> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// Whether a recorder is installed on the calling thread.
#[must_use]
pub fn is_active() -> bool {
    CURRENT.with(|cell| cell.borrow().is_some())
}

/// Adds `n` to `counter` on the current recorder (no-op when none is
/// installed).
#[inline]
pub fn count(counter: Counter, n: u64) {
    CURRENT.with(|cell| {
        if let Some(recorder) = cell.borrow().as_deref() {
            recorder.add(counter, n);
        }
    });
}

/// Records one histogram observation on the current recorder (no-op when
/// none is installed).
#[inline]
pub fn record(histogram: Histogram, value: u64) {
    CURRENT.with(|cell| {
        if let Some(recorder) = cell.borrow().as_deref() {
            recorder.observe(histogram, value);
        }
    });
}

/// Adds pre-accumulated stage time to the current recorder (no-op when none
/// is installed). For call sites that batch their own timing (one flush per
/// chunk instead of one [`span`] per event).
#[inline]
pub fn add_stage(stage: Stage, nanos: u64, calls: u64) {
    CURRENT.with(|cell| {
        if let Some(recorder) = cell.borrow().as_deref() {
            recorder.add_stage(stage, nanos, calls);
        }
    });
}

/// Times one stage execution: the guard measures from creation to drop.
/// When no recorder is installed the clock is never read.
#[must_use]
pub fn span(stage: Stage) -> SpanGuard {
    SpanGuard {
        active: current().map(|recorder| (recorder, Instant::now())),
        stage,
    }
}

/// Guard returned by [`span`]; records the elapsed wall-clock time into its
/// stage on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Arc<Recorder>, Instant)>,
    stage: Stage,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((recorder, start)) = self.active.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            recorder.add_stage(self.stage, nanos, 1);
        }
    }
}

/// A chunk-local, allocation-free accumulator for hot loops: plain `u64`
/// slots a worker increments without TLS resolution, flushed to the current
/// recorder once per chunk — the same granularity the pipeline merges
/// results at.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsArena {
    counters: [u64; COUNTER_COUNT],
    histograms: [[u64; HISTOGRAM_BUCKETS]; HISTOGRAM_COUNT],
    stage_nanos: [u64; STAGE_COUNT],
    stage_calls: [u64; STAGE_COUNT],
}

impl MetricsArena {
    /// Creates a zeroed arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter slot.
    #[inline]
    pub fn count(&mut self, counter: Counter, n: u64) {
        self.counters[counter as usize] += n;
    }

    /// Records one histogram observation.
    #[inline]
    pub fn record(&mut self, histogram: Histogram, value: u64) {
        self.histograms[histogram as usize][Histogram::bucket_of(value)] += 1;
    }

    /// Adds accumulated stage time.
    #[inline]
    pub fn add_stage(&mut self, stage: Stage, nanos: u64, calls: u64) {
        self.stage_nanos[stage as usize] += nanos;
        self.stage_calls[stage as usize] += calls;
    }

    /// Drains the arena into the current recorder (no-op without one) and
    /// zeroes it for the next chunk. Only non-zero slots touch the shared
    /// atomics.
    pub fn flush(&mut self) {
        CURRENT.with(|cell| {
            if let Some(recorder) = cell.borrow().as_deref() {
                for (i, &value) in self.counters.iter().enumerate() {
                    if value != 0 {
                        recorder.counters[i].fetch_add(value, Ordering::Relaxed);
                    }
                }
                for (h, buckets) in self.histograms.iter().enumerate() {
                    for (b, &value) in buckets.iter().enumerate() {
                        if value != 0 {
                            recorder.histograms[h][b].fetch_add(value, Ordering::Relaxed);
                        }
                    }
                }
                for (i, (&nanos, &calls)) in
                    self.stage_nanos.iter().zip(&self.stage_calls).enumerate()
                {
                    if nanos != 0 || calls != 0 {
                        recorder.stage_nanos[i].fetch_add(nanos, Ordering::Relaxed);
                        recorder.stage_calls[i].fetch_add(calls, Ordering::Relaxed);
                    }
                }
            }
        });
        *self = Self::default();
    }
}

/// An immutable copy of a [`Recorder`]'s state: the value threaded through
/// `sim::ShardStats`, shard checkpoints and cross-shard aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter totals, indexed by [`Counter`] discriminant.
    pub counters: [u64; COUNTER_COUNT],
    /// Histogram buckets, indexed by [`Histogram`] discriminant.
    pub histograms: [[u64; HISTOGRAM_BUCKETS]; HISTOGRAM_COUNT],
    /// Accumulated wall-clock nanoseconds per [`Stage`].
    pub stage_nanos: [u64; STAGE_COUNT],
    /// Span / flush count per [`Stage`].
    pub stage_calls: [u64; STAGE_COUNT],
}

impl MetricsSnapshot {
    /// A counter's total.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// A histogram's buckets.
    #[must_use]
    pub fn histogram(&self, histogram: Histogram) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.histograms[histogram as usize]
    }

    /// A stage's accumulated wall-clock seconds.
    #[must_use]
    pub fn stage_seconds(&self, stage: Stage) -> f64 {
        self.stage_nanos[stage as usize] as f64 / 1e9
    }

    /// A stage's span / flush count.
    #[must_use]
    pub fn stage_calls(&self, stage: Stage) -> u64 {
        self.stage_calls[stage as usize]
    }

    /// The counters covered by the worker-count bit-identity contract, as
    /// `(counter, total)` pairs — host-dependent counters (see
    /// [`Counter::is_deterministic`]) are omitted.
    #[must_use]
    pub fn deterministic_counters(&self) -> Vec<(Counter, u64)> {
        Counter::ALL
            .iter()
            .filter(|c| c.is_deterministic())
            .map(|&c| (c, self.counter(c)))
            .collect()
    }

    /// Wide-generation lane utilisation in `[0, 1]` (`None` when the wide
    /// path never ran).
    #[must_use]
    pub fn wide_lane_utilisation(&self) -> Option<f64> {
        let steps = self.counter(Counter::WideGenLaneSteps);
        (steps != 0).then(|| self.counter(Counter::WideGenLanesActive) as f64 / steps as f64)
    }

    /// Fraction of faulty block rows that fell back to whole-row scalar
    /// evaluation (`None` when no block rows were observed).
    #[must_use]
    pub fn observe_fallback_rate(&self) -> Option<f64> {
        let block = self.counter(Counter::ObserveBlockRows);
        let fallback = self.counter(Counter::ObserveFallbackRows);
        let total = block + fallback;
        (total != 0).then(|| fallback as f64 / total as f64)
    }

    /// Element-wise accumulation (cross-shard / cross-panel aggregation).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.wrapping_add(*b);
        }
        for (a, b) in self.histograms.iter_mut().zip(&other.histograms) {
            for (a, b) in a.iter_mut().zip(b) {
                *a = a.wrapping_add(*b);
            }
        }
        for (a, b) in self.stage_nanos.iter_mut().zip(&other.stage_nanos) {
            *a = a.wrapping_add(*b);
        }
        for (a, b) in self.stage_calls.iter_mut().zip(&other.stage_calls) {
            *a = a.wrapping_add(*b);
        }
    }

    /// The difference `self - earlier` (both snapshots of the same
    /// monotonic recorder): what was recorded between the two.
    #[must_use]
    pub fn since(&self, earlier: &Self) -> Self {
        let mut delta = *self;
        for (a, b) in delta.counters.iter_mut().zip(&earlier.counters) {
            *a = a.wrapping_sub(*b);
        }
        for (a, b) in delta.histograms.iter_mut().zip(&earlier.histograms) {
            for (a, b) in a.iter_mut().zip(b) {
                *a = a.wrapping_sub(*b);
            }
        }
        for (a, b) in delta.stage_nanos.iter_mut().zip(&earlier.stage_nanos) {
            *a = a.wrapping_sub(*b);
        }
        for (a, b) in delta.stage_calls.iter_mut().zip(&earlier.stage_calls) {
            *a = a.wrapping_sub(*b);
        }
        delta
    }

    /// Whether nothing at all was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_without_a_recorder_is_a_no_op() {
        assert!(!is_active());
        count(Counter::DiesGenerated, 5);
        record(Histogram::FaultsPerDie, 3);
        add_stage(Stage::Generate, 10, 1);
        drop(span(Stage::Observe));
        // Nothing to observe — the calls must simply not panic.
    }

    #[test]
    fn install_scopes_and_nests() {
        let outer = Arc::new(Recorder::new());
        let inner = Arc::new(Recorder::new());
        {
            let _a = install(&outer);
            count(Counter::DiesGenerated, 1);
            {
                let _b = install(&inner);
                assert!(is_active());
                count(Counter::DiesGenerated, 10);
            }
            count(Counter::DiesGenerated, 1);
        }
        assert!(!is_active());
        assert_eq!(outer.snapshot().counter(Counter::DiesGenerated), 2);
        assert_eq!(inner.snapshot().counter(Counter::DiesGenerated), 10);
    }

    #[test]
    fn arena_flushes_to_the_current_recorder() {
        let recorder = Arc::new(Recorder::new());
        let mut arena = MetricsArena::new();
        arena.count(Counter::FaultsGenerated, 7);
        arena.record(Histogram::FaultsPerDie, 7);
        arena.add_stage(Stage::Observe, 1_000, 2);
        {
            let _g = install(&recorder);
            arena.flush();
        }
        assert_eq!(arena, MetricsArena::default());
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter(Counter::FaultsGenerated), 7);
        assert_eq!(snapshot.histogram(Histogram::FaultsPerDie)[3], 1);
        assert_eq!(snapshot.stage_calls(Stage::Observe), 2);
        assert_eq!(snapshot.stage_nanos[Stage::Observe as usize], 1_000);
    }

    #[test]
    fn histogram_buckets_are_log2_spaced() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1 << 13), 14);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn snapshots_merge_and_subtract() {
        let recorder = Recorder::new();
        recorder.add(Counter::DiesGenerated, 3);
        let early = recorder.snapshot();
        recorder.add(Counter::DiesGenerated, 4);
        recorder.observe(Histogram::FaultsPerDie, 0);
        recorder.add_stage(Stage::Merge, 500, 1);
        let late = recorder.snapshot();
        let delta = late.since(&early);
        assert_eq!(delta.counter(Counter::DiesGenerated), 4);
        assert_eq!(delta.histogram(Histogram::FaultsPerDie)[0], 1);
        assert_eq!(delta.stage_calls(Stage::Merge), 1);

        let mut merged = early;
        merged.merge(&delta);
        assert_eq!(merged, late);
    }

    #[test]
    fn deterministic_counters_exclude_host_dependent_ones() {
        let recorder = Recorder::new();
        recorder.add(Counter::ReallocEvents, 9);
        recorder.add(Counter::DiesGenerated, 2);
        let deterministic = recorder.snapshot().deterministic_counters();
        assert!(deterministic
            .iter()
            .all(|&(c, _)| c != Counter::ReallocEvents));
        assert!(deterministic.contains(&(Counter::DiesGenerated, 2)));
        assert_eq!(deterministic.len(), COUNTER_COUNT - 1);
    }

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), COUNTER_COUNT);
        for (i, counter) in Counter::ALL.iter().enumerate() {
            assert_eq!(*counter as usize, i);
        }
    }

    #[test]
    fn derived_rates() {
        let recorder = Recorder::new();
        assert_eq!(recorder.snapshot().wide_lane_utilisation(), None);
        assert_eq!(recorder.snapshot().observe_fallback_rate(), None);
        recorder.add(Counter::WideGenLaneSteps, 8);
        recorder.add(Counter::WideGenLanesActive, 6);
        recorder.add(Counter::ObserveBlockRows, 3);
        recorder.add(Counter::ObserveFallbackRows, 1);
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.wide_lane_utilisation(), Some(0.75));
        assert_eq!(snapshot.observe_fallback_rate(), Some(0.25));
    }

    #[test]
    fn workers_share_one_recorder() {
        let recorder = Arc::new(Recorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let recorder = Arc::clone(&recorder);
                scope.spawn(move || {
                    let _g = install(&recorder);
                    for _ in 0..100 {
                        count(Counter::SamplesEvaluated, 1);
                    }
                });
            }
        });
        assert_eq!(recorder.snapshot().counter(Counter::SamplesEvaluated), 400);
    }
}
