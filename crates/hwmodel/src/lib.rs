//! Analytical 28 nm hardware cost model for memory protection schemes.
//!
//! The paper evaluates the read-power, read-delay and area overhead of the
//! bit-shuffling scheme against H(39,32) SECDED and H(22,16) P-ECC by
//! synthesising the encoder/decoder blocks in a 28 nm FD-SOI flow (Synopsys
//! Design Compiler + Cadence SoC Encounter) and estimating the extra-column
//! cost from SRAM macros (§5.1, Fig. 6). That flow needs proprietary PDKs and
//! EDA tools, so this crate substitutes a transparent analytical model:
//!
//! * every protection block is decomposed into its structural primitives
//!   (XOR trees for syndrome generation, AND-gate error locators, correction
//!   XORs, barrel-shifter mux stages, extra SRAM columns for parity bits or
//!   the FM-LUT) — see [`components`];
//! * a [`Technology`] profile assigns per-primitive delay, energy and area
//!   constants representative of a generic 28 nm node;
//! * [`OverheadModel`] combines the two into absolute read-path costs and the
//!   relative-to-SECDED percentages that Fig. 6 reports.
//!
//! The *structure* of each block (XOR-tree depth `∝ log₂ W`, shifter
//! `n_FM` mux stages, column counts) is what determines the relative
//! ordering, so the model reproduces the paper's qualitative result: the
//! bit-shuffling read path is far cheaper than SECDED at coarse segment
//! granularity and its cost grows towards (but stays below) the ECC cost as
//! `n_FM` increases.
//!
//! # Example
//!
//! ```
//! use faultmit_hwmodel::{OverheadModel, ProtectionBlock};
//!
//! let model = OverheadModel::default_28nm(4096, 32);
//! let secded = model.read_path_cost(ProtectionBlock::Secded);
//! let shuffle1 = model.read_path_cost(ProtectionBlock::BitShuffle { n_fm: 1 });
//! assert!(shuffle1.energy_fj < secded.energy_fj);
//! assert!(shuffle1.delay_ps < secded.delay_ps);
//! assert!(shuffle1.area_um2 < secded.area_um2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod components;
pub mod cost;
pub mod lut;
pub mod overhead;
pub mod technology;

pub use cost::ReadPathCost;
pub use lut::LutImplementation;
pub use overhead::{Fig6Row, OverheadModel, ProtectionBlock};
pub use technology::Technology;
