//! Read-path cost triples (energy, delay, area).

use std::ops::{Add, AddAssign};

/// Cost of one read access through a protection block, plus the block's area.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReadPathCost {
    /// Energy per read access (fJ) attributable to the protection overhead.
    pub energy_fj: f64,
    /// Additional read latency (ps) on the critical path.
    pub delay_ps: f64,
    /// Silicon area (µm²) of the extra columns and logic.
    pub area_um2: f64,
}

impl ReadPathCost {
    /// A zero-cost (unprotected) read path.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Creates a cost triple.
    #[must_use]
    pub fn new(energy_fj: f64, delay_ps: f64, area_um2: f64) -> Self {
        Self {
            energy_fj,
            delay_ps,
            area_um2,
        }
    }

    /// Component-wise ratio of `self` to `baseline`, as used by Fig. 6
    /// ("relative to the overhead required by the H(39,32) SECDED ECC").
    ///
    /// Components whose baseline is zero yield `f64::NAN`.
    #[must_use]
    pub fn relative_to(&self, baseline: &ReadPathCost) -> RelativeCost {
        RelativeCost {
            energy: self.energy_fj / baseline.energy_fj,
            delay: self.delay_ps / baseline.delay_ps,
            area: self.area_um2 / baseline.area_um2,
        }
    }

    /// `true` when every component of `self` is at most the corresponding
    /// component of `other`.
    #[must_use]
    pub fn dominates(&self, other: &ReadPathCost) -> bool {
        self.energy_fj <= other.energy_fj
            && self.delay_ps <= other.delay_ps
            && self.area_um2 <= other.area_um2
    }
}

impl Add for ReadPathCost {
    type Output = ReadPathCost;

    fn add(self, rhs: ReadPathCost) -> ReadPathCost {
        ReadPathCost {
            energy_fj: self.energy_fj + rhs.energy_fj,
            // Delays on the same critical path accumulate; parallel paths
            // should be combined by the caller with `max` instead.
            delay_ps: self.delay_ps + rhs.delay_ps,
            area_um2: self.area_um2 + rhs.area_um2,
        }
    }
}

impl AddAssign for ReadPathCost {
    fn add_assign(&mut self, rhs: ReadPathCost) {
        *self = *self + rhs;
    }
}

/// Cost relative to a baseline, component-wise (1.0 = equal to baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeCost {
    /// Relative read energy.
    pub energy: f64,
    /// Relative read delay.
    pub delay: f64,
    /// Relative area.
    pub area: f64,
}

impl RelativeCost {
    /// The savings (1 − relative value) for each component, as the paper
    /// quotes them ("83% in read power, 77% in read access time, 89% in
    /// area").
    #[must_use]
    pub fn savings(&self) -> RelativeCost {
        RelativeCost {
            energy: 1.0 - self.energy,
            delay: 1.0 - self.delay,
            area: 1.0 - self.area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_is_all_zero() {
        let c = ReadPathCost::zero();
        assert_eq!(c.energy_fj, 0.0);
        assert_eq!(c.delay_ps, 0.0);
        assert_eq!(c.area_um2, 0.0);
    }

    #[test]
    fn addition_is_component_wise() {
        let a = ReadPathCost::new(1.0, 2.0, 3.0);
        let b = ReadPathCost::new(10.0, 20.0, 30.0);
        let sum = a + b;
        assert_eq!(sum, ReadPathCost::new(11.0, 22.0, 33.0));
        let mut acc = a;
        acc += b;
        assert_eq!(acc, sum);
    }

    #[test]
    fn relative_and_savings() {
        let baseline = ReadPathCost::new(100.0, 50.0, 200.0);
        let cheap = ReadPathCost::new(17.0, 11.5, 22.0);
        let rel = cheap.relative_to(&baseline);
        assert!((rel.energy - 0.17).abs() < 1e-12);
        assert!((rel.delay - 0.23).abs() < 1e-12);
        assert!((rel.area - 0.11).abs() < 1e-12);
        let savings = rel.savings();
        assert!((savings.energy - 0.83).abs() < 1e-12);
        assert!((savings.delay - 0.77).abs() < 1e-12);
        assert!((savings.area - 0.89).abs() < 1e-12);
    }

    #[test]
    fn dominance_requires_all_components() {
        let small = ReadPathCost::new(1.0, 1.0, 1.0);
        let large = ReadPathCost::new(2.0, 2.0, 2.0);
        let mixed = ReadPathCost::new(0.5, 3.0, 1.0);
        assert!(small.dominates(&large));
        assert!(!large.dominates(&small));
        assert!(!mixed.dominates(&small));
        assert!(small.dominates(&small));
    }
}
