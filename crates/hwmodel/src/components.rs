//! Structural decomposition of protection blocks into logic primitives.
//!
//! The relative cost of each scheme is determined by how much logic and how
//! many extra storage columns its read path needs:
//!
//! | block | logic on the read path | extra columns |
//! |---|---|---|
//! | H(n,k) SECDED decoder | syndrome XOR trees, error locator, correction XORs | `n − k` parity columns |
//! | H(n,p) P-ECC decoder | the same structure over the `p` protected MSBs | `n − p` parity columns |
//! | bit-shuffling (`n_FM`) | `n_FM` barrel-shifter mux stages over `W` bits | `n_FM` FM-LUT columns |

/// Gate-count and depth summary of a combinational block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogicBudget {
    /// Number of 2-input XOR gates.
    pub xor2: usize,
    /// Number of 2-input AND/NAND-class gates.
    pub and2: usize,
    /// Number of 2-to-1 multiplexers.
    pub mux2: usize,
    /// Critical-path depth in XOR gates.
    pub xor_depth: usize,
    /// Critical-path depth in AND gates.
    pub and_depth: usize,
    /// Critical-path depth in multiplexer stages.
    pub mux_depth: usize,
}

impl LogicBudget {
    /// Combines two blocks that sit in series on the read path.
    #[must_use]
    pub fn in_series(self, other: LogicBudget) -> LogicBudget {
        LogicBudget {
            xor2: self.xor2 + other.xor2,
            and2: self.and2 + other.and2,
            mux2: self.mux2 + other.mux2,
            xor_depth: self.xor_depth + other.xor_depth,
            and_depth: self.and_depth + other.and_depth,
            mux_depth: self.mux_depth + other.mux_depth,
        }
    }

    /// Total number of 2-input-equivalent gates (for quick sanity checks).
    #[must_use]
    pub fn total_gates(&self) -> usize {
        self.xor2 + self.and2 + self.mux2
    }
}

/// Ceiling of log2, with `ceil_log2(0) == 0` and `ceil_log2(1) == 0`.
#[must_use]
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Logic budget of an XOR reduction tree over `inputs` bits.
#[must_use]
pub fn xor_tree(inputs: usize) -> LogicBudget {
    if inputs <= 1 {
        return LogicBudget::default();
    }
    LogicBudget {
        xor2: inputs - 1,
        xor_depth: ceil_log2(inputs),
        ..LogicBudget::default()
    }
}

/// Logic budget of the syndrome generator of an extended Hamming code with
/// `codeword_bits` total bits and `parity_bits` check bits (including the
/// overall parity).
///
/// Each of the `parity_bits − 1` Hamming syndrome bits is an XOR tree over
/// roughly half of the codeword; the overall-parity check is an XOR tree over
/// the whole codeword.
#[must_use]
pub fn syndrome_generator(codeword_bits: usize, parity_bits: usize) -> LogicBudget {
    if parity_bits == 0 {
        return LogicBudget::default();
    }
    let hamming_bits = parity_bits.saturating_sub(1);
    let per_syndrome = xor_tree(codeword_bits / 2 + 1);
    let overall = xor_tree(codeword_bits);
    LogicBudget {
        xor2: hamming_bits * per_syndrome.xor2 + overall.xor2,
        // The syndrome bits are computed in parallel; the critical path is the
        // deepest single tree.
        xor_depth: per_syndrome.xor_depth.max(overall.xor_depth),
        ..LogicBudget::default()
    }
}

/// Logic budget of the error locator + corrector of an extended Hamming code
/// protecting `data_bits` bits with `syndrome_bits` Hamming syndrome bits.
///
/// The locator is one AND-decode gate per correctable position (modelled as
/// `syndrome_bits − 1` two-input ANDs each); the corrector is one XOR per
/// data bit.
#[must_use]
pub fn error_corrector(data_bits: usize, syndrome_bits: usize) -> LogicBudget {
    let decode_positions = data_bits + syndrome_bits;
    LogicBudget {
        and2: decode_positions * syndrome_bits.saturating_sub(1),
        xor2: data_bits,
        and_depth: ceil_log2(syndrome_bits.max(1)),
        xor_depth: 1,
        ..LogicBudget::default()
    }
}

/// Complete read-path decoder of an extended Hamming SECDED code.
#[must_use]
pub fn secded_decoder(data_bits: usize, parity_bits: usize) -> LogicBudget {
    let codeword_bits = data_bits + parity_bits;
    syndrome_generator(codeword_bits, parity_bits)
        .in_series(error_corrector(data_bits, parity_bits.saturating_sub(1)))
}

/// Write-path encoder of an extended Hamming SECDED code: the parity trees
/// only (there is nothing to correct on a write).
#[must_use]
pub fn secded_encoder(data_bits: usize, parity_bits: usize) -> LogicBudget {
    if parity_bits == 0 {
        return LogicBudget::default();
    }
    let hamming_bits = parity_bits.saturating_sub(1);
    // Each parity bit is an XOR tree over roughly half of the *data* bits;
    // the overall parity covers the whole codeword.
    let per_parity = xor_tree(data_bits / 2 + 1);
    let overall = xor_tree(data_bits + parity_bits);
    LogicBudget {
        xor2: hamming_bits * per_parity.xor2 + overall.xor2,
        xor_depth: per_parity.xor_depth.max(overall.xor_depth),
        ..LogicBudget::default()
    }
}

/// Read-path logic of the bit-shuffling scheme: an `n_fm`-stage barrel
/// rotator over `word_bits` bits (shift amounts are multiples of the segment
/// size, so only `n_fm` of the `log2(W)` stages are needed), plus a small
/// amount of control logic to convert `x_FM` into the shift amount.
#[must_use]
pub fn shuffle_read_path(word_bits: usize, n_fm: usize) -> LogicBudget {
    LogicBudget {
        mux2: word_bits * n_fm,
        mux_depth: n_fm,
        // x_FM → T conversion: a handful of inverters/adders, negligible but
        // non-zero; modelled as n_fm AND-class gates off the critical path.
        and2: n_fm,
        ..LogicBudget::default()
    }
}

/// Number of extra storage columns a scheme adds to every row.
#[must_use]
pub fn extra_columns(scheme_parity_bits: usize) -> usize {
    scheme_parity_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(32), 5);
        assert_eq!(ceil_log2(39), 6);
    }

    #[test]
    fn xor_tree_counts() {
        assert_eq!(xor_tree(0), LogicBudget::default());
        assert_eq!(xor_tree(1), LogicBudget::default());
        let t = xor_tree(20);
        assert_eq!(t.xor2, 19);
        assert_eq!(t.xor_depth, 5);
    }

    #[test]
    fn secded_decoder_structure_scales_with_word_width() {
        let h39 = secded_decoder(32, 7);
        let h22 = secded_decoder(16, 6);
        assert!(h39.total_gates() > h22.total_gates());
        assert!(h39.xor2 > h22.xor2);
        // Both decoders have comparable depth (log-scale), the wide one a bit
        // deeper.
        assert!(h39.xor_depth >= h22.xor_depth);
        // The H(39,32) decoder is a few hundred gates, in line with published
        // SECDED implementations.
        assert!(h39.total_gates() > 200 && h39.total_gates() < 600);
    }

    #[test]
    fn secded_decoder_depth_is_about_13_gates() {
        // The paper (citing [17]) states SECDED adds ~13 gate delays to the
        // read access; our structural estimate should be in that ballpark.
        let h39 = secded_decoder(32, 7);
        let total_depth = h39.xor_depth + h39.and_depth + h39.mux_depth;
        assert!(
            (9..=16).contains(&total_depth),
            "decoder depth {total_depth} out of expected range"
        );
    }

    #[test]
    fn encoder_is_smaller_and_shallower_than_decoder() {
        let encoder = secded_encoder(32, 7);
        let decoder = secded_decoder(32, 7);
        assert!(encoder.total_gates() < decoder.total_gates());
        assert!(encoder.xor_depth + encoder.and_depth <= decoder.xor_depth + decoder.and_depth);
        assert_eq!(secded_encoder(32, 0), LogicBudget::default());
    }

    #[test]
    fn shuffle_read_path_scales_linearly_with_n_fm() {
        let one = shuffle_read_path(32, 1);
        let five = shuffle_read_path(32, 5);
        assert_eq!(one.mux2, 32);
        assert_eq!(five.mux2, 160);
        assert_eq!(one.mux_depth, 1);
        assert_eq!(five.mux_depth, 5);
        assert!(five.total_gates() > one.total_gates());
    }

    #[test]
    fn shuffle_is_always_shallower_than_secded() {
        let secded = secded_decoder(32, 7);
        let secded_depth = secded.xor_depth + secded.and_depth + secded.mux_depth;
        for n_fm in 1..=5 {
            let shuffle = shuffle_read_path(32, n_fm);
            let depth = shuffle.xor_depth + shuffle.and_depth + shuffle.mux_depth;
            assert!(depth < secded_depth, "n_FM = {n_fm}");
        }
    }

    #[test]
    fn in_series_adds_counts_and_depths() {
        let a = xor_tree(8);
        let b = shuffle_read_path(32, 2);
        let combined = a.in_series(b);
        assert_eq!(combined.xor2, a.xor2 + b.xor2);
        assert_eq!(combined.mux_depth, b.mux_depth);
        assert_eq!(combined.xor_depth, a.xor_depth + b.xor_depth);
    }

    #[test]
    fn extra_columns_passthrough() {
        assert_eq!(extra_columns(7), 7);
        assert_eq!(extra_columns(0), 0);
    }
}
