//! Alternative FM-LUT realisations and the write-path cost they imply.
//!
//! The paper's Fig. 6 charges the FM-LUT as extra bit columns inside the SRAM
//! array ("the most straightforward realization"), and notes that "the LUT
//! could be realized with, for example, a content-addressable memory (CAM) or
//! register file, to provide much less overhead, especially in terms of write
//! latency, which in the case of bit-shuffling, requires a read prior to a
//! write" (§5.1). This module models those three options so the write-path
//! trade-off can be explored.

use crate::cost::ReadPathCost;
use crate::technology::Technology;

/// How the per-row shift indices `x_FM(r)` are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutImplementation {
    /// `n_FM` extra bit columns inside the SRAM array (the paper's default).
    /// Cheapest storage, but looking up `x_FM(r)` before a write costs a full
    /// array access.
    ArrayColumns,
    /// A dedicated register file with one `n_FM`-bit entry per row. Fast
    /// access, but flip-flop storage is several times larger than an SRAM
    /// cell.
    RegisterFile,
    /// A content-addressable memory holding one entry per *faulty* row only
    /// (address tag + shift index). Smallest storage when faults are sparse;
    /// the search is fast but every lookup activates all match lines.
    Cam {
        /// Number of entries provisioned (≥ the expected number of faulty
        /// rows the die must tolerate).
        entries: usize,
    },
}

impl LutImplementation {
    /// Short label used in tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            LutImplementation::ArrayColumns => "array columns".to_owned(),
            LutImplementation::RegisterFile => "register file".to_owned(),
            LutImplementation::Cam { entries } => format!("CAM ({entries} entries)"),
        }
    }

    /// Cost of one LUT lookup plus the LUT's storage area, for a memory with
    /// `rows` rows, an `n_fm`-bit entry, and `address_bits` row-address bits.
    #[must_use]
    pub fn lookup_cost(
        &self,
        technology: &Technology,
        rows: usize,
        n_fm: usize,
        address_bits: usize,
    ) -> ReadPathCost {
        match *self {
            LutImplementation::ArrayColumns => ReadPathCost {
                // Reading the LUT columns is folded into the normal array
                // access; doing it *before* a write costs one extra access of
                // the n_FM columns.
                energy_fj: n_fm as f64 * technology.sram_column_read_energy_fj,
                delay_ps: ARRAY_ACCESS_DELAY_PS,
                area_um2: n_fm as f64 * rows as f64 * technology.sram_cell_area_um2,
            },
            LutImplementation::RegisterFile => ReadPathCost {
                energy_fj: n_fm as f64 * technology.mux2_energy_fj * 2.0,
                // Address decode + mux tree through the register file.
                delay_ps: (address_bits as f64 / 2.0) * technology.mux2_delay_ps,
                area_um2: n_fm as f64
                    * rows as f64
                    * technology.sram_cell_area_um2
                    * REGISTER_FILE_AREA_FACTOR,
            },
            LutImplementation::Cam { entries } => {
                let entry_bits = address_bits + n_fm;
                ReadPathCost {
                    // Every lookup drives all match lines: energy grows with
                    // the number of entries.
                    energy_fj: entries as f64 * address_bits as f64 * technology.and2_energy_fj,
                    delay_ps: 2.0 * technology.and2_delay_ps + technology.mux2_delay_ps,
                    area_um2: entries as f64
                        * entry_bits as f64
                        * technology.sram_cell_area_um2
                        * CAM_CELL_AREA_FACTOR,
                }
            }
        }
    }
}

/// Latency of a full SRAM array access (decode + word-line + sense), used for
/// the read-before-write penalty of the array-column LUT. Representative of a
/// small 28 nm macro.
pub const ARRAY_ACCESS_DELAY_PS: f64 = 350.0;
/// Area of a flip-flop-based register-file bit relative to a 6T SRAM cell.
pub const REGISTER_FILE_AREA_FACTOR: f64 = 4.0;
/// Area of a CAM cell (storage + comparator) relative to a 6T SRAM cell.
pub const CAM_CELL_AREA_FACTOR: f64 = 2.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::generic_28nm()
    }

    #[test]
    fn labels_are_distinct() {
        assert_eq!(LutImplementation::ArrayColumns.label(), "array columns");
        assert_eq!(LutImplementation::RegisterFile.label(), "register file");
        assert!(LutImplementation::Cam { entries: 32 }
            .label()
            .contains("32"));
    }

    #[test]
    fn register_file_and_cam_are_faster_than_array_columns() {
        // The paper's point: the array-column LUT costs a read before every
        // write; the alternatives avoid that serialised array access.
        let rows = 4096;
        let columns = LutImplementation::ArrayColumns.lookup_cost(&tech(), rows, 5, 12);
        let regfile = LutImplementation::RegisterFile.lookup_cost(&tech(), rows, 5, 12);
        let cam = LutImplementation::Cam { entries: 64 }.lookup_cost(&tech(), rows, 5, 12);
        assert!(regfile.delay_ps < columns.delay_ps);
        assert!(cam.delay_ps < columns.delay_ps);
    }

    #[test]
    fn cam_storage_is_smallest_when_faults_are_sparse() {
        let rows = 4096;
        let columns = LutImplementation::ArrayColumns.lookup_cost(&tech(), rows, 5, 12);
        let regfile = LutImplementation::RegisterFile.lookup_cost(&tech(), rows, 5, 12);
        // A CAM provisioned for 64 faulty rows out of 4096.
        let cam = LutImplementation::Cam { entries: 64 }.lookup_cost(&tech(), rows, 5, 12);
        assert!(cam.area_um2 < columns.area_um2);
        assert!(cam.area_um2 < regfile.area_um2);
        // The register file pays an area premium over plain columns.
        assert!(regfile.area_um2 > columns.area_um2);
    }

    #[test]
    fn cam_energy_grows_with_entry_count() {
        let small = LutImplementation::Cam { entries: 16 }.lookup_cost(&tech(), 4096, 3, 12);
        let large = LutImplementation::Cam { entries: 256 }.lookup_cost(&tech(), 4096, 3, 12);
        assert!(large.energy_fj > small.energy_fj);
    }

    #[test]
    fn lookup_cost_scales_with_n_fm_for_storage_based_luts() {
        let narrow = LutImplementation::ArrayColumns.lookup_cost(&tech(), 1024, 1, 10);
        let wide = LutImplementation::ArrayColumns.lookup_cost(&tech(), 1024, 5, 10);
        assert!(wide.area_um2 > narrow.area_um2);
        assert!(wide.energy_fj > narrow.energy_fj);
    }
}
