//! Scheme-level overhead comparison (the paper's Fig. 6).

use crate::components::{secded_decoder, secded_encoder, shuffle_read_path, LogicBudget};
use crate::cost::{ReadPathCost, RelativeCost};
use crate::lut::LutImplementation;
use crate::technology::Technology;

/// The protection blocks compared in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectionBlock {
    /// No protection: zero overhead (reference point, not plotted in Fig. 6).
    Unprotected,
    /// Full-word H(39,32)-style SECDED (the Fig. 6 baseline).
    Secded,
    /// H(22,16)-style priority ECC over the MSB half of the word.
    PriorityEcc,
    /// Bit-shuffling with the given FM-LUT width.
    BitShuffle {
        /// FM-LUT entry width `n_FM` (1..=log2 W).
        n_fm: usize,
    },
}

impl ProtectionBlock {
    /// All blocks evaluated in Fig. 6, in plotting order: bit-shuffling with
    /// `n_FM = 1..=5`, then P-ECC, then the SECDED baseline.
    #[must_use]
    pub fn fig6_catalogue() -> Vec<Self> {
        let mut blocks: Vec<Self> = (1..=5).map(|n_fm| Self::BitShuffle { n_fm }).collect();
        blocks.push(Self::PriorityEcc);
        blocks.push(Self::Secded);
        blocks
    }

    /// Short label used in tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Unprotected => "no-correction".to_owned(),
            Self::Secded => "H(39,32) SECDED".to_owned(),
            Self::PriorityEcc => "H(22,16) P-ECC".to_owned(),
            Self::BitShuffle { n_fm } => format!("bit-shuffle nFM={n_fm}"),
        }
    }
}

/// One row of the Fig. 6 comparison: a block's absolute cost and its cost
/// relative to the SECDED baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Which block this row describes.
    pub block: ProtectionBlock,
    /// Human-readable block label.
    pub label: String,
    /// Absolute read-path cost.
    pub cost: ReadPathCost,
    /// Cost relative to the SECDED baseline (1.0 = same overhead).
    pub relative: RelativeCost,
}

/// Analytical read-path overhead model for a word-organised memory.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadModel {
    technology: Technology,
    rows: usize,
    word_bits: usize,
}

impl OverheadModel {
    /// Creates a model for a memory with `rows` words of `word_bits` bits,
    /// using the default 28 nm technology profile.
    #[must_use]
    pub fn default_28nm(rows: usize, word_bits: usize) -> Self {
        Self::new(Technology::generic_28nm(), rows, word_bits)
    }

    /// Creates a model with an explicit technology profile.
    #[must_use]
    pub fn new(technology: Technology, rows: usize, word_bits: usize) -> Self {
        Self {
            technology,
            rows,
            word_bits,
        }
    }

    /// The paper's memory: 4096 rows of 32-bit words (16 KB).
    #[must_use]
    pub fn paper_16kb() -> Self {
        Self::default_28nm(4096, 32)
    }

    /// Technology profile in use.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// Number of rows of the modelled memory.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Word width of the modelled memory.
    #[must_use]
    pub fn word_bits(&self) -> usize {
        self.word_bits
    }

    fn logic_cost(&self, logic: &LogicBudget) -> ReadPathCost {
        let t = &self.technology;
        ReadPathCost {
            energy_fj: logic.xor2 as f64 * t.xor2_energy_fj
                + logic.and2 as f64 * t.and2_energy_fj
                + logic.mux2 as f64 * t.mux2_energy_fj,
            delay_ps: logic.xor_depth as f64 * t.xor2_delay_ps
                + logic.and_depth as f64 * t.and2_delay_ps
                + logic.mux_depth as f64 * t.mux2_delay_ps,
            area_um2: logic.xor2 as f64 * t.xor2_area_um2
                + logic.and2 as f64 * t.and2_area_um2
                + logic.mux2 as f64 * t.mux2_area_um2,
        }
    }

    fn column_cost(&self, extra_columns: usize) -> ReadPathCost {
        let t = &self.technology;
        ReadPathCost {
            energy_fj: extra_columns as f64 * t.sram_column_read_energy_fj,
            delay_ps: extra_columns as f64 * t.sram_column_delay_ps,
            area_um2: extra_columns as f64 * self.rows as f64 * t.sram_cell_area_um2,
        }
    }

    /// Number of extra storage columns a block needs.
    #[must_use]
    pub fn extra_columns(&self, block: ProtectionBlock) -> usize {
        match block {
            ProtectionBlock::Unprotected => 0,
            // H(W + r + 1, W): r Hamming bits + overall parity.
            ProtectionBlock::Secded => secded_parity_bits(self.word_bits),
            // Parity bits of the code protecting the MSB half.
            ProtectionBlock::PriorityEcc => secded_parity_bits(self.word_bits / 2),
            ProtectionBlock::BitShuffle { n_fm } => n_fm,
        }
    }

    /// Read-path logic budget of a block.
    #[must_use]
    pub fn logic_budget(&self, block: ProtectionBlock) -> LogicBudget {
        match block {
            ProtectionBlock::Unprotected => LogicBudget::default(),
            ProtectionBlock::Secded => {
                secded_decoder(self.word_bits, secded_parity_bits(self.word_bits))
            }
            ProtectionBlock::PriorityEcc => {
                let protected = self.word_bits / 2;
                secded_decoder(protected, secded_parity_bits(protected))
            }
            ProtectionBlock::BitShuffle { n_fm } => shuffle_read_path(self.word_bits, n_fm),
        }
    }

    /// Absolute read-path overhead of a block (extra columns + logic).
    #[must_use]
    pub fn read_path_cost(&self, block: ProtectionBlock) -> ReadPathCost {
        let logic = self.logic_cost(&self.logic_budget(block));
        let columns = self.column_cost(self.extra_columns(block));
        logic + columns
    }

    /// Write-path overhead of a block: the ECC encoder for the ECC schemes,
    /// or the FM-LUT lookup (which the paper notes requires a read prior to
    /// the write) plus the write rotation for bit-shuffling.
    ///
    /// The paper's Fig. 6 deliberately excludes the write path because "write
    /// operations are not on the critical path and are carried out much less
    /// frequently than reads"; this method makes the excluded cost visible so
    /// the LUT-implementation trade-off (§5.1) can be explored.
    #[must_use]
    pub fn write_path_cost(
        &self,
        block: ProtectionBlock,
        lut_implementation: LutImplementation,
    ) -> ReadPathCost {
        let address_bits = crate::components::ceil_log2(self.rows.max(2));
        match block {
            ProtectionBlock::Unprotected => ReadPathCost::zero(),
            ProtectionBlock::Secded => self.logic_cost(&secded_encoder(
                self.word_bits,
                secded_parity_bits(self.word_bits),
            )),
            ProtectionBlock::PriorityEcc => {
                let protected = self.word_bits / 2;
                self.logic_cost(&secded_encoder(protected, secded_parity_bits(protected)))
            }
            ProtectionBlock::BitShuffle { n_fm } => {
                let lookup =
                    lut_implementation.lookup_cost(&self.technology, self.rows, n_fm, address_bits);
                // The rotation itself mirrors the read path; the LUT storage
                // area is already charged on the read path, so only count the
                // lookup energy/delay here.
                let rotate = self.logic_cost(&shuffle_read_path(self.word_bits, n_fm));
                ReadPathCost {
                    energy_fj: lookup.energy_fj + rotate.energy_fj,
                    delay_ps: lookup.delay_ps + rotate.delay_ps,
                    area_um2: rotate.area_um2,
                }
            }
        }
    }

    /// The full Fig. 6 comparison: every block's absolute cost and its cost
    /// relative to the SECDED baseline.
    #[must_use]
    pub fn fig6_comparison(&self) -> Vec<Fig6Row> {
        let baseline = self.read_path_cost(ProtectionBlock::Secded);
        ProtectionBlock::fig6_catalogue()
            .into_iter()
            .map(|block| {
                let cost = self.read_path_cost(block);
                Fig6Row {
                    label: block.label(),
                    relative: cost.relative_to(&baseline),
                    cost,
                    block,
                }
            })
            .collect()
    }

    /// Maximum savings of the bit-shuffling scheme over the SECDED baseline,
    /// across `n_FM = 1..=log2 W` (the headline "83% / 77% / 89%" numbers).
    #[must_use]
    pub fn best_shuffle_savings(&self) -> RelativeCost {
        let baseline = self.read_path_cost(ProtectionBlock::Secded);
        let log2_w = self.word_bits.trailing_zeros() as usize;
        let mut best = RelativeCost {
            energy: 0.0,
            delay: 0.0,
            area: 0.0,
        };
        for n_fm in 1..=log2_w.max(1) {
            let savings = self
                .read_path_cost(ProtectionBlock::BitShuffle { n_fm })
                .relative_to(&baseline)
                .savings();
            best.energy = best.energy.max(savings.energy);
            best.delay = best.delay.max(savings.delay);
            best.area = best.area.max(savings.area);
        }
        best
    }
}

/// Parity bits (including the overall parity) of an extended Hamming SECDED
/// code over `data_bits` bits.
#[must_use]
fn secded_parity_bits(data_bits: usize) -> usize {
    let mut r = 0usize;
    while (1usize << r) < data_bits + r + 1 {
        r += 1;
    }
    r + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_bit_counts_match_paper_codes() {
        assert_eq!(secded_parity_bits(32), 7); // H(39,32)
        assert_eq!(secded_parity_bits(16), 6); // H(22,16)
        assert_eq!(secded_parity_bits(8), 5); // H(13,8)
    }

    #[test]
    fn unprotected_block_has_zero_overhead() {
        let model = OverheadModel::paper_16kb();
        assert_eq!(
            model.read_path_cost(ProtectionBlock::Unprotected),
            ReadPathCost::zero()
        );
        assert_eq!(model.extra_columns(ProtectionBlock::Unprotected), 0);
    }

    #[test]
    fn extra_columns_match_scheme_definitions() {
        let model = OverheadModel::paper_16kb();
        assert_eq!(model.extra_columns(ProtectionBlock::Secded), 7);
        assert_eq!(model.extra_columns(ProtectionBlock::PriorityEcc), 6);
        assert_eq!(
            model.extra_columns(ProtectionBlock::BitShuffle { n_fm: 1 }),
            1
        );
        assert_eq!(
            model.extra_columns(ProtectionBlock::BitShuffle { n_fm: 5 }),
            5
        );
    }

    #[test]
    fn every_shuffle_configuration_beats_secded_in_all_metrics() {
        // Fig. 6: "The proposed scheme provides an advantage over both
        // ECC-based methods in all design aspects" — at least relative to the
        // SECDED baseline, every nFM must win on power, delay and area.
        let model = OverheadModel::paper_16kb();
        let secded = model.read_path_cost(ProtectionBlock::Secded);
        for n_fm in 1..=5 {
            let cost = model.read_path_cost(ProtectionBlock::BitShuffle { n_fm });
            assert!(
                cost.dominates(&secded),
                "nFM={n_fm} does not dominate SECDED"
            );
        }
    }

    #[test]
    fn shuffle_cost_is_monotone_in_n_fm() {
        let model = OverheadModel::paper_16kb();
        let mut previous = ReadPathCost::zero();
        for n_fm in 1..=5 {
            let cost = model.read_path_cost(ProtectionBlock::BitShuffle { n_fm });
            assert!(cost.energy_fj > previous.energy_fj);
            assert!(cost.delay_ps > previous.delay_ps);
            assert!(cost.area_um2 > previous.area_um2);
            previous = cost;
        }
    }

    #[test]
    fn pecc_is_cheaper_than_secded() {
        let model = OverheadModel::paper_16kb();
        let secded = model.read_path_cost(ProtectionBlock::Secded);
        let pecc = model.read_path_cost(ProtectionBlock::PriorityEcc);
        assert!(pecc.dominates(&secded));
    }

    #[test]
    fn best_shuffle_savings_are_large() {
        // The paper quotes savings of up to 83% (power), 77% (delay) and 89%
        // (area). The analytical model should land in the same regime: the
        // nFM=1 configuration must save well over half of every overhead.
        let model = OverheadModel::paper_16kb();
        let savings = model.best_shuffle_savings();
        assert!(savings.energy > 0.6, "energy savings {}", savings.energy);
        assert!(savings.delay > 0.6, "delay savings {}", savings.delay);
        assert!(savings.area > 0.6, "area savings {}", savings.area);
        assert!(savings.energy < 1.0 && savings.delay < 1.0 && savings.area < 1.0);
    }

    #[test]
    fn fig6_comparison_has_expected_rows_and_baseline() {
        let model = OverheadModel::paper_16kb();
        let rows = model.fig6_comparison();
        assert_eq!(rows.len(), 7);
        let baseline = rows
            .iter()
            .find(|r| r.block == ProtectionBlock::Secded)
            .unwrap();
        assert!((baseline.relative.energy - 1.0).abs() < 1e-12);
        assert!((baseline.relative.delay - 1.0).abs() < 1e-12);
        assert!((baseline.relative.area - 1.0).abs() < 1e-12);
        // Every non-baseline row is below 1.0 in all metrics.
        for row in &rows {
            if row.block != ProtectionBlock::Secded {
                assert!(row.relative.energy < 1.0, "{}", row.label);
                assert!(row.relative.delay < 1.0, "{}", row.label);
                assert!(row.relative.area < 1.0, "{}", row.label);
            }
        }
    }

    #[test]
    fn write_path_with_array_column_lut_pays_a_read_before_write() {
        // The paper's caveat about the straightforward LUT realisation: the
        // bit-shuffling write path with an in-array LUT is slower than with a
        // register file or CAM, and can even exceed the ECC encoder latency.
        let model = OverheadModel::paper_16kb();
        let block = ProtectionBlock::BitShuffle { n_fm: 3 };
        let columns = model.write_path_cost(block, LutImplementation::ArrayColumns);
        let regfile = model.write_path_cost(block, LutImplementation::RegisterFile);
        let cam = model.write_path_cost(block, LutImplementation::Cam { entries: 64 });
        assert!(regfile.delay_ps < columns.delay_ps);
        assert!(cam.delay_ps < columns.delay_ps);
        let secded_write =
            model.write_path_cost(ProtectionBlock::Secded, LutImplementation::ArrayColumns);
        assert!(columns.delay_ps > secded_write.delay_ps);
        assert!(cam.delay_ps < secded_write.delay_ps + ARRAY_MARGIN_PS);
    }

    /// Slack used when comparing CAM write latency against the ECC encoder.
    const ARRAY_MARGIN_PS: f64 = 100.0;

    #[test]
    fn unprotected_write_path_is_free_and_ecc_writes_cost_the_encoder() {
        let model = OverheadModel::paper_16kb();
        assert_eq!(
            model.write_path_cost(
                ProtectionBlock::Unprotected,
                LutImplementation::ArrayColumns
            ),
            ReadPathCost::zero()
        );
        let secded =
            model.write_path_cost(ProtectionBlock::Secded, LutImplementation::ArrayColumns);
        let pecc = model.write_path_cost(
            ProtectionBlock::PriorityEcc,
            LutImplementation::ArrayColumns,
        );
        assert!(secded.energy_fj > pecc.energy_fj);
        assert!(secded.delay_ps >= pecc.delay_ps);
    }

    #[test]
    fn area_scales_with_row_count() {
        let small = OverheadModel::default_28nm(1024, 32);
        let large = OverheadModel::default_28nm(4096, 32);
        let cost_small = small.read_path_cost(ProtectionBlock::Secded);
        let cost_large = large.read_path_cost(ProtectionBlock::Secded);
        assert!(cost_large.area_um2 > cost_small.area_um2 * 3.0);
        // Read energy and delay are per-access and do not scale with rows in
        // this overhead-only model.
        assert!((cost_large.energy_fj - cost_small.energy_fj).abs() < 1e-9);
    }

    #[test]
    fn delay_ordering_shuffle_vs_ecc_matches_paper() {
        // Read delay: even the finest shuffle (5 mux stages) is well below the
        // ~13-gate SECDED decode path.
        let model = OverheadModel::paper_16kb();
        let secded = model.read_path_cost(ProtectionBlock::Secded);
        let shuffle5 = model.read_path_cost(ProtectionBlock::BitShuffle { n_fm: 5 });
        assert!(shuffle5.delay_ps < 0.8 * secded.delay_ps);
        let shuffle1 = model.read_path_cost(ProtectionBlock::BitShuffle { n_fm: 1 });
        assert!(shuffle1.delay_ps < 0.35 * secded.delay_ps);
    }
}
