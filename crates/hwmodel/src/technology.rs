//! Per-primitive delay / energy / area constants for a generic 28 nm node.

/// Technology constants used by the cost model.
///
/// The defaults are representative values for a 28 nm FD-SOI standard-cell
/// library and high-density SRAM macro; they are not calibrated to any
/// proprietary PDK. Because Fig. 6 reports *relative* overheads, only the
/// ratios between these constants matter for reproducing the paper's shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Propagation delay of a 2-input XOR gate (ps).
    pub xor2_delay_ps: f64,
    /// Propagation delay of a 2-input AND/NAND gate (ps).
    pub and2_delay_ps: f64,
    /// Propagation delay of a 2-to-1 multiplexer (ps).
    pub mux2_delay_ps: f64,
    /// Switching energy of a 2-input XOR gate per access (fJ, including the
    /// expected activity factor of the read path).
    pub xor2_energy_fj: f64,
    /// Switching energy of a 2-input AND/NAND gate per access (fJ).
    pub and2_energy_fj: f64,
    /// Switching energy of a 2-to-1 multiplexer per access (fJ).
    pub mux2_energy_fj: f64,
    /// Area of a 2-input XOR gate (µm²).
    pub xor2_area_um2: f64,
    /// Area of a 2-input AND/NAND gate (µm²).
    pub and2_area_um2: f64,
    /// Area of a 2-to-1 multiplexer (µm²).
    pub mux2_area_um2: f64,
    /// Area of one 6T SRAM bit-cell (µm²).
    pub sram_cell_area_um2: f64,
    /// Read energy of one SRAM column per row access (fJ), covering bit-line
    /// precharge and sensing.
    pub sram_column_read_energy_fj: f64,
    /// Additional access time contributed by widening the row by one column
    /// (ps). Small: extra columns mainly cost energy and area, not delay.
    pub sram_column_delay_ps: f64,
}

impl Technology {
    /// Representative constants for a generic 28 nm node.
    #[must_use]
    pub fn generic_28nm() -> Self {
        Self {
            xor2_delay_ps: 18.0,
            and2_delay_ps: 12.0,
            mux2_delay_ps: 16.0,
            xor2_energy_fj: 0.55,
            and2_energy_fj: 0.30,
            mux2_energy_fj: 0.45,
            xor2_area_um2: 0.55,
            and2_area_um2: 0.35,
            mux2_area_um2: 0.45,
            sram_cell_area_um2: 0.12,
            sram_column_read_energy_fj: 9.0,
            sram_column_delay_ps: 1.5,
        }
    }

    /// A scaled profile for exploring other nodes: all delays, energies and
    /// areas are multiplied by the given factors.
    #[must_use]
    pub fn scaled(&self, delay: f64, energy: f64, area: f64) -> Self {
        Self {
            xor2_delay_ps: self.xor2_delay_ps * delay,
            and2_delay_ps: self.and2_delay_ps * delay,
            mux2_delay_ps: self.mux2_delay_ps * delay,
            xor2_energy_fj: self.xor2_energy_fj * energy,
            and2_energy_fj: self.and2_energy_fj * energy,
            mux2_energy_fj: self.mux2_energy_fj * energy,
            xor2_area_um2: self.xor2_area_um2 * area,
            and2_area_um2: self.and2_area_um2 * area,
            mux2_area_um2: self.mux2_area_um2 * area,
            sram_cell_area_um2: self.sram_cell_area_um2 * area,
            sram_column_read_energy_fj: self.sram_column_read_energy_fj * energy,
            sram_column_delay_ps: self.sram_column_delay_ps * delay,
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::generic_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_generic_28nm() {
        assert_eq!(Technology::default(), Technology::generic_28nm());
    }

    #[test]
    fn all_constants_are_positive() {
        let t = Technology::generic_28nm();
        for v in [
            t.xor2_delay_ps,
            t.and2_delay_ps,
            t.mux2_delay_ps,
            t.xor2_energy_fj,
            t.and2_energy_fj,
            t.mux2_energy_fj,
            t.xor2_area_um2,
            t.and2_area_um2,
            t.mux2_area_um2,
            t.sram_cell_area_um2,
            t.sram_column_read_energy_fj,
            t.sram_column_delay_ps,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn scaling_multiplies_each_axis_independently() {
        let base = Technology::generic_28nm();
        let scaled = base.scaled(2.0, 3.0, 4.0);
        assert!((scaled.xor2_delay_ps - base.xor2_delay_ps * 2.0).abs() < 1e-12);
        assert!((scaled.mux2_energy_fj - base.mux2_energy_fj * 3.0).abs() < 1e-12);
        assert!((scaled.sram_cell_area_um2 - base.sram_cell_area_um2 * 4.0).abs() < 1e-12);
        assert!(
            (scaled.sram_column_read_energy_fj - base.sram_column_read_energy_fj * 3.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn gate_delays_have_plausible_ordering() {
        let t = Technology::generic_28nm();
        // XOR gates are slower than simple AND gates in any CMOS library.
        assert!(t.xor2_delay_ps > t.and2_delay_ps);
    }
}
