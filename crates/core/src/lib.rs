//! Significance-driven bit-shuffling fault mitigation for unreliable
//! memories.
//!
//! This crate implements the primary contribution of Ganapathy et al.,
//! *Mitigating the Impact of Faults in Unreliable Memories for
//! Error-Resilient Applications* (DAC 2015): instead of **correcting** memory
//! faults with ECC, the stored word is **circular-shifted** so that the least
//! significant bits land on the faulty bit-cells. The bit-error distribution
//! is thereby skewed towards the low-order bits, bounding the error magnitude
//! at `2^(S-1)` for a segment size `S = W / 2^{n_FM}` instead of up to
//! `2^(W-1)` for an unprotected word.
//!
//! The building blocks mirror the paper's Fig. 3:
//!
//! * [`SegmentGeometry`] — the relationship between the word width `W`, the
//!   FM-LUT entry width `n_FM`, and the segment size `S` (Eq. (1));
//! * [`FmLut`] — the fault-map look-up table holding the per-row shift index
//!   `x_FM(r)`, built from a BIST report or fault map (Eq. (2));
//! * [`rotate_right`] / [`rotate_left`] — the write/read barrel shifter;
//! * [`ShuffledMemory`] — a complete protected memory coupling an
//!   [`SramArray`](faultmit_memsim::SramArray) with an FM-LUT and the shifter;
//! * [`MitigationScheme`] and the [`Scheme`] catalogue — a uniform interface
//!   over *no protection*, *SECDED ECC*, *P-ECC* and *bit-shuffling*, used by
//!   the analysis and application crates to compare all schemes on identical
//!   fault maps;
//! * [`error_magnitude`] — the closed-form worst-case error magnitude per
//!   faulty bit position (Fig. 4).
//!
//! # Example
//!
//! ```
//! use faultmit_core::{ShuffledMemory, SegmentGeometry};
//! use faultmit_memsim::{Fault, FaultMap, MemoryConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(16, 32)?;
//! let mut faults = FaultMap::new(config);
//! // The MSB cell of row 0 is broken: unprotected error magnitude 2^31.
//! faults.insert(Fault::bit_flip(0, 31))?;
//!
//! let geometry = SegmentGeometry::new(32, 5)?; // single-bit segments
//! let mut memory = ShuffledMemory::from_fault_map(geometry, faults)?;
//!
//! memory.write(0, 123_456_789)?;
//! let read = memory.read(0)?;
//! // The fault now lands on the least significant segment: error <= 1.
//! assert!(read.abs_diff(123_456_789) <= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod error_magnitude;
pub mod fmlut;
pub mod mitigation;
pub mod scheme;
pub mod segment;
pub mod shifter;

pub use error::CoreError;
pub use error_magnitude::{max_error_magnitude, worst_case_error_magnitude};
pub use fmlut::FmLut;
pub use mitigation::{BlockLane, MitigationScheme, ObservedWord, Scheme};
pub use scheme::ShuffledMemory;
pub use segment::SegmentGeometry;
pub use shifter::{rotate_left, rotate_right};
