//! Circular barrel shifter for arbitrary word widths.
//!
//! The bit-shuffling scheme rotates the data word right by `T(r)` bits on
//! every write and left by the same amount on every read (§3). Hardware
//! implements this with a `log2(W)`-stage barrel shifter; here the rotation
//! is a pair of pure functions over `u64`-carried words.

/// Rotates the low `width` bits of `value` right by `shift` positions.
///
/// Bits above `width` must be zero and remain zero. `shift` may be any value;
/// it is reduced modulo `width`.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
///
/// # Example
///
/// ```
/// use faultmit_core::rotate_right;
///
/// assert_eq!(rotate_right(0b0001, 1, 4), 0b1000);
/// assert_eq!(rotate_right(0b1000, 1, 4), 0b0100);
/// ```
#[must_use]
pub fn rotate_right(value: u64, shift: usize, width: usize) -> u64 {
    assert!(width > 0 && width <= 64, "width must be in 1..=64");
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    debug_assert_eq!(value & !mask, 0, "value has bits above the word width");
    // In-range shifts (the overwhelmingly common case on the evaluation hot
    // path) skip the integer division of the modulo reduction.
    let shift = if shift < width { shift } else { shift % width };
    if shift == 0 {
        return value;
    }
    ((value >> shift) | (value << (width - shift))) & mask
}

/// Rotates the low `width` bits of `value` left by `shift` positions.
///
/// Inverse of [`rotate_right`] for the same `shift` and `width`.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
///
/// # Example
///
/// ```
/// use faultmit_core::{rotate_left, rotate_right};
///
/// let word = 0xDEAD_BEEF;
/// let stored = rotate_right(word, 13, 32);
/// assert_eq!(rotate_left(stored, 13, 32), word);
/// ```
#[must_use]
pub fn rotate_left(value: u64, shift: usize, width: usize) -> u64 {
    assert!(width > 0 && width <= 64, "width must be in 1..=64");
    let shift = if shift < width { shift } else { shift % width };
    if shift == 0 {
        return value;
    }
    rotate_right(value, width - shift, width)
}

/// Number of 2-to-1 multiplexer stages a hardware barrel shifter needs for a
/// `width`-bit word: `⌈log2(width)⌉`.
///
/// Used by the hardware-overhead model; exposed here so the cost model and
/// the functional model agree on the shifter structure.
#[must_use]
pub fn barrel_shifter_stages(width: usize) -> usize {
    if width <= 1 {
        0
    } else {
        (usize::BITS - (width - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_right_known_patterns() {
        assert_eq!(rotate_right(0x8000_0000, 31, 32), 0x0000_0001);
        assert_eq!(rotate_right(0x0000_0001, 1, 32), 0x8000_0000);
        assert_eq!(rotate_right(0x1234_5678, 0, 32), 0x1234_5678);
        assert_eq!(rotate_right(0xF, 4, 8), 0xF0);
    }

    #[test]
    fn rotate_left_known_patterns() {
        assert_eq!(rotate_left(0x0000_0001, 31, 32), 0x8000_0000);
        assert_eq!(rotate_left(0x8000_0000, 1, 32), 0x0000_0001);
        assert_eq!(rotate_left(0xF0, 4, 8), 0xF);
    }

    #[test]
    fn rotation_matches_u32_native_rotate() {
        let samples = [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x0F0F_0F0F, 0x8000_0001];
        for &v in &samples {
            for shift in 0..64usize {
                assert_eq!(
                    rotate_right(v as u64, shift, 32),
                    v.rotate_right((shift % 32) as u32) as u64
                );
                assert_eq!(
                    rotate_left(v as u64, shift, 32),
                    v.rotate_left((shift % 32) as u32) as u64
                );
            }
        }
    }

    #[test]
    fn rotation_round_trips_for_all_widths() {
        for width in [1usize, 2, 4, 8, 16, 32, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let value = 0xA5A5_5A5A_DEAD_BEEFu64 & mask;
            for shift in 0..width {
                let stored = rotate_right(value, shift, width);
                assert_eq!(rotate_left(stored, shift, width), value);
                assert_eq!(stored & !mask, 0, "rotation escaped the word");
            }
        }
    }

    #[test]
    fn full_width_rotation_is_identity() {
        assert_eq!(rotate_right(0xABCD, 16, 16), 0xABCD);
        assert_eq!(rotate_left(0xABCD, 16, 16), 0xABCD);
        assert_eq!(rotate_right(0xABCD, 32, 16), 0xABCD);
    }

    #[test]
    fn single_bit_word_is_unchanged() {
        assert_eq!(rotate_right(1, 5, 1), 1);
        assert_eq!(rotate_left(0, 3, 1), 0);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_panics() {
        let _ = rotate_right(0, 0, 0);
    }

    #[test]
    fn shifter_stage_count() {
        assert_eq!(barrel_shifter_stages(1), 0);
        assert_eq!(barrel_shifter_stages(2), 1);
        assert_eq!(barrel_shifter_stages(16), 4);
        assert_eq!(barrel_shifter_stages(32), 5);
        assert_eq!(barrel_shifter_stages(39), 6);
        assert_eq!(barrel_shifter_stages(64), 6);
    }

    #[test]
    fn popcount_is_preserved_by_rotation() {
        let value = 0x1357_9BDFu64;
        for shift in 0..32 {
            assert_eq!(
                rotate_right(value, shift, 32).count_ones(),
                value.count_ones()
            );
        }
    }
}
