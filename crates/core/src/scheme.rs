//! The complete bit-shuffling protected memory.
//!
//! [`ShuffledMemory`] couples a faulty [`SramArray`] with an [`FmLut`] and the
//! barrel shifter, implementing the full write/read datapath of the paper's
//! Fig. 3:
//!
//! * **write**: look up `x_FM(r)`, rotate the data word right by
//!   `T(r) = S · (2^{n_FM} − x_FM(r))`, store;
//! * **read**: read the (possibly corrupted) stored word, rotate left by
//!   `T(r)`, return.
//!
//! Any error introduced by a faulty cell is thereby confined to the least
//! significant segment of the restored word.

use crate::error::CoreError;
use crate::fmlut::FmLut;
use crate::segment::SegmentGeometry;
use crate::shifter::{rotate_left, rotate_right};
use faultmit_memsim::{FaultMap, MarchBist, MemoryConfig, SramArray};

/// A memory protected by the significance-driven bit-shuffling scheme.
///
/// # Example
///
/// ```
/// use faultmit_core::{SegmentGeometry, ShuffledMemory};
/// use faultmit_memsim::{Fault, FaultMap, MemoryConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = MemoryConfig::new(8, 32)?;
/// let mut faults = FaultMap::new(config);
/// faults.insert(Fault::bit_flip(1, 28))?;
///
/// // Two-bit FM-LUT: four 8-bit segments, worst-case error 2^7.
/// let geometry = SegmentGeometry::new(32, 2)?;
/// let mut memory = ShuffledMemory::from_fault_map(geometry, faults)?;
/// memory.write(1, 0x7FFF_FFFF)?;
/// assert!(memory.read(1)?.abs_diff(0x7FFF_FFFF) <= 1 << 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShuffledMemory {
    geometry: SegmentGeometry,
    lut: FmLut,
    array: SramArray,
}

impl ShuffledMemory {
    /// Builds a protected memory from a known fault map (as if the BIST had
    /// already run and programmed the FM-LUT).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] when the fault map's word width
    /// does not match the geometry.
    pub fn from_fault_map(geometry: SegmentGeometry, faults: FaultMap) -> Result<Self, CoreError> {
        let lut = FmLut::from_fault_map(geometry, &faults)?;
        let array = SramArray::with_faults(faults.config(), faults);
        Ok(Self {
            geometry,
            lut,
            array,
        })
    }

    /// Builds a protected memory by taking ownership of a faulty array and
    /// running the March C- BIST on it to discover the fault locations — the
    /// paper's power-on self-test flow.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] when the array's word width does
    /// not match the geometry, or propagates BIST access errors.
    pub fn from_bist(geometry: SegmentGeometry, mut array: SramArray) -> Result<Self, CoreError> {
        if array.config().word_bits() != geometry.word_bits() {
            return Err(CoreError::InvalidGeometry {
                reason: format!(
                    "array word width {} does not match geometry word width {}",
                    array.config().word_bits(),
                    geometry.word_bits()
                ),
            });
        }
        let report = MarchBist::new().run(&mut array)?;
        let lut = FmLut::from_bist_report(geometry, &report)?;
        Ok(Self {
            geometry,
            lut,
            array,
        })
    }

    /// Builds a fault-free protected memory with the given number of rows
    /// (useful for overhead-only experiments).
    ///
    /// # Errors
    ///
    /// Returns an error when the geometry cannot form a valid memory
    /// configuration.
    pub fn fault_free(geometry: SegmentGeometry, rows: usize) -> Result<Self, CoreError> {
        let config = MemoryConfig::new(rows, geometry.word_bits())?;
        Ok(Self {
            geometry,
            lut: FmLut::new(geometry, rows),
            array: SramArray::new(config),
        })
    }

    /// Segment geometry in use.
    #[must_use]
    pub fn geometry(&self) -> SegmentGeometry {
        self.geometry
    }

    /// The FM-LUT programmed for this die.
    #[must_use]
    pub fn lut(&self) -> &FmLut {
        &self.lut
    }

    /// The underlying (faulty) storage array.
    #[must_use]
    pub fn array(&self) -> &SramArray {
        &self.array
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.array.config().rows()
    }

    /// Writes `value` to `row`, applying the write-path rotation.
    ///
    /// # Errors
    ///
    /// Returns an error when the row is out of range or the value does not
    /// fit the word width.
    pub fn write(&mut self, row: usize, value: u64) -> Result<(), CoreError> {
        self.array.config().check_value(value)?;
        let shift = self.lut.shift_for_row(row)?;
        let stored = rotate_right(value, shift, self.geometry.word_bits());
        self.array.write(row, stored)?;
        Ok(())
    }

    /// Reads the word at `row`, applying the read-path rotation.
    ///
    /// # Errors
    ///
    /// Returns an error when the row is out of range.
    pub fn read(&mut self, row: usize) -> Result<u64, CoreError> {
        let shift = self.lut.shift_for_row(row)?;
        let stored = self.array.read(row)?;
        Ok(rotate_left(stored, shift, self.geometry.word_bits()))
    }

    /// Reads without updating access counters (for analysis).
    ///
    /// # Errors
    ///
    /// Returns an error when the row is out of range.
    pub fn peek(&self, row: usize) -> Result<u64, CoreError> {
        let shift = self.lut.shift_for_row(row)?;
        let stored = self.array.peek(row)?;
        Ok(rotate_left(stored, shift, self.geometry.word_bits()))
    }

    /// Worst-case error magnitude guaranteed by the configured segment size
    /// under the single-fault-per-word assumption (`2^{S-1}`).
    #[must_use]
    pub fn max_error_magnitude(&self) -> u64 {
        self.geometry.max_error_magnitude()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_memsim::Fault;

    fn config() -> MemoryConfig {
        MemoryConfig::new(32, 32).unwrap()
    }

    fn map(faults: &[Fault]) -> FaultMap {
        FaultMap::from_faults(config(), faults.iter().copied()).unwrap()
    }

    #[test]
    fn fault_free_memory_round_trips() {
        let geometry = SegmentGeometry::new(32, 5).unwrap();
        let mut mem = ShuffledMemory::fault_free(geometry, 16).unwrap();
        for row in 0..16 {
            mem.write(row, row as u64 * 0x0101_0101).unwrap();
        }
        for row in 0..16 {
            assert_eq!(mem.read(row).unwrap(), row as u64 * 0x0101_0101);
        }
    }

    #[test]
    fn single_bit_segment_confines_error_to_one_lsb() {
        // With n_FM = 5 a single fault anywhere produces an error of at most 1.
        for col in [0usize, 5, 16, 30, 31] {
            let geometry = SegmentGeometry::new(32, 5).unwrap();
            let mut mem =
                ShuffledMemory::from_fault_map(geometry, map(&[Fault::bit_flip(7, col)])).unwrap();
            for &value in &[0u64, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0000] {
                mem.write(7, value).unwrap();
                let read = mem.read(7).unwrap();
                assert!(
                    read.abs_diff(value) <= 1,
                    "col {col}, value {value:#x}: error {}",
                    read.abs_diff(value)
                );
            }
        }
    }

    #[test]
    fn error_bound_holds_for_every_segment_size() {
        for n_fm in 1..=5usize {
            let geometry = SegmentGeometry::new(32, n_fm).unwrap();
            let bound = geometry.max_error_magnitude();
            for col in 0..32usize {
                let mut mem =
                    ShuffledMemory::from_fault_map(geometry, map(&[Fault::bit_flip(3, col)]))
                        .unwrap();
                for &value in &[0u64, 0xFFFF_FFFF, 0xA5A5_A5A5] {
                    mem.write(3, value).unwrap();
                    let read = mem.read(3).unwrap();
                    assert!(
                        read.abs_diff(value) <= bound,
                        "n_FM {n_fm}, col {col}: error {} > bound {bound}",
                        read.abs_diff(value)
                    );
                }
            }
        }
    }

    #[test]
    fn unprotected_rows_are_unaffected_by_other_rows_faults() {
        let geometry = SegmentGeometry::new(32, 5).unwrap();
        let mut mem =
            ShuffledMemory::from_fault_map(geometry, map(&[Fault::bit_flip(0, 31)])).unwrap();
        mem.write(1, 0x1234_5678).unwrap();
        assert_eq!(mem.read(1).unwrap(), 0x1234_5678);
    }

    #[test]
    fn stuck_at_faults_are_also_mitigated() {
        let geometry = SegmentGeometry::new(32, 5).unwrap();
        let mut mem = ShuffledMemory::from_fault_map(
            geometry,
            map(&[Fault::stuck_at_zero(2, 29), Fault::stuck_at_one(9, 30)]),
        )
        .unwrap();
        for &value in &[0u64, u32::MAX as u64, 0x7777_7777] {
            mem.write(2, value).unwrap();
            assert!(mem.read(2).unwrap().abs_diff(value) <= 1);
            mem.write(9, value).unwrap();
            assert!(mem.read(9).unwrap().abs_diff(value) <= 1);
        }
    }

    #[test]
    fn from_bist_matches_from_fault_map() {
        let faults = map(&[Fault::bit_flip(4, 27), Fault::stuck_at_one(11, 13)]);
        let geometry = SegmentGeometry::new(32, 4).unwrap();
        let array = SramArray::with_faults(config(), faults.clone());

        let mut from_bist = ShuffledMemory::from_bist(geometry, array).unwrap();
        let mut from_map = ShuffledMemory::from_fault_map(geometry, faults).unwrap();
        assert_eq!(from_bist.lut(), from_map.lut());

        for &value in &[0x0BAD_F00Du64, 0xFFFF_0000] {
            from_bist.write(4, value).unwrap();
            from_map.write(4, value).unwrap();
            assert_eq!(from_bist.read(4).unwrap(), from_map.read(4).unwrap());
        }
    }

    #[test]
    fn from_bist_rejects_mismatched_width() {
        let geometry = SegmentGeometry::new(32, 2).unwrap();
        let array = SramArray::new(MemoryConfig::new(8, 16).unwrap());
        assert!(ShuffledMemory::from_bist(geometry, array).is_err());
    }

    #[test]
    fn peek_does_not_change_access_counters() {
        let geometry = SegmentGeometry::new(32, 5).unwrap();
        let mut mem =
            ShuffledMemory::from_fault_map(geometry, map(&[Fault::bit_flip(0, 15)])).unwrap();
        mem.write(0, 42).unwrap();
        let peeked = mem.peek(0).unwrap();
        let read = mem.read(0).unwrap();
        assert_eq!(peeked, read);
        assert_eq!(mem.array().read_count(), 1);
    }

    #[test]
    fn invalid_accesses_are_rejected() {
        let geometry = SegmentGeometry::new(32, 5).unwrap();
        let mut mem = ShuffledMemory::fault_free(geometry, 4).unwrap();
        assert!(mem.write(4, 0).is_err());
        assert!(mem.read(4).is_err());
        assert!(mem.peek(4).is_err());
        assert!(mem.write(0, 1 << 32).is_err());
    }

    #[test]
    fn max_error_magnitude_reports_geometry_bound() {
        let geometry = SegmentGeometry::new(32, 1).unwrap();
        let mem = ShuffledMemory::fault_free(geometry, 4).unwrap();
        assert_eq!(mem.max_error_magnitude(), 1 << 15);
        assert_eq!(mem.rows(), 4);
    }
}
