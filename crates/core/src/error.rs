//! Error types for the bit-shuffling core.

use std::error::Error;
use std::fmt;

/// Errors reported by the bit-shuffling scheme.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An invalid segment geometry was requested (e.g. `n_FM` out of range or
    /// a word width that is not divisible into `2^{n_FM}` segments).
    InvalidGeometry {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A row address is outside the FM-LUT / memory.
    RowOutOfRange {
        /// The requested row.
        row: usize,
        /// Number of rows available.
        rows: usize,
    },
    /// A shift index does not fit in the FM-LUT entry width.
    ShiftIndexOutOfRange {
        /// The requested shift index `x_FM`.
        index: usize,
        /// The number of representable segments `2^{n_FM}`.
        segments: usize,
    },
    /// An underlying memory operation failed.
    Memory(faultmit_memsim::MemError),
    /// An underlying ECC operation failed.
    Ecc(faultmit_ecc::EccError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidGeometry { reason } => {
                write!(f, "invalid bit-shuffling geometry: {reason}")
            }
            CoreError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for {rows} rows")
            }
            CoreError::ShiftIndexOutOfRange { index, segments } => {
                write!(
                    f,
                    "shift index {index} out of range for {segments} segments"
                )
            }
            CoreError::Memory(e) => write!(f, "memory error: {e}"),
            CoreError::Ecc(e) => write!(f, "ecc error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Memory(e) => Some(e),
            CoreError::Ecc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<faultmit_memsim::MemError> for CoreError {
    fn from(value: faultmit_memsim::MemError) -> Self {
        CoreError::Memory(value)
    }
}

impl From<faultmit_ecc::EccError> for CoreError {
    fn from(value: faultmit_ecc::EccError) -> Self {
        CoreError::Ecc(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = CoreError::ShiftIndexOutOfRange {
            index: 40,
            segments: 32,
        };
        assert!(err.to_string().contains("40"));
        assert!(err.to_string().contains("32"));

        let err = CoreError::InvalidGeometry {
            reason: "bad".to_owned(),
        };
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn wrapped_errors_expose_their_source() {
        let mem = faultmit_memsim::MemError::RowOutOfRange { row: 1, rows: 1 };
        let err = CoreError::from(mem);
        assert!(Error::source(&err).is_some());

        let ecc = faultmit_ecc::EccError::DataTooWide {
            value: 0,
            data_bits: 8,
        };
        let err = CoreError::from(ecc);
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
