//! Segment geometry of the bit-shuffling scheme (Eq. (1) of the paper).
//!
//! The FM-LUT entry width `n_FM` determines into how many segments the word
//! is divided: `2^{n_FM}` segments of `S = W / 2^{n_FM}` bits each. Larger
//! `n_FM` means finer shifting granularity (down to single-bit segments for
//! `n_FM = log2 W`), a smaller residual error bound (`2^{S-1}`), but a wider
//! LUT and a more expensive shifter.

use crate::error::CoreError;

/// Segment geometry: word width `W`, FM-LUT entry width `n_FM`, segment size
/// `S = W / 2^{n_FM}`.
///
/// # Example
///
/// ```
/// use faultmit_core::SegmentGeometry;
///
/// # fn main() -> Result<(), faultmit_core::CoreError> {
/// let geometry = SegmentGeometry::new(32, 3)?;
/// assert_eq!(geometry.segment_count(), 8);
/// assert_eq!(geometry.segment_bits(), 4);
/// assert_eq!(geometry.max_error_magnitude(), 1 << 3); // 2^(S-1)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentGeometry {
    word_bits: usize,
    n_fm: usize,
}

impl SegmentGeometry {
    /// Creates a geometry for `word_bits`-bit words with an `n_fm`-bit FM-LUT
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] when:
    /// * `word_bits` is zero, not a power of two, or larger than 64;
    /// * `n_fm` is zero or larger than `log2(word_bits)` (Eq. (1) requires
    ///   `1 ≤ n_FM ≤ ⌈log2 W⌉`).
    pub fn new(word_bits: usize, n_fm: usize) -> Result<Self, CoreError> {
        if word_bits == 0 || word_bits > 64 || !word_bits.is_power_of_two() {
            return Err(CoreError::InvalidGeometry {
                reason: format!("word width must be a power of two in 1..=64, got {word_bits}"),
            });
        }
        let log2_w = word_bits.trailing_zeros() as usize;
        if n_fm == 0 || n_fm > log2_w {
            return Err(CoreError::InvalidGeometry {
                reason: format!(
                    "n_FM must be in 1..={log2_w} for {word_bits}-bit words, got {n_fm}"
                ),
            });
        }
        Ok(Self { word_bits, n_fm })
    }

    /// All valid geometries for a word width, in increasing `n_FM` order
    /// (`n_FM = 1` up to single-bit segments).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] for an unsupported word width.
    pub fn all_for_word(word_bits: usize) -> Result<Vec<Self>, CoreError> {
        // Validate the width itself by constructing the first geometry.
        let first = Self::new(word_bits, 1)?;
        let log2_w = word_bits.trailing_zeros() as usize;
        let mut all = vec![first];
        for n_fm in 2..=log2_w {
            all.push(Self::new(word_bits, n_fm)?);
        }
        Ok(all)
    }

    /// The paper's finest-granularity configuration for 32-bit words
    /// (`n_FM = 5`, single-bit segments).
    #[must_use]
    pub fn paper_32bit_finest() -> Self {
        Self {
            word_bits: 32,
            n_fm: 5,
        }
    }

    /// Word width `W` in bits.
    #[must_use]
    pub fn word_bits(&self) -> usize {
        self.word_bits
    }

    /// FM-LUT entry width `n_FM` in bits.
    #[must_use]
    pub fn n_fm(&self) -> usize {
        self.n_fm
    }

    /// Number of segments `2^{n_FM}`.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        1 << self.n_fm
    }

    /// Segment size `S = W / 2^{n_FM}` in bits (Eq. (1)).
    #[must_use]
    pub fn segment_bits(&self) -> usize {
        self.word_bits >> self.n_fm
    }

    /// Worst-case error magnitude `2^{S-1}` for a single fault per word
    /// (the bound quoted in §3 of the paper).
    #[must_use]
    pub fn max_error_magnitude(&self) -> u64 {
        1u64 << (self.segment_bits() - 1)
    }

    /// `log2(S)` — the constructor guarantees `word_bits` is a power of two,
    /// so the segment size is one as well and divisions by it reduce to
    /// shifts (this sits on the per-faulty-row evaluation path).
    fn segment_bits_log2(&self) -> usize {
        self.word_bits.trailing_zeros() as usize - self.n_fm
    }

    /// Segment index containing bit position `bit` (0 = least significant
    /// segment).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `bit >= word_bits`.
    #[must_use]
    pub fn segment_of_bit(&self, bit: usize) -> usize {
        debug_assert!(bit < self.word_bits);
        bit >> self.segment_bits_log2()
    }

    /// Bit offset of `bit` within its segment.
    #[must_use]
    pub fn offset_in_segment(&self, bit: usize) -> usize {
        bit & (self.segment_bits() - 1)
    }

    /// The circular right-shift amount `T = S · (2^{n_FM} − x_FM)` (Eq. (2)),
    /// reduced modulo `W` so that `x_FM = 0` maps to "no shift".
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShiftIndexOutOfRange`] when `x_fm` is not a valid
    /// segment index.
    pub fn shift_amount(&self, x_fm: usize) -> Result<usize, CoreError> {
        if x_fm >= self.segment_count() {
            return Err(CoreError::ShiftIndexOutOfRange {
                index: x_fm,
                segments: self.segment_count(),
            });
        }
        // `word_bits` is a power of two, so the modulo is a mask.
        Ok(((self.segment_count() - x_fm) << self.segment_bits_log2()) & (self.word_bits - 1))
    }

    /// Mask covering the word width.
    #[must_use]
    pub fn word_mask(&self) -> u64 {
        if self.word_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.word_bits) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_size_follows_equation_1() {
        // Fig. 4 caption: a 32-bit word with n_FM = 1..5 gives S = 16, 8, 4, 2, 1.
        let expected = [(1usize, 16usize), (2, 8), (3, 4), (4, 2), (5, 1)];
        for (n_fm, s) in expected {
            let g = SegmentGeometry::new(32, n_fm).unwrap();
            assert_eq!(g.segment_bits(), s);
            assert_eq!(g.segment_count(), 32 / s);
        }
    }

    #[test]
    fn max_error_magnitude_is_2_to_s_minus_1() {
        assert_eq!(
            SegmentGeometry::new(32, 5).unwrap().max_error_magnitude(),
            1
        );
        assert_eq!(
            SegmentGeometry::new(32, 4).unwrap().max_error_magnitude(),
            2
        );
        assert_eq!(
            SegmentGeometry::new(32, 1).unwrap().max_error_magnitude(),
            1 << 15
        );
        assert_eq!(
            SegmentGeometry::new(64, 1).unwrap().max_error_magnitude(),
            1 << 31
        );
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        assert!(SegmentGeometry::new(0, 1).is_err());
        assert!(SegmentGeometry::new(24, 1).is_err()); // not a power of two
        assert!(SegmentGeometry::new(128, 1).is_err());
        assert!(SegmentGeometry::new(32, 0).is_err());
        assert!(SegmentGeometry::new(32, 6).is_err()); // log2(32) = 5
        assert!(SegmentGeometry::new(32, 5).is_ok());
        assert!(SegmentGeometry::new(64, 6).is_ok());
    }

    #[test]
    fn all_for_word_enumerates_every_n_fm() {
        let all = SegmentGeometry::all_for_word(32).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].n_fm(), 1);
        assert_eq!(all[4].n_fm(), 5);
        assert!(SegmentGeometry::all_for_word(24).is_err());
    }

    #[test]
    fn segment_of_bit_and_offset() {
        let g = SegmentGeometry::new(32, 3).unwrap(); // S = 4
        assert_eq!(g.segment_of_bit(0), 0);
        assert_eq!(g.segment_of_bit(3), 0);
        assert_eq!(g.segment_of_bit(4), 1);
        assert_eq!(g.segment_of_bit(31), 7);
        assert_eq!(g.offset_in_segment(0), 0);
        assert_eq!(g.offset_in_segment(7), 3);
        assert_eq!(g.offset_in_segment(31), 3);
    }

    #[test]
    fn shift_amount_matches_equation_2() {
        // Paper example (§3): W = 32, n_FM = 5, fault in bit 3 of the bottom
        // word → x_FM = 3 and T = 1 · (32 − 3) = 29.
        let g = SegmentGeometry::paper_32bit_finest();
        assert_eq!(g.shift_amount(3).unwrap(), 29);
        // Fig. 3 top word: fault in bit 31 → shift right by 1... i.e.
        // T = 32 − 31 = 1; the paper describes it as "shifted-right by 31
        // positions" for the LSB, which is the same rotation seen from the
        // data bit's perspective.
        assert_eq!(g.shift_amount(31).unwrap(), 1);
        // x_FM = 0 means the fault is already in the least significant
        // segment: no rotation.
        assert_eq!(g.shift_amount(0).unwrap(), 0);
        assert!(g.shift_amount(32).is_err());

        let g = SegmentGeometry::new(32, 2).unwrap(); // S = 8, 4 segments
        assert_eq!(g.shift_amount(1).unwrap(), 24);
        assert_eq!(g.shift_amount(3).unwrap(), 8);
    }

    #[test]
    fn word_mask_covers_word() {
        assert_eq!(
            SegmentGeometry::new(32, 1).unwrap().word_mask(),
            0xFFFF_FFFF
        );
        assert_eq!(SegmentGeometry::new(64, 1).unwrap().word_mask(), u64::MAX);
    }

    #[test]
    fn paper_default_is_finest_granularity() {
        let g = SegmentGeometry::paper_32bit_finest();
        assert_eq!(g.word_bits(), 32);
        assert_eq!(g.n_fm(), 5);
        assert_eq!(g.segment_bits(), 1);
    }
}
