//! The fault-map look-up table (FM-LUT).
//!
//! The FM-LUT holds, for every memory row `r`, the `n_FM`-bit shift index
//! `x_FM(r)` determined during BIST (§3). On every write the data word is
//! rotated right by `T(r) = S · (2^{n_FM} − x_FM(r))` (Eq. (2)) so that the
//! least significant segment is stored in the faulty cells; on every read the
//! inverse rotation restores the original bit order.
//!
//! For rows with a single faulty cell the shift index is simply the segment
//! index of that cell. For rows with multiple faults (which become common at
//! low supply voltages), [`FmLut::choose_shift`] searches all `2^{n_FM}`
//! candidate shifts and picks the one minimising the sum of squared error
//! magnitudes — the same quantity the paper's MSE yield criterion (Eq. (6))
//! integrates.

use crate::error::CoreError;
use crate::segment::SegmentGeometry;
use faultmit_memsim::{BistReport, FaultMap};

/// Per-row shift indices of the bit-shuffling scheme.
///
/// # Example
///
/// ```
/// use faultmit_core::{FmLut, SegmentGeometry};
/// use faultmit_memsim::{Fault, FaultMap, MemoryConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geometry = SegmentGeometry::new(32, 5)?;
/// let config = MemoryConfig::new(8, 32)?;
/// let mut faults = FaultMap::new(config);
/// faults.insert(Fault::bit_flip(2, 3))?; // paper example: fault in bit 3
///
/// let lut = FmLut::from_fault_map(geometry, &faults)?;
/// assert_eq!(lut.x_fm(2)?, 3);
/// assert_eq!(lut.shift_for_row(2)?, 29); // T = 1 · (32 − 3)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmLut {
    geometry: SegmentGeometry,
    entries: Vec<usize>,
}

impl FmLut {
    /// Creates an FM-LUT for `rows` rows with all shift indices zero
    /// (no rotation).
    #[must_use]
    pub fn new(geometry: SegmentGeometry, rows: usize) -> Self {
        Self {
            geometry,
            entries: vec![0; rows],
        }
    }

    /// Builds the FM-LUT from a fault map, as a post-fabrication test or
    /// power-on BIST would.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] when the fault map's word width
    /// differs from the geometry's word width.
    pub fn from_fault_map(geometry: SegmentGeometry, faults: &FaultMap) -> Result<Self, CoreError> {
        if faults.config().word_bits() != geometry.word_bits() {
            return Err(CoreError::InvalidGeometry {
                reason: format!(
                    "fault map word width {} does not match geometry word width {}",
                    faults.config().word_bits(),
                    geometry.word_bits()
                ),
            });
        }
        let mut lut = Self::new(geometry, faults.config().rows());
        for row in faults.faulty_rows() {
            let columns = faults.faulty_columns(row);
            lut.entries[row] = Self::choose_shift(geometry, &columns);
        }
        Ok(lut)
    }

    /// Builds the FM-LUT from a BIST report (the production flow: run
    /// [`MarchBist`](faultmit_memsim::MarchBist), then program the LUT).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] when the report's word width
    /// differs from the geometry's word width.
    pub fn from_bist_report(
        geometry: SegmentGeometry,
        report: &BistReport,
    ) -> Result<Self, CoreError> {
        if report.config().word_bits() != geometry.word_bits() {
            return Err(CoreError::InvalidGeometry {
                reason: format!(
                    "BIST report word width {} does not match geometry word width {}",
                    report.config().word_bits(),
                    geometry.word_bits()
                ),
            });
        }
        let mut lut = Self::new(geometry, report.config().rows());
        for row_report in report.faulty_rows() {
            lut.entries[row_report.row] = Self::choose_shift(geometry, &row_report.faulty_columns);
        }
        Ok(lut)
    }

    /// Chooses the shift index for a row with the given faulty columns.
    ///
    /// With zero faults the index is 0 (no rotation). With one fault it is the
    /// fault's segment index, exactly as in the paper. With several faults all
    /// `2^{n_FM}` candidates are evaluated and the one with the smallest sum of
    /// squared error magnitudes is returned (ties break towards the smaller
    /// index, keeping the choice deterministic).
    #[must_use]
    pub fn choose_shift(geometry: SegmentGeometry, faulty_columns: &[usize]) -> usize {
        match faulty_columns {
            [] => 0,
            [single] => geometry.segment_of_bit(*single),
            _ => {
                let word_bits = geometry.word_bits();
                let segment_bits = geometry.segment_bits();
                let mut best_index = 0usize;
                let mut best_cost = u128::MAX;
                for candidate in 0..geometry.segment_count() {
                    let shift = candidate * segment_bits;
                    let cost: u128 = faulty_columns
                        .iter()
                        .map(|&col| {
                            // Data bit stored in physical column `col` after a
                            // right rotation by T = W − shift (`word_bits` is
                            // a power of two, so the modulo is a mask).
                            let data_bit = (col + word_bits - shift) & (word_bits - 1);
                            1u128 << (2 * data_bit)
                        })
                        .sum();
                    if cost < best_cost {
                        best_cost = cost;
                        best_index = candidate;
                    }
                }
                best_index
            }
        }
    }

    /// Segment geometry this LUT was built for.
    #[must_use]
    pub fn geometry(&self) -> SegmentGeometry {
        self.geometry
    }

    /// Number of rows covered by the LUT.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.entries.len()
    }

    /// The shift index `x_FM(r)` of `row`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RowOutOfRange`] for an invalid row.
    pub fn x_fm(&self, row: usize) -> Result<usize, CoreError> {
        self.entries
            .get(row)
            .copied()
            .ok_or(CoreError::RowOutOfRange {
                row,
                rows: self.entries.len(),
            })
    }

    /// Sets the shift index of `row` explicitly (e.g. from an external test
    /// flow).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RowOutOfRange`] or
    /// [`CoreError::ShiftIndexOutOfRange`].
    pub fn set_x_fm(&mut self, row: usize, x_fm: usize) -> Result<(), CoreError> {
        if x_fm >= self.geometry.segment_count() {
            return Err(CoreError::ShiftIndexOutOfRange {
                index: x_fm,
                segments: self.geometry.segment_count(),
            });
        }
        let rows = self.entries.len();
        let entry = self
            .entries
            .get_mut(row)
            .ok_or(CoreError::RowOutOfRange { row, rows })?;
        *entry = x_fm;
        Ok(())
    }

    /// The rotation amount `T(r)` (Eq. (2)) of `row`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RowOutOfRange`] for an invalid row.
    pub fn shift_for_row(&self, row: usize) -> Result<usize, CoreError> {
        let x = self.x_fm(row)?;
        self.geometry.shift_amount(x)
    }

    /// Number of LUT storage bits per row (`n_FM`).
    #[must_use]
    pub fn bits_per_row(&self) -> usize {
        self.geometry.n_fm()
    }

    /// Total LUT storage in bits (`rows · n_FM`), the extra-column overhead
    /// the hardware model charges for.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.rows() * self.bits_per_row()
    }

    /// Number of rows with a non-zero shift (i.e. rows the BIST found to need
    /// remapping).
    #[must_use]
    pub fn shifted_row_count(&self) -> usize {
        self.entries.iter().filter(|&&x| x != 0).count()
    }

    /// Iterates over `(row, x_FM)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.entries.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_memsim::{Fault, MarchBist, MemoryConfig, SramArray};

    fn geometry(n_fm: usize) -> SegmentGeometry {
        SegmentGeometry::new(32, n_fm).unwrap()
    }

    fn fault_map(faults: &[Fault]) -> FaultMap {
        let config = MemoryConfig::new(16, 32).unwrap();
        FaultMap::from_faults(config, faults.iter().copied()).unwrap()
    }

    #[test]
    fn empty_lut_has_zero_shifts() {
        let lut = FmLut::new(geometry(5), 8);
        assert_eq!(lut.rows(), 8);
        for row in 0..8 {
            assert_eq!(lut.x_fm(row).unwrap(), 0);
            assert_eq!(lut.shift_for_row(row).unwrap(), 0);
        }
        assert_eq!(lut.shifted_row_count(), 0);
    }

    #[test]
    fn paper_example_bit3_fault_gives_shift_29() {
        let faults = fault_map(&[Fault::bit_flip(4, 3)]);
        let lut = FmLut::from_fault_map(geometry(5), &faults).unwrap();
        assert_eq!(lut.x_fm(4).unwrap(), 3);
        assert_eq!(lut.shift_for_row(4).unwrap(), 29);
    }

    #[test]
    fn msb_fault_with_single_bit_segments() {
        let faults = fault_map(&[Fault::bit_flip(0, 31)]);
        let lut = FmLut::from_fault_map(geometry(5), &faults).unwrap();
        assert_eq!(lut.x_fm(0).unwrap(), 31);
        assert_eq!(lut.shift_for_row(0).unwrap(), 1);
    }

    #[test]
    fn coarse_segments_use_segment_index() {
        // n_FM = 2 → S = 8: a fault at bit 30 is in segment 3.
        let faults = fault_map(&[Fault::bit_flip(1, 30)]);
        let lut = FmLut::from_fault_map(geometry(2), &faults).unwrap();
        assert_eq!(lut.x_fm(1).unwrap(), 3);
        assert_eq!(lut.shift_for_row(1).unwrap(), 8);
    }

    #[test]
    fn fault_in_lsb_segment_needs_no_shift() {
        let faults = fault_map(&[Fault::bit_flip(2, 0)]);
        for n_fm in 1..=5 {
            let lut = FmLut::from_fault_map(geometry(n_fm), &faults).unwrap();
            assert_eq!(lut.x_fm(2).unwrap(), 0, "n_FM = {n_fm}");
        }
    }

    #[test]
    fn multi_fault_row_prefers_protecting_the_msbs() {
        // Faults at bits 31 and 0 with single-bit segments: whichever shift is
        // chosen, one fault remains. The optimal choice maps the MSB fault to
        // the LSB data bit and tolerates a (much smaller) error on the other.
        let faults = fault_map(&[Fault::bit_flip(3, 31), Fault::bit_flip(3, 0)]);
        let lut = FmLut::from_fault_map(geometry(5), &faults).unwrap();
        let x = lut.x_fm(3).unwrap();
        let shift = lut.shift_for_row(3).unwrap();
        // Check the resulting worst-case data bit affected is small.
        let worst_bit = [31usize, 0]
            .iter()
            .map(|&col| (col + 32 - x) % 32)
            .max()
            .unwrap();
        assert!(
            worst_bit <= 1,
            "worst affected data bit = {worst_bit}, shift = {shift}"
        );
    }

    #[test]
    fn multi_fault_choice_is_no_worse_than_single_fault_rule() {
        // With faults in segments 7 and 2 (n_FM = 3, S = 4), check the chosen
        // shift yields a cost no greater than naively aligning to the highest
        // fault.
        let g = geometry(3);
        let columns = vec![9, 30];
        let chosen = FmLut::choose_shift(g, &columns);
        let cost = |x: usize| -> u128 {
            columns
                .iter()
                .map(|&col| {
                    let data_bit = (col + 32 - x * g.segment_bits()) % 32;
                    (1u128 << data_bit).pow(2)
                })
                .sum()
        };
        let naive = g.segment_of_bit(30);
        assert!(cost(chosen) <= cost(naive));
    }

    #[test]
    fn from_bist_report_matches_from_fault_map() {
        let faults = fault_map(&[
            Fault::stuck_at_one(1, 17),
            Fault::bit_flip(5, 31),
            Fault::stuck_at_zero(9, 2),
        ]);
        let mut array = SramArray::with_faults(MemoryConfig::new(16, 32).unwrap(), faults.clone());
        let report = MarchBist::new().run(&mut array).unwrap();

        let from_map = FmLut::from_fault_map(geometry(5), &faults).unwrap();
        let from_bist = FmLut::from_bist_report(geometry(5), &report).unwrap();
        assert_eq!(from_map, from_bist);
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let faults = FaultMap::new(MemoryConfig::new(8, 16).unwrap());
        assert!(FmLut::from_fault_map(geometry(5), &faults).is_err());
    }

    #[test]
    fn set_x_fm_validates_inputs() {
        let mut lut = FmLut::new(geometry(2), 4);
        assert!(lut.set_x_fm(0, 3).is_ok());
        assert_eq!(lut.x_fm(0).unwrap(), 3);
        assert!(lut.set_x_fm(0, 4).is_err());
        assert!(lut.set_x_fm(9, 0).is_err());
        assert!(lut.x_fm(9).is_err());
        assert!(lut.shift_for_row(9).is_err());
    }

    #[test]
    fn storage_accounting() {
        let lut = FmLut::new(geometry(3), 4096);
        assert_eq!(lut.bits_per_row(), 3);
        assert_eq!(lut.total_bits(), 3 * 4096);
    }

    #[test]
    fn iter_and_shifted_row_count() {
        let faults = fault_map(&[Fault::bit_flip(2, 20), Fault::bit_flip(7, 0)]);
        let lut = FmLut::from_fault_map(geometry(5), &faults).unwrap();
        // Row 7's fault is already in the LSB segment → shift 0, so only one
        // row counts as shifted.
        assert_eq!(lut.shifted_row_count(), 1);
        let pairs: Vec<(usize, usize)> = lut.iter().filter(|&(_, x)| x != 0).collect();
        assert_eq!(pairs, vec![(2, 20)]);
    }
}
