//! Closed-form error magnitudes per faulty bit position (the paper's Fig. 4).
//!
//! For a word storing a 2's-complement integer, a fault at bit position `b`
//! produces an error of magnitude `2^b` when the memory is unprotected. With
//! bit-shuffling at segment size `S`, the least-significant segment is mapped
//! onto the faulty cell, so the observed error is `2^(b mod S)`, bounded by
//! `2^(S-1)` regardless of where the physical fault sits.

use crate::segment::SegmentGeometry;

/// Worst-case error magnitude caused by a single fault at bit position
/// `faulty_bit` when the word is protected by bit-shuffling with the given
/// geometry.
///
/// For an unprotected word use [`unprotected_error_magnitude`].
///
/// # Panics
///
/// Panics if `faulty_bit` is outside the word.
///
/// # Example
///
/// ```
/// use faultmit_core::{worst_case_error_magnitude, SegmentGeometry};
///
/// # fn main() -> Result<(), faultmit_core::CoreError> {
/// let fine = SegmentGeometry::new(32, 5)?;   // S = 1
/// let coarse = SegmentGeometry::new(32, 1)?; // S = 16
/// assert_eq!(worst_case_error_magnitude(fine, 31), 1);
/// assert_eq!(worst_case_error_magnitude(coarse, 31), 1 << 15);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn worst_case_error_magnitude(geometry: SegmentGeometry, faulty_bit: usize) -> u64 {
    assert!(
        faulty_bit < geometry.word_bits(),
        "bit {faulty_bit} outside a {}-bit word",
        geometry.word_bits()
    );
    1u64 << geometry.offset_in_segment(faulty_bit)
}

/// Error magnitude of a fault at `faulty_bit` in an unprotected word (`2^b`).
///
/// # Panics
///
/// Panics if `faulty_bit >= word_bits` or `word_bits > 64`.
#[must_use]
pub fn unprotected_error_magnitude(word_bits: usize, faulty_bit: usize) -> u64 {
    assert!(word_bits <= 64, "word width limited to 64 bits");
    assert!(
        faulty_bit < word_bits,
        "bit {faulty_bit} outside a {word_bits}-bit word"
    );
    1u64 << faulty_bit
}

/// The maximum error magnitude over all bit positions for a given geometry —
/// the `2^(S-1)` bound quoted in §3 of the paper.
#[must_use]
pub fn max_error_magnitude(geometry: SegmentGeometry) -> u64 {
    geometry.max_error_magnitude()
}

/// One row of the Fig. 4 data: the log2 error magnitude at every faulty bit
/// position for a given geometry (or `None` for the unprotected case).
///
/// Returns a vector of length `word_bits` where entry `b` is
/// `log2(error magnitude)` for a fault at bit `b`.
#[must_use]
pub fn error_magnitude_profile(word_bits: usize, geometry: Option<SegmentGeometry>) -> Vec<u32> {
    (0..word_bits)
        .map(|bit| match geometry {
            Some(g) => worst_case_error_magnitude(g, bit).trailing_zeros(),
            None => unprotected_error_magnitude(word_bits, bit).trailing_zeros(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_error_grows_exponentially_with_bit_position() {
        assert_eq!(unprotected_error_magnitude(32, 0), 1);
        assert_eq!(unprotected_error_magnitude(32, 10), 1024);
        assert_eq!(unprotected_error_magnitude(32, 31), 1 << 31);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn unprotected_error_rejects_out_of_range_bit() {
        let _ = unprotected_error_magnitude(32, 32);
    }

    #[test]
    fn shuffled_error_is_periodic_in_segment_size() {
        // Fig. 4: with n_FM = 3 (S = 4) the error magnitude cycles 1,2,4,8.
        let g = SegmentGeometry::new(32, 3).unwrap();
        for bit in 0..32 {
            assert_eq!(worst_case_error_magnitude(g, bit), 1u64 << (bit % 4));
        }
    }

    #[test]
    fn finest_granularity_bounds_error_at_one() {
        let g = SegmentGeometry::new(32, 5).unwrap();
        for bit in 0..32 {
            assert_eq!(worst_case_error_magnitude(g, bit), 1);
        }
    }

    #[test]
    fn coarse_granularity_bound_matches_fig4() {
        // n_FM = 1 → S = 16 → worst case 2^15 at bits 15 and 31.
        let g = SegmentGeometry::new(32, 1).unwrap();
        assert_eq!(worst_case_error_magnitude(g, 15), 1 << 15);
        assert_eq!(worst_case_error_magnitude(g, 31), 1 << 15);
        assert_eq!(worst_case_error_magnitude(g, 16), 1);
        assert_eq!(max_error_magnitude(g), 1 << 15);
    }

    #[test]
    fn every_geometry_respects_its_bound() {
        for n_fm in 1..=5 {
            let g = SegmentGeometry::new(32, n_fm).unwrap();
            let bound = max_error_magnitude(g);
            for bit in 0..32 {
                assert!(worst_case_error_magnitude(g, bit) <= bound);
            }
            // The bound is attained at the top of every segment.
            assert_eq!(worst_case_error_magnitude(g, g.segment_bits() - 1), bound);
        }
    }

    #[test]
    fn profiles_reproduce_fig4_series() {
        // Unprotected: log2 error = bit index.
        let unprotected = error_magnitude_profile(32, None);
        assert_eq!(unprotected, (0..32u32).collect::<Vec<_>>());

        // n_FM = 2 (S = 8): log2 error = bit mod 8.
        let g = SegmentGeometry::new(32, 2).unwrap();
        let profile = error_magnitude_profile(32, Some(g));
        assert_eq!(profile.len(), 32);
        for (bit, &log_err) in profile.iter().enumerate() {
            assert_eq!(log_err, (bit % 8) as u32);
        }
    }

    #[test]
    fn shuffling_never_exceeds_unprotected_error() {
        for n_fm in 1..=5 {
            let g = SegmentGeometry::new(32, n_fm).unwrap();
            for bit in 0..32 {
                assert!(worst_case_error_magnitude(g, bit) <= unprotected_error_magnitude(32, bit));
            }
        }
    }
}
