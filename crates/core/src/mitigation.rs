//! A uniform interface over all protection schemes compared in the paper.
//!
//! The paper's Monte-Carlo evaluations (Fig. 5 and Fig. 7) compare *no
//! protection*, *H(39,32) SECDED ECC*, *H(22,16) P-ECC* and *bit-shuffling
//! with various segment sizes* on identical fault maps drawn over the data
//! array. [`MitigationScheme`] captures the per-word behaviour each scheme
//! exhibits for a given set of faulty data columns, and [`Scheme`] is the
//! concrete catalogue of all configurations used in the paper.
//!
//! Modelling note: fault maps are expressed over the `W` data columns of the
//! array. ECC parity columns are not separately faulted; this matches the
//! paper's simulation methodology, which injects bit-flips into the functional
//! data memory and assumes SECDED corrects any single per-word fault (samples
//! with more than one fault per word are rare at the studied `P_cell` and are
//! flagged as unreliable here).

use crate::error::CoreError;
use crate::fmlut::FmLut;
use crate::segment::SegmentGeometry;
use crate::shifter::{rotate_left, rotate_right};
use faultmit_ecc::{HammingSecded, LaneCounter, SecdedCode};
use faultmit_memsim::{
    corrupt_word, Fault, FaultKind, FaultMap, Lane, LaneCell, ResidualLanes, W256,
};
use faultmit_obs as obs;

/// The word an application observes after a faulty read, plus whether the
/// protection scheme still vouches for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObservedWord {
    /// The data value delivered to the application.
    pub value: u64,
    /// `false` when the scheme detected an error it could not correct
    /// (e.g. a SECDED double-error); the value may then be arbitrary.
    pub reliable: bool,
}

impl ObservedWord {
    /// An observation identical to what was written.
    #[must_use]
    pub fn intact(value: u64) -> Self {
        Self {
            value,
            reliable: true,
        }
    }

    /// Signed error relative to the originally written value, interpreting
    /// both as 2's-complement integers of `word_bits` bits.
    #[must_use]
    pub fn signed_error(&self, written: u64, word_bits: usize) -> i64 {
        to_signed(self.value, word_bits) - to_signed(written, word_bits)
    }
}

fn to_signed(value: u64, word_bits: usize) -> i64 {
    if word_bits == 64 {
        value as i64
    } else {
        let sign_bit = 1u64 << (word_bits - 1);
        if value & sign_bit != 0 {
            (value as i64) - (1i64 << word_bits)
        } else {
            value as i64
        }
    }
}

/// Behaviour of a fault-mitigation scheme on a single memory word.
pub trait MitigationScheme {
    /// Human-readable name used in reports ("no-correction", "H(22,16) P-ECC",
    /// "bit-shuffle nFM=2", ...).
    fn name(&self) -> String;

    /// Width of the data word the scheme protects.
    fn word_bits(&self) -> usize;

    /// The value the application observes when `written` was stored at `row`
    /// of a memory with the given fault map.
    fn observe(&self, faults: &FaultMap, row: usize, written: u64) -> ObservedWord;

    /// Allocation-free fast path over one row's fault slice.
    ///
    /// `row_faults` must be a single row's faults sorted by ascending column
    /// — exactly what [`FaultMap::row_faults`] returns. When a scheme
    /// answers `Some(observed)`, the result must be **identical** to
    /// [`MitigationScheme::observe`] on the map that produced the slice;
    /// `None` means the scheme has no sparse path (or the slice falls
    /// outside it) and the caller must fall back to `observe`. The default
    /// always falls back, so custom schemes stay correct without opting in.
    fn observe_sparse(&self, row_faults: &[Fault], written: u64) -> Option<ObservedWord> {
        let _ = (row_faults, written);
        None
    }

    /// Lane-parallel (bit-sliced) evaluation of one faulty row across up to
    /// 64 dies at once.
    ///
    /// `cells` is one row's transposed lane cells, sorted by ascending
    /// column — what a [`DieBlock`](faultmit_memsim::DieBlock) row carries.
    /// When a scheme answers `true` it has OR-ed, for every die `j` of the
    /// block and every data bit `c`, bit `j` into lane `c` of `residual`
    /// exactly when `observe` on die `j`'s map would deliver a value whose
    /// bit `c` differs from `written` — i.e.
    /// [`ResidualLanes::gather_die`]`(j)` equals `written ^ observed.value`.
    /// `false` means the scheme has no block path and the caller must fall
    /// back to per-die evaluation; the default always falls back, so custom
    /// schemes stay correct without opting in.
    fn observe_block(
        &self,
        cells: &[LaneCell],
        written: u64,
        residual: &mut ResidualLanes,
    ) -> bool {
        let _ = (cells, written, residual);
        false
    }

    /// The 256-die twin of [`MitigationScheme::observe_block`], evaluating
    /// one faulty row across up to 256 dies packed into [`W256`] lanes.
    ///
    /// Same contract as `observe_block`, at the wider lane width. The two
    /// methods are concrete (not generic) so the trait stays object-safe;
    /// the campaign kernels dispatch between them through
    /// [`BlockLane::observe_block_on`]. The default falls back, so custom
    /// schemes stay correct without opting in — the wide kernel then
    /// evaluates their dies through [`MitigationScheme::observe_sparse`].
    fn observe_block_wide(
        &self,
        cells: &[LaneCell<W256>],
        written: u64,
        residual: &mut ResidualLanes<W256>,
    ) -> bool {
        let _ = (cells, written, residual);
        false
    }

    /// Worst-case error magnitude caused by a single fault at data bit
    /// position `bit` (0 when the scheme corrects such a fault).
    fn worst_case_error_magnitude(&self, bit: usize) -> u64;

    /// Extra storage bits the scheme adds to every row (parity bits for ECC,
    /// LUT bits for bit-shuffling).
    fn extra_bits_per_row(&self) -> usize;
}

impl<T: MitigationScheme + ?Sized> MitigationScheme for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn word_bits(&self) -> usize {
        (**self).word_bits()
    }

    fn observe(&self, faults: &FaultMap, row: usize, written: u64) -> ObservedWord {
        (**self).observe(faults, row, written)
    }

    fn observe_sparse(&self, row_faults: &[Fault], written: u64) -> Option<ObservedWord> {
        (**self).observe_sparse(row_faults, written)
    }

    fn observe_block(
        &self,
        cells: &[LaneCell],
        written: u64,
        residual: &mut ResidualLanes,
    ) -> bool {
        (**self).observe_block(cells, written, residual)
    }

    fn observe_block_wide(
        &self,
        cells: &[LaneCell<W256>],
        written: u64,
        residual: &mut ResidualLanes<W256>,
    ) -> bool {
        (**self).observe_block_wide(cells, written, residual)
    }

    fn worst_case_error_magnitude(&self, bit: usize) -> u64 {
        (**self).worst_case_error_magnitude(bit)
    }

    fn extra_bits_per_row(&self) -> usize {
        (**self).extra_bits_per_row()
    }
}

/// Lane-width dispatch for the bit-sliced campaign kernels.
///
/// [`MitigationScheme`] exposes one concrete block observer per supported
/// width ([`observe_block`](MitigationScheme::observe_block) for `u64`,
/// [`observe_block_wide`](MitigationScheme::observe_block_wide) for
/// [`W256`]) so the trait stays object-safe. Width-generic callers — the
/// block MSE reduction in `faultmit-analysis` — bound their lane parameter
/// by `BlockLane` and call [`BlockLane::observe_block_on`], which routes to
/// the observer matching `L`. A scheme that opted into only one width
/// returns `false` at the other and falls back to its per-die sparse path,
/// so correctness never depends on the width chosen.
pub trait BlockLane: Lane {
    /// Calls `scheme`'s block observer for this lane width. Returns `false`
    /// when the scheme has no block path at this width (the caller must
    /// then evaluate die by die).
    fn observe_block_on<S: MitigationScheme + ?Sized>(
        scheme: &S,
        cells: &[LaneCell<Self>],
        written: u64,
        residual: &mut ResidualLanes<Self>,
    ) -> bool;
}

impl BlockLane for u64 {
    #[inline]
    fn observe_block_on<S: MitigationScheme + ?Sized>(
        scheme: &S,
        cells: &[LaneCell],
        written: u64,
        residual: &mut ResidualLanes,
    ) -> bool {
        scheme.observe_block(cells, written, residual)
    }
}

impl BlockLane for W256 {
    #[inline]
    fn observe_block_on<S: MitigationScheme + ?Sized>(
        scheme: &S,
        cells: &[LaneCell<W256>],
        written: u64,
        residual: &mut ResidualLanes<W256>,
    ) -> bool {
        scheme.observe_block_wide(cells, written, residual)
    }
}

/// The catalogue of protection schemes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No protection at all: every fault reaches the application.
    Unprotected {
        /// Data word width in bits.
        word_bits: usize,
    },
    /// Full-word SECDED ECC (H(39,32) for 32-bit words).
    Secded {
        /// Data word width in bits.
        word_bits: usize,
    },
    /// Priority ECC protecting the MSB half (H(22,16) over 16 MSBs for 32-bit
    /// words).
    PriorityEcc {
        /// Data word width in bits.
        word_bits: usize,
        /// Number of protected most-significant bits.
        protected_bits: usize,
    },
    /// Significance-driven bit-shuffling with the given segment geometry.
    BitShuffle(SegmentGeometry),
}

impl Scheme {
    /// Unprotected 32-bit words.
    #[must_use]
    pub fn unprotected32() -> Self {
        Scheme::Unprotected { word_bits: 32 }
    }

    /// The paper's H(39,32) SECDED baseline.
    #[must_use]
    pub fn secded32() -> Self {
        Scheme::Secded { word_bits: 32 }
    }

    /// The paper's H(22,16) P-ECC baseline (16 protected MSBs).
    #[must_use]
    pub fn pecc32() -> Self {
        Scheme::PriorityEcc {
            word_bits: 32,
            protected_bits: 16,
        }
    }

    /// Bit-shuffling over 32-bit words with the given FM-LUT width.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidGeometry`] for `n_fm` outside `1..=5`.
    pub fn shuffle32(n_fm: usize) -> Result<Self, CoreError> {
        Ok(Scheme::BitShuffle(SegmentGeometry::new(32, n_fm)?))
    }

    /// Every scheme evaluated in Fig. 5: no correction, bit-shuffling with
    /// `n_FM = 1..=5`, and H(22,16) P-ECC.
    #[must_use]
    pub fn fig5_catalogue() -> Vec<Self> {
        let mut all = vec![Self::unprotected32()];
        for n_fm in 1..=5 {
            all.push(Self::shuffle32(n_fm).expect("n_FM in 1..=5 is valid"));
        }
        all.push(Self::pecc32());
        all
    }

    /// The schemes plotted in Fig. 7: no correction, P-ECC, and bit-shuffling
    /// with `n_FM = 1` and `n_FM = 2` (plus SECDED, which is the error-free
    /// reference).
    #[must_use]
    pub fn fig7_catalogue() -> Vec<Self> {
        vec![
            Self::unprotected32(),
            Self::pecc32(),
            Self::shuffle32(1).expect("n_FM = 1 is valid"),
            Self::shuffle32(2).expect("n_FM = 2 is valid"),
            Self::secded32(),
        ]
    }

    fn secded_code(word_bits: usize) -> HammingSecded {
        HammingSecded::new(word_bits).expect("scheme word widths are SECDED-compatible")
    }

    /// Applies the row's faults to a raw stored word.
    fn corrupt(faults: &FaultMap, row: usize, stored: u64) -> u64 {
        let mut observed = stored;
        for col in faults.faulty_columns(row) {
            if let Some(kind) = faults.fault_at(row, col) {
                observed = corrupt_word(observed, col, kind);
            }
        }
        observed
    }

    /// [`Scheme::corrupt`] over a sorted row slice: same fault order (the
    /// slice is sorted by column, like `faulty_columns`), no map lookups.
    fn corrupt_slice(row_faults: &[Fault], stored: u64) -> u64 {
        let mut observed = stored;
        for fault in row_faults {
            observed = corrupt_word(observed, fault.col, fault.kind);
        }
        observed
    }

    /// The P-ECC protected-MSB mask for the given partition.
    fn pecc_msb_mask(word_bits: usize, protected_bits: usize) -> u64 {
        let unprotected_bits = word_bits - protected_bits;
        if word_bits == 64 && unprotected_bits == 0 {
            u64::MAX
        } else {
            (((1u64 << protected_bits) - 1) << unprotected_bits) & ((1u64 << word_bits) - 1)
        }
    }

    /// The width-generic body behind both block observers
    /// ([`MitigationScheme::observe_block`] and
    /// [`MitigationScheme::observe_block_wide`]): one algorithm, evaluated
    /// at whichever [`Lane`] width the campaign kernel selected. Every fold
    /// is pure lane algebra, so the per-die results are identical at any
    /// width by construction.
    fn observe_block_lanes<L: Lane>(
        &self,
        cells: &[LaneCell<L>],
        written: u64,
        residual: &mut ResidualLanes<L>,
    ) -> bool {
        match self {
            Scheme::Unprotected { .. } => {
                // Every observable error reaches the application unchanged.
                for cell in cells {
                    residual.accumulate(cell.col as usize, lane_observable_error(cell, written));
                }
            }
            Scheme::Secded { .. } => {
                // Every die's syndrome weight at once: a carry-save fold
                // over the per-column error lanes answers "two or more
                // observable errors?" per die; only those dies keep their
                // corruption.
                let mut counter = LaneCounter::<L>::new();
                for cell in cells {
                    counter.add(lane_observable_error(cell, written));
                }
                let uncorrectable = counter.at_least_two();
                if !uncorrectable.is_zero() {
                    for cell in cells {
                        residual.accumulate(
                            cell.col as usize,
                            lane_observable_error(cell, written) & uncorrectable,
                        );
                    }
                }
            }
            Scheme::PriorityEcc {
                word_bits,
                protected_bits,
            } => {
                // The correction radius only counts protected-MSB errors;
                // LSB errors always pass through.
                let msb_mask = Self::pecc_msb_mask(*word_bits, *protected_bits);
                let mut counter = LaneCounter::<L>::new();
                for cell in cells {
                    if (msb_mask >> cell.col) & 1 == 1 {
                        counter.add(lane_observable_error(cell, written));
                    }
                }
                let uncorrectable = counter.at_least_two();
                for cell in cells {
                    let err = lane_observable_error(cell, written);
                    let lane = if (msb_mask >> cell.col) & 1 == 1 {
                        err & uncorrectable
                    } else {
                        err
                    };
                    residual.accumulate(cell.col as usize, lane);
                }
            }
            Scheme::BitShuffle(geometry) => {
                let word_bits = geometry.word_bits();
                // The FM-LUT vote keys on fault *presence* (BIST sees stuck
                // cells whether or not the stored data exposes them).
                let mut presence = LaneCounter::<L>::new();
                for cell in cells {
                    presence.add(cell.presence());
                }
                let singles = presence.exactly_one();
                let multi = presence.at_least_two();
                if !singles.is_zero() {
                    // A single-fault die shifts by its fault's segment, and
                    // its residual can only surface at its own faulty cell
                    // (its presence lane is zero everywhere else). One pass
                    // therefore serves every single-fault die: the cell's
                    // column fixes the segment — and thus the shift — for
                    // all dies voting on it at once.
                    for cell in cells {
                        let group = cell.presence() & singles;
                        if group.is_zero() {
                            continue;
                        }
                        let shift = geometry
                            .shift_amount(geometry.segment_of_bit(cell.col as usize))
                            .expect("segment_of_bit returns a valid segment index");
                        let stored = rotate_right(written, shift, word_bits);
                        // A physical error at column c surfaces at data
                        // position (c + shift) mod W after the un-rotate.
                        let lane = lane_observable_error(cell, stored) & group;
                        if !lane.is_zero() {
                            let data_pos = (cell.col as usize + shift) & (word_bits - 1);
                            residual.accumulate(data_pos, lane);
                        }
                    }
                }
                if !multi.is_zero() {
                    // Dies with several faulty cells in the row are rare at
                    // campaign densities; rebuild their sorted fault slice
                    // on the stack and reuse the scalar sparse path.
                    let mut scratch = [Fault::bit_flip(0, 0); 64];
                    let mut fallback_dies = 0u64;
                    multi.for_each_die(|die| {
                        fallback_dies += 1;
                        let mut len = 0;
                        for cell in cells {
                            if cell.presence().bit(die) != 0 {
                                let kind = if cell.flips.bit(die) != 0 {
                                    FaultKind::BitFlip
                                } else if cell.stuck_value.bit(die) != 0 {
                                    FaultKind::StuckAtOne
                                } else {
                                    FaultKind::StuckAtZero
                                };
                                scratch[len] = Fault::new(0, cell.col as usize, kind);
                                len += 1;
                            }
                        }
                        let observed = self
                            .observe_sparse(&scratch[..len], written)
                            .expect("a word has at most 64 columns");
                        let mut diff = written ^ observed.value;
                        while diff != 0 {
                            let col = diff.trailing_zeros() as usize;
                            diff &= diff - 1;
                            residual.accumulate(col, L::lane_bit(die));
                        }
                    });
                    obs::count(obs::Counter::ObserveFallbackDies, fallback_dies);
                }
            }
        }
        true
    }
}

/// The *observable-error* lane of one transposed cell: bit `j` set ⇔ die
/// `j`'s read of `stored` at this cell's column differs from `stored` — a
/// bit-flip always corrupts, a stuck cell only when its stuck value differs
/// from the stored bit.
#[inline]
fn lane_observable_error<L: Lane>(cell: &LaneCell<L>, stored: u64) -> L {
    // Broadcast the stored bit to every die lane (all-ones iff the bit is 1).
    let stored_lane = L::splat(0u64.wrapping_sub((stored >> cell.col) & 1));
    cell.flips | (cell.stuck & (cell.stuck_value ^ stored_lane))
}

impl MitigationScheme for Scheme {
    fn name(&self) -> String {
        match self {
            Scheme::Unprotected { .. } => "no-correction".to_owned(),
            Scheme::Secded { word_bits } => {
                let code = Self::secded_code(*word_bits);
                format!("H({},{}) SECDED", code.codeword_bits(), word_bits)
            }
            Scheme::PriorityEcc {
                word_bits,
                protected_bits,
            } => {
                let code = Self::secded_code(*protected_bits);
                format!(
                    "H({},{}) P-ECC on {word_bits}-bit words",
                    code.codeword_bits(),
                    protected_bits
                )
            }
            Scheme::BitShuffle(geometry) => {
                format!("bit-shuffle nFM={}", geometry.n_fm())
            }
        }
    }

    fn word_bits(&self) -> usize {
        match self {
            Scheme::Unprotected { word_bits } | Scheme::Secded { word_bits } => *word_bits,
            Scheme::PriorityEcc { word_bits, .. } => *word_bits,
            Scheme::BitShuffle(geometry) => geometry.word_bits(),
        }
    }

    fn observe(&self, faults: &FaultMap, row: usize, written: u64) -> ObservedWord {
        let columns = faults.faulty_columns(row);
        if columns.is_empty() {
            return ObservedWord::intact(written);
        }
        match self {
            Scheme::Unprotected { .. } => ObservedWord {
                value: Self::corrupt(faults, row, written),
                reliable: true,
            },
            Scheme::Secded { .. } => {
                let corrupted = Self::corrupt(faults, row, written);
                let error_bits = (corrupted ^ written).count_ones();
                if error_bits <= 1 {
                    // A single observable error is corrected by SECDED.
                    ObservedWord::intact(written)
                } else {
                    // Double (or worse) error: detected but not corrected.
                    ObservedWord {
                        value: corrupted,
                        reliable: false,
                    }
                }
            }
            Scheme::PriorityEcc {
                word_bits,
                protected_bits,
            } => {
                let corrupted = Self::corrupt(faults, row, written);
                let unprotected_bits = word_bits - protected_bits;
                let msb_mask = if *word_bits == 64 && unprotected_bits == 0 {
                    u64::MAX
                } else {
                    (((1u64 << protected_bits) - 1) << unprotected_bits) & ((1u64 << word_bits) - 1)
                };
                let msb_errors = ((corrupted ^ written) & msb_mask).count_ones();
                if msb_errors <= 1 {
                    // The protected slice is repaired; LSB errors pass through.
                    ObservedWord {
                        value: (written & msb_mask) | (corrupted & !msb_mask),
                        reliable: true,
                    }
                } else {
                    ObservedWord {
                        value: corrupted,
                        reliable: false,
                    }
                }
            }
            Scheme::BitShuffle(geometry) => {
                let x_fm = FmLut::choose_shift(*geometry, &columns);
                let shift = geometry
                    .shift_amount(x_fm)
                    .expect("choose_shift returns a valid segment index");
                let stored = rotate_right(written, shift, geometry.word_bits());
                let corrupted = Self::corrupt(faults, row, stored);
                ObservedWord {
                    value: rotate_left(corrupted, shift, geometry.word_bits()),
                    reliable: true,
                }
            }
        }
    }

    fn observe_sparse(&self, row_faults: &[Fault], written: u64) -> Option<ObservedWord> {
        if row_faults.is_empty() {
            return Some(ObservedWord::intact(written));
        }
        Some(match self {
            Scheme::Unprotected { .. } => ObservedWord {
                value: Self::corrupt_slice(row_faults, written),
                reliable: true,
            },
            Scheme::Secded { .. } => {
                let corrupted = Self::corrupt_slice(row_faults, written);
                let error_bits = (corrupted ^ written).count_ones();
                if error_bits <= 1 {
                    ObservedWord::intact(written)
                } else {
                    ObservedWord {
                        value: corrupted,
                        reliable: false,
                    }
                }
            }
            Scheme::PriorityEcc {
                word_bits,
                protected_bits,
            } => {
                let corrupted = Self::corrupt_slice(row_faults, written);
                let unprotected_bits = word_bits - protected_bits;
                let msb_mask = if *word_bits == 64 && unprotected_bits == 0 {
                    u64::MAX
                } else {
                    (((1u64 << protected_bits) - 1) << unprotected_bits) & ((1u64 << word_bits) - 1)
                };
                let msb_errors = ((corrupted ^ written) & msb_mask).count_ones();
                if msb_errors <= 1 {
                    ObservedWord {
                        value: (written & msb_mask) | (corrupted & !msb_mask),
                        reliable: true,
                    }
                } else {
                    ObservedWord {
                        value: corrupted,
                        reliable: false,
                    }
                }
            }
            Scheme::BitShuffle(geometry) => {
                let x_fm = if let [single] = row_faults {
                    // Single-fault rows (the common case at realistic fault
                    // densities) skip the column gather entirely.
                    geometry.segment_of_bit(single.col)
                } else {
                    // Gather the (already sorted) columns into a stack buffer
                    // for the FM-LUT vote; a word has at most 64 columns, so a
                    // longer slice is malformed input — fall back to the
                    // generic path.
                    let mut columns = [0usize; 64];
                    if row_faults.len() > columns.len() {
                        return None;
                    }
                    for (slot, fault) in columns.iter_mut().zip(row_faults) {
                        *slot = fault.col;
                    }
                    FmLut::choose_shift(*geometry, &columns[..row_faults.len()])
                };
                let shift = geometry
                    .shift_amount(x_fm)
                    .expect("choose_shift returns a valid segment index");
                let stored = rotate_right(written, shift, geometry.word_bits());
                let corrupted = Self::corrupt_slice(row_faults, stored);
                ObservedWord {
                    value: rotate_left(corrupted, shift, geometry.word_bits()),
                    reliable: true,
                }
            }
        })
    }

    fn observe_block(
        &self,
        cells: &[LaneCell],
        written: u64,
        residual: &mut ResidualLanes,
    ) -> bool {
        self.observe_block_lanes(cells, written, residual)
    }

    fn observe_block_wide(
        &self,
        cells: &[LaneCell<W256>],
        written: u64,
        residual: &mut ResidualLanes<W256>,
    ) -> bool {
        self.observe_block_lanes(cells, written, residual)
    }

    fn worst_case_error_magnitude(&self, bit: usize) -> u64 {
        match self {
            Scheme::Unprotected { word_bits } => {
                assert!(bit < *word_bits);
                1u64 << bit
            }
            Scheme::Secded { word_bits } => {
                assert!(bit < *word_bits);
                0
            }
            Scheme::PriorityEcc {
                word_bits,
                protected_bits,
            } => {
                assert!(bit < *word_bits);
                if bit >= word_bits - protected_bits {
                    0
                } else {
                    1u64 << bit
                }
            }
            Scheme::BitShuffle(geometry) => {
                crate::error_magnitude::worst_case_error_magnitude(*geometry, bit)
            }
        }
    }

    fn extra_bits_per_row(&self) -> usize {
        match self {
            Scheme::Unprotected { .. } => 0,
            Scheme::Secded { word_bits } => Self::secded_code(*word_bits).parity_bits(),
            Scheme::PriorityEcc { protected_bits, .. } => {
                Self::secded_code(*protected_bits).parity_bits()
            }
            Scheme::BitShuffle(geometry) => geometry.n_fm(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_memsim::{Fault, MemoryConfig};

    fn map(faults: &[Fault]) -> FaultMap {
        let config = MemoryConfig::new(16, 32).unwrap();
        FaultMap::from_faults(config, faults.iter().copied()).unwrap()
    }

    #[test]
    fn scheme_names_match_paper_terminology() {
        assert_eq!(Scheme::unprotected32().name(), "no-correction");
        assert_eq!(Scheme::secded32().name(), "H(39,32) SECDED");
        assert!(Scheme::pecc32().name().contains("H(22,16) P-ECC"));
        assert_eq!(Scheme::shuffle32(3).unwrap().name(), "bit-shuffle nFM=3");
    }

    #[test]
    fn catalogue_contents() {
        assert_eq!(Scheme::fig5_catalogue().len(), 7);
        assert_eq!(Scheme::fig7_catalogue().len(), 5);
        assert!(Scheme::shuffle32(0).is_err());
        assert!(Scheme::shuffle32(6).is_err());
    }

    #[test]
    fn fault_free_rows_are_intact_under_every_scheme() {
        let faults = map(&[]);
        for scheme in Scheme::fig5_catalogue() {
            let observed = scheme.observe(&faults, 0, 0xDEAD_BEEF);
            assert_eq!(observed, ObservedWord::intact(0xDEAD_BEEF));
        }
    }

    #[test]
    fn unprotected_scheme_exposes_full_error() {
        let faults = map(&[Fault::bit_flip(0, 31)]);
        let scheme = Scheme::unprotected32();
        let observed = scheme.observe(&faults, 0, 0);
        assert_eq!(observed.value, 1 << 31);
        assert!(observed.reliable);
        assert_eq!(scheme.worst_case_error_magnitude(31), 1 << 31);
    }

    #[test]
    fn secded_corrects_single_fault_and_flags_double() {
        let scheme = Scheme::secded32();
        let single = map(&[Fault::bit_flip(1, 20)]);
        assert_eq!(
            scheme.observe(&single, 1, 0xABCD_0123),
            ObservedWord::intact(0xABCD_0123)
        );
        let double = map(&[Fault::bit_flip(1, 20), Fault::bit_flip(1, 3)]);
        let observed = scheme.observe(&double, 1, 0xABCD_0123);
        assert!(!observed.reliable);
        assert_eq!(scheme.worst_case_error_magnitude(31), 0);
    }

    #[test]
    fn secded_treats_silent_stuck_at_as_no_error() {
        // Two stuck-at faults whose stored values happen to match: no
        // observable error, so the word stays reliable and intact.
        let scheme = Scheme::secded32();
        let faults = map(&[Fault::stuck_at_one(2, 5), Fault::stuck_at_zero(2, 9)]);
        let written = 1 << 5; // bit 5 already 1, bit 9 already 0
        let observed = scheme.observe(&faults, 2, written);
        assert_eq!(observed, ObservedWord::intact(written));
    }

    #[test]
    fn pecc_corrects_msb_faults_only() {
        let scheme = Scheme::pecc32();
        // Fault in the protected MSB half: corrected.
        let msb = map(&[Fault::bit_flip(0, 30)]);
        assert_eq!(
            scheme.observe(&msb, 0, 0x0F0F_0F0F),
            ObservedWord::intact(0x0F0F_0F0F)
        );
        // Fault in the unprotected LSB half: passes through.
        let lsb = map(&[Fault::bit_flip(0, 7)]);
        let observed = scheme.observe(&lsb, 0, 0x0F0F_0F0F);
        assert_eq!(observed.value, 0x0F0F_0F0F ^ (1 << 7));
        assert!(observed.reliable);
        // Worst-case magnitudes reflect the partition.
        assert_eq!(scheme.worst_case_error_magnitude(31), 0);
        assert_eq!(scheme.worst_case_error_magnitude(15), 1 << 15);
    }

    #[test]
    fn pecc_flags_double_msb_error() {
        let scheme = Scheme::pecc32();
        let faults = map(&[Fault::bit_flip(0, 30), Fault::bit_flip(0, 20)]);
        let observed = scheme.observe(&faults, 0, 0);
        assert!(!observed.reliable);
    }

    #[test]
    fn pecc_corrects_one_msb_error_while_lsb_error_passes() {
        let scheme = Scheme::pecc32();
        let faults = map(&[Fault::bit_flip(0, 30), Fault::bit_flip(0, 2)]);
        let observed = scheme.observe(&faults, 0, 0);
        assert_eq!(observed.value, 1 << 2);
        assert!(observed.reliable);
    }

    #[test]
    fn bit_shuffle_bounds_error_for_any_single_fault() {
        for n_fm in 1..=5usize {
            let scheme = Scheme::shuffle32(n_fm).unwrap();
            let bound = SegmentGeometry::new(32, n_fm)
                .unwrap()
                .max_error_magnitude();
            for col in 0..32usize {
                let faults = map(&[Fault::bit_flip(3, col)]);
                for &written in &[0u64, 0xFFFF_FFFF, 0x8765_4321] {
                    let observed = scheme.observe(&faults, 3, written);
                    assert!(observed.reliable);
                    assert!(
                        observed.value.abs_diff(written) <= bound,
                        "n_FM {n_fm}, col {col}"
                    );
                }
            }
        }
    }

    #[test]
    fn bit_shuffle_matches_worst_case_profile() {
        let scheme = Scheme::shuffle32(2).unwrap();
        assert_eq!(scheme.worst_case_error_magnitude(31), 1 << 7);
        assert_eq!(scheme.worst_case_error_magnitude(8), 1);
        assert_eq!(scheme.worst_case_error_magnitude(0), 1);
    }

    #[test]
    fn extra_bits_per_row_match_paper_configurations() {
        assert_eq!(Scheme::unprotected32().extra_bits_per_row(), 0);
        assert_eq!(Scheme::secded32().extra_bits_per_row(), 7);
        assert_eq!(Scheme::pecc32().extra_bits_per_row(), 6);
        assert_eq!(Scheme::shuffle32(1).unwrap().extra_bits_per_row(), 1);
        assert_eq!(Scheme::shuffle32(5).unwrap().extra_bits_per_row(), 5);
    }

    #[test]
    fn observed_word_signed_error_handles_twos_complement() {
        let observed = ObservedWord {
            value: 0xFFFF_FFFF, // -1 as a 32-bit integer
            reliable: true,
        };
        assert_eq!(observed.signed_error(0, 32), -1);
        let observed = ObservedWord {
            value: 0x8000_0000, // most negative 32-bit integer
            reliable: true,
        };
        assert_eq!(observed.signed_error(0, 32), -(1i64 << 31));
        let observed = ObservedWord {
            value: 5,
            reliable: true,
        };
        assert_eq!(observed.signed_error(3, 32), 2);
    }

    #[test]
    fn observe_sparse_matches_observe_for_every_scheme() {
        // The sparse contract: Some(answer) must equal the generic path on
        // the map whose row slice was passed in — for every catalogue
        // scheme, every kind mix, and both sparse and dense rows.
        let cases: Vec<Vec<Fault>> = vec![
            vec![],
            vec![Fault::bit_flip(0, 31)],
            vec![Fault::stuck_at_one(0, 5), Fault::stuck_at_zero(0, 9)],
            vec![
                Fault::bit_flip(0, 0),
                Fault::bit_flip(0, 15),
                Fault::bit_flip(0, 16),
                Fault::stuck_at_one(0, 30),
            ],
            (0..32).map(|col| Fault::bit_flip(0, col)).collect(),
        ];
        let mut schemes = Scheme::fig5_catalogue();
        schemes.push(Scheme::secded32());
        for faults in &cases {
            let map = map(faults);
            let slice = map.row_faults(0);
            for scheme in &schemes {
                for &written in &[0u64, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
                    assert_eq!(
                        scheme.observe_sparse(slice, written),
                        Some(scheme.observe(&map, 0, written)),
                        "{} written={written:#x} faults={faults:?}",
                        scheme.name()
                    );
                }
            }
        }
    }

    #[test]
    fn observe_sparse_default_falls_back() {
        // A custom scheme that does not opt in keeps the default `None`.
        struct Passthrough;
        impl MitigationScheme for Passthrough {
            fn name(&self) -> String {
                "passthrough".to_owned()
            }
            fn word_bits(&self) -> usize {
                32
            }
            fn observe(&self, _: &FaultMap, _: usize, written: u64) -> ObservedWord {
                ObservedWord::intact(written)
            }
            fn worst_case_error_magnitude(&self, _: usize) -> u64 {
                0
            }
            fn extra_bits_per_row(&self) -> usize {
                0
            }
        }
        assert_eq!(Passthrough.observe_sparse(&[], 7), None);
        // The blanket `&T` impl forwards the concrete scheme's fast path.
        let scheme = Scheme::unprotected32();
        let by_ref: &dyn MitigationScheme = &scheme;
        assert_eq!(
            (&by_ref).observe_sparse(&[Fault::bit_flip(0, 3)], 0),
            Some(ObservedWord {
                value: 1 << 3,
                reliable: true
            })
        );
    }

    #[test]
    fn observe_block_matches_observe_sparse_for_every_scheme() {
        // Build a 64-die row population with a deterministic LCG, transpose
        // it into lane cells by hand, and require the residual of every die
        // to equal `written ^ observe_sparse(...).value` bit for bit —
        // covering single-fault dies, fault-heavy dies, silent stuck cells
        // and fault-free dies in the same block.
        let mut state = 0xB10C_5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut schemes = Scheme::fig5_catalogue();
        schemes.push(Scheme::secded32());
        for round in 0..8u64 {
            // Die j gets j % 5 faults (die 0 stays fault-free on purpose).
            let mut dies: Vec<Vec<Fault>> = Vec::new();
            for die in 0..64usize {
                let mut faults: Vec<Fault> = Vec::new();
                for _ in 0..die % 5 {
                    let col = (next() as usize) % 32;
                    if faults.iter().any(|f| f.col == col) {
                        continue;
                    }
                    let kind = match next() % 3 {
                        0 => FaultKind::StuckAtZero,
                        1 => FaultKind::StuckAtOne,
                        _ => FaultKind::BitFlip,
                    };
                    faults.push(Fault::new(0, col, kind));
                }
                faults.sort_by_key(|f| f.col);
                dies.push(faults);
            }
            // Hand-rolled transposition into sorted lane cells.
            let mut cells: Vec<LaneCell> = Vec::new();
            for col in 0..32u32 {
                let mut cell = LaneCell {
                    col,
                    flips: 0,
                    stuck: 0,
                    stuck_value: 0,
                };
                for (die, faults) in dies.iter().enumerate() {
                    for fault in faults.iter().filter(|f| f.col == col as usize) {
                        let bit = 1u64 << die;
                        match fault.kind {
                            FaultKind::BitFlip => cell.flips |= bit,
                            FaultKind::StuckAtOne => {
                                cell.stuck |= bit;
                                cell.stuck_value |= bit;
                            }
                            FaultKind::StuckAtZero => cell.stuck |= bit,
                        }
                    }
                }
                if cell.flips | cell.stuck != 0 {
                    cells.push(cell);
                }
            }
            for scheme in &schemes {
                for &written in &[0u64, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
                    let mut residual = ResidualLanes::new();
                    assert!(scheme.observe_block(&cells, written, &mut residual));
                    for (die, faults) in dies.iter().enumerate() {
                        let observed = scheme
                            .observe_sparse(faults, written)
                            .expect("catalogue schemes have a sparse path");
                        assert_eq!(
                            residual.gather_die(die),
                            written ^ observed.value,
                            "round {round}, {}, die {die}, written {written:#x}, faults {faults:?}",
                            scheme.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn observe_block_wide_matches_observe_sparse_for_every_scheme() {
        // The 256-die twin of the block equivalence test: dies 64.. live in
        // the upper W256 words, so every lane fold must cross u64 word
        // boundaries without mixing dies.
        let mut state = 0x51DE_B10Cu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut schemes = Scheme::fig5_catalogue();
        schemes.push(Scheme::secded32());
        for round in 0..4u64 {
            // Die j gets j % 5 faults (die 0 stays fault-free on purpose).
            let mut dies: Vec<Vec<Fault>> = Vec::new();
            for die in 0..256usize {
                let mut faults: Vec<Fault> = Vec::new();
                for _ in 0..die % 5 {
                    let col = (next() as usize) % 32;
                    if faults.iter().any(|f| f.col == col) {
                        continue;
                    }
                    let kind = match next() % 3 {
                        0 => FaultKind::StuckAtZero,
                        1 => FaultKind::StuckAtOne,
                        _ => FaultKind::BitFlip,
                    };
                    faults.push(Fault::new(0, col, kind));
                }
                faults.sort_by_key(|f| f.col);
                dies.push(faults);
            }
            // Hand-rolled transposition into sorted wide lane cells.
            let mut cells: Vec<LaneCell<W256>> = Vec::new();
            for col in 0..32u32 {
                let mut cell = LaneCell {
                    col,
                    flips: W256::ZERO,
                    stuck: W256::ZERO,
                    stuck_value: W256::ZERO,
                };
                for (die, faults) in dies.iter().enumerate() {
                    for fault in faults.iter().filter(|f| f.col == col as usize) {
                        let bit = W256::lane_bit(die);
                        match fault.kind {
                            FaultKind::BitFlip => cell.flips |= bit,
                            FaultKind::StuckAtOne => {
                                cell.stuck |= bit;
                                cell.stuck_value |= bit;
                            }
                            FaultKind::StuckAtZero => cell.stuck |= bit,
                        }
                    }
                }
                if !cell.presence().is_zero() {
                    cells.push(cell);
                }
            }
            for scheme in &schemes {
                for &written in &[0u64, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
                    let mut residual = ResidualLanes::<W256>::new();
                    assert!(scheme.observe_block_wide(&cells, written, &mut residual));
                    for (die, faults) in dies.iter().enumerate() {
                        let observed = scheme
                            .observe_sparse(faults, written)
                            .expect("catalogue schemes have a sparse path");
                        assert_eq!(
                            residual.gather_die(die),
                            written ^ observed.value,
                            "round {round}, {}, die {die}, written {written:#x}, faults {faults:?}",
                            scheme.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_lane_dispatch_routes_to_the_width_observer() {
        // BlockLane::observe_block_on must hit observe_block at u64 and
        // observe_block_wide at W256 — including through &dyn references.
        let scheme = Scheme::unprotected32();
        let narrow = LaneCell::<u64> {
            col: 3,
            flips: 0b1,
            stuck: 0,
            stuck_value: 0,
        };
        let mut residual = ResidualLanes::<u64>::new();
        assert!(<u64 as BlockLane>::observe_block_on(
            &scheme,
            &[narrow],
            0,
            &mut residual
        ));
        assert_eq!(residual.gather_die(0), 1 << 3);
        let wide = LaneCell::<W256> {
            col: 5,
            flips: W256::lane_bit(200),
            stuck: W256::ZERO,
            stuck_value: W256::ZERO,
        };
        let mut residual = ResidualLanes::<W256>::new();
        let by_ref: &dyn MitigationScheme = &scheme;
        assert!(<W256 as BlockLane>::observe_block_on(
            by_ref,
            &[wide],
            0,
            &mut residual
        ));
        assert_eq!(residual.gather_die(200), 1 << 5);
    }

    #[test]
    fn observe_block_default_falls_back() {
        struct Passthrough;
        impl MitigationScheme for Passthrough {
            fn name(&self) -> String {
                "passthrough".to_owned()
            }
            fn word_bits(&self) -> usize {
                32
            }
            fn observe(&self, _: &FaultMap, _: usize, written: u64) -> ObservedWord {
                ObservedWord::intact(written)
            }
            fn worst_case_error_magnitude(&self, _: usize) -> u64 {
                0
            }
            fn extra_bits_per_row(&self) -> usize {
                0
            }
        }
        let mut residual = ResidualLanes::new();
        assert!(!Passthrough.observe_block(&[], 0, &mut residual));
        let mut wide_residual = ResidualLanes::<W256>::new();
        assert!(!Passthrough.observe_block_wide(&[], 0, &mut wide_residual));
        // The blanket `&T` impl forwards the concrete scheme's block path.
        let scheme = Scheme::unprotected32();
        let by_ref: &dyn MitigationScheme = &scheme;
        let cell = LaneCell {
            col: 3,
            flips: 0b1,
            stuck: 0,
            stuck_value: 0,
        };
        assert!((&by_ref).observe_block(&[cell], 0, &mut residual));
        assert_eq!(residual.gather_die(0), 1 << 3);
    }

    #[test]
    fn shuffle_quality_dominates_pecc_for_lsb_half_faults() {
        // P-ECC leaves the low half of the word unprotected: a fault at bit 15
        // costs 2^15. Bit-shuffling with nFM >= 2 remaps that fault onto a
        // low-order data bit, so its error is bounded by 2^(S-1) < 2^15.
        let faults = map(&[Fault::bit_flip(0, 15)]);
        let written = 0x7FFF_8000u64;
        let pecc_err = Scheme::pecc32()
            .observe(&faults, 0, written)
            .value
            .abs_diff(written);
        assert_eq!(pecc_err, 1 << 15);
        for n_fm in 2..=5 {
            let shuffle_err = Scheme::shuffle32(n_fm)
                .unwrap()
                .observe(&faults, 0, written)
                .value
                .abs_diff(written);
            assert!(
                shuffle_err < pecc_err,
                "nFM={n_fm}: shuffle {shuffle_err} vs pecc {pecc_err}"
            );
        }
    }
}
