//! Randomized property tests of the bit-shuffling invariants — the heart of
//! the paper's claim: for any single fault and any stored value, the error
//! magnitude is bounded by `2^(S-1)`.
//!
//! The offline build has no `proptest`, so each property is exercised over a
//! seeded random sweep.

use faultmit_core::{
    rotate_left, rotate_right, FmLut, MitigationScheme, Scheme, SegmentGeometry, ShuffledMemory,
};
use faultmit_memsim::{Fault, FaultKind, FaultMap, MemoryConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const CASES: usize = 256;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn random_kind(rng: &mut StdRng) -> FaultKind {
    match rng.gen_range(0..3) {
        0 => FaultKind::StuckAtZero,
        1 => FaultKind::StuckAtOne,
        _ => FaultKind::BitFlip,
    }
}

/// Rotation is a bijection: rotate right then left restores the word for
/// any width, shift and value.
#[test]
fn rotation_round_trips() {
    let mut rng = rng(201);
    for _ in 0..CASES {
        let width = 1usize << rng.gen_range(0u32..7); // 1, 2, 4, ..., 64
        let shift = rng.gen_range(0usize..256);
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let value = rng.gen::<u64>() & mask;
        let stored = rotate_right(value, shift, width);
        assert_eq!(rotate_left(stored, shift, width), value);
        assert_eq!(stored & !mask, 0);
        assert_eq!(stored.count_ones(), value.count_ones());
    }
}

/// The headline invariant: a single fault anywhere in the word, any fault
/// kind, any stored value, any segment size — the observed error is at
/// most `2^(S-1)`.
#[test]
fn single_fault_error_is_bounded_for_all_geometries() {
    let mut rng = rng(202);
    for _ in 0..CASES {
        let value = rng.gen::<u32>() as u64;
        let col = rng.gen_range(0usize..32);
        let n_fm = rng.gen_range(1usize..=5);
        let kind = random_kind(&mut rng);
        let row = rng.gen_range(0usize..16);

        let geometry = SegmentGeometry::new(32, n_fm).unwrap();
        let config = MemoryConfig::new(16, 32).unwrap();
        let faults = FaultMap::from_faults(config, [Fault::new(row, col, kind)]).unwrap();
        let mut memory = ShuffledMemory::from_fault_map(geometry, faults).unwrap();
        memory.write(row, value).unwrap();
        let read = memory.read(row).unwrap();
        assert!(
            read.abs_diff(value) <= geometry.max_error_magnitude(),
            "error {} exceeds bound {}",
            read.abs_diff(value),
            geometry.max_error_magnitude()
        );
    }
}

/// The stateless analysis model (`Scheme::BitShuffle`) agrees with the
/// stateful ShuffledMemory datapath for single-fault rows.
#[test]
fn scheme_model_matches_hardware_datapath() {
    let mut rng = rng(203);
    for _ in 0..CASES {
        let value = rng.gen::<u32>() as u64;
        let col = rng.gen_range(0usize..32);
        let n_fm = rng.gen_range(1usize..=5);

        let geometry = SegmentGeometry::new(32, n_fm).unwrap();
        let config = MemoryConfig::new(8, 32).unwrap();
        let faults = FaultMap::from_faults(config, [Fault::bit_flip(2, col)]).unwrap();
        let mut memory = ShuffledMemory::from_fault_map(geometry, faults.clone()).unwrap();
        memory.write(2, value).unwrap();
        let hardware = memory.read(2).unwrap();
        let model = Scheme::BitShuffle(geometry).observe(&faults, 2, value);
        assert_eq!(hardware, model.value);
        assert!(model.reliable);
    }
}

/// Bit-shuffling never makes things worse than no protection for
/// single-fault rows: the per-bit worst-case error magnitude is bounded by
/// the unprotected one for every scheme in the catalogue.
#[test]
fn worst_case_error_never_exceeds_unprotected() {
    let unprotected = Scheme::unprotected32();
    for bit in 0usize..32 {
        for scheme in Scheme::fig5_catalogue() {
            assert!(
                scheme.worst_case_error_magnitude(bit)
                    <= unprotected.worst_case_error_magnitude(bit)
            );
        }
    }
}

/// The FM-LUT shift choice places the faulty cell inside the least
/// significant shifted segment for single-fault rows: the affected data
/// bit is always below the segment size.
#[test]
fn chosen_shift_maps_fault_to_lsb_segment() {
    for col in 0usize..32 {
        for n_fm in 1usize..=5 {
            let geometry = SegmentGeometry::new(32, n_fm).unwrap();
            let x = FmLut::choose_shift(geometry, &[col]);
            let shift = geometry.shift_amount(x).unwrap();
            // Data bit stored in the faulty physical column after the write
            // rotation: (col + shift) mod W must be a low-significance bit.
            let affected = (col + shift) % 32;
            assert!(affected < geometry.segment_bits());
        }
    }
}

/// Multi-fault rows: the optimised shift choice is never worse (in summed
/// squared error magnitude) than naively aligning to the most significant
/// faulty bit.
#[test]
fn multi_fault_shift_choice_is_optimal_enough() {
    let mut rng = rng(204);
    for _ in 0..CASES {
        let n_fm = rng.gen_range(1usize..=5);
        let n_cols = rng.gen_range(1usize..5);
        let cols: BTreeSet<usize> = (0..n_cols).map(|_| rng.gen_range(0usize..32)).collect();

        let geometry = SegmentGeometry::new(32, n_fm).unwrap();
        let columns: Vec<usize> = cols.into_iter().collect();
        let cost = |x: usize| -> u128 {
            let shift = x * geometry.segment_bits();
            columns
                .iter()
                .map(|&col| {
                    let bit = (col + 32 - shift) % 32;
                    (1u128 << bit).pow(2)
                })
                .sum()
        };
        let chosen = FmLut::choose_shift(geometry, &columns);
        let naive = geometry.segment_of_bit(*columns.iter().max().unwrap());
        assert!(cost(chosen) <= cost(naive));
    }
}
