//! Randomized property tests of the SECDED and P-ECC codecs.
//!
//! The offline build has no `proptest`, so each property is exercised over a
//! seeded random sweep (plus exhaustive bit positions where cheap).

use faultmit_ecc::{DecodeOutcome, HammingSecded, PriorityEcc, SecdedCode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Every 32-bit word round-trips through H(39,32).
#[test]
fn h39_round_trips() {
    let mut rng = rng(301);
    let code = HammingSecded::h39_32();
    for _ in 0..CASES {
        let data = rng.gen::<u32>() as u64;
        let decoded = code.decode(code.encode(data).unwrap()).unwrap();
        assert_eq!(decoded.data, data);
        assert_eq!(decoded.outcome, DecodeOutcome::Clean);
    }
}

/// Any single-bit error in any codeword position is corrected by H(39,32).
#[test]
fn h39_corrects_any_single_error() {
    let mut rng = rng(302);
    let code = HammingSecded::h39_32();
    for _ in 0..32 {
        let data = rng.gen::<u32>() as u64;
        let codeword = code.encode(data).unwrap();
        for bit in 0..39 {
            let decoded = code.decode(codeword ^ (1 << bit)).unwrap();
            assert_eq!(decoded.data, data, "fault at bit {bit}");
            assert_eq!(decoded.outcome, DecodeOutcome::CorrectedSingle);
        }
    }
}

/// Any double-bit error in any codeword is detected (never silently
/// mis-corrected) by H(39,32).
#[test]
fn h39_detects_any_double_error() {
    let mut rng = rng(303);
    let code = HammingSecded::h39_32();
    for _ in 0..CASES {
        let data = rng.gen::<u32>() as u64;
        let first = rng.gen_range(0usize..39);
        let second = rng.gen_range(0usize..39);
        if first == second {
            continue;
        }
        let codeword = code.encode(data).unwrap();
        let corrupted = codeword ^ (1 << first) ^ (1 << second);
        let decoded = code.decode(corrupted).unwrap();
        assert_eq!(
            decoded.outcome,
            DecodeOutcome::DetectedDouble,
            "faults at bits {first} and {second}"
        );
    }
}

/// The same two guarantees hold for the H(22,16) code used by P-ECC.
#[test]
fn h22_single_corrected_double_detected() {
    let mut rng = rng(304);
    let code = HammingSecded::h22_16();
    for _ in 0..CASES {
        let data = rng.gen::<u32>() as u64 & 0xFFFF;
        let first = rng.gen_range(0usize..22);
        let second = rng.gen_range(0usize..22);
        let codeword = code.encode(data).unwrap();
        let single = code.decode(codeword ^ (1 << first)).unwrap();
        assert_eq!(single.data, data);
        if first != second {
            let double = code
                .decode(codeword ^ (1 << first) ^ (1 << second))
                .unwrap();
            assert_eq!(double.outcome, DecodeOutcome::DetectedDouble);
        }
    }
}

/// P-ECC: any single fault in the stored word either leaves the data
/// intact (protected MSB region) or produces an error bounded by the
/// unprotected LSB width.
#[test]
fn pecc_error_is_bounded_by_partition() {
    let mut rng = rng(305);
    let pecc = PriorityEcc::paper_32bit().unwrap();
    for _ in 0..32 {
        let data = rng.gen::<u32>() as u64;
        let stored = pecc.encode(data).unwrap();
        for bit in 0..38 {
            let decoded = pecc.decode(stored ^ (1 << bit)).unwrap();
            let error = (decoded.data as i64 - data as i64).unsigned_abs();
            if bit >= pecc.codeword_offset() {
                assert_eq!(decoded.data, data, "protected fault at bit {bit}");
            } else {
                assert!(error <= 1 << 15, "LSB fault error {error} too large");
            }
        }
    }
}

/// Codewords of distinct data words are distinct (the code is injective).
#[test]
fn encoding_is_injective() {
    let mut rng = rng(306);
    let code = HammingSecded::h22_16();
    for _ in 0..CASES {
        let a = rng.gen::<u32>() as u64 & 0xFFFF;
        let b = rng.gen::<u32>() as u64 & 0xFFFF;
        if a == b {
            continue;
        }
        assert_ne!(code.encode(a).unwrap(), code.encode(b).unwrap());
    }
}
