//! Property-based tests of the SECDED and P-ECC codecs.

use faultmit_ecc::{DecodeOutcome, HammingSecded, PriorityEcc, SecdedCode};
use proptest::prelude::*;

proptest! {
    /// Every 32-bit word round-trips through H(39,32).
    #[test]
    fn h39_round_trips(data in any::<u32>()) {
        let code = HammingSecded::h39_32();
        let decoded = code.decode(code.encode(data as u64).unwrap()).unwrap();
        prop_assert_eq!(decoded.data, data as u64);
        prop_assert_eq!(decoded.outcome, DecodeOutcome::Clean);
    }

    /// Any single-bit error in any codeword is corrected by H(39,32).
    #[test]
    fn h39_corrects_any_single_error(data in any::<u32>(), bit in 0usize..39) {
        let code = HammingSecded::h39_32();
        let codeword = code.encode(data as u64).unwrap();
        let decoded = code.decode(codeword ^ (1 << bit)).unwrap();
        prop_assert_eq!(decoded.data, data as u64);
        prop_assert_eq!(decoded.outcome, DecodeOutcome::CorrectedSingle);
    }

    /// Any double-bit error in any codeword is detected (never silently
    /// mis-corrected) by H(39,32).
    #[test]
    fn h39_detects_any_double_error(
        data in any::<u32>(),
        first in 0usize..39,
        second in 0usize..39,
    ) {
        prop_assume!(first != second);
        let code = HammingSecded::h39_32();
        let codeword = code.encode(data as u64).unwrap();
        let corrupted = codeword ^ (1 << first) ^ (1 << second);
        let decoded = code.decode(corrupted).unwrap();
        prop_assert_eq!(decoded.outcome, DecodeOutcome::DetectedDouble);
    }

    /// The same two guarantees hold for the H(22,16) code used by P-ECC.
    #[test]
    fn h22_single_corrected_double_detected(
        data in any::<u16>(),
        first in 0usize..22,
        second in 0usize..22,
    ) {
        let code = HammingSecded::h22_16();
        let codeword = code.encode(data as u64).unwrap();
        let single = code.decode(codeword ^ (1 << first)).unwrap();
        prop_assert_eq!(single.data, data as u64);
        if first != second {
            let double = code.decode(codeword ^ (1 << first) ^ (1 << second)).unwrap();
            prop_assert_eq!(double.outcome, DecodeOutcome::DetectedDouble);
        }
    }

    /// P-ECC: any single fault in the stored word either leaves the data
    /// intact (protected MSB region) or produces an error bounded by the
    /// unprotected LSB width.
    #[test]
    fn pecc_error_is_bounded_by_partition(data in any::<u32>(), bit in 0usize..38) {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        let stored = pecc.encode(data as u64).unwrap();
        let decoded = pecc.decode(stored ^ (1 << bit)).unwrap();
        let error = (decoded.data as i64 - data as i64).unsigned_abs();
        if bit >= pecc.codeword_offset() {
            prop_assert_eq!(decoded.data, data as u64, "protected fault at bit {}", bit);
        } else {
            prop_assert!(error <= 1 << 15, "LSB fault error {} too large", error);
        }
    }

    /// Codewords of distinct data words are distinct (the code is injective).
    #[test]
    fn encoding_is_injective(a in any::<u16>(), b in any::<u16>()) {
        prop_assume!(a != b);
        let code = HammingSecded::h22_16();
        prop_assert_ne!(code.encode(a as u64).unwrap(), code.encode(b as u64).unwrap());
    }
}
