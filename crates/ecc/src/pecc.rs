//! Priority-based ECC (P-ECC).
//!
//! P-ECC [4, 12] reduces ECC overhead by protecting only the bits that matter
//! most for output quality: the most significant `P` bits of each `W`-bit
//! word are encoded with a small SECDED code, while the remaining low-order
//! bits are stored unprotected. The paper uses an H(22,16) code over the 16
//! MSBs of each 32-bit word as its P-ECC baseline.

use crate::code::{Decoded, SecdedCode};
use crate::error::EccError;
use crate::hamming::HammingSecded;

/// Priority ECC: a SECDED code over the MSBs, raw storage for the LSBs.
///
/// The stored (widened) word is laid out with the unprotected LSBs in the low
/// bit positions and the MSB codeword above them:
///
/// ```text
///   bit 0 .. W-P-1        : unprotected low-order data bits
///   bit W-P .. W-P+n-1    : H(n, P) codeword of the P high-order data bits
/// ```
///
/// # Example
///
/// ```
/// use faultmit_ecc::{PriorityEcc, SecdedCode, DecodeOutcome};
///
/// # fn main() -> Result<(), faultmit_ecc::EccError> {
/// // The paper's configuration: H(22,16) over the 16 MSBs of a 32-bit word.
/// let pecc = PriorityEcc::paper_32bit()?;
/// assert_eq!(pecc.codeword_bits(), 38);
///
/// let stored = pecc.encode(0xDEAD_BEEF)?;
/// // A fault in the protected MSB region is corrected...
/// let decoded = pecc.decode(stored ^ (1 << 30))?;
/// assert_eq!(decoded.data, 0xDEAD_BEEF);
/// // ...but a fault in the unprotected LSB region passes through.
/// let decoded = pecc.decode(stored ^ 1)?;
/// assert_eq!(decoded.data, 0xDEAD_BEEE);
/// assert_eq!(decoded.outcome, DecodeOutcome::Clean);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PriorityEcc {
    word_bits: usize,
    protected_bits: usize,
    code: HammingSecded,
}

impl PriorityEcc {
    /// Creates a P-ECC configuration protecting the `protected_bits` most
    /// significant bits of a `word_bits`-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::InvalidPartition`] when the partition is empty or
    /// exceeds the word, or [`EccError::UnsupportedDataWidth`] when the
    /// protected slice is too wide for a SECDED code.
    pub fn new(word_bits: usize, protected_bits: usize) -> Result<Self, EccError> {
        if word_bits == 0 || word_bits > 64 {
            return Err(EccError::InvalidPartition {
                reason: format!("word width must be in 1..=64, got {word_bits}"),
            });
        }
        if protected_bits == 0 || protected_bits > word_bits {
            return Err(EccError::InvalidPartition {
                reason: format!("protected bits must be in 1..={word_bits}, got {protected_bits}"),
            });
        }
        let code = HammingSecded::new(protected_bits)?;
        let total = (word_bits - protected_bits) + code.codeword_bits();
        if total > 64 {
            return Err(EccError::InvalidPartition {
                reason: format!("stored word would need {total} bits (maximum 64)"),
            });
        }
        Ok(Self {
            word_bits,
            protected_bits,
            code,
        })
    }

    /// The paper's P-ECC baseline: H(22,16) over the 16 MSBs of a 32-bit word.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` keeps the constructor signature uniform.
    pub fn paper_32bit() -> Result<Self, EccError> {
        Self::new(32, 16)
    }

    /// Width of the original data word `W`.
    #[must_use]
    pub fn word_bits(&self) -> usize {
        self.word_bits
    }

    /// Number of protected (most significant) data bits `P`.
    #[must_use]
    pub fn protected_bits(&self) -> usize {
        self.protected_bits
    }

    /// Number of unprotected (least significant) data bits `W − P`.
    #[must_use]
    pub fn unprotected_bits(&self) -> usize {
        self.word_bits - self.protected_bits
    }

    /// The inner SECDED code protecting the MSB slice.
    #[must_use]
    pub fn inner_code(&self) -> &HammingSecded {
        &self.code
    }

    /// Bit position (within the stored word) where the MSB codeword starts.
    #[must_use]
    pub fn codeword_offset(&self) -> usize {
        self.unprotected_bits()
    }

    fn word_mask(&self) -> u64 {
        if self.word_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.word_bits) - 1
        }
    }

    fn lsb_mask(&self) -> u64 {
        let bits = self.unprotected_bits();
        if bits == 0 {
            0
        } else {
            (1u64 << bits) - 1
        }
    }
}

impl SecdedCode for PriorityEcc {
    fn data_bits(&self) -> usize {
        self.word_bits
    }

    fn parity_bits(&self) -> usize {
        self.code.parity_bits()
    }

    fn encode(&self, data: u64) -> Result<u64, EccError> {
        if data & !self.word_mask() != 0 {
            return Err(EccError::DataTooWide {
                value: data,
                data_bits: self.word_bits,
            });
        }
        let lsbs = data & self.lsb_mask();
        let msbs = data >> self.unprotected_bits();
        let codeword = self.code.encode(msbs)?;
        Ok(lsbs | (codeword << self.codeword_offset()))
    }

    fn decode(&self, stored: u64) -> Result<Decoded, EccError> {
        let total_bits = self.codeword_bits();
        let stored_mask = if total_bits == 64 {
            u64::MAX
        } else {
            (1u64 << total_bits) - 1
        };
        if stored & !stored_mask != 0 {
            return Err(EccError::CodewordTooWide {
                value: stored,
                codeword_bits: total_bits,
            });
        }
        let lsbs = stored & self.lsb_mask();
        let codeword = stored >> self.codeword_offset();
        let decoded_msbs = self.code.decode(codeword)?;
        Ok(Decoded {
            data: lsbs | (decoded_msbs.data << self.unprotected_bits()),
            outcome: decoded_msbs.outcome,
        })
    }

    fn decode_clean(&self, stored: u64) -> Result<Decoded, EccError> {
        let total_bits = self.codeword_bits();
        let stored_mask = if total_bits == 64 {
            u64::MAX
        } else {
            (1u64 << total_bits) - 1
        };
        if stored & !stored_mask != 0 {
            return Err(EccError::CodewordTooWide {
                value: stored,
                codeword_bits: total_bits,
            });
        }
        let lsbs = stored & self.lsb_mask();
        let codeword = stored >> self.codeword_offset();
        let decoded_msbs = self.code.decode_clean(codeword)?;
        Ok(Decoded {
            data: lsbs | (decoded_msbs.data << self.unprotected_bits()),
            outcome: decoded_msbs.outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::DecodeOutcome;

    #[test]
    fn paper_configuration_geometry() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        assert_eq!(pecc.word_bits(), 32);
        assert_eq!(pecc.protected_bits(), 16);
        assert_eq!(pecc.unprotected_bits(), 16);
        assert_eq!(pecc.parity_bits(), 6);
        // 16 raw LSBs + 22-bit H(22,16) codeword = 38 stored bits.
        assert_eq!(pecc.codeword_bits(), 38);
        assert_eq!(pecc.inner_code().codeword_bits(), 22);
    }

    #[test]
    fn invalid_partitions_are_rejected() {
        assert!(PriorityEcc::new(0, 0).is_err());
        assert!(PriorityEcc::new(32, 0).is_err());
        assert!(PriorityEcc::new(32, 33).is_err());
        assert!(PriorityEcc::new(65, 16).is_err());
        // 64-bit word fully protected needs a 72-bit codeword: too wide.
        assert!(PriorityEcc::new(64, 58).is_err());
        // 32 unprotected + 39-bit H(39,32) codeword = 71 stored bits: too wide.
        assert!(PriorityEcc::new(64, 32).is_err());
        // 32 unprotected + 22-bit H(22,16) codeword = 54 stored bits: fits.
        assert!(PriorityEcc::new(48, 16).is_ok());
    }

    #[test]
    fn clean_round_trip() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        for &value in &[0u64, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x0000_FFFF, 0xFFFF_0000] {
            let stored = pecc.encode(value).unwrap();
            let decoded = pecc.decode(stored).unwrap();
            assert_eq!(decoded.data, value);
            assert_eq!(decoded.outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    fn decode_clean_matches_full_decode_on_valid_stored_words() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        for &value in &[0u64, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x0000_FFFF, 0xFFFF_0000] {
            let stored = pecc.encode(value).unwrap();
            let fast = pecc.decode_clean(stored).unwrap();
            assert_eq!(fast, pecc.decode(stored).unwrap());
            assert_eq!(fast.outcome, DecodeOutcome::Clean);
        }
        assert!(pecc.decode_clean(1 << 38).is_err());
    }

    #[test]
    fn encode_rejects_oversized_data() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        assert!(pecc.encode(0x1_0000_0000).is_err());
    }

    #[test]
    fn decode_rejects_oversized_stored_word() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        assert!(pecc.decode(1 << 38).is_err());
    }

    #[test]
    fn errors_in_protected_region_are_corrected() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        let value = 0x1234_5678u64;
        let stored = pecc.encode(value).unwrap();
        for bit in pecc.codeword_offset()..pecc.codeword_bits() {
            let decoded = pecc.decode(stored ^ (1 << bit)).unwrap();
            assert_eq!(decoded.data, value, "bit {bit} not corrected");
            assert_eq!(decoded.outcome, DecodeOutcome::CorrectedSingle);
        }
    }

    #[test]
    fn errors_in_unprotected_region_pass_through() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        let value = 0xFFFF_0000u64;
        let stored = pecc.encode(value).unwrap();
        for bit in 0..pecc.unprotected_bits() {
            let decoded = pecc.decode(stored ^ (1 << bit)).unwrap();
            assert_eq!(decoded.data, value ^ (1 << bit));
            // The decoder does not even notice the LSB corruption.
            assert_eq!(decoded.outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    fn lsb_error_magnitude_is_bounded_by_unprotected_width() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        let value = 0x0000_8000u64;
        let stored = pecc.encode(value).unwrap();
        // Worst unprotected fault flips bit 15: error magnitude 2^15.
        let decoded = pecc.decode(stored ^ (1 << 15)).unwrap();
        let error = decoded.data as i64 - value as i64;
        assert!(error.unsigned_abs() <= 1 << 15);
    }

    #[test]
    fn double_error_in_protected_region_is_detected() {
        let pecc = PriorityEcc::paper_32bit().unwrap();
        let stored = pecc.encode(0xABCD_EF01).unwrap();
        let corrupted = stored ^ (1 << 20) ^ (1 << 30);
        let decoded = pecc.decode(corrupted).unwrap();
        assert_eq!(decoded.outcome, DecodeOutcome::DetectedDouble);
    }

    #[test]
    fn fully_protected_word_degenerates_to_plain_secded() {
        let pecc = PriorityEcc::new(16, 16).unwrap();
        assert_eq!(pecc.unprotected_bits(), 0);
        assert_eq!(pecc.codeword_bits(), 22);
        let stored = pecc.encode(0xBEEF).unwrap();
        for bit in 0..22 {
            assert_eq!(pecc.decode(stored ^ (1 << bit)).unwrap().data, 0xBEEF);
        }
    }
}
