//! ECC-protected memories: a SECDED codec coupled with a faulty SRAM array
//! that stores the widened codewords (data columns plus parity columns, as in
//! the paper's Fig. 1).

use crate::code::{DecodeOutcome, Decoded, SecdedCode};
use crate::error::EccError;
use crate::hamming::HammingSecded;
use crate::pecc::PriorityEcc;
use faultmit_memsim::{FaultMap, MemoryConfig, SramArray};
use faultmit_obs as obs;

/// A memory whose every word is protected by a full-word SECDED code.
///
/// Writes encode the data word into a codeword; reads decode the (possibly
/// corrupted) codeword, correcting single-bit faults and flagging double-bit
/// faults.
///
/// # Example
///
/// ```
/// use faultmit_ecc::EccMemory;
/// use faultmit_memsim::{Fault, FaultMap, MemoryConfig};
///
/// # fn main() -> Result<(), faultmit_ecc::EccError> {
/// // 39-bit storage rows are required for H(39,32) codewords.
/// let storage = MemoryConfig::new(16, 39)?;
/// let mut faults = FaultMap::new(storage);
/// faults.insert(Fault::bit_flip(3, 35))?;
///
/// let mut mem = EccMemory::h39_32(16, faults)?;
/// mem.write(3, 0xDEAD_BEEF)?;
/// let decoded = mem.read(3)?;
/// assert_eq!(decoded.data, 0xDEAD_BEEF); // the single fault is corrected
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EccMemory {
    code: HammingSecded,
    array: SramArray,
}

impl EccMemory {
    /// Creates an H(39,32)-protected memory with `rows` words and the given
    /// fault map over the 39-bit storage array.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault map geometry does not match the
    /// 39-bit-wide storage array.
    pub fn h39_32(rows: usize, faults: FaultMap) -> Result<Self, EccError> {
        Self::with_code(HammingSecded::h39_32(), rows, faults)
    }

    /// Creates a protected memory for an arbitrary SECDED code.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault map geometry does not match the
    /// storage geometry implied by the code.
    pub fn with_code(code: HammingSecded, rows: usize, faults: FaultMap) -> Result<Self, EccError> {
        let storage = MemoryConfig::new(rows, code.codeword_bits())?;
        let array = SramArray::try_with_faults(storage, faults)?;
        Ok(Self { code, array })
    }

    /// The SECDED code in use.
    #[must_use]
    pub fn code(&self) -> &HammingSecded {
        &self.code
    }

    /// The underlying storage array (codeword-wide).
    #[must_use]
    pub fn array(&self) -> &SramArray {
        &self.array
    }

    /// Number of data rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.array.config().rows()
    }

    /// Encodes and stores `data` at `row`.
    ///
    /// # Errors
    ///
    /// Returns an error when the row is out of range or the data does not fit
    /// the code's data width.
    pub fn write(&mut self, row: usize, data: u64) -> Result<(), EccError> {
        let codeword = self.code.encode(data)?;
        self.array.write(row, codeword)?;
        Ok(())
    }

    /// Reads and decodes the word at `row`.
    ///
    /// Rows without any fault take the [`SecdedCode::decode_clean`] fast
    /// path — no syndrome or parity computation — which is bit-identical to
    /// the full decoder on an uncorrupted codeword.
    ///
    /// # Errors
    ///
    /// Returns an error when the row is out of range.
    pub fn read(&mut self, row: usize) -> Result<Decoded, EccError> {
        let clean = !self.array.faults().row_has_fault(row);
        let codeword = self.array.read(row)?;
        if clean {
            obs::count(obs::Counter::EccCleanDecodes, 1);
            self.code.decode_clean(codeword)
        } else {
            obs::count(obs::Counter::EccFullDecodes, 1);
            self.code.decode(codeword)
        }
    }
}

/// A memory protected by priority ECC: only the MSB slice of each word is
/// covered by a SECDED code.
#[derive(Debug, Clone)]
pub struct PeccMemory {
    pecc: PriorityEcc,
    array: SramArray,
}

impl PeccMemory {
    /// Creates the paper's P-ECC memory (H(22,16) over the 16 MSBs of 32-bit
    /// words) with `rows` words and the given fault map over the 38-bit
    /// storage array.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault map geometry does not match the 38-bit
    /// storage array.
    pub fn paper_32bit(rows: usize, faults: FaultMap) -> Result<Self, EccError> {
        Self::with_pecc(PriorityEcc::paper_32bit()?, rows, faults)
    }

    /// Creates a P-ECC memory for an arbitrary partition.
    ///
    /// # Errors
    ///
    /// Returns an error when the fault map geometry does not match the
    /// storage geometry implied by the partition.
    pub fn with_pecc(pecc: PriorityEcc, rows: usize, faults: FaultMap) -> Result<Self, EccError> {
        let storage = MemoryConfig::new(rows, pecc.codeword_bits())?;
        let array = SramArray::try_with_faults(storage, faults)?;
        Ok(Self { pecc, array })
    }

    /// The P-ECC configuration in use.
    #[must_use]
    pub fn pecc(&self) -> &PriorityEcc {
        &self.pecc
    }

    /// The underlying storage array.
    #[must_use]
    pub fn array(&self) -> &SramArray {
        &self.array
    }

    /// Number of data rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.array.config().rows()
    }

    /// Encodes and stores `data` at `row`.
    ///
    /// # Errors
    ///
    /// Returns an error when the row is out of range or the data does not fit
    /// the word width.
    pub fn write(&mut self, row: usize, data: u64) -> Result<(), EccError> {
        let stored = self.pecc.encode(data)?;
        self.array.write(row, stored)?;
        Ok(())
    }

    /// Reads and decodes the word at `row`.
    ///
    /// Rows without any fault take the [`SecdedCode::decode_clean`] fast
    /// path — no syndrome or parity computation — which is bit-identical to
    /// the full decoder on an uncorrupted codeword.
    ///
    /// # Errors
    ///
    /// Returns an error when the row is out of range.
    pub fn read(&mut self, row: usize) -> Result<Decoded, EccError> {
        let clean = !self.array.faults().row_has_fault(row);
        let stored = self.array.read(row)?;
        if clean {
            obs::count(obs::Counter::EccCleanDecodes, 1);
            self.pecc.decode_clean(stored)
        } else {
            obs::count(obs::Counter::EccFullDecodes, 1);
            self.pecc.decode(stored)
        }
    }
}

/// Convenience: whether a decode outcome should be counted as an error for
/// quality-evaluation purposes (the data differs from what was written or is
/// flagged unreliable).
#[must_use]
pub fn outcome_is_suspect(decoded: &Decoded, expected: u64) -> bool {
    decoded.data != expected || decoded.outcome == DecodeOutcome::DetectedDouble
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_memsim::Fault;

    fn faults_39(faults: &[Fault]) -> FaultMap {
        let config = MemoryConfig::new(8, 39).unwrap();
        FaultMap::from_faults(config, faults.iter().copied()).unwrap()
    }

    fn faults_38(faults: &[Fault]) -> FaultMap {
        let config = MemoryConfig::new(8, 38).unwrap();
        FaultMap::from_faults(config, faults.iter().copied()).unwrap()
    }

    #[test]
    fn ecc_memory_round_trips_without_faults() {
        let mut mem = EccMemory::h39_32(8, faults_39(&[])).unwrap();
        for row in 0..8 {
            mem.write(row, 0x1000_0000 + row as u64).unwrap();
        }
        for row in 0..8 {
            let decoded = mem.read(row).unwrap();
            assert_eq!(decoded.data, 0x1000_0000 + row as u64);
            assert_eq!(decoded.outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    fn ecc_memory_corrects_single_fault_anywhere_in_codeword() {
        for col in [0usize, 10, 31, 32, 38] {
            let mut mem = EccMemory::h39_32(8, faults_39(&[Fault::bit_flip(2, col)])).unwrap();
            mem.write(2, 0xFEED_F00D).unwrap();
            let decoded = mem.read(2).unwrap();
            assert_eq!(decoded.data, 0xFEED_F00D, "fault at column {col}");
            assert_eq!(decoded.outcome, DecodeOutcome::CorrectedSingle);
        }
    }

    #[test]
    fn ecc_memory_detects_double_fault() {
        let mut mem = EccMemory::h39_32(
            8,
            faults_39(&[Fault::bit_flip(1, 4), Fault::bit_flip(1, 20)]),
        )
        .unwrap();
        mem.write(1, 0x0BAD_CAFE).unwrap();
        let decoded = mem.read(1).unwrap();
        assert_eq!(decoded.outcome, DecodeOutcome::DetectedDouble);
    }

    #[test]
    fn ecc_memory_rejects_wrong_fault_map_geometry() {
        let wrong = FaultMap::new(MemoryConfig::new(8, 32).unwrap());
        assert!(EccMemory::h39_32(8, wrong).is_err());
    }

    #[test]
    fn pecc_memory_corrects_msb_faults_and_passes_lsb_faults() {
        // Column 37 is inside the H(22,16) codeword region (offset 16..38).
        let mut mem = PeccMemory::paper_32bit(8, faults_38(&[Fault::bit_flip(0, 37)])).unwrap();
        mem.write(0, 0x8000_0001).unwrap();
        assert_eq!(mem.read(0).unwrap().data, 0x8000_0001);

        // Column 3 is an unprotected LSB: the error reaches the output.
        let mut mem = PeccMemory::paper_32bit(8, faults_38(&[Fault::bit_flip(1, 3)])).unwrap();
        mem.write(1, 0x8000_0001).unwrap();
        assert_eq!(mem.read(1).unwrap().data, 0x8000_0001 ^ (1 << 3));
    }

    #[test]
    fn pecc_memory_bounds_lsb_error_magnitude() {
        let mut worst_error = 0i64;
        for col in 0..16 {
            let mut mem =
                PeccMemory::paper_32bit(8, faults_38(&[Fault::bit_flip(0, col)])).unwrap();
            mem.write(0, 0).unwrap();
            let read = mem.read(0).unwrap().data as i64;
            worst_error = worst_error.max(read.abs());
        }
        assert_eq!(worst_error, 1 << 15);
    }

    #[test]
    fn pecc_memory_rejects_wrong_fault_map_geometry() {
        let wrong = FaultMap::new(MemoryConfig::new(8, 39).unwrap());
        assert!(PeccMemory::paper_32bit(8, wrong).is_err());
    }

    #[test]
    fn outcome_is_suspect_flags_mismatches_and_double_errors() {
        let clean = Decoded {
            data: 5,
            outcome: DecodeOutcome::Clean,
        };
        assert!(!outcome_is_suspect(&clean, 5));
        assert!(outcome_is_suspect(&clean, 6));
        let double = Decoded {
            data: 5,
            outcome: DecodeOutcome::DetectedDouble,
        };
        assert!(outcome_is_suspect(&double, 5));
    }

    #[test]
    fn clean_row_fast_path_is_gated_on_the_fault_map() {
        // Fault-free rows take the syndrome-free path; any row *with* a
        // fault — even a silent stuck-at that doesn't flip a stored bit —
        // must still run the full decoder. Both must agree with a
        // non-fast-path reference decode of the raw stored word.
        let silent = Fault::stuck_at_one(3, 0); // bit 0 of the codeword
        let mut mem = EccMemory::h39_32(8, faults_39(&[silent])).unwrap();
        for row in 0..8 {
            mem.write(row, 0xC0FF_EE00 + row as u64).unwrap();
        }
        for row in 0..8 {
            let raw = mem.array().peek(row).unwrap();
            let reference = mem.code().decode(raw).unwrap();
            assert_eq!(mem.read(row).unwrap(), reference, "row {row}");
        }

        let mut mem = PeccMemory::paper_32bit(8, faults_38(&[Fault::bit_flip(5, 2)])).unwrap();
        for row in 0..8 {
            mem.write(row, 0x1BAD_B002 + row as u64).unwrap();
        }
        for row in 0..8 {
            let raw = mem.array().peek(row).unwrap();
            let reference = mem.pecc().decode(raw).unwrap();
            assert_eq!(mem.read(row).unwrap(), reference, "row {row}");
        }
    }

    #[test]
    fn access_counts_flow_through_to_array() {
        let mut mem = EccMemory::h39_32(8, faults_39(&[])).unwrap();
        mem.write(0, 1).unwrap();
        let _ = mem.read(0).unwrap();
        assert_eq!(mem.array().write_count(), 1);
        assert_eq!(mem.array().read_count(), 1);
        assert_eq!(mem.rows(), 8);
    }
}
