//! The SECDED codec interface shared by plain Hamming ECC and P-ECC.

use crate::error::EccError;

/// Outcome of decoding one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// The codeword was consistent; no error was observed.
    Clean,
    /// A single-bit error was detected and corrected.
    CorrectedSingle,
    /// A double-bit error was detected; the returned data is unreliable.
    DetectedDouble,
}

impl DecodeOutcome {
    /// `true` when the returned data can be trusted (no error, or corrected).
    #[must_use]
    pub fn is_reliable(self) -> bool {
        !matches!(self, DecodeOutcome::DetectedDouble)
    }
}

/// A decoded word together with the decoder's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// The recovered data word.
    pub data: u64,
    /// What the decoder observed.
    pub outcome: DecodeOutcome,
}

/// A single-error-correcting, double-error-detecting block code over one
/// memory word.
///
/// Implementors map a `data_bits()`-bit data word to a `codeword_bits()`-bit
/// codeword and back. All values are carried in the low bits of a `u64`.
pub trait SecdedCode {
    /// Number of data bits `k` (the paper's `W`).
    fn data_bits(&self) -> usize;

    /// Number of check bits `c` added to each word.
    fn parity_bits(&self) -> usize;

    /// Total codeword width `n = k + c` (the paper's `C`).
    fn codeword_bits(&self) -> usize {
        self.data_bits() + self.parity_bits()
    }

    /// Encodes a data word into a codeword.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::DataTooWide`] when `data` does not fit in
    /// `data_bits()` bits.
    fn encode(&self, data: u64) -> Result<u64, EccError>;

    /// Decodes a (possibly corrupted) codeword.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::CodewordTooWide`] when `codeword` does not fit in
    /// `codeword_bits()` bits.
    fn decode(&self, codeword: u64) -> Result<Decoded, EccError>;

    /// Decodes a codeword the caller *knows* is uncorrupted, e.g. because
    /// the memory's fault map has no fault in the word's row.
    ///
    /// For any codeword produced by [`SecdedCode::encode`] this must return
    /// exactly what [`SecdedCode::decode`] returns — `data` recovered and
    /// [`DecodeOutcome::Clean`]. Implementations may skip syndrome and
    /// parity computation, so the behaviour on a codeword that *is*
    /// corrupted is unspecified; callers must gate this on external
    /// knowledge of fault-freeness. The default simply runs the full
    /// decoder, so custom codes stay correct without opting in.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::CodewordTooWide`] when `codeword` does not fit in
    /// `codeword_bits()` bits.
    fn decode_clean(&self, codeword: u64) -> Result<Decoded, EccError> {
        self.decode(codeword)
    }

    /// Storage overhead of the code: extra bits per data bit.
    fn storage_overhead(&self) -> f64 {
        self.parity_bits() as f64 / self.data_bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_reliability() {
        assert!(DecodeOutcome::Clean.is_reliable());
        assert!(DecodeOutcome::CorrectedSingle.is_reliable());
        assert!(!DecodeOutcome::DetectedDouble.is_reliable());
    }

    struct Dummy;
    impl SecdedCode for Dummy {
        fn data_bits(&self) -> usize {
            32
        }
        fn parity_bits(&self) -> usize {
            7
        }
        fn encode(&self, data: u64) -> Result<u64, EccError> {
            Ok(data)
        }
        fn decode(&self, codeword: u64) -> Result<Decoded, EccError> {
            Ok(Decoded {
                data: codeword,
                outcome: DecodeOutcome::Clean,
            })
        }
    }

    #[test]
    fn default_codeword_bits_and_overhead() {
        let d = Dummy;
        assert_eq!(d.codeword_bits(), 39);
        assert!((d.storage_overhead() - 7.0 / 32.0).abs() < 1e-12);
    }
}
