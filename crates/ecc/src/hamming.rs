//! Extended Hamming (SECDED) codes.
//!
//! The code places data bits in the classical Hamming layout (parity bits at
//! power-of-two positions) and appends one overall-parity bit, yielding a
//! single-error-correcting, double-error-detecting code. For a `k`-bit data
//! word the code uses the smallest `r` with `2^r ≥ k + r + 1` check positions
//! plus the overall parity, i.e. `H(k + r + 1, k)`:
//!
//! | data bits | code | used in the paper |
//! |---|---|---|
//! | 32 | H(39,32) | full-word SECDED baseline |
//! | 16 | H(22,16) | P-ECC on the 16 MSBs |
//! | 8  | H(13,8)  | byte-granular variant |
//! | 57 | H(64,57) | widest code that fits a 64-bit register |

use crate::code::{DecodeOutcome, Decoded, SecdedCode};
use crate::error::EccError;

/// Maximum data width supported (the codeword must fit in a `u64`).
pub const MAX_DATA_BITS: usize = 57;

/// An extended Hamming SECDED code for a fixed data width.
///
/// Codewords are laid out with Hamming positions `1..=m` in codeword bits
/// `0..m` and the overall parity in codeword bit `m`, where `m = k + r`.
///
/// # Example
///
/// ```
/// use faultmit_ecc::{HammingSecded, SecdedCode};
///
/// # fn main() -> Result<(), faultmit_ecc::EccError> {
/// let code = HammingSecded::h22_16();
/// assert_eq!(code.data_bits(), 16);
/// assert_eq!(code.codeword_bits(), 22);
/// let cw = code.encode(0xBEEF)?;
/// assert_eq!(code.decode(cw)?.data, 0xBEEF);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HammingSecded {
    data_bits: usize,
    /// Number of Hamming parity bits (excluding the overall parity).
    hamming_parity_bits: usize,
}

impl HammingSecded {
    /// Creates a SECDED code for `data_bits`-bit data words.
    ///
    /// # Errors
    ///
    /// Returns [`EccError::UnsupportedDataWidth`] when `data_bits` is zero or
    /// larger than [`MAX_DATA_BITS`].
    pub fn new(data_bits: usize) -> Result<Self, EccError> {
        if data_bits == 0 || data_bits > MAX_DATA_BITS {
            return Err(EccError::UnsupportedDataWidth {
                data_bits,
                max_bits: MAX_DATA_BITS,
            });
        }
        let mut r = 0usize;
        while (1usize << r) < data_bits + r + 1 {
            r += 1;
        }
        Ok(Self {
            data_bits,
            hamming_parity_bits: r,
        })
    }

    /// The paper's H(39,32) code protecting a full 32-bit word.
    #[must_use]
    pub fn h39_32() -> Self {
        Self::new(32).expect("32-bit data width is supported")
    }

    /// The paper's H(22,16) code used by P-ECC on the 16 most significant
    /// bits.
    #[must_use]
    pub fn h22_16() -> Self {
        Self::new(16).expect("16-bit data width is supported")
    }

    /// H(13,8): byte-granular SECDED.
    #[must_use]
    pub fn h13_8() -> Self {
        Self::new(8).expect("8-bit data width is supported")
    }

    /// Number of Hamming positions `m = k + r` (codeword bits excluding the
    /// overall parity).
    #[must_use]
    pub fn hamming_positions(&self) -> usize {
        self.data_bits + self.hamming_parity_bits
    }

    fn data_mask(&self) -> u64 {
        if self.data_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.data_bits) - 1
        }
    }

    fn codeword_mask(&self) -> u64 {
        (1u64 << self.codeword_bits()) - 1
    }

    /// Scatters data bits into their Hamming positions (1-indexed positions
    /// that are not powers of two), returning the `m`-bit Hamming register
    /// without parity values filled in.
    fn scatter_data(&self, data: u64) -> u64 {
        let m = self.hamming_positions();
        let mut register = 0u64;
        let mut data_index = 0usize;
        for position in 1..=m {
            if position.is_power_of_two() {
                continue;
            }
            if (data >> data_index) & 1 == 1 {
                register |= 1 << (position - 1);
            }
            data_index += 1;
        }
        register
    }

    /// Gathers data bits back out of the `m`-bit Hamming register.
    fn gather_data(&self, register: u64) -> u64 {
        let m = self.hamming_positions();
        let mut data = 0u64;
        let mut data_index = 0usize;
        for position in 1..=m {
            if position.is_power_of_two() {
                continue;
            }
            if (register >> (position - 1)) & 1 == 1 {
                data |= 1 << data_index;
            }
            data_index += 1;
        }
        data
    }

    /// Computes the syndrome of the `m`-bit Hamming register: XOR of the
    /// (1-indexed) positions of all set bits.
    fn syndrome(&self, register: u64) -> usize {
        let m = self.hamming_positions();
        let mut syndrome = 0usize;
        for position in 1..=m {
            if (register >> (position - 1)) & 1 == 1 {
                syndrome ^= position;
            }
        }
        syndrome
    }

    fn fill_parity(&self, mut register: u64) -> u64 {
        // With all parity positions currently zero, the syndrome equals the
        // XOR of the positions of set data bits; writing that value into the
        // parity positions makes the overall syndrome zero.
        let syndrome = self.syndrome(register);
        for j in 0..self.hamming_parity_bits {
            if (syndrome >> j) & 1 == 1 {
                register |= 1 << ((1usize << j) - 1);
            }
        }
        register
    }
}

impl SecdedCode for HammingSecded {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn parity_bits(&self) -> usize {
        self.hamming_parity_bits + 1
    }

    fn encode(&self, data: u64) -> Result<u64, EccError> {
        if data & !self.data_mask() != 0 {
            return Err(EccError::DataTooWide {
                value: data,
                data_bits: self.data_bits,
            });
        }
        let register = self.fill_parity(self.scatter_data(data));
        let overall = (register.count_ones() & 1) as u64;
        Ok(register | (overall << self.hamming_positions()))
    }

    fn decode(&self, codeword: u64) -> Result<Decoded, EccError> {
        if codeword & !self.codeword_mask() != 0 {
            return Err(EccError::CodewordTooWide {
                value: codeword,
                codeword_bits: self.codeword_bits(),
            });
        }
        let m = self.hamming_positions();
        let register = codeword & ((1u64 << m) - 1);
        let stored_overall = (codeword >> m) & 1;
        let syndrome = self.syndrome(register);
        let parity_ok = (register.count_ones() as u64 & 1) == stored_overall;

        if syndrome == 0 && parity_ok {
            return Ok(Decoded {
                data: self.gather_data(register),
                outcome: DecodeOutcome::Clean,
            });
        }
        if !parity_ok {
            // Odd number of bit errors: assume one and correct it.
            let corrected = if syndrome == 0 || syndrome > m {
                // The error hit the overall parity bit itself (or the
                // syndrome points outside the register, which we treat the
                // same way): data bits are intact.
                register
            } else {
                register ^ (1 << (syndrome - 1))
            };
            return Ok(Decoded {
                data: self.gather_data(corrected),
                outcome: DecodeOutcome::CorrectedSingle,
            });
        }
        // Syndrome non-zero but overall parity consistent: an even number of
        // errors (at least two). Flag it; the data cannot be trusted.
        Ok(Decoded {
            data: self.gather_data(register),
            outcome: DecodeOutcome::DetectedDouble,
        })
    }

    fn decode_clean(&self, codeword: u64) -> Result<Decoded, EccError> {
        if codeword & !self.codeword_mask() != 0 {
            return Err(EccError::CodewordTooWide {
                value: codeword,
                codeword_bits: self.codeword_bits(),
            });
        }
        // A valid codeword has syndrome 0 and consistent overall parity, so
        // the full decoder's clean branch reduces to gathering the data bits
        // out of the Hamming register — no syndrome or parity work.
        let register = codeword & ((1u64 << self.hamming_positions()) - 1);
        Ok(Decoded {
            data: self.gather_data(register),
            outcome: DecodeOutcome::Clean,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_codes_have_expected_geometry() {
        let h39 = HammingSecded::h39_32();
        assert_eq!(h39.data_bits(), 32);
        assert_eq!(h39.parity_bits(), 7);
        assert_eq!(h39.codeword_bits(), 39);

        let h22 = HammingSecded::h22_16();
        assert_eq!(h22.data_bits(), 16);
        assert_eq!(h22.parity_bits(), 6);
        assert_eq!(h22.codeword_bits(), 22);

        let h13 = HammingSecded::h13_8();
        assert_eq!(h13.data_bits(), 8);
        assert_eq!(h13.parity_bits(), 5);
        assert_eq!(h13.codeword_bits(), 13);
    }

    #[test]
    fn unsupported_widths_are_rejected() {
        assert!(HammingSecded::new(0).is_err());
        assert!(HammingSecded::new(58).is_err());
        assert!(HammingSecded::new(57).is_ok());
        assert_eq!(HammingSecded::new(57).unwrap().codeword_bits(), 64);
    }

    #[test]
    fn encode_rejects_oversized_data() {
        let code = HammingSecded::h22_16();
        assert!(code.encode(0x1_0000).is_err());
        assert!(code.encode(0xFFFF).is_ok());
    }

    #[test]
    fn decode_rejects_oversized_codeword() {
        let code = HammingSecded::h22_16();
        assert!(code.decode(1 << 22).is_err());
    }

    #[test]
    fn clean_round_trip_for_representative_values() {
        let code = HammingSecded::h39_32();
        for &value in &[
            0u64,
            1,
            0xFFFF_FFFF,
            0x8000_0000,
            0xDEAD_BEEF,
            0x1234_5678,
            0x5555_5555,
            0xAAAA_AAAA,
        ] {
            let cw = code.encode(value).unwrap();
            let decoded = code.decode(cw).unwrap();
            assert_eq!(decoded.data, value);
            assert_eq!(decoded.outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    fn decode_clean_matches_full_decode_on_valid_codewords() {
        // The fast path must be bit-identical to the full decoder whenever
        // its precondition (an uncorrupted codeword) holds — exhaustively
        // over H(13,8), and on representative values for the wider codes.
        let h13 = HammingSecded::h13_8();
        for value in 0..=0xFFu64 {
            let cw = h13.encode(value).unwrap();
            assert_eq!(h13.decode_clean(cw).unwrap(), h13.decode(cw).unwrap());
        }
        for code in [HammingSecded::h22_16(), HammingSecded::h39_32()] {
            for &value in &[0u64, 1, 0xFFFF, 0x8000, 0xDEAD, 0x5555, 0xAAAA] {
                let cw = code.encode(value).unwrap();
                let fast = code.decode_clean(cw).unwrap();
                assert_eq!(fast, code.decode(cw).unwrap());
                assert_eq!(fast.outcome, DecodeOutcome::Clean);
            }
        }
        assert!(h13.decode_clean(1 << 13).is_err());
    }

    #[test]
    fn every_single_bit_error_is_corrected_h39() {
        let code = HammingSecded::h39_32();
        let data = 0xCAFE_BABEu64;
        let cw = code.encode(data).unwrap();
        for bit in 0..code.codeword_bits() {
            let corrupted = cw ^ (1 << bit);
            let decoded = code.decode(corrupted).unwrap();
            assert_eq!(decoded.data, data, "failed at bit {bit}");
            assert_eq!(decoded.outcome, DecodeOutcome::CorrectedSingle);
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected_h22() {
        let code = HammingSecded::h22_16();
        let data = 0x1234u64;
        let cw = code.encode(data).unwrap();
        for bit in 0..code.codeword_bits() {
            let decoded = code.decode(cw ^ (1 << bit)).unwrap();
            assert_eq!(decoded.data, data, "failed at bit {bit}");
            assert_eq!(decoded.outcome, DecodeOutcome::CorrectedSingle);
        }
    }

    #[test]
    fn every_double_bit_error_is_detected_h22() {
        let code = HammingSecded::h22_16();
        let data = 0xA5C3u64;
        let cw = code.encode(data).unwrap();
        for first in 0..code.codeword_bits() {
            for second in (first + 1)..code.codeword_bits() {
                let corrupted = cw ^ (1 << first) ^ (1 << second);
                let decoded = code.decode(corrupted).unwrap();
                assert_eq!(
                    decoded.outcome,
                    DecodeOutcome::DetectedDouble,
                    "missed double error at bits {first},{second}"
                );
            }
        }
    }

    #[test]
    fn double_bit_errors_sampled_h39() {
        let code = HammingSecded::h39_32();
        let data = 0x0F0F_F0F0u64;
        let cw = code.encode(data).unwrap();
        for first in (0..39).step_by(3) {
            for second in (first + 1..39).step_by(5) {
                let decoded = code.decode(cw ^ (1 << first) ^ (1 << second)).unwrap();
                assert_eq!(decoded.outcome, DecodeOutcome::DetectedDouble);
            }
        }
    }

    #[test]
    fn exhaustive_round_trip_for_small_code() {
        let code = HammingSecded::h13_8();
        for value in 0u64..256 {
            let cw = code.encode(value).unwrap();
            assert_eq!(code.decode(cw).unwrap().data, value);
            // All single-bit errors corrected.
            for bit in 0..13 {
                let decoded = code.decode(cw ^ (1 << bit)).unwrap();
                assert_eq!(decoded.data, value);
            }
        }
    }

    #[test]
    fn storage_overhead_matches_paper_ratios() {
        // H(39,32): 7/32 ≈ 21.9% extra storage; H(22,16): 6/16 = 37.5%.
        assert!((HammingSecded::h39_32().storage_overhead() - 7.0 / 32.0).abs() < 1e-12);
        assert!((HammingSecded::h22_16().storage_overhead() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_data_produces_distinct_codewords() {
        let code = HammingSecded::h13_8();
        let mut seen = std::collections::HashSet::new();
        for value in 0u64..256 {
            assert!(seen.insert(code.encode(value).unwrap()));
        }
    }
}
