//! Lane-parallel (bit-sliced) helpers for evaluating 64 codewords at once.
//!
//! The bit-sliced Monte-Carlo kernel packs the same bit position of 64
//! sampled dies into one `u64` lane, so the SECDED / P-ECC decision "does
//! this word hold two or more observable errors?" must be answered for all
//! 64 dies with bitwise logic instead of 64 `count_ones` calls.
//! [`LaneCounter`] is the classic carry-save (ripple-carry) popcount
//! saturating at two: after feeding every per-column error lane through
//! [`LaneCounter::add`], bit `j` of [`LaneCounter::at_least_two`] answers
//! the SECDED correction-radius question for die `j`.

/// A saturating-at-two carry-save counter over 64 parallel lanes.
///
/// Feeding `n` lanes costs `2n` bitwise ops total — the XOR-fold that lets
/// the block kernel compute 64 syndome weights at once.
///
/// # Example
///
/// ```
/// use faultmit_ecc::LaneCounter;
///
/// let mut counter = LaneCounter::new();
/// counter.add(0b1011); // dies 0, 1, 3 see an error in some column
/// counter.add(0b0011); // dies 0, 1 see an error in another column
/// assert_eq!(counter.at_least_one(), 0b1011);
/// assert_eq!(counter.at_least_two(), 0b0011); // only dies 0 and 1 hit twice
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneCounter {
    ones: u64,
    twos: u64,
}

impl LaneCounter {
    /// A counter with every lane at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one error lane: bit `j` of `lane` increments die `j`'s count.
    #[inline]
    pub fn add(&mut self, lane: u64) {
        self.twos |= self.ones & lane;
        self.ones ^= lane;
    }

    /// Lanes whose count is at least one.
    #[must_use]
    #[inline]
    pub fn at_least_one(&self) -> u64 {
        self.ones | self.twos
    }

    /// Lanes whose count is at least two — for SECDED, the dies whose word
    /// exceeded the single-error correction radius.
    #[must_use]
    #[inline]
    pub fn at_least_two(&self) -> u64 {
        self.twos
    }

    /// Lanes whose count is exactly one — the dies SECDED corrects.
    #[must_use]
    #[inline]
    pub fn exactly_one(&self) -> u64 {
        self.ones & !self.twos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_matches_scalar_popcount_per_lane() {
        // Feed 7 pseudo-random lanes and check every die against a scalar
        // per-die count.
        let lanes: Vec<u64> = (0..7u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
            .collect();
        let mut counter = LaneCounter::new();
        for &lane in &lanes {
            counter.add(lane);
        }
        for die in 0..64 {
            let count: u32 = lanes.iter().map(|lane| ((lane >> die) & 1) as u32).sum();
            assert_eq!(
                (counter.at_least_one() >> die) & 1 == 1,
                count >= 1,
                "die {die}"
            );
            assert_eq!(
                (counter.at_least_two() >> die) & 1 == 1,
                count >= 2,
                "die {die}"
            );
            assert_eq!(
                (counter.exactly_one() >> die) & 1 == 1,
                count == 1,
                "die {die}"
            );
        }
    }

    #[test]
    fn empty_counter_reports_nothing() {
        let counter = LaneCounter::new();
        assert_eq!(counter.at_least_one(), 0);
        assert_eq!(counter.at_least_two(), 0);
        assert_eq!(counter.exactly_one(), 0);
    }

    #[test]
    fn saturation_holds_beyond_two() {
        let mut counter = LaneCounter::new();
        for _ in 0..5 {
            counter.add(1);
        }
        assert_eq!(counter.at_least_two() & 1, 1);
        assert_eq!(counter.at_least_one() & 1, 1);
        assert_eq!(counter.exactly_one() & 1, 0);
    }
}
