//! Lane-parallel (bit-sliced) helpers for evaluating a block of codewords
//! at once.
//!
//! The bit-sliced Monte-Carlo kernels pack the same bit position of
//! `L::LANES` sampled dies into one [`Lane`] (64 per `u64`, 256 per
//! [`W256`](faultmit_memsim::W256)), so the SECDED / P-ECC decision "does
//! this word hold two or more observable errors?" must be answered for all
//! dies with bitwise logic instead of per-die `count_ones` calls.
//! [`LaneCounter`] is the classic carry-save (ripple-carry) popcount
//! saturating at two: after feeding every per-column error lane through
//! [`LaneCounter::add`], bit `j` of [`LaneCounter::at_least_two`] answers
//! the SECDED correction-radius question for die `j`.

use faultmit_memsim::Lane;

/// A saturating-at-two carry-save counter over `L::LANES` parallel lanes.
///
/// Feeding `n` lanes costs `2n` lane-wide bitwise ops total — the XOR-fold
/// that lets the block kernels compute every die's syndrome weight at once.
///
/// # Example
///
/// ```
/// use faultmit_ecc::LaneCounter;
///
/// let mut counter = LaneCounter::<u64>::new();
/// counter.add(0b1011); // dies 0, 1, 3 see an error in some column
/// counter.add(0b0011); // dies 0, 1 see an error in another column
/// assert_eq!(counter.at_least_one(), 0b1011);
/// assert_eq!(counter.at_least_two(), 0b0011); // only dies 0 and 1 hit twice
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneCounter<L: Lane = u64> {
    ones: L,
    twos: L,
}

impl<L: Lane> LaneCounter<L> {
    /// A counter with every lane at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            ones: L::ZERO,
            twos: L::ZERO,
        }
    }

    /// Adds one error lane: bit `j` of `lane` increments die `j`'s count.
    #[inline]
    pub fn add(&mut self, lane: L) {
        self.twos |= self.ones & lane;
        self.ones ^= lane;
    }

    /// Lanes whose count is at least one.
    #[must_use]
    #[inline]
    pub fn at_least_one(&self) -> L {
        self.ones | self.twos
    }

    /// Lanes whose count is at least two — for SECDED, the dies whose word
    /// exceeded the single-error correction radius.
    #[must_use]
    #[inline]
    pub fn at_least_two(&self) -> L {
        self.twos
    }

    /// Lanes whose count is exactly one — the dies SECDED corrects.
    #[must_use]
    #[inline]
    pub fn exactly_one(&self) -> L {
        self.ones & !self.twos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_memsim::W256;

    #[test]
    fn counter_matches_scalar_popcount_per_lane() {
        // Feed 7 pseudo-random lanes and check every die against a scalar
        // per-die count.
        let lanes: Vec<u64> = (0..7u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
            .collect();
        let mut counter = LaneCounter::<u64>::new();
        for &lane in &lanes {
            counter.add(lane);
        }
        for die in 0..64 {
            let count: u32 = lanes.iter().map(|lane| ((lane >> die) & 1) as u32).sum();
            assert_eq!(
                (counter.at_least_one() >> die) & 1 == 1,
                count >= 1,
                "die {die}"
            );
            assert_eq!(
                (counter.at_least_two() >> die) & 1 == 1,
                count >= 2,
                "die {die}"
            );
            assert_eq!(
                (counter.exactly_one() >> die) & 1 == 1,
                count == 1,
                "die {die}"
            );
        }
    }

    #[test]
    fn wide_counter_matches_scalar_popcount_per_die() {
        // The same property at 256 lanes, with per-word pseudo-random fills
        // so every W256 word participates.
        let lanes: Vec<W256> = (0..7u64)
            .map(|i| {
                W256([
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17),
                    i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F).rotate_left(31),
                    i.wrapping_mul(0x1656_67B1_9E37_79F9).rotate_left(7),
                    i.wrapping_mul(0xD6E8_FEB8_6659_FD93).rotate_left(43),
                ])
            })
            .collect();
        let mut counter = LaneCounter::<W256>::new();
        for &lane in &lanes {
            counter.add(lane);
        }
        for die in 0..256 {
            let count: u32 = lanes.iter().map(|lane| lane.bit(die) as u32).sum();
            assert_eq!(
                counter.at_least_one().bit(die) == 1,
                count >= 1,
                "die {die}"
            );
            assert_eq!(
                counter.at_least_two().bit(die) == 1,
                count >= 2,
                "die {die}"
            );
            assert_eq!(counter.exactly_one().bit(die) == 1, count == 1, "die {die}");
        }
    }

    #[test]
    fn empty_counter_reports_nothing() {
        let counter = LaneCounter::<u64>::new();
        assert_eq!(counter.at_least_one(), 0);
        assert_eq!(counter.at_least_two(), 0);
        assert_eq!(counter.exactly_one(), 0);
        let wide = LaneCounter::<W256>::new();
        assert!(wide.at_least_one().is_zero());
    }

    #[test]
    fn saturation_holds_beyond_two() {
        let mut counter = LaneCounter::<u64>::new();
        for _ in 0..5 {
            counter.add(1);
        }
        assert_eq!(counter.at_least_two() & 1, 1);
        assert_eq!(counter.at_least_one() & 1, 1);
        assert_eq!(counter.exactly_one() & 1, 0);
    }
}
