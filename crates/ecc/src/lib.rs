//! Error-correcting codes for unreliable SRAM words.
//!
//! This crate implements the two ECC baselines the paper compares the
//! bit-shuffling scheme against (§2, §5):
//!
//! * [`HammingSecded`] — single-error-correction / double-error-detection
//!   Hamming codes for arbitrary data widths, including the paper's
//!   H(39,32) (full-word SECDED for 32-bit data) and H(22,16) codes.
//! * [`PriorityEcc`] — priority-based ECC (P-ECC \[4,12\]): only the most
//!   significant half of each word is protected by a smaller SECDED code,
//!   trading LSB protection for reduced overhead.
//! * [`EccMemory`] / [`PeccMemory`] — protected memories that couple a codec
//!   with a faulty [`SramArray`](faultmit_memsim::SramArray) storing the
//!   widened codewords.
//! * [`LaneCounter`] — a carry-save popcount saturating at two, generic
//!   over the [`Lane`](faultmit_memsim::Lane) width: the bit-sliced
//!   primitive behind the whole-block (64 or 256 dies at once) SECDED /
//!   P-ECC correction-radius test of the block evaluation kernels.
//!
//! # Example
//!
//! ```
//! use faultmit_ecc::{HammingSecded, SecdedCode, DecodeOutcome};
//!
//! # fn main() -> Result<(), faultmit_ecc::EccError> {
//! let code = HammingSecded::h39_32();
//! let codeword = code.encode(0xDEAD_BEEF)?;
//! // Flip one arbitrary bit of the stored codeword.
//! let corrupted = codeword ^ (1 << 17);
//! let decoded = code.decode(corrupted)?;
//! assert_eq!(decoded.data, 0xDEAD_BEEF);
//! assert_eq!(decoded.outcome, DecodeOutcome::CorrectedSingle);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod code;
pub mod error;
pub mod hamming;
pub mod lanes;
pub mod memory;
pub mod pecc;

pub use code::{DecodeOutcome, Decoded, SecdedCode};
pub use error::EccError;
pub use hamming::HammingSecded;
pub use lanes::LaneCounter;
pub use memory::{EccMemory, PeccMemory};
pub use pecc::PriorityEcc;
