//! Error types for the ECC crate.

use std::error::Error;
use std::fmt;

/// Errors reported by encoders, decoders and protected memories.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EccError {
    /// A code was requested for an unsupported data width.
    UnsupportedDataWidth {
        /// The requested data width in bits.
        data_bits: usize,
        /// The maximum supported width.
        max_bits: usize,
    },
    /// A data value does not fit in the code's data width.
    DataTooWide {
        /// The offending value.
        value: u64,
        /// The code's data width in bits.
        data_bits: usize,
    },
    /// A codeword does not fit in the code's codeword width.
    CodewordTooWide {
        /// The offending value.
        value: u64,
        /// The code's codeword width in bits.
        codeword_bits: usize,
    },
    /// A P-ECC configuration is invalid (e.g. protected bits exceed the word).
    InvalidPartition {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying memory operation failed.
    Memory(faultmit_memsim::MemError),
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::UnsupportedDataWidth {
                data_bits,
                max_bits,
            } => write!(
                f,
                "unsupported data width {data_bits} bits (maximum {max_bits})"
            ),
            EccError::DataTooWide { value, data_bits } => {
                write!(f, "data value {value:#x} does not fit in {data_bits} bits")
            }
            EccError::CodewordTooWide {
                value,
                codeword_bits,
            } => write!(
                f,
                "codeword {value:#x} does not fit in {codeword_bits} bits"
            ),
            EccError::InvalidPartition { reason } => {
                write!(f, "invalid priority-ECC partition: {reason}")
            }
            EccError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for EccError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EccError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<faultmit_memsim::MemError> for EccError {
    fn from(value: faultmit_memsim::MemError) -> Self {
        EccError::Memory(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = EccError::DataTooWide {
            value: 0x1_0000_0000,
            data_bits: 32,
        };
        assert!(err.to_string().contains("32 bits"));

        let err = EccError::UnsupportedDataWidth {
            data_bits: 99,
            max_bits: 57,
        };
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn memory_errors_are_wrapped_with_source() {
        let inner = faultmit_memsim::MemError::RowOutOfRange { row: 3, rows: 2 };
        let err = EccError::from(inner.clone());
        assert_eq!(err, EccError::Memory(inner));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EccError>();
    }
}
