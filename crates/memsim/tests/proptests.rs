//! Property-based tests of the memory simulator invariants.

use faultmit_memsim::stats::{binomial_pmf, normal_cdf};
use faultmit_memsim::{
    corrupt_word, Fault, FaultKind, FaultMap, MarchBist, MemoryConfig, SramArray,
};
use proptest::prelude::*;

fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::StuckAtZero),
        Just(FaultKind::StuckAtOne),
        Just(FaultKind::BitFlip),
    ]
}

fn arb_faults(rows: usize, cols: usize, max: usize) -> impl Strategy<Value = Vec<Fault>> {
    prop::collection::vec(
        (0..rows, 0..cols, arb_fault_kind()).prop_map(|(r, c, k)| Fault::new(r, c, k)),
        0..max,
    )
}

proptest! {
    /// Applying the same fault twice is idempotent for stuck-at faults and an
    /// involution for flip faults.
    #[test]
    fn corrupt_word_fault_semantics(value in any::<u64>(), col in 0usize..64) {
        let v = value;
        let stuck0 = corrupt_word(v, col, FaultKind::StuckAtZero);
        prop_assert_eq!(corrupt_word(stuck0, col, FaultKind::StuckAtZero), stuck0);
        prop_assert_eq!((stuck0 >> col) & 1, 0);

        let stuck1 = corrupt_word(v, col, FaultKind::StuckAtOne);
        prop_assert_eq!(corrupt_word(stuck1, col, FaultKind::StuckAtOne), stuck1);
        prop_assert_eq!((stuck1 >> col) & 1, 1);

        let flipped = corrupt_word(v, col, FaultKind::BitFlip);
        prop_assert_eq!(corrupt_word(flipped, col, FaultKind::BitFlip), v);
        prop_assert_eq!(flipped ^ v, 1u64 << col);
    }

    /// A read can only differ from the stored value at faulty columns, and
    /// fault-free rows always read back exactly what was written.
    #[test]
    fn reads_differ_only_at_faulty_columns(
        faults in arb_faults(16, 32, 12),
        values in prop::collection::vec(any::<u32>(), 16),
    ) {
        let config = MemoryConfig::new(16, 32).unwrap();
        let map = FaultMap::from_faults(config, faults).unwrap();
        let mut array = SramArray::with_faults(config, map.clone());
        for (row, &value) in values.iter().enumerate() {
            array.write(row, value as u64).unwrap();
            let observed = array.read(row).unwrap();
            let mut diff = observed ^ (value as u64);
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                prop_assert!(map.fault_at(row, bit).is_some(),
                    "row {row} bit {bit} differs but has no fault");
                diff &= diff - 1;
            }
            if !map.row_has_fault(row) {
                prop_assert_eq!(observed, value as u64);
            }
        }
    }

    /// The March C- BIST finds exactly the injected fault locations.
    #[test]
    fn bist_finds_every_injected_fault(faults in arb_faults(32, 32, 20)) {
        let config = MemoryConfig::new(32, 32).unwrap();
        let map = FaultMap::from_faults(config, faults).unwrap();
        let mut array = SramArray::with_faults(config, map.clone());
        let report = MarchBist::new().run(&mut array).unwrap();
        prop_assert_eq!(report.fault_count(), map.fault_count());
        for fault in map.iter() {
            prop_assert!(report.faulty_columns(fault.row).contains(&fault.col));
        }
    }

    /// Fault-map bookkeeping: the count always equals the number of iterated
    /// faults, and removal undoes insertion.
    #[test]
    fn fault_map_count_is_consistent(faults in arb_faults(64, 32, 40)) {
        let config = MemoryConfig::new(64, 32).unwrap();
        let mut map = FaultMap::new(config);
        for fault in &faults {
            map.insert(*fault).unwrap();
        }
        prop_assert_eq!(map.fault_count(), map.iter().count());
        prop_assert_eq!(
            map.fault_count(),
            map.faults_per_row().iter().sum::<usize>()
        );
        // Remove everything; the map must be empty again.
        let all: Vec<_> = map.iter().collect();
        for fault in all {
            map.remove(fault.row, fault.col);
        }
        prop_assert!(map.is_empty());
    }

    /// The binomial pmf is a valid probability for arbitrary parameters.
    #[test]
    fn binomial_pmf_is_a_probability(n in 1u64..10_000, k in 0u64..10_000, p in 0.0f64..=1.0) {
        let value = binomial_pmf(n, k, p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&value));
    }

    /// The normal CDF is monotone and bounded.
    #[test]
    fn normal_cdf_is_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&normal_cdf(a)));
    }
}
