//! Randomized property tests of the memory simulator invariants.
//!
//! The offline build has no `proptest`, so each property is exercised over a
//! seeded random sweep: deterministic, reproducible, and wide enough to
//! catch the same classes of bugs.

use faultmit_memsim::stats::{binomial_pmf, normal_cdf};
use faultmit_memsim::{
    corrupt_word, Fault, FaultKind, FaultMap, MarchBist, MemoryConfig, SramArray,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn random_kind(rng: &mut StdRng) -> FaultKind {
    match rng.gen_range(0..3) {
        0 => FaultKind::StuckAtZero,
        1 => FaultKind::StuckAtOne,
        _ => FaultKind::BitFlip,
    }
}

fn random_faults(rng: &mut StdRng, rows: usize, cols: usize, max: usize) -> Vec<Fault> {
    let count = rng.gen_range(0..max);
    (0..count)
        .map(|_| {
            Fault::new(
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                random_kind(rng),
            )
        })
        .collect()
}

/// Applying the same fault twice is idempotent for stuck-at faults and an
/// involution for flip faults.
#[test]
fn corrupt_word_fault_semantics() {
    let mut rng = rng(101);
    for _ in 0..CASES {
        let v: u64 = rng.gen();
        let col = rng.gen_range(0usize..64);

        let stuck0 = corrupt_word(v, col, FaultKind::StuckAtZero);
        assert_eq!(corrupt_word(stuck0, col, FaultKind::StuckAtZero), stuck0);
        assert_eq!((stuck0 >> col) & 1, 0);

        let stuck1 = corrupt_word(v, col, FaultKind::StuckAtOne);
        assert_eq!(corrupt_word(stuck1, col, FaultKind::StuckAtOne), stuck1);
        assert_eq!((stuck1 >> col) & 1, 1);

        let flipped = corrupt_word(v, col, FaultKind::BitFlip);
        assert_eq!(corrupt_word(flipped, col, FaultKind::BitFlip), v);
        assert_eq!(flipped ^ v, 1u64 << col);
    }
}

/// A read can only differ from the stored value at faulty columns, and
/// fault-free rows always read back exactly what was written.
#[test]
fn reads_differ_only_at_faulty_columns() {
    let mut rng = rng(102);
    for _ in 0..CASES {
        let faults = random_faults(&mut rng, 16, 32, 12);
        let config = MemoryConfig::new(16, 32).unwrap();
        let map = FaultMap::from_faults(config, faults).unwrap();
        let mut array = SramArray::with_faults(config, map.clone());
        for row in 0..16 {
            let value: u64 = rng.gen::<u32>() as u64;
            array.write(row, value).unwrap();
            let observed = array.read(row).unwrap();
            let mut diff = observed ^ value;
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                assert!(
                    map.fault_at(row, bit).is_some(),
                    "row {row} bit {bit} differs but has no fault"
                );
                diff &= diff - 1;
            }
            if !map.row_has_fault(row) {
                assert_eq!(observed, value);
            }
        }
    }
}

/// The March C- BIST finds exactly the injected fault locations.
#[test]
fn bist_finds_every_injected_fault() {
    let mut rng = rng(103);
    for _ in 0..64 {
        let faults = random_faults(&mut rng, 32, 32, 20);
        let config = MemoryConfig::new(32, 32).unwrap();
        let map = FaultMap::from_faults(config, faults).unwrap();
        let mut array = SramArray::with_faults(config, map.clone());
        let report = MarchBist::new().run(&mut array).unwrap();
        assert_eq!(report.fault_count(), map.fault_count());
        for fault in map.iter() {
            assert!(report.faulty_columns(fault.row).contains(&fault.col));
        }
    }
}

/// Fault-map bookkeeping: the count always equals the number of iterated
/// faults, and removal undoes insertion.
#[test]
fn fault_map_count_is_consistent() {
    let mut rng = rng(104);
    for _ in 0..CASES {
        let faults = random_faults(&mut rng, 64, 32, 40);
        let config = MemoryConfig::new(64, 32).unwrap();
        let mut map = FaultMap::new(config);
        for fault in &faults {
            map.insert(*fault).unwrap();
        }
        assert_eq!(map.fault_count(), map.iter().count());
        assert_eq!(
            map.fault_count(),
            map.faults_per_row().iter().sum::<usize>()
        );
        // Remove everything; the map must be empty again.
        let all: Vec<_> = map.iter().collect();
        for fault in all {
            map.remove(fault.row, fault.col);
        }
        assert!(map.is_empty());
    }
}

/// The binomial pmf is a valid probability for arbitrary parameters.
#[test]
fn binomial_pmf_is_a_probability() {
    let mut rng = rng(105);
    for _ in 0..CASES {
        let n = rng.gen_range(1u64..10_000);
        let k = rng.gen_range(0u64..10_000);
        let p: f64 = rng.gen();
        let value = binomial_pmf(n, k, p);
        assert!(
            (0.0..=1.0 + 1e-12).contains(&value),
            "pmf({n}, {k}, {p}) = {value}"
        );
    }
}

/// The normal CDF is monotone and bounded.
#[test]
fn normal_cdf_is_monotone() {
    let mut rng = rng(106);
    for _ in 0..CASES {
        let a = rng.gen_range(-8.0f64..8.0);
        let b = rng.gen_range(-8.0f64..8.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        assert!((0.0..=1.0).contains(&normal_cdf(a)));
    }
}
