//! Small statistical toolbox used by the failure model and Monte-Carlo
//! engine.
//!
//! Everything here is implemented from first principles (no external
//! statistics crates): the standard normal CDF via an `erfc` rational
//! approximation, its inverse via the Acklam algorithm, log-gamma via a
//! Lanczos approximation (for binomial terms with large `M`), and Box–Muller
//! normal sampling.

use rand::Rng;

/// Natural logarithm of the gamma function, Lanczos approximation (g = 7).
///
/// Accurate to roughly 1e-13 relative error for positive arguments, which is
/// ample for binomial probabilities over memory-sized populations.
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
#[must_use]
pub fn ln_binomial_coefficient(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial probability mass `Pr(N = k)` for `n` trials with success
/// probability `p` (Eq. (4) of the paper with `n = M`, `p = P_cell`).
///
/// Computed in log space so it stays finite for memory-sized `n`.
#[must_use]
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // ln(1 - p) computed via ln_1p for accuracy when p is tiny.
    let ln_p = ln_binomial_coefficient(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p();
    ln_p.exp()
}

/// Complementary error function, Numerical-Recipes rational Chebyshev
/// approximation (absolute error below 1.2e-7, adequate for yield curves).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (Acklam's algorithm, relative error
/// below 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires 0 < p < 1, got {p}"
    );
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Draws a standard normal sample using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would produce ln(0).
    let u1: f64 = loop {
        let candidate: f64 = rng.gen();
        if candidate > f64::MIN_POSITIVE {
            break candidate;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a binomially distributed failure count `N ~ Bin(n, p)`.
///
/// Uses direct Bernoulli summation for small `n·p` and a normal approximation
/// with continuity correction for large populations, which is the regime of
/// memory-sized arrays.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if n <= 1024 {
        let mut count = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                count += 1;
            }
        }
        return count;
    }
    if mean < 32.0 {
        // Poisson-like regime: inversion by sequential search over the pmf.
        let mut k = 0u64;
        let mut cumulative = binomial_pmf(n, 0, p);
        let target: f64 = rng.gen();
        while cumulative < target && k < n {
            k += 1;
            cumulative += binomial_pmf(n, k, p);
        }
        return k;
    }
    let std_dev = (mean * (1.0 - p)).sqrt();
    let sample = mean + std_dev * sample_standard_normal(rng);
    sample.round().clamp(0.0, n as f64) as u64
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Computes summary statistics over a slice of observations.
///
/// Returns `None` for an empty slice.
#[must_use]
pub fn summarize(values: &[f64]) -> Option<SampleSummary> {
    if values.is_empty() {
        return None;
    }
    let count = values.len();
    let mean = values.iter().sum::<f64>() / count as f64;
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(SampleSummary {
        count,
        mean,
        variance,
        min,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ln_gamma_matches_factorials() {
        // ln(Γ(n)) = ln((n-1)!)
        let cases = [
            (1.0, 0.0),
            (2.0, 0.0),
            (5.0, 24.0f64.ln()),
            (11.0, 3_628_800.0f64.ln()),
        ];
        for (x, expected) in cases {
            assert!((ln_gamma(x) - expected).abs() < 1e-9, "ln_gamma({x})");
        }
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn binomial_coefficients_are_exact_for_small_inputs() {
        assert!((ln_binomial_coefficient(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_binomial_coefficient(10, 5).exp() - 252.0).abs() < 1e-6);
        assert_eq!(ln_binomial_coefficient(3, 7), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 50;
        let p = 0.07;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_pmf_handles_degenerate_probabilities() {
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
        assert!(binomial_pmf(10, 1, 1.5).is_nan());
    }

    #[test]
    fn binomial_pmf_is_finite_for_memory_sized_populations() {
        // 16KB memory = 131072 cells at Pcell = 1e-3: mean ≈ 131 failures.
        let p = binomial_pmf(131_072, 131, 1e-3);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(-8.0) < 1e-14);
        assert!(normal_cdf(8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-4, "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "0 < p < 1")]
    fn normal_quantile_rejects_invalid_probability() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn box_muller_samples_have_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let summary = summarize(&samples).unwrap();
        assert!(summary.mean.abs() < 0.03, "mean = {}", summary.mean);
        assert!(
            (summary.variance - 1.0).abs() < 0.05,
            "var = {}",
            summary.variance
        );
    }

    #[test]
    fn binomial_sampler_matches_mean_small_n() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100;
        let p = 0.2;
        let draws: Vec<f64> = (0..5000)
            .map(|_| sample_binomial(&mut rng, n, p) as f64)
            .collect();
        let summary = summarize(&draws).unwrap();
        assert!((summary.mean - 20.0).abs() < 0.6, "mean = {}", summary.mean);
    }

    #[test]
    fn binomial_sampler_matches_mean_memory_sized() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 131_072;
        let p = 1e-3;
        let draws: Vec<f64> = (0..2000)
            .map(|_| sample_binomial(&mut rng, n, p) as f64)
            .collect();
        let summary = summarize(&draws).unwrap();
        assert!(
            (summary.mean - 131.07).abs() < 2.5,
            "mean = {}",
            summary.mean
        );
    }

    #[test]
    fn binomial_sampler_degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(17);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
    }

    #[test]
    fn summarize_empty_is_none() {
        assert!(summarize(&[]).is_none());
        let s = summarize(&[2.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }
}
