//! Lane-interleaved (wide) die-block generation.
//!
//! The scalar block generator ([`BlockScratch::generate_block`]) replays
//! each planned sample's RNG stream one die at a time: seed, Floyd-sample
//! the fault positions, draw the fault kinds, round-trip through the
//! per-die [`FaultMap`](crate::fault::FaultMap), and repack into block
//! events. This module batches that inner loop over
//! [`WIDE_LANES`] dies at once on a [`WideXoshiro`] — `WIDE_LANES`
//! independent per-sample xoshiro256++ streams advanced as element-wise
//! array ops — and emits the packed `(row, col, die, kind)` events
//! directly, skipping the scalar map round-trip entirely.
//!
//! # Generation contract
//!
//! The wide path is an *implementation* of the per-sample schedule, not a
//! new schedule:
//!
//! * **Structural (bit-identity by construction):** each lane is seeded
//!   with [`StreamSeeder::derive_seed`] exactly as
//!   [`StreamSeeder::rng_for_sample`] seeds the scalar generator, and every
//!   lane-masked operation ([`WideXoshiro::next_u64_masked`],
//!   [`WideXoshiro::gen_bounded_masked`]) advances a lane if and only if
//!   the scalar stream would advance — including per-lane rejection
//!   redraws and the single-remaining-lane scalar drain, which extracts
//!   the exact lane state and stores it back. A die generated wide
//!   therefore has the same faults at the same positions with the same
//!   kinds as its scalar twin, at every seed.
//! * **Gated (by tests, not construction):** the zero-steady-state-
//!   allocation guarantee ([`BlockScratch::realloc_events`]) and the
//!   equality of the emitted *event order* with the scalar generator's
//!   die-major, per-die-sorted order are pinned by the `scratch` and
//!   `kernel_equivalence` suites.
//!
//! Backends opt in through [`FaultBackend::wide_generation`] by asserting
//! their [`sample_into`](crate::backend::FaultBackend::sample_into) schedule is exactly
//! "iid-uniform Floyd placement, then one kind draw per fault in
//! `(row, col)` order" — the SRAM backend's schedule. Backends with
//! data-dependent placement (DRAM clustering proposals, MLC column
//! weighting) return `None` and keep the scalar path.
//!
//! [`BlockScratch::generate_block`]: crate::scratch::BlockScratch::generate_block
//! [`BlockScratch::realloc_events`]: crate::scratch::BlockScratch::realloc_events
//! [`FaultBackend`]: crate::backend::FaultBackend
//! [`FaultBackend::wide_generation`]: crate::backend::FaultBackend::wide_generation
//! [`StreamSeeder`]: crate::seeder::StreamSeeder
//! [`StreamSeeder::derive_seed`]: crate::seeder::StreamSeeder::derive_seed
//! [`StreamSeeder::rng_for_sample`]: crate::seeder::StreamSeeder::rng_for_sample

use crate::backend::FaultKindLaw;
use crate::config::MemoryConfig;
use crate::dieblock::pack_event;
use crate::error::MemError;
use crate::fault::FaultKind;
use crate::seeder::{PlannedSample, StreamSeeder};
use faultmit_obs as obs;
use rand::wide::WideXoshiro;
use rand::Rng;

/// How many per-sample streams the wide generator advances per step. Eight
/// `u64` lanes fill one AVX-512 register (or two AVX2 registers) in the
/// autovectorised element-wise loops; the width-generic machinery itself is
/// `const`-generic like [`crate::dieblock::Lane`], so narrower widths (the
/// four-lane variant the tests also pin) compile from the same code.
pub const WIDE_LANES: usize = 8;

/// Above this fault count a lane's Floyd de-duplication switches from a
/// linear scan of its (short) chosen list to a cell-indexed bitmap. The
/// scan and the bitmap answer the same membership question, so the RNG
/// schedule is unaffected — only the bookkeeping cost changes (the bitmap
/// costs one `total_cells`-bit clear per die, which the per-draw savings
/// repay many times over at these densities).
const LINEAR_SCAN_MAX: usize = 128;

/// A backend's declaration that its per-sample schedule is wide-capable:
/// iid-uniform Floyd placement over the whole array, then (for non-flip
/// laws) one kind draw per fault in `(row, col)` order. Returned by
/// [`FaultBackend::wide_generation`](crate::backend::FaultBackend::wide_generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideGenSpec {
    /// The law the in-order per-fault kind draws follow
    /// ([`FaultKindLaw::AlwaysFlip`] draws nothing).
    pub kind_law: FaultKindLaw,
}

/// Reusable per-lane buffers of the wide generator, owned by
/// [`BlockScratch`](crate::scratch::BlockScratch). Warm after a few blocks;
/// cleared, never shrunk, between blocks.
#[derive(Debug, Default)]
pub(crate) struct WideGenScratch {
    /// Per-lane sampled cell indices (Floyd draw order, then sorted).
    indices: Vec<Vec<usize>>,
    /// Per-lane packed events awaiting the die-major flush.
    events: Vec<Vec<u64>>,
    /// Per-lane chosen bitmaps (one bit per cell) for fault counts past
    /// [`LINEAR_SCAN_MAX`].
    chosen: Vec<Vec<u64>>,
}

impl WideGenScratch {
    /// Sum of all tracked container capacities — grows on (and only on)
    /// reallocation, which the block arena's realloc counter watches.
    pub(crate) fn capacity_sum(&self) -> usize {
        self.indices.iter().map(Vec::capacity).sum::<usize>()
            + self.events.iter().map(Vec::capacity).sum::<usize>()
            + self.chosen.iter().map(Vec::capacity).sum::<usize>()
            + self.indices.capacity()
            + self.events.capacity()
            + self.chosen.capacity()
    }

    fn ensure_lanes(&mut self, lanes: usize) {
        while self.indices.len() < lanes {
            self.indices.push(Vec::new());
            self.events.push(Vec::new());
            self.chosen.push(Vec::new());
        }
    }
}

/// Marks cell `t` in a chosen bitmap, reporting whether it was fresh.
#[inline]
fn bitmap_insert(bitmap: &mut [u64], t: usize) -> bool {
    let word = &mut bitmap[t >> 6];
    let bit = 1u64 << (t & 63);
    let fresh = *word & bit == 0;
    *word |= bit;
    fresh
}

/// Generates every planned sample of `plan` through the wide path and
/// appends its packed events to `events` in the scalar generator's order:
/// die-major, each die's events `(row, col)`-sorted.
///
/// # Errors
///
/// Returns [`MemError::InvalidParameter`] when a planned fault count
/// exceeds the cell count — the same validation, with the same message, as
/// the scalar sampler.
pub(crate) fn generate_block_events(
    spec: WideGenSpec,
    config: MemoryConfig,
    seeder: &StreamSeeder,
    plan: &[PlannedSample],
    scratch: &mut WideGenScratch,
    events: &mut Vec<u64>,
) -> Result<(), MemError> {
    let total = config.total_cells();
    for planned in plan {
        let n_faults = planned.n_faults as usize;
        if n_faults > total {
            return Err(MemError::InvalidParameter {
                reason: format!("cannot place {n_faults} faults in {total} cells"),
            });
        }
    }
    scratch.ensure_lanes(WIDE_LANES);
    // Chunk-local metrics arena: lane-utilisation slots are counted per
    // lock-step Floyd step, so they are batched here and flushed once per
    // block rather than resolving the recorder per step.
    let mut arena = obs::MetricsArena::new();
    for planned in plan {
        arena.count(obs::Counter::DiesGenerated, 1);
        arena.count(obs::Counter::FaultsGenerated, planned.n_faults);
        arena.record(obs::Histogram::FaultsPerDie, planned.n_faults);
    }
    for (chunk_index, chunk) in plan.chunks(WIDE_LANES).enumerate() {
        let base_die = chunk_index * WIDE_LANES;
        arena.count(obs::Counter::WideGenChunks, 1);
        generate_chunk::<WIDE_LANES>(spec, config, seeder, chunk, base_die, scratch, &mut arena);
        for lane_events in &scratch.events[..chunk.len()] {
            events.extend_from_slice(lane_events);
        }
    }
    arena.flush();
    Ok(())
}

/// Generates one chunk of up to `N` planned samples into the per-lane
/// event buffers (`scratch.events[j]`, die `base_die + j`).
fn generate_chunk<const N: usize>(
    spec: WideGenSpec,
    config: MemoryConfig,
    seeder: &StreamSeeder,
    chunk: &[PlannedSample],
    base_die: usize,
    scratch: &mut WideGenScratch,
    arena: &mut obs::MetricsArena,
) {
    let lanes = chunk.len();
    debug_assert!(lanes <= N);
    let total = config.total_cells();
    let mut seeds = [0u64; N];
    let mut amounts = [0usize; N];
    for (j, planned) in chunk.iter().enumerate() {
        seeds[j] = seeder.derive_seed(0, planned.index);
        amounts[j] = planned.n_faults as usize;
    }
    let mut wide = WideXoshiro::<N>::from_seeds(&seeds);
    wide_floyd(&mut wide, total, &amounts, lanes, scratch, arena);

    // Restore each lane's `(row, col)` order — raw cell indices sort
    // exactly like the scalar map's `(row, col)` key — and pack the
    // events. The kind code of stuck-at laws is OR-ed in afterwards, one
    // lane-masked draw per fault in that same sorted order, replicating
    // the scalar `rekind_in_order` schedule.
    let flip = matches!(spec.kind_law, FaultKindLaw::AlwaysFlip);
    // Power-of-two word widths (every shipped geometry) split the cell
    // index with shift/mask instead of two divisions per event.
    let word_bits = config.word_bits();
    let word_shift = word_bits
        .is_power_of_two()
        .then(|| word_bits.trailing_zeros());
    for (j, &amount) in amounts[..lanes].iter().enumerate() {
        let indices = &mut scratch.indices[j];
        if amount > LINEAR_SCAN_MAX {
            // Dense lanes: the chosen bitmap *is* the sampled set, so a
            // word-order walk re-derives the indices already sorted —
            // no comparison sort over thousands of elements.
            indices.clear();
            for (word_index, &word) in scratch.chosen[j].iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    indices.push((word_index << 6) | bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
            debug_assert_eq!(indices.len(), amount);
        } else {
            indices.sort_unstable();
        }
        let lane_events = &mut scratch.events[j];
        lane_events.clear();
        let die = base_die + j;
        for &index in indices.iter() {
            let (row, col) = match word_shift {
                Some(shift) => (index >> shift, index & (word_bits - 1)),
                None => config.cell_position(index),
            };
            let kind = if flip {
                FaultKind::BitFlip
            } else {
                FaultKind::StuckAtZero // placeholder code 0, patched below
            };
            lane_events.push(pack_event(row, col, die, kind));
        }
    }
    if !flip {
        let max_amount = amounts[..lanes].iter().copied().max().unwrap_or(0);
        for k in 0..max_amount {
            let mut active = [false; N];
            for j in 0..lanes {
                active[j] = k < amounts[j];
            }
            let draws = wide.next_u64_masked(&active);
            for j in 0..lanes {
                if active[j] {
                    scratch.events[j][k] |= kind_code(spec.kind_law, draws[j]);
                }
            }
        }
    }
}

/// Decodes one raw 64-bit draw into the packed kind code of the law —
/// bit-identical to [`FaultKindLaw::sample`] consuming the same draw
/// (`gen::<bool>` for the symmetric law, `gen_bool(p)` for the asymmetric
/// one; both consume exactly one `next_u64`).
fn kind_code(law: FaultKindLaw, draw: u64) -> u64 {
    match law {
        FaultKindLaw::AlwaysFlip => 2,
        // `rng.gen::<bool>()`: low bit set → StuckAtOne (code 1).
        FaultKindLaw::RandomStuckAt => draw & 1,
        // `rng.gen_bool(p)`: 53-bit mantissa in [0, 1) below p → StuckAtZero
        // (code 0), else StuckAtOne (code 1).
        FaultKindLaw::AsymmetricStuckAt { p_stuck_at_zero } => {
            let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            u64::from(unit >= p_stuck_at_zero)
        }
    }
}

/// Floyd-samples `amounts[j]` distinct cell indices into
/// `scratch.indices[j]` for every lane `j < lanes`, in lock-step wide
/// steps: lane `j` is active for its own first `amounts[j]` steps with
/// per-lane bound `total - amounts[j] + step`, so each lane consumes its
/// stream exactly as the scalar `sample_into` would. When only one lane
/// still has draws left the loop drains it through a scalar [`StdRng`]
/// extracted at the lane's exact state (and stores the state back for the
/// kind draws that follow).
///
/// [`StdRng`]: rand::rngs::StdRng
fn wide_floyd<const N: usize>(
    wide: &mut WideXoshiro<N>,
    total: usize,
    amounts: &[usize; N],
    lanes: usize,
    scratch: &mut WideGenScratch,
    arena: &mut obs::MetricsArena,
) {
    let mut use_set = [false; N];
    for j in 0..lanes {
        scratch.indices[j].clear();
        use_set[j] = amounts[j] > LINEAR_SCAN_MAX;
        if use_set[j] {
            // One zeroed word per 64 cells; `clear` + `resize` reuses the
            // grown allocation on every die after the first.
            let chosen = &mut scratch.chosen[j];
            chosen.clear();
            chosen.resize(total.div_ceil(64), 0);
        }
    }
    let max_amount = amounts[..lanes].iter().copied().max().unwrap_or(0);
    for step in 0..max_amount {
        let mut active = [false; N];
        let mut bounds = [0u64; N];
        let mut active_count = 0usize;
        let mut last_active = 0usize;
        for j in 0..lanes {
            if step < amounts[j] {
                active[j] = true;
                bounds[j] = (total - amounts[j] + step) as u64;
                active_count += 1;
                last_active = j;
            }
        }
        if active_count == 1 {
            // Scalar drain: one divergent lane left — finish it serially at
            // its exact stream position.
            arena.count(obs::Counter::WideGenScalarDrains, 1);
            let j = last_active;
            let mut rng = wide.lane_rng(j);
            for s in step..amounts[j] {
                let bound = total - amounts[j] + s;
                let t = rng.gen_range(0..=bound);
                floyd_push(
                    t,
                    bound,
                    use_set[j],
                    &mut scratch.indices[j],
                    &mut scratch.chosen[j],
                );
            }
            wide.store_lane(j, &rng);
            return;
        }
        arena.count(obs::Counter::WideGenLaneSteps, N as u64);
        arena.count(obs::Counter::WideGenLanesActive, active_count as u64);
        let draws = wide.gen_bounded_masked(&bounds, &active);
        for j in 0..lanes {
            if active[j] {
                floyd_push(
                    draws[j] as usize,
                    bounds[j] as usize,
                    use_set[j],
                    &mut scratch.indices[j],
                    &mut scratch.chosen[j],
                );
            }
        }
    }
}

/// One Floyd step's bookkeeping: keep `t` if it is new, otherwise
/// substitute the step bound (which is provably not yet chosen). Membership
/// is answered by a linear scan of the lane's short chosen list or by its
/// cell bitmap — the same answer either way, so the substitution pattern
/// (and with it the sampled set) is identical to the scalar algorithm's.
#[inline]
fn floyd_push(t: usize, bound: usize, use_set: bool, indices: &mut Vec<usize>, chosen: &mut [u64]) {
    let fresh = if use_set {
        bitmap_insert(chosen, t)
    } else {
        !indices.contains(&t)
    };
    if fresh {
        indices.push(t);
    } else {
        if use_set {
            bitmap_insert(chosen, bound);
        }
        indices.push(bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BackendKind, FaultBackend};
    use crate::scratch::DieScratch;

    fn config() -> MemoryConfig {
        MemoryConfig::new(128, 32).unwrap()
    }

    fn scalar_events(backend: &Backend, seeder: &StreamSeeder, plan: &[PlannedSample]) -> Vec<u64> {
        let mut scratch = DieScratch::new(backend.config());
        let mut events = Vec::new();
        for (die, planned) in plan.iter().enumerate() {
            let mut rng = seeder.rng_for_sample(planned.index);
            scratch
                .generate(backend, &mut rng, planned.n_faults as usize)
                .unwrap();
            for fault in scratch.map().iter() {
                events.push(pack_event(fault.row, fault.col, die, fault.kind));
            }
        }
        events
    }

    fn wide_events(
        spec: WideGenSpec,
        backend: &Backend,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
    ) -> Vec<u64> {
        let mut scratch = WideGenScratch::default();
        let mut events = Vec::new();
        generate_block_events(
            spec,
            backend.config(),
            seeder,
            plan,
            &mut scratch,
            &mut events,
        )
        .unwrap();
        events
    }

    fn plan(counts: &[u64]) -> Vec<PlannedSample> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &n_faults)| PlannedSample {
                index: 1000 + i as u64,
                n_faults,
            })
            .collect()
    }

    #[test]
    fn wide_events_match_the_scalar_generator_exactly() {
        let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3).unwrap();
        let spec = backend.wide_generation().unwrap();
        let seeder = StreamSeeder::new(0xBEEF);
        // Full chunks, ragged tails, odd lane counts, zero-fault lanes,
        // mixed amounts and a fault count past the hash-set threshold.
        let plans = [
            plan(&[12; 16]),
            plan(&[1, 0, 7, 3, 12, 12, 5]),
            plan(&[40]),
            plan(&[0, 0, 0]),
            plan(&[3, 200, 3, 150, 1, 0, 9, 12, 33]),
        ];
        for (i, plan) in plans.iter().enumerate() {
            assert_eq!(
                wide_events(spec, &backend, &seeder, plan),
                scalar_events(&backend, &seeder, plan),
                "plan {i}"
            );
        }
    }

    #[test]
    fn wide_events_match_under_every_kind_law() {
        let laws = [
            FaultKindLaw::AlwaysFlip,
            FaultKindLaw::RandomStuckAt,
            FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.85,
            },
        ];
        let seeder = StreamSeeder::new(42);
        for law in laws {
            let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3)
                .unwrap()
                .with_kind_law(law)
                .unwrap();
            let spec = backend.wide_generation().unwrap();
            let plan = plan(&[5, 17, 0, 8, 25, 1, 13, 40, 2, 160]);
            assert_eq!(
                wide_events(spec, &backend, &seeder, &plan),
                scalar_events(&backend, &seeder, &plan),
                "{law}"
            );
        }
    }

    #[test]
    fn overfull_requests_error_with_the_sampler_message() {
        let small = MemoryConfig::new(4, 8).unwrap();
        let seeder = StreamSeeder::new(1);
        let mut scratch = WideGenScratch::default();
        let mut events = Vec::new();
        let spec = WideGenSpec {
            kind_law: FaultKindLaw::AlwaysFlip,
        };
        let plan = [PlannedSample {
            index: 0,
            n_faults: 33,
        }];
        let err = generate_block_events(spec, small, &seeder, &plan, &mut scratch, &mut events)
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("cannot place 33 faults in 32 cells"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn non_wide_backends_decline_the_wide_path() {
        for kind in [BackendKind::Dram, BackendKind::Mlc] {
            let backend = Backend::at_p_cell(kind, config(), 1e-3).unwrap();
            assert!(
                backend.wide_generation().is_none(),
                "{kind} must take the scalar fallback"
            );
        }
    }
}
