//! Deterministic stream-splitting of a campaign seed into per-sample RNGs.
//!
//! The parallel fault-injection pipeline evaluates thousands of Monte-Carlo
//! samples on worker threads. To make results bit-identical regardless of
//! how samples are distributed over threads, every sample owns an
//! independent RNG derived *only* from the campaign seed and the sample's
//! global index — never from execution order. [`StreamSeeder`] performs that
//! derivation with a SplitMix64 avalanche over `(campaign_seed, stream,
//! index)` so that neighbouring indices yield statistically independent
//! streams.
//!
//! # Generation contract
//!
//! The seeds this type derives are the RNG authority for the whole
//! pipeline: every generation path must reproduce, bit for bit, the stream
//! a scalar [`StdRng`] seeded from [`StreamSeeder::derive_seed`] produces.
//! That holds *structurally* for the scalar paths
//! ([`StreamSeeder::rng_for_sample`] simply performs that seeding) and for
//! the lane-interleaved wide generator ([`crate::widegen`]), which seeds
//! each lane of its [`WideXoshiro`](rand::wide::WideXoshiro) from the same
//! `derive_seed` value and advances it only when the scalar stream would
//! advance. The *gated* half — that the faults generated from those
//! streams land identically on either path — is pinned by the golden-vector
//! and `kernel_equivalence` suites. Changing this derivation (or the
//! xoshiro256++ engine behind [`StdRng`]) invalidates every published
//! figure byte, so both are frozen.

use crate::backend::FaultBackend;
use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::FaultMap;
use crate::montecarlo::FaultMapSampler;
use rand::rngs::StdRng;
use rand::{splitmix64, SeedableRng};

/// Splits one campaign seed into independent, index-addressable RNG streams.
///
/// # Example
///
/// ```
/// use faultmit_memsim::StreamSeeder;
/// use rand::Rng;
///
/// let seeder = StreamSeeder::new(42);
/// // The same (stream, index) always yields the same generator…
/// let a: u64 = seeder.rng_for_sample(7).gen();
/// let b: u64 = seeder.rng_for_sample(7).gen();
/// assert_eq!(a, b);
/// // …and different indices yield different generators.
/// let c: u64 = seeder.rng_for_sample(8).gen();
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSeeder {
    campaign_seed: u64,
}

impl StreamSeeder {
    /// Creates a seeder for the given campaign seed.
    #[must_use]
    pub fn new(campaign_seed: u64) -> Self {
        Self { campaign_seed }
    }

    /// The campaign seed this seeder splits.
    #[must_use]
    pub fn campaign_seed(&self) -> u64 {
        self.campaign_seed
    }

    /// Derives the 64-bit seed of stream `stream` at index `index`.
    ///
    /// The derivation chains two SplitMix64 avalanche steps, so linearly
    /// related `(stream, index)` pairs land far apart in seed space.
    #[must_use]
    pub fn derive_seed(&self, stream: u64, index: u64) -> u64 {
        let mut state = self
            .campaign_seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mixed_stream = splitmix64(&mut state);
        let mut state = mixed_stream ^ index.wrapping_mul(0xA24B_AED4_963E_E407);
        splitmix64(&mut state)
    }

    /// The RNG owned by Monte-Carlo sample `index` (stream 0).
    #[must_use]
    pub fn rng_for_sample(&self, index: u64) -> StdRng {
        self.rng_for(0, index)
    }

    /// The RNG of stream `stream` at index `index` — use distinct streams for
    /// distinct purposes (fault placement, data generation, …) so they can
    /// be extended independently without perturbing each other.
    #[must_use]
    pub fn rng_for(&self, stream: u64, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive_seed(stream, index))
    }
}

/// One planned Monte-Carlo sample: a globally unique index plus the failure
/// count its fault map must contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedSample {
    /// Global sample index within the campaign (drives RNG derivation).
    pub index: u64,
    /// Exact number of faults to inject for this sample.
    pub n_faults: u64,
}

/// A batch of sampled dies, generated independently of any other batch.
///
/// Batches are the unit of work of the parallel pipeline: each worker thread
/// generates whole batches from a [`StreamSeeder`] and a slice of
/// [`PlannedSample`]s, so fault maps never depend on which thread produced
/// them.
#[derive(Debug, Clone)]
pub struct DieBatch {
    samples: Vec<(PlannedSample, FaultMap)>,
}

impl DieBatch {
    /// Generates the batch for `plan` using per-sample RNG streams from
    /// `seeder`.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors (e.g. a failure count exceeding the cell
    /// count).
    pub fn generate(
        sampler: &FaultMapSampler,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
    ) -> Result<Self, MemError> {
        Self::generate_with(
            |rng, n_faults| sampler.sample_with_count(rng, n_faults),
            seeder,
            plan,
        )
    }

    /// Generates the batch by drawing every fault map from a
    /// [`FaultBackend`]'s spatial law — the backend-generic pipeline entry
    /// point. With [`crate::backend::SramVddBackend`] this is bit-identical
    /// to [`DieBatch::generate`].
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub fn generate_with_backend<B: FaultBackend + ?Sized>(
        backend: &B,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
    ) -> Result<Self, MemError> {
        Self::generate_with(
            |rng, n_faults| backend.sample_with_count(rng, n_faults),
            seeder,
            plan,
        )
    }

    /// Generates the batch from an arbitrary sampling function of the
    /// per-sample RNG and the planned fault count.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub fn generate_with<F>(
        mut sample: F,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
    ) -> Result<Self, MemError>
    where
        F: FnMut(&mut StdRng, usize) -> Result<FaultMap, MemError>,
    {
        let mut samples = Vec::with_capacity(plan.len());
        for &planned in plan {
            let mut rng = seeder.rng_for_sample(planned.index);
            let map = sample(&mut rng, planned.n_faults as usize)?;
            samples.push((planned, map));
        }
        Ok(Self { samples })
    }

    /// Generates the batch while rejecting (and redrawing, bounded) fault
    /// maps that place more than one fault in a single row — the Fig. 7
    /// protocol under which SECDED is error-free.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub fn generate_single_fault_per_row(
        sampler: &FaultMapSampler,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
        max_redraws: usize,
    ) -> Result<Self, MemError> {
        Self::generate_with(
            |rng, n_faults| {
                redraw_until_single_fault_rows(
                    |rng| sampler.sample_with_count(rng, n_faults),
                    rng,
                    max_redraws,
                )
            },
            seeder,
            plan,
        )
    }

    /// Backend-generic variant of
    /// [`DieBatch::generate_single_fault_per_row`]: redraws (bounded) maps
    /// that place more than one fault in a single row, using the backend's
    /// spatial law for every draw.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub fn generate_single_fault_per_row_with_backend<B: FaultBackend + ?Sized>(
        backend: &B,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
        max_redraws: usize,
    ) -> Result<Self, MemError> {
        Self::generate_with(
            |rng, n_faults| {
                redraw_until_single_fault_rows(
                    |rng| backend.sample_with_count(rng, n_faults),
                    rng,
                    max_redraws,
                )
            },
            seeder,
            plan,
        )
    }

    /// Number of dies in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the batch holds no dies.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over `(planned sample, fault map)` pairs in plan order.
    pub fn iter(&self) -> impl Iterator<Item = (&PlannedSample, &FaultMap)> {
        self.samples.iter().map(|(p, m)| (p, m))
    }

    /// Geometry shared by all dies in a non-empty batch.
    #[must_use]
    pub fn config(&self) -> Option<MemoryConfig> {
        self.samples.first().map(|(_, m)| m.config())
    }
}

/// Draws a map and redraws it (up to `max_redraws` times) while any row
/// holds more than one fault — the Fig. 7 filtering protocol, identical in
/// RNG consumption to the historical inline loop.
///
/// Best-effort: when the budget runs out the last draw is kept, multi-fault
/// rows and all. Spatial laws that cluster faults (DRAM retention) exhaust
/// the budget routinely at higher fault counts; callers comparing against
/// an "ECC is error-free" reference must not rely on the filter there.
fn redraw_until_single_fault_rows<F>(
    mut draw: F,
    rng: &mut StdRng,
    max_redraws: usize,
) -> Result<FaultMap, MemError>
where
    F: FnMut(&mut StdRng) -> Result<FaultMap, MemError>,
{
    let mut map = draw(rng)?;
    for _ in 0..max_redraws {
        if map.max_faults_per_row() <= 1 {
            break;
        }
        map = draw(rng)?;
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn sampler() -> FaultMapSampler {
        FaultMapSampler::new(MemoryConfig::new(64, 32).unwrap())
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let seeder = StreamSeeder::new(0xF00D);
        assert_eq!(seeder.derive_seed(0, 0), seeder.derive_seed(0, 0));
        let mut seen = std::collections::HashSet::new();
        for stream in 0..4u64 {
            for index in 0..256u64 {
                assert!(
                    seen.insert(seeder.derive_seed(stream, index)),
                    "collision at ({stream}, {index})"
                );
            }
        }
    }

    #[test]
    fn different_campaign_seeds_diverge() {
        let a = StreamSeeder::new(1).rng_for_sample(0).gen::<u64>();
        let b = StreamSeeder::new(2).rng_for_sample(0).gen::<u64>();
        assert_ne!(a, b);
    }

    #[test]
    fn batch_generation_is_order_independent() {
        let seeder = StreamSeeder::new(99);
        let plan: Vec<PlannedSample> = (0..10)
            .map(|i| PlannedSample {
                index: i,
                n_faults: 3,
            })
            .collect();
        // One big batch vs. two half batches: identical maps per index.
        let whole = DieBatch::generate(&sampler(), &seeder, &plan).unwrap();
        let front = DieBatch::generate(&sampler(), &seeder, &plan[..5]).unwrap();
        let back = DieBatch::generate(&sampler(), &seeder, &plan[5..]).unwrap();
        let split: Vec<_> = front.iter().chain(back.iter()).collect();
        for ((pw, mw), (ps, ms)) in whole.iter().zip(split) {
            assert_eq!(pw.index, ps.index);
            let a: Vec<_> = mw.iter().collect();
            let b: Vec<_> = ms.iter().collect();
            assert_eq!(a, b, "sample {} differs", pw.index);
        }
    }

    #[test]
    fn batch_respects_fault_counts() {
        let seeder = StreamSeeder::new(5);
        let plan: Vec<PlannedSample> = (0..8)
            .map(|i| PlannedSample {
                index: i,
                n_faults: i,
            })
            .collect();
        let batch = DieBatch::generate(&sampler(), &seeder, &plan).unwrap();
        assert_eq!(batch.len(), 8);
        for (planned, map) in batch.iter() {
            assert_eq!(map.fault_count() as u64, planned.n_faults);
        }
        assert_eq!(batch.config(), Some(MemoryConfig::new(64, 32).unwrap()));
    }

    #[test]
    fn single_fault_per_row_policy_filters_collisions() {
        // A tiny 4-row array with many faults collides constantly; the
        // bounded redraw must still terminate and, when possible, produce
        // collision-free maps.
        let sampler = FaultMapSampler::new(MemoryConfig::new(32, 32).unwrap());
        let seeder = StreamSeeder::new(17);
        let plan: Vec<PlannedSample> = (0..20)
            .map(|i| PlannedSample {
                index: i,
                n_faults: 4,
            })
            .collect();
        let batch =
            DieBatch::generate_single_fault_per_row(&sampler, &seeder, &plan, 1000).unwrap();
        for (planned, map) in batch.iter() {
            assert_eq!(map.fault_count(), 4);
            assert!(
                map.max_faults_per_row() <= 1,
                "sample {} kept a multi-fault row",
                planned.index
            );
        }
    }

    #[test]
    fn empty_batch_is_well_behaved() {
        let seeder = StreamSeeder::new(0);
        let batch = DieBatch::generate(&sampler(), &seeder, &[]).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.config(), None);
    }
}
