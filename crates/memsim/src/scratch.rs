//! Reusable per-worker scratch storage for allocation-free die generation.
//!
//! Each Monte-Carlo worker owns one arena: a [`DieScratch`] for per-sample
//! generation (the warm [`FaultMap`] plus every auxiliary container the
//! backends' samplers need — the Floyd-sampling index buffers for iid
//! placement, the occupancy set for rejection placement), or a
//! [`BlockScratch`] when the bit-sliced kernels run, which wraps a
//! `DieScratch` and adds the lane-typed transposition buffers for one
//! [`DieBlock`] of up to `L::LANES` dies. After a short warm-up the
//! containers reach their high-water capacities and steady-state die
//! generation performs **zero heap allocations** — the arena is cleared,
//! never dropped, between dies. The [`DieScratch::realloc_events`] /
//! [`BlockScratch::realloc_events`] counters make that claim testable: they
//! increment whenever a generation call grows any tracked container, so a
//! regression test can pin them flat across a long campaign tail.

use crate::backend::FaultBackend;
use crate::config::MemoryConfig;
use crate::dieblock::{
    event_sort_key, pack_event, transpose_events, BlockRowEntry, DieBlock, Lane, LaneCell,
};
use crate::error::MemError;
use crate::fault::FaultMap;
use crate::seeder::{PlannedSample, StreamSeeder};
use crate::widegen::WideGenScratch;
use faultmit_obs as obs;
use rand::rngs::StdRng;
use std::collections::HashSet;

/// A reusable arena for sampling one die at a time without steady-state
/// heap allocation.
///
/// Create one per worker thread ([`DieScratch::new`]), then call
/// [`DieScratch::generate`] (or
/// [`DieScratch::generate_single_fault_per_row`]) once per die. The
/// resulting [`FaultMap`] view is borrowed from the arena and valid until
/// the next generation call. RNG consumption is bit-identical to the
/// allocating [`FaultBackend::sample_with_count`] path, so campaigns built
/// on scratch reuse reproduce the legacy results exactly.
#[derive(Debug)]
pub struct DieScratch {
    /// The die's fault map, cleared (capacity kept) between generations.
    pub(crate) map: FaultMap,
    /// Occupied-cell set for the backends' rejection placement
    /// (`place_distinct_into`).
    pub(crate) taken: HashSet<usize>,
    /// Chosen-index set for Floyd's sampling algorithm
    /// (`rand::seq::index::sample_into`).
    pub(crate) chosen: HashSet<usize>,
    /// Sampled-index output buffer for Floyd's algorithm.
    pub(crate) indices: Vec<usize>,
    realloc_events: u64,
}

impl DieScratch {
    /// Creates an empty (cold) arena for dies of the given geometry.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            map: FaultMap::new(config),
            taken: HashSet::new(),
            chosen: HashSet::new(),
            indices: Vec::new(),
            realloc_events: 0,
        }
    }

    /// The most recently generated die.
    #[must_use]
    pub fn map(&self) -> &FaultMap {
        &self.map
    }

    /// Consumes the arena, returning the generated map.
    #[must_use]
    pub fn into_map(self) -> FaultMap {
        self.map
    }

    /// Replaces the arena's fault map wholesale. This is the fallback entry
    /// point for custom [`FaultBackend`]s that do not override
    /// [`FaultBackend::sample_into`] — it hands ownership of a freshly
    /// allocated map to the arena (and therefore counts as a realloc event
    /// on every call).
    pub fn replace_map(&mut self, map: FaultMap) {
        self.map = map;
    }

    /// How many generation calls grew a tracked container (or replaced the
    /// map wholesale). Flat after warm-up ⇔ steady-state die generation is
    /// allocation-free.
    #[must_use]
    pub fn realloc_events(&self) -> u64 {
        self.realloc_events
    }

    /// Clears the map for a new die of geometry `config`, keeping capacity
    /// when the geometry is unchanged.
    pub(crate) fn reset_map(&mut self, config: MemoryConfig) {
        if self.map.config() == config {
            self.map.clear();
        } else {
            self.map = FaultMap::new(config);
        }
    }

    pub(crate) fn capacity_signature(&self) -> [usize; 4] {
        [
            self.map.capacity(),
            self.taken.capacity(),
            self.chosen.capacity(),
            self.indices.capacity(),
        ]
    }

    /// Generates one die with exactly `n_faults` faults into the arena —
    /// the allocation-free twin of [`FaultBackend::sample_with_count`],
    /// bit-identical at the same RNG state.
    ///
    /// # Errors
    ///
    /// Propagates the backend's sampling errors (e.g. `n_faults` exceeding
    /// the cell count).
    pub fn generate<B: FaultBackend + ?Sized>(
        &mut self,
        backend: &B,
        rng: &mut StdRng,
        n_faults: usize,
    ) -> Result<&FaultMap, MemError> {
        let before = self.capacity_signature();
        backend.sample_into(rng, n_faults, self)?;
        if self.capacity_signature() != before {
            self.realloc_events += 1;
            obs::count(obs::Counter::ReallocEvents, 1);
        }
        obs::count(obs::Counter::DiesGenerated, 1);
        obs::count(obs::Counter::FaultsGenerated, n_faults as u64);
        obs::record(obs::Histogram::FaultsPerDie, n_faults as u64);
        Ok(&self.map)
    }

    /// Generates one die, redrawing it (up to `max_redraws` times) while any
    /// row holds more than one fault — the arena twin of the seeder's
    /// single-fault-per-row protocol, with identical RNG consumption.
    ///
    /// # Errors
    ///
    /// Propagates the backend's sampling errors.
    pub fn generate_single_fault_per_row<B: FaultBackend + ?Sized>(
        &mut self,
        backend: &B,
        rng: &mut StdRng,
        n_faults: usize,
        max_redraws: usize,
    ) -> Result<&FaultMap, MemError> {
        let before = self.capacity_signature();
        backend.sample_into(rng, n_faults, self)?;
        for _ in 0..max_redraws {
            if self.map.max_faults_per_row() <= 1 {
                break;
            }
            backend.sample_into(rng, n_faults, self)?;
        }
        if self.capacity_signature() != before {
            self.realloc_events += 1;
            obs::count(obs::Counter::ReallocEvents, 1);
        }
        obs::count(obs::Counter::DiesGenerated, 1);
        obs::count(obs::Counter::FaultsGenerated, n_faults as u64);
        obs::record(obs::Histogram::FaultsPerDie, n_faults as u64);
        Ok(&self.map)
    }
}

/// A reusable arena for generating transposed [`DieBlock`]s of up to
/// `L::LANES` dies, wrapping a [`DieScratch`] for the per-sample draws.
///
/// Create one per worker thread ([`BlockScratch::new`]) and call
/// [`BlockScratch::generate_block`] once per block; the returned
/// [`DieBlock`] view borrows the arena and is valid until the next
/// generation call. The inner scratch is reachable through
/// [`BlockScratch::scalar_mut`] for the campaign executor's per-sample
/// tail, so one arena serves both paths of a mixed block/scalar shard.
#[derive(Debug)]
pub struct BlockScratch<L: Lane = u64> {
    /// The per-sample arena every planned die is drawn into.
    scalar: DieScratch,
    /// Packed `(row, col, die, kind)` events for block transposition.
    events: Vec<u64>,
    /// Bucket directory for the counting sort of dense event batches.
    counts: Vec<u32>,
    /// Scatter target for the counting sort of dense event batches.
    sorted: Vec<u64>,
    /// Transposed lane cells backing the current [`DieBlock`] view.
    cells: Vec<LaneCell<L>>,
    /// Row directory backing the current [`DieBlock`] view.
    rows: Vec<BlockRowEntry<L>>,
    /// Per-lane buffers of the lane-interleaved generator.
    wide: WideGenScratch,
    /// Whether wide-capable backends take the lane-interleaved path.
    wide_generation: bool,
    realloc_events: u64,
}

impl<L: Lane> BlockScratch<L> {
    /// Creates an empty (cold) block arena for dies of the given geometry.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            scalar: DieScratch::new(config),
            events: Vec::new(),
            counts: Vec::new(),
            sorted: Vec::new(),
            cells: Vec::new(),
            rows: Vec::new(),
            wide: WideGenScratch::default(),
            wide_generation: true,
            realloc_events: 0,
        }
    }

    /// Enables or disables the lane-interleaved generation path (on by
    /// default). With it off — or for backends that do not opt in via
    /// [`FaultBackend::wide_generation`] — every block is generated through
    /// the scalar per-die path. Both paths produce bit-identical blocks;
    /// the switch exists for benchmarking and for the equivalence gates.
    pub fn set_wide_generation(&mut self, enabled: bool) {
        self.wide_generation = enabled;
    }

    /// The wrapped per-sample arena.
    #[must_use]
    pub fn scalar(&self) -> &DieScratch {
        &self.scalar
    }

    /// Mutable access to the wrapped per-sample arena — the campaign
    /// executor's scalar tail generates lone samples through it.
    pub fn scalar_mut(&mut self) -> &mut DieScratch {
        &mut self.scalar
    }

    /// How many generation calls (block or scalar) grew a tracked
    /// container. Flat after warm-up ⇔ steady-state block generation is
    /// allocation-free.
    #[must_use]
    pub fn realloc_events(&self) -> u64 {
        self.realloc_events + self.scalar.realloc_events()
    }

    fn capacity_signature(&self) -> [usize; 10] {
        let scalar = self.scalar.capacity_signature();
        // The counting sort swaps the `events` and `sorted` buffers, so
        // record that pair order-independently: a swap of warm buffers is
        // not a reallocation.
        let events = self.events.capacity();
        let sorted = self.sorted.capacity();
        [
            scalar[0],
            scalar[1],
            scalar[2],
            scalar[3],
            events.min(sorted),
            events.max(sorted),
            self.counts.capacity(),
            self.cells.capacity(),
            self.rows.capacity(),
            self.wide.capacity_sum(),
        ]
    }

    /// Generates up to `L::LANES` planned samples into one transposed
    /// [`DieBlock`]: die `j` of the block is `plan[j]`, generated with the
    /// *same* RNG stream ([`StreamSeeder::rng_for_sample`]) and the same
    /// per-sample protocol (plain, or single-fault-per-row when
    /// `max_redraws` is `Some`) as the scalar and sparse kernels, then
    /// transposed into per-cell lanes. The view borrows the arena and is
    /// valid until the next generation call.
    ///
    /// # Errors
    ///
    /// Rejects plans longer than `L::LANES` samples and propagates the
    /// backend's sampling errors.
    pub fn generate_block<B: FaultBackend + ?Sized>(
        &mut self,
        backend: &B,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
        max_redraws: Option<usize>,
    ) -> Result<DieBlock<'_, L>, MemError> {
        if plan.len() > L::LANES {
            return Err(MemError::InvalidParameter {
                reason: format!(
                    "die block plan of {} samples exceeds the {}-die lane width",
                    plan.len(),
                    L::LANES
                ),
            });
        }
        // The lane-interleaved path handles the plain per-sample protocol
        // only; the single-fault-per-row redraw loop is data-dependent, so
        // `max_redraws` plans always take the scalar path.
        let wide_spec = if self.wide_generation && max_redraws.is_none() {
            backend.wide_generation()
        } else {
            None
        };
        let before = self.capacity_signature();
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        let result = match wide_spec {
            Some(spec) => crate::widegen::generate_block_events(
                spec,
                self.scalar.map.config(),
                seeder,
                plan,
                &mut self.wide,
                &mut events,
            ),
            None => self.fill_events_scalar(backend, seeder, plan, max_redraws, &mut events),
        };
        self.events = events;
        result?;
        let transpose_span = obs::span(obs::Stage::Transpose);
        // Restore `(row, col, die)` order for transposition. Events arrive
        // die-major with each die already `(row, col)`-sorted, so a stable
        // two-pass counting sort on the `(row, col)` key reproduces the
        // exact `sort_unstable` order in linear time — the win that makes
        // dense blocks affordable. Sparse batches keep the comparison sort,
        // where zeroing the bucket directory would dominate.
        let buckets = self.scalar.map.config().rows() << 6;
        if self.events.len() >= buckets >> 3 {
            self.counts.clear();
            self.counts.resize(buckets, 0);
            for &event in &self.events {
                self.counts[event_sort_key(event)] += 1;
            }
            let mut offset = 0u32;
            for slot in &mut self.counts {
                let count = *slot;
                *slot = offset;
                offset += count;
            }
            self.sorted.clear();
            self.sorted.resize(self.events.len(), 0);
            for &event in &self.events {
                let key = event_sort_key(event);
                self.sorted[self.counts[key] as usize] = event;
                self.counts[key] += 1;
            }
            std::mem::swap(&mut self.events, &mut self.sorted);
        } else {
            self.events.sort_unstable();
        }
        transpose_events(&self.events, &mut self.cells, &mut self.rows);
        drop(transpose_span);
        obs::count(obs::Counter::BlocksTransposed, 1);
        if self.capacity_signature() != before {
            self.realloc_events += 1;
            obs::count(obs::Counter::ReallocEvents, 1);
        }
        Ok(DieBlock::new(
            &self.rows,
            &self.cells,
            plan.len(),
            self.scalar.map.config(),
        ))
    }

    /// The scalar fallback of [`BlockScratch::generate_block`]: one die at
    /// a time through the wrapped [`DieScratch`], repacked into events.
    fn fill_events_scalar<B: FaultBackend + ?Sized>(
        &mut self,
        backend: &B,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
        max_redraws: Option<usize>,
        events: &mut Vec<u64>,
    ) -> Result<(), MemError> {
        for (die, planned) in plan.iter().enumerate() {
            let mut rng = seeder.rng_for_sample(planned.index);
            let n_faults = planned.n_faults as usize;
            // Replicate the per-sample RNG consumption exactly: plain draw,
            // or the single-fault-per-row redraw loop.
            backend.sample_into(&mut rng, n_faults, &mut self.scalar)?;
            if let Some(max_redraws) = max_redraws {
                for _ in 0..max_redraws {
                    if self.scalar.map.max_faults_per_row() <= 1 {
                        break;
                    }
                    backend.sample_into(&mut rng, n_faults, &mut self.scalar)?;
                }
            }
            for fault in self.scalar.map.iter() {
                events.push(pack_event(fault.row, fault.col, die, fault.kind));
            }
            let n_faults = planned.n_faults;
            obs::count(obs::Counter::DiesGenerated, 1);
            obs::count(obs::Counter::FaultsGenerated, n_faults);
            obs::record(obs::Histogram::FaultsPerDie, n_faults);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BackendKind, FaultKindLaw};
    use crate::dieblock::W256;
    use rand::SeedableRng;

    fn config() -> MemoryConfig {
        MemoryConfig::new(128, 32).unwrap()
    }

    #[test]
    fn scratch_generation_is_bit_identical_to_the_allocating_path_per_backend() {
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, config(), 1e-3).unwrap();
            let mut scratch = DieScratch::new(config());
            for seed in 0..12u64 {
                let mut rng_scratch = StdRng::seed_from_u64(seed);
                let mut rng_fresh = StdRng::seed_from_u64(seed);
                let n = (seed as usize * 3) % 40;
                let fresh = backend.sample_with_count(&mut rng_fresh, n).unwrap();
                let reused = scratch.generate(&backend, &mut rng_scratch, n).unwrap();
                assert_eq!(reused, &fresh, "{kind}, seed {seed}");
                // The RNGs must land in the same state (same consumption).
                use rand::Rng;
                assert_eq!(rng_scratch.gen::<u64>(), rng_fresh.gen::<u64>(), "{kind}");
            }
        }
    }

    #[test]
    fn scratch_generation_is_bit_identical_under_stuck_at_laws() {
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, config(), 1e-3)
                .unwrap()
                .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                    p_stuck_at_zero: 0.7,
                })
                .unwrap();
            let mut scratch = DieScratch::new(config());
            for seed in 0..8u64 {
                let mut rng_scratch = StdRng::seed_from_u64(seed);
                let mut rng_fresh = StdRng::seed_from_u64(seed);
                let fresh = backend.sample_with_count(&mut rng_fresh, 25).unwrap();
                let reused = scratch.generate(&backend, &mut rng_scratch, 25).unwrap();
                assert_eq!(reused, &fresh, "{kind}, seed {seed}");
            }
        }
    }

    #[test]
    fn steady_state_generation_performs_no_reallocation() {
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, config(), 1e-3).unwrap();
            let mut scratch = DieScratch::new(config());
            let mut rng = StdRng::seed_from_u64(7);
            // Warm-up: containers grow to their high-water capacities.
            for n in [40usize, 40, 40, 40] {
                scratch.generate(&backend, &mut rng, n).unwrap();
            }
            let warm = scratch.realloc_events();
            // Steady state at or below the high-water fault count: no growth.
            for i in 0..200usize {
                scratch.generate(&backend, &mut rng, i % 41).unwrap();
            }
            assert_eq!(
                scratch.realloc_events(),
                warm,
                "{kind}: steady-state die generation reallocated"
            );
        }
    }

    #[test]
    fn steady_state_wide_block_generation_performs_no_reallocation() {
        use crate::seeder::{PlannedSample, StreamSeeder};
        let seeder = StreamSeeder::new(0x1D1E);
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, config(), 1e-3).unwrap();
            let mut scratch = BlockScratch::<W256>::new(config());
            let plan_at = |start: u64, n_faults: u64| -> Vec<PlannedSample> {
                (0..256u64)
                    .map(|j| PlannedSample {
                        index: start + j,
                        n_faults,
                    })
                    .collect()
            };
            // Warm-up: containers grow to their high-water capacities.
            for round in 0..4u64 {
                scratch
                    .generate_block(&backend, &seeder, &plan_at(round * 256, 40), None)
                    .unwrap();
            }
            let warm = scratch.realloc_events();
            // Steady state at or below the high-water fault count.
            for round in 0..32u64 {
                scratch
                    .generate_block(
                        &backend,
                        &seeder,
                        &plan_at(1024 + round * 256, 1 + round % 40),
                        None,
                    )
                    .unwrap();
            }
            assert_eq!(
                scratch.realloc_events(),
                warm,
                "{kind}: steady-state wide block generation reallocated"
            );
        }
    }

    #[test]
    fn overfull_requests_error_through_the_scratch_path() {
        let small = MemoryConfig::new(4, 8).unwrap();
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, small, 1e-2).unwrap();
            let mut scratch = DieScratch::new(small);
            let mut rng = StdRng::seed_from_u64(1);
            assert!(
                scratch.generate(&backend, &mut rng, 33).is_err(),
                "{kind}: 33 faults in 32 cells must be rejected"
            );
            // The arena stays usable after a rejected request.
            assert!(scratch.generate(&backend, &mut rng, 32).is_ok(), "{kind}");
            assert_eq!(scratch.map().fault_count(), 32, "{kind}");
        }
    }

    #[test]
    fn single_fault_per_row_redraw_matches_the_seeder_protocol() {
        use crate::seeder::{DieBatch, PlannedSample, StreamSeeder};
        let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3).unwrap();
        let seeder = StreamSeeder::new(99);
        let plan: Vec<PlannedSample> = (0..24u64)
            .map(|index| PlannedSample {
                index,
                n_faults: 20,
            })
            .collect();
        let batch =
            DieBatch::generate_single_fault_per_row_with_backend(&backend, &seeder, &plan, 8)
                .unwrap();
        let mut scratch = DieScratch::new(config());
        for (planned, expected) in batch.iter() {
            let mut rng = seeder.rng_for_sample(planned.index);
            let map = scratch
                .generate_single_fault_per_row(&backend, &mut rng, planned.n_faults as usize, 8)
                .unwrap();
            assert_eq!(map, expected, "sample {}", planned.index);
        }
    }
}
