//! Memory built-in self test (BIST).
//!
//! The bit-shuffling scheme needs to know, for every row, where the faulty
//! cells sit so that the FM-LUT can be programmed (§3 of the paper: "the
//! location of the faulty cell in each row/word is detected during BIST").
//! The paper suggests running the BIST either at post-fabrication test or at
//! every power-on so that ageing-induced faults are also captured.
//!
//! [`MarchBist`] implements the classic March C- algorithm:
//!
//! ```text
//! ⇕(w0); ⇑(r0, w1); ⇑(r1, w0); ⇓(r0, w1); ⇓(r1, w0); ⇕(r0)
//! ```
//!
//! executed at word granularity (each element reads/writes whole words with
//! all-zeros / all-ones backgrounds), which detects stuck-at and
//! inversion-type cell defects — exactly the fault kinds modelled by
//! [`FaultKind`](crate::fault::FaultKind).

use crate::array::SramArray;
use crate::config::MemoryConfig;
use crate::error::MemError;

/// Faulty bit positions detected in one row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowFaultReport {
    /// Row (word address).
    pub row: usize,
    /// Detected faulty bit positions, sorted ascending (LSB first).
    pub faulty_columns: Vec<usize>,
}

impl RowFaultReport {
    /// Number of faulty cells detected in this row.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.faulty_columns.len()
    }

    /// Highest faulty bit position, if any.
    #[must_use]
    pub fn highest_faulty_column(&self) -> Option<usize> {
        self.faulty_columns.last().copied()
    }
}

/// Result of a BIST run over a whole array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistReport {
    config: MemoryConfig,
    rows: Vec<RowFaultReport>,
    total_reads: u64,
    total_writes: u64,
}

impl BistReport {
    /// Geometry of the tested array.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Reports for rows that contain at least one detected fault, in
    /// ascending row order.
    #[must_use]
    pub fn faulty_rows(&self) -> &[RowFaultReport] {
        &self.rows
    }

    /// Total number of faulty cells detected.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.rows.iter().map(RowFaultReport::fault_count).sum()
    }

    /// Number of rows with at least one detected fault.
    #[must_use]
    pub fn faulty_row_count(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no fault was detected.
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.rows.is_empty()
    }

    /// Detected faulty columns of a specific row (empty if the row is clean).
    #[must_use]
    pub fn faulty_columns(&self, row: usize) -> &[usize] {
        match self.rows.binary_search_by_key(&row, |r| r.row) {
            Ok(index) => &self.rows[index].faulty_columns,
            Err(_) => &[],
        }
    }

    /// Number of word reads issued by the test.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.total_reads
    }

    /// Number of word writes issued by the test.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }
}

/// March C- built-in self test executed at word granularity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarchBist {
    /// Run the final verification element (⇕(r0)) — enabled by default.
    pub run_final_read: bool,
}

impl MarchBist {
    /// Creates a BIST with the full March C- sequence.
    #[must_use]
    pub fn new() -> Self {
        Self {
            run_final_read: true,
        }
    }

    /// Runs the test over `array`, restoring the array contents to zero
    /// afterwards (the test is destructive, as in real hardware where BIST
    /// runs before the memory holds live data).
    ///
    /// # Errors
    ///
    /// Propagates array access errors; none occur for a well-formed array.
    pub fn run(&self, array: &mut SramArray) -> Result<BistReport, MemError> {
        let config = array.config();
        let rows = config.rows();
        let mask = config.word_mask();
        let reads_before = array.read_count();
        let writes_before = array.write_count();

        // Per-row accumulated set of faulty columns (bitmask).
        let mut faulty_bits = vec![0u64; rows];

        // ⇕(w0): write all-zero background.
        for row in 0..rows {
            array.write(row, 0)?;
        }
        // ⇑(r0, w1): ascending, expect 0, write 1.
        for (row, bits) in faulty_bits.iter_mut().enumerate() {
            let observed = array.read(row)?;
            *bits |= observed;
            array.write(row, mask)?;
        }
        // ⇑(r1, w0): ascending, expect 1, write 0.
        for (row, bits) in faulty_bits.iter_mut().enumerate() {
            let observed = array.read(row)?;
            *bits |= observed ^ mask;
            array.write(row, 0)?;
        }
        // ⇓(r0, w1): descending, expect 0, write 1.
        for row in (0..rows).rev() {
            let observed = array.read(row)?;
            faulty_bits[row] |= observed;
            array.write(row, mask)?;
        }
        // ⇓(r1, w0): descending, expect 1, write 0.
        for row in (0..rows).rev() {
            let observed = array.read(row)?;
            faulty_bits[row] |= observed ^ mask;
            array.write(row, 0)?;
        }
        // ⇕(r0): final verification.
        if self.run_final_read {
            for (row, bits) in faulty_bits.iter_mut().enumerate() {
                let observed = array.read(row)?;
                *bits |= observed;
            }
        }

        let mut reports = Vec::new();
        for (row, bits) in faulty_bits.iter().enumerate() {
            if *bits != 0 {
                let faulty_columns = (0..config.word_bits())
                    .filter(|&col| (bits >> col) & 1 == 1)
                    .collect();
                reports.push(RowFaultReport {
                    row,
                    faulty_columns,
                });
            }
        }

        Ok(BistReport {
            config,
            rows: reports,
            total_reads: array.read_count() - reads_before,
            total_writes: array.write_count() - writes_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultMap};

    fn array_with(faults: &[Fault]) -> SramArray {
        let config = MemoryConfig::new(16, 32).unwrap();
        let map = FaultMap::from_faults(config, faults.iter().copied()).unwrap();
        SramArray::with_faults(config, map)
    }

    #[test]
    fn clean_memory_reports_no_faults() {
        let mut array = array_with(&[]);
        let report = MarchBist::new().run(&mut array).unwrap();
        assert!(report.is_fault_free());
        assert_eq!(report.fault_count(), 0);
        assert_eq!(report.faulty_row_count(), 0);
    }

    #[test]
    fn detects_stuck_at_zero_and_one() {
        let mut array = array_with(&[Fault::stuck_at_zero(3, 7), Fault::stuck_at_one(9, 0)]);
        let report = MarchBist::new().run(&mut array).unwrap();
        assert_eq!(report.fault_count(), 2);
        assert_eq!(report.faulty_columns(3), &[7]);
        assert_eq!(report.faulty_columns(9), &[0]);
        assert_eq!(report.faulty_columns(0), &[] as &[usize]);
    }

    #[test]
    fn detects_bit_flip_faults() {
        let mut array = array_with(&[Fault::bit_flip(5, 31)]);
        let report = MarchBist::new().run(&mut array).unwrap();
        assert_eq!(report.fault_count(), 1);
        assert_eq!(report.faulty_columns(5), &[31]);
    }

    #[test]
    fn detects_multiple_faults_in_one_row() {
        let mut array = array_with(&[
            Fault::stuck_at_one(2, 1),
            Fault::stuck_at_zero(2, 16),
            Fault::bit_flip(2, 30),
        ]);
        let report = MarchBist::new().run(&mut array).unwrap();
        assert_eq!(report.faulty_row_count(), 1);
        assert_eq!(report.faulty_columns(2), &[1, 16, 30]);
        assert_eq!(report.faulty_rows()[0].highest_faulty_column(), Some(30));
    }

    #[test]
    fn report_matches_injected_fault_map_exactly() {
        let faults = [
            Fault::stuck_at_zero(0, 0),
            Fault::stuck_at_one(0, 31),
            Fault::bit_flip(7, 15),
            Fault::stuck_at_one(15, 8),
        ];
        let mut array = array_with(&faults);
        let injected = array.faults().clone();
        let report = MarchBist::new().run(&mut array).unwrap();
        assert_eq!(report.fault_count(), injected.fault_count());
        for fault in injected.iter() {
            assert!(
                report.faulty_columns(fault.row).contains(&fault.col),
                "BIST missed fault at ({}, {})",
                fault.row,
                fault.col
            );
        }
    }

    #[test]
    fn array_is_left_cleared() {
        let mut array = array_with(&[Fault::stuck_at_one(1, 1)]);
        let _ = MarchBist::new().run(&mut array).unwrap();
        for row in 0..array.config().rows() {
            assert_eq!(array.stored(row).unwrap(), 0);
        }
    }

    #[test]
    fn access_counts_match_march_c_minus_complexity() {
        // March C- issues 5 reads (6 with the final element) and 5 writes per
        // word... precisely: w0, (r0,w1), (r1,w0), (r0,w1), (r1,w0), r0 =
        // 5 reads + 5 writes per row with the final element enabled.
        let mut array = array_with(&[]);
        let rows = array.config().rows() as u64;
        let report = MarchBist::new().run(&mut array).unwrap();
        assert_eq!(report.total_reads(), 5 * rows);
        assert_eq!(report.total_writes(), 5 * rows);

        let mut array = array_with(&[]);
        let shorter = MarchBist {
            run_final_read: false,
        };
        let report = shorter.run(&mut array).unwrap();
        assert_eq!(report.total_reads(), 4 * rows);
    }

    #[test]
    fn report_rows_are_sorted_by_row_index() {
        let mut array = array_with(&[
            Fault::bit_flip(12, 0),
            Fault::bit_flip(3, 0),
            Fault::bit_flip(8, 0),
        ]);
        let report = MarchBist::new().run(&mut array).unwrap();
        let rows: Vec<usize> = report.faulty_rows().iter().map(|r| r.row).collect();
        assert_eq!(rows, vec![3, 8, 12]);
    }
}
