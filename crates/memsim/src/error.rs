//! Error types for the memory simulator.

use std::error::Error;
use std::fmt;

/// Errors reported by the functional memory model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MemError {
    /// A geometry parameter is invalid (zero rows, unsupported word width, ...).
    InvalidGeometry {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A row address is outside the array.
    RowOutOfRange {
        /// The requested row.
        row: usize,
        /// The number of rows in the array.
        rows: usize,
    },
    /// A column (bit position) is outside the word.
    ColumnOutOfRange {
        /// The requested column.
        col: usize,
        /// The word width in bits.
        word_bits: usize,
    },
    /// A data value does not fit in the configured word width.
    ValueTooWide {
        /// The value that was written.
        value: u64,
        /// The word width in bits.
        word_bits: usize,
    },
    /// A fault map was built for a different geometry than the array it is
    /// attached to.
    GeometryMismatch {
        /// Description of the mismatch.
        reason: String,
    },
    /// A probability parameter is outside `[0, 1]` or otherwise unusable.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A model parameter is invalid (non-positive sigma, reversed voltage
    /// range, ...).
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidGeometry { reason } => {
                write!(f, "invalid memory geometry: {reason}")
            }
            MemError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for array with {rows} rows")
            }
            MemError::ColumnOutOfRange { col, word_bits } => {
                write!(f, "column {col} out of range for {word_bits}-bit words")
            }
            MemError::ValueTooWide { value, word_bits } => {
                write!(f, "value {value:#x} does not fit in a {word_bits}-bit word")
            }
            MemError::GeometryMismatch { reason } => {
                write!(f, "memory geometry mismatch: {reason}")
            }
            MemError::InvalidProbability { value } => {
                write!(f, "invalid probability {value}")
            }
            MemError::InvalidParameter { reason } => {
                write!(f, "invalid model parameter: {reason}")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = MemError::RowOutOfRange { row: 9, rows: 4 };
        assert!(err.to_string().contains("row 9"));
        assert!(err.to_string().contains("4 rows"));

        let err = MemError::ValueTooWide {
            value: 0x1_0000_0000,
            word_bits: 32,
        };
        assert!(err.to_string().contains("32-bit"));

        let err = MemError::InvalidProbability { value: 1.5 };
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }

    #[test]
    fn errors_implement_std_error() {
        let err: Box<dyn Error> = Box::new(MemError::InvalidProbability { value: -0.1 });
        assert!(err.source().is_none());
    }
}
