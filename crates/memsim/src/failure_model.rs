//! Analytical bit-cell failure probability model `P_cell(V_DD)`.
//!
//! The paper obtains `P_cell` from SPICE-level simulations of a 28 nm 6T SRAM
//! cell combined with hypersphere importance sampling (its Fig. 2). That flow
//! needs proprietary device models, so this crate substitutes an analytical
//! Gaussian static-noise-margin (SNM) model:
//!
//! * each cell's read/write margin is normally distributed around a nominal
//!   margin that shrinks linearly as the supply voltage is scaled down;
//! * a cell fails when its margin falls below zero, so
//!   `P_cell(V_DD) = Φ(−z(V_DD))` with `z(V_DD) = slope · V_DD + offset`.
//!
//! The default calibration reproduces the Fig. 2 curve shape: `P_cell` rises
//! from ≈1e-9 at the nominal 1.0 V to ≈1e-2 at 0.6 V, and the yield
//! `(1 − P_cell)^M` of a 16 KB array collapses to ≈0 around 0.73 V.
//!
//! The model also captures the *fault inclusion property* \[14\]: a cell that
//! fails at a given `V_DD` fails at every lower `V_DD`, because its (fixed)
//! margin deviation is compared against a threshold that only grows as the
//! voltage drops. See [`crate::voltage::VoltageScaledDie`].

use crate::error::MemError;
use crate::stats::{normal_cdf, normal_quantile};

/// Default nominal supply voltage (V) of the modelled 28 nm node.
pub const NOMINAL_VDD: f64 = 1.0;

/// Analytical cell-failure-probability model (Gaussian noise-margin model).
///
/// # Example
///
/// ```
/// use faultmit_memsim::CellFailureModel;
///
/// let model = CellFailureModel::default_28nm();
/// let nominal = model.p_cell(1.0);
/// let scaled = model.p_cell(0.7);
/// assert!(nominal < 1e-8);
/// assert!(scaled > nominal * 1e3, "voltage scaling raises P_cell sharply");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellFailureModel {
    /// Margin z-score slope per volt: how fast the margin (in σ units) grows
    /// with the supply voltage.
    z_slope_per_volt: f64,
    /// Margin z-score offset at 0 V.
    z_offset: f64,
    /// Lowest voltage the model is calibrated for.
    vdd_min: f64,
    /// Highest voltage the model is calibrated for.
    vdd_max: f64,
}

impl CellFailureModel {
    /// Default calibration for the paper's 28 nm FD-SOI node.
    ///
    /// Anchored at `P_cell(1.0 V) ≈ 1e-9` and `P_cell(0.6 V) ≈ 1e-2`.
    #[must_use]
    pub fn default_28nm() -> Self {
        FailureModelBuilder::new()
            .anchor(1.0, 1e-9)
            .anchor(0.6, 1e-2)
            .voltage_range(0.5, 1.1)
            .build()
            .expect("default calibration anchors are valid")
    }

    /// Cell failure probability at the given supply voltage.
    ///
    /// The voltage is clamped to the calibrated range so extrapolation stays
    /// monotone and bounded.
    #[must_use]
    pub fn p_cell(&self, vdd: f64) -> f64 {
        let v = vdd.clamp(self.vdd_min, self.vdd_max);
        normal_cdf(-self.margin_z(v))
    }

    /// Margin z-score at a given supply voltage: the number of standard
    /// deviations by which the nominal margin exceeds the failure boundary.
    #[must_use]
    pub fn margin_z(&self, vdd: f64) -> f64 {
        self.z_slope_per_volt * vdd + self.z_offset
    }

    /// Expected number of faulty cells in a memory of `total_cells` bit-cells.
    #[must_use]
    pub fn expected_failures(&self, vdd: f64, total_cells: usize) -> f64 {
        self.p_cell(vdd) * total_cells as f64
    }

    /// Classical zero-failure yield `Y = (1 − P_cell)^M` of a memory with
    /// `total_cells` cells (the paper's traditional yield criterion, §2).
    #[must_use]
    pub fn zero_failure_yield(&self, vdd: f64, total_cells: usize) -> f64 {
        let p = self.p_cell(vdd);
        // Computed in log space: M·ln(1-p) stays accurate for tiny p.
        (total_cells as f64 * (-p).ln_1p()).exp()
    }

    /// The voltage at which a per-cell failure probability `p` is reached.
    ///
    /// Inverse of [`CellFailureModel::p_cell`]; useful for finding the minimum
    /// operating voltage for a yield target.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] if `p` is not in `(0, 1)`.
    pub fn vdd_for_p_cell(&self, p: f64) -> Result<f64, MemError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(MemError::InvalidProbability { value: p });
        }
        let z = -normal_quantile(p);
        Ok((z - self.z_offset) / self.z_slope_per_volt)
    }

    /// Calibrated voltage range `(min, max)`.
    #[must_use]
    pub fn voltage_range(&self) -> (f64, f64) {
        (self.vdd_min, self.vdd_max)
    }
}

impl Default for CellFailureModel {
    fn default() -> Self {
        Self::default_28nm()
    }
}

/// Builder for [`CellFailureModel`] calibrated from two `(V_DD, P_cell)`
/// anchor points.
///
/// # Example
///
/// ```
/// use faultmit_memsim::FailureModelBuilder;
///
/// # fn main() -> Result<(), faultmit_memsim::MemError> {
/// let model = FailureModelBuilder::new()
///     .anchor(1.0, 1e-8)
///     .anchor(0.65, 5e-3)
///     .build()?;
/// assert!(model.p_cell(0.65) > model.p_cell(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FailureModelBuilder {
    anchors: Vec<(f64, f64)>,
    vdd_min: Option<f64>,
    vdd_max: Option<f64>,
}

impl FailureModelBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a calibration anchor: at voltage `vdd` the cell failure
    /// probability is `p_cell`. Exactly two anchors are required.
    #[must_use]
    pub fn anchor(mut self, vdd: f64, p_cell: f64) -> Self {
        self.anchors.push((vdd, p_cell));
        self
    }

    /// Sets the voltage range the model may be evaluated over.
    ///
    /// Defaults to the span of the anchors.
    #[must_use]
    pub fn voltage_range(mut self, vdd_min: f64, vdd_max: f64) -> Self {
        self.vdd_min = Some(vdd_min);
        self.vdd_max = Some(vdd_max);
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] unless exactly two anchors with
    /// distinct voltages and probabilities in `(0, 1)` were provided and the
    /// failure probability decreases with voltage.
    pub fn build(self) -> Result<CellFailureModel, MemError> {
        if self.anchors.len() != 2 {
            return Err(MemError::InvalidParameter {
                reason: format!(
                    "exactly two calibration anchors are required, got {}",
                    self.anchors.len()
                ),
            });
        }
        let (mut v_low, mut p_low) = self.anchors[0];
        let (mut v_high, mut p_high) = self.anchors[1];
        if v_low > v_high {
            std::mem::swap(&mut v_low, &mut v_high);
            std::mem::swap(&mut p_low, &mut p_high);
        }
        if (v_high - v_low).abs() < 1e-9 {
            return Err(MemError::InvalidParameter {
                reason: "calibration anchors must have distinct voltages".to_owned(),
            });
        }
        for &(_, p) in &self.anchors {
            if !(p > 0.0 && p < 1.0) {
                return Err(MemError::InvalidProbability { value: p });
            }
        }
        if p_low <= p_high {
            return Err(MemError::InvalidParameter {
                reason: "failure probability must decrease as voltage increases".to_owned(),
            });
        }
        // P_cell = Φ(−z) so z = −Φ⁻¹(P_cell); fit z(V) = slope·V + offset.
        let z_at_low = -normal_quantile(p_low);
        let z_at_high = -normal_quantile(p_high);
        let slope = (z_at_high - z_at_low) / (v_high - v_low);
        let offset = z_at_low - slope * v_low;
        let vdd_min = self.vdd_min.unwrap_or(v_low);
        let vdd_max = self.vdd_max.unwrap_or(v_high);
        if vdd_min >= vdd_max {
            return Err(MemError::InvalidParameter {
                reason: format!("voltage range [{vdd_min}, {vdd_max}] is empty"),
            });
        }
        Ok(CellFailureModel {
            z_slope_per_volt: slope,
            z_offset: offset,
            vdd_min,
            vdd_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    #[test]
    fn default_model_matches_anchor_points() {
        let model = CellFailureModel::default_28nm();
        assert!((model.p_cell(1.0).log10() - (-9.0)).abs() < 0.3);
        assert!((model.p_cell(0.6).log10() - (-2.0)).abs() < 0.3);
    }

    #[test]
    fn p_cell_is_monotonically_decreasing_in_vdd() {
        let model = CellFailureModel::default_28nm();
        let mut previous = f64::INFINITY;
        let mut v = 0.55;
        while v <= 1.05 {
            let p = model.p_cell(v);
            assert!(p <= previous, "P_cell must not increase with V_DD");
            assert!((0.0..=1.0).contains(&p));
            previous = p;
            v += 0.01;
        }
    }

    #[test]
    fn yield_collapses_for_16kb_memory_near_0_73v() {
        // Fig. 2: "the yield approaches zero for a 16KB memory operating at 0.73V".
        let model = CellFailureModel::default_28nm();
        let cells = MemoryConfig::paper_16kb().total_cells();
        let yield_at_nominal = model.zero_failure_yield(1.0, cells);
        let yield_at_073 = model.zero_failure_yield(0.73, cells);
        assert!(
            yield_at_nominal > 0.99,
            "nominal yield = {yield_at_nominal}"
        );
        assert!(yield_at_073 < 0.01, "yield at 0.73V = {yield_at_073}");
    }

    #[test]
    fn expected_failures_scales_with_memory_size() {
        let model = CellFailureModel::default_28nm();
        let small = model.expected_failures(0.7, 1024);
        let large = model.expected_failures(0.7, 131_072);
        assert!((large / small - 128.0).abs() < 1e-6);
    }

    #[test]
    fn vdd_for_p_cell_inverts_p_cell() {
        let model = CellFailureModel::default_28nm();
        for &p in &[1e-8, 1e-6, 1e-4, 1e-3, 1e-2] {
            let vdd = model.vdd_for_p_cell(p).unwrap();
            let recovered = model.p_cell(vdd);
            assert!(
                (recovered.log10() - p.log10()).abs() < 0.05,
                "p = {p}, recovered = {recovered}"
            );
        }
        assert!(model.vdd_for_p_cell(0.0).is_err());
        assert!(model.vdd_for_p_cell(1.0).is_err());
    }

    #[test]
    fn p_cell_clamps_outside_calibrated_range() {
        let model = CellFailureModel::default_28nm();
        let (lo, hi) = model.voltage_range();
        assert_eq!(model.p_cell(lo - 1.0), model.p_cell(lo));
        assert_eq!(model.p_cell(hi + 1.0), model.p_cell(hi));
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        assert!(FailureModelBuilder::new().build().is_err());
        assert!(FailureModelBuilder::new()
            .anchor(1.0, 1e-9)
            .build()
            .is_err());
        assert!(FailureModelBuilder::new()
            .anchor(1.0, 1e-9)
            .anchor(1.0, 1e-2)
            .build()
            .is_err());
        // Non-monotone anchors (higher voltage, higher probability).
        assert!(FailureModelBuilder::new()
            .anchor(0.6, 1e-9)
            .anchor(1.0, 1e-2)
            .build()
            .is_err());
        // Probability outside (0,1).
        assert!(FailureModelBuilder::new()
            .anchor(0.6, 0.0)
            .anchor(1.0, 1e-2)
            .build()
            .is_err());
        // Invalid explicit voltage range.
        assert!(FailureModelBuilder::new()
            .anchor(1.0, 1e-9)
            .anchor(0.6, 1e-2)
            .voltage_range(1.0, 0.5)
            .build()
            .is_err());
    }

    #[test]
    fn custom_calibration_passes_through_anchors() {
        let model = FailureModelBuilder::new()
            .anchor(0.9, 1e-6)
            .anchor(0.7, 1e-3)
            .build()
            .unwrap();
        assert!((model.p_cell(0.9).log10() + 6.0).abs() < 0.1);
        assert!((model.p_cell(0.7).log10() + 3.0).abs() < 0.1);
    }

    #[test]
    fn zero_failure_yield_is_probability() {
        let model = CellFailureModel::default_28nm();
        for &v in &[0.6, 0.7, 0.8, 0.9, 1.0] {
            let y = model.zero_failure_yield(v, 131_072);
            assert!((0.0..=1.0).contains(&y));
        }
    }
}
