//! Transposed (bit-sliced) die blocks, generic over the lane width: up to
//! [`Lane::LANES`] Monte-Carlo dies per lane value (64 for `u64`, 256 for
//! [`W256`]).
//!
//! # Transposed layout
//!
//! The scalar and sparse kernels evaluate one die at a time: a die is a
//! [`FaultMap`](crate::FaultMap), and every scheme walks its faulty rows.
//! The bit-sliced kernels instead pack **up to `L::LANES` consecutive
//! samples of the global plan** into one [`DieBlock`] and transpose the
//! fault data: for every `(row, column)` cell that is faulty in *any* die
//! of the block, a [`LaneCell`] holds three lanes whose bit `j` (bit
//! `j % 64` of lane word `j / 64`) describes die `j`:
//!
//! * `flips` — die `j` has a bit-flip fault at this cell;
//! * `stuck` — die `j` has a stuck-at fault at this cell;
//! * `stuck_value` — the value die `j`'s cell is stuck at (meaningful only
//!   where `stuck` is set — the lane a [`FaultKindLaw`](crate::FaultKindLaw)
//!   populates).
//!
//! Cells are grouped by row ([`BlockRow`]), rows ascend, and cells within a
//! row ascend by column — the same deterministic order the flat
//! [`FaultMap`](crate::FaultMap) guarantees. Each row also carries a `dirty`
//! lane (`flips | stuck` OR-ed over its cells): bit `j` set means die `j`
//! has at least one fault in this row, i.e. the per-die sparse kernel would
//! have *visited* the row. Block reductions must use `dirty` (fault
//! **presence**, not observable error) as their visit predicate so they
//! reproduce the sparse kernel's `-0.0 + 0.0` accumulation bit for bit.
//!
//! With this layout one bitwise operation on a lane does the work of
//! `L::LANES` scalar dies, which is how the mitigation schemes'
//! `observe_block` paths (in `faultmit-core`) evaluate a whole block per
//! row walk.
//!
//! # The `Lane` contract
//!
//! [`Lane`] is a **sealed** trait abstracting "a bitset with one bit per
//! die of the block". An implementation must provide:
//!
//! * `LANES` — the die capacity; `WORDS = LANES / 64` — the number of
//!   backing `u64` words; `ZERO` — the all-clear lane.
//! * The bitwise algebra (`&`, `|`, `^`, `!` and the assign forms), acting
//!   independently per bit. These are the only operations the hot loops
//!   use, which is what keeps a plain-array implementation like [`W256`]
//!   autovectorisable: no lane ever crosses a word boundary.
//! * `splat(word)` — broadcast one `u64` bit pattern to every backing word
//!   (used to turn a scalar stored bit into an all-die lane:
//!   `splat(0u64.wrapping_sub(bit))` is all-ones when `bit` is 1).
//! * Per-die access: `lane_bit(die)` (single-bit lane), `bit(self, die)`
//!   (extract one die's bit), `word(self, index)` (read one backing word),
//!   `is_zero`, `count_ones`, and the derived `for_each_die` visitor that
//!   walks set bits word by word via `trailing_zeros` — so die indices are
//!   always visited in ascending order, matching the per-sample kernels'
//!   reduction order.
//! * `DieArray<T>` / `die_array(fill)` — a `[T; LANES]` stack buffer for
//!   per-die accumulators, so reductions over a block never heap-allocate.
//!
//! **Adding a new width** (say `u64x8` = 512 dies) is three steps: define a
//! newtype over `[u64; 8]` with element-wise bit ops, implement `Lane`
//! (every method is a per-word loop or a `die / 64` + `die % 64` split),
//! and add it to the private `sealed` module. Nothing downstream changes:
//! `DieBlock`, the mitigation schemes' lane folds and the campaign executor
//! are generic over `L: Lane`. The fault-event encoding supports die
//! indices up to 255 per block; widths beyond 256 dies would also widen the
//! die field of the crate-private `pack_event` encoding.
//!
//! # Why RNG stream order is preserved (the generation contract)
//!
//! Block *generation* preserves the scalar per-sample RNG schedule even
//! where it is lane-parallel. Every planned sample owns the stream
//! [`StreamSeeder::rng_for_sample`](crate::StreamSeeder::rng_for_sample)
//! derives for it, and a block is filled one of two ways:
//!
//! * **Scalar fallback** — the existing per-sample generation path
//!   ([`DieScratch::generate`](crate::DieScratch::generate) /
//!   [`generate_single_fault_per_row`](crate::DieScratch::generate_single_fault_per_row))
//!   runs once per sample and the resulting faults are transposed
//!   afterwards. Used whenever a backend's schedule is data-dependent
//!   (DRAM clustering, MLC column weighting) or a redraw policy is active.
//! * **Wide generation** (the [`crate::widegen`] module) — backends that
//!   declare an iid-uniform Floyd schedule via
//!   [`FaultBackend::wide_generation`](crate::backend::FaultBackend::wide_generation)
//!   are generated [`WIDE_LANES`](crate::widegen::WIDE_LANES) samples at a
//!   time on lane-interleaved xoshiro256++ streams, each lane seeded and
//!   advanced **exactly** as its scalar stream would be (masked advances,
//!   per-lane rejection, scalar drain of a divergent tail), with events
//!   emitted directly in the scalar order.
//!
//! Either way every sample consumes exactly the RNG stream it consumes on
//! the scalar path — determinism, sharding and paired scheme comparison
//! are untouched, and the block kernels' fault populations are
//! *bit-identical* to the scalar and sparse kernels': by construction on
//! the fallback path, by the golden-vector and `kernel_equivalence` gates
//! on the wide path (see the [`crate::widegen`] module docs for the
//! structural-vs-gated split of that contract).
//!
//! # The scalar tail
//!
//! Campaign plans are not multiples of the lane width, and chunk boundaries
//! (a pure function of the global plan) never move: the executor groups
//! each chunk's samples into blocks of at most `L::LANES` and falls back to
//! the per-sample sparse path for degenerate single-sample groups. Any
//! grouping yields identical results because per-sample RNG streams and
//! the chunk-order reduction are independent of how samples are batched.

use crate::config::MemoryConfig;
use crate::fault::FaultKind;
use std::fmt::Debug;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

mod sealed {
    /// Seals [`super::Lane`]: lane widths are in-tree types whose bit-level
    /// layout the kernels may rely on.
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl Sealed for super::W256 {}
}

/// A bitset with one bit per die of a block — the lane type the bit-sliced
/// kernels are generic over.
///
/// See the [module docs](self) for the full contract and for how to add a
/// new width. The trait is sealed: in-tree implementations are `u64`
/// (64 dies) and [`W256`] (256 dies).
pub trait Lane:
    sealed::Sealed
    + Copy
    + Eq
    + Default
    + Debug
    + Send
    + Sync
    + 'static
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + BitAndAssign
    + BitOrAssign
    + BitXorAssign
{
    /// Number of dies a lane addresses (one bit per die).
    const LANES: usize;
    /// Number of backing `u64` words (`LANES / 64`).
    const WORDS: usize;
    /// The all-clear lane.
    const ZERO: Self;

    /// A `[T; LANES]` stack buffer for per-die accumulators.
    type DieArray<T: Copy>: AsRef<[T]> + AsMut<[T]>;

    /// Builds a [`Lane::DieArray`] with every element set to `fill`.
    fn die_array<T: Copy>(fill: T) -> Self::DieArray<T>;

    /// Broadcasts one `u64` bit pattern to every backing word.
    fn splat(word: u64) -> Self;

    /// The lane with only die `die`'s bit set.
    fn lane_bit(die: usize) -> Self;

    /// Whether no die's bit is set.
    fn is_zero(self) -> bool;

    /// Die `die`'s bit, as `0` or `1`.
    fn bit(self, die: usize) -> u64;

    /// Backing word `index` (dies `index * 64 ..= index * 64 + 63`).
    fn word(self, index: usize) -> u64;

    /// Total number of set bits (dies) across all backing words.
    fn count_ones(self) -> u32;

    /// Visits every set die in ascending die order.
    #[inline]
    fn for_each_die(self, mut f: impl FnMut(usize)) {
        for index in 0..Self::WORDS {
            let mut lanes = self.word(index);
            while lanes != 0 {
                let die = index * 64 + lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                f(die);
            }
        }
    }
}

impl Lane for u64 {
    const LANES: usize = 64;
    const WORDS: usize = 1;
    const ZERO: Self = 0;

    type DieArray<T: Copy> = [T; 64];

    #[inline]
    fn die_array<T: Copy>(fill: T) -> [T; 64] {
        [fill; 64]
    }

    #[inline]
    fn splat(word: u64) -> Self {
        word
    }

    #[inline]
    fn lane_bit(die: usize) -> Self {
        1u64 << die
    }

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline]
    fn bit(self, die: usize) -> u64 {
        (self >> die) & 1
    }

    #[inline]
    fn word(self, _index: usize) -> u64 {
        self
    }

    #[inline]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
}

/// A 256-die lane: four `u64` words with element-wise bit operations.
///
/// The representation is a plain array and every operation is a
/// fixed-length per-element loop with no cross-word data flow, which is
/// exactly the shape LLVM's autovectoriser turns into SIMD on wide hosts —
/// no `std::simd`, no `unsafe`, no target-feature gates. Die `j` lives in
/// bit `j % 64` of word `j / 64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct W256(pub [u64; 4]);

macro_rules! w256_binop {
    ($op_trait:ident, $op_method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $op_trait for W256 {
            type Output = W256;

            #[inline]
            fn $op_method(self, rhs: W256) -> W256 {
                W256([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }

        impl $assign_trait for W256 {
            #[inline]
            fn $assign_method(&mut self, rhs: W256) {
                *self = *self $op rhs;
            }
        }
    };
}

w256_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &);
w256_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |);
w256_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^);

impl Not for W256 {
    type Output = W256;

    #[inline]
    fn not(self) -> W256 {
        W256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl Lane for W256 {
    const LANES: usize = 256;
    const WORDS: usize = 4;
    const ZERO: Self = W256([0; 4]);

    type DieArray<T: Copy> = [T; 256];

    #[inline]
    fn die_array<T: Copy>(fill: T) -> [T; 256] {
        [fill; 256]
    }

    #[inline]
    fn splat(word: u64) -> Self {
        W256([word; 4])
    }

    #[inline]
    fn lane_bit(die: usize) -> Self {
        let mut words = [0u64; 4];
        words[die / 64] = 1u64 << (die % 64);
        W256(words)
    }

    #[inline]
    fn is_zero(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) == 0
    }

    #[inline]
    fn bit(self, die: usize) -> u64 {
        (self.0[die / 64] >> (die % 64)) & 1
    }

    #[inline]
    fn word(self, index: usize) -> u64 {
        self.0[index]
    }

    #[inline]
    fn count_ones(self) -> u32 {
        self.0[0].count_ones()
            + self.0[1].count_ones()
            + self.0[2].count_ones()
            + self.0[3].count_ones()
    }
}

/// The lanes of one faulty `(row, col)` cell across all dies of a block.
///
/// Bit `j` of each lane describes die `j` (the block's `j`-th planned
/// sample). At most one of `flips` / `stuck` is set per die — a physical
/// cell has exactly one behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneCell<L: Lane = u64> {
    /// Bit position (column) of the cell within the word, 0 = LSB.
    pub col: u32,
    /// Dies whose cell flips the stored bit on read.
    pub flips: L,
    /// Dies whose cell is stuck at `stuck_value`.
    pub stuck: L,
    /// The stuck-at value per die (only bits under `stuck` are meaningful).
    pub stuck_value: L,
}

impl<L: Lane> LaneCell<L> {
    /// Dies that have *any* fault at this cell — the fault-presence lane
    /// that drives row-visit bookkeeping and the bit-shuffle FM-LUT vote.
    #[must_use]
    #[inline]
    pub fn presence(&self) -> L {
        self.flips | self.stuck
    }
}

/// One faulty row of a block: its index, its fault-presence (`dirty`) lane,
/// and its transposed cells sorted by ascending column.
#[derive(Debug, Clone, Copy)]
pub struct BlockRow<'a, L: Lane = u64> {
    /// Row (word address) within the memory.
    pub row: usize,
    /// Bit `j` set ⇔ die `j` has at least one fault in this row.
    pub dirty: L,
    /// The row's lane cells, ascending by column.
    pub cells: &'a [LaneCell<L>],
}

/// Internal row directory entry: the cell range backing one [`BlockRow`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockRowEntry<L: Lane = u64> {
    pub(crate) row: usize,
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) dirty: L,
}

/// A transposed view over up to `L::LANES` generated dies, borrowed from
/// the [`BlockScratch`](crate::BlockScratch) arena that generated them
/// (valid until the next generation call).
#[derive(Debug, Clone, Copy)]
pub struct DieBlock<'a, L: Lane = u64> {
    rows: &'a [BlockRowEntry<L>],
    cells: &'a [LaneCell<L>],
    dies: usize,
    config: MemoryConfig,
}

impl<'a, L: Lane> DieBlock<'a, L> {
    pub(crate) fn new(
        rows: &'a [BlockRowEntry<L>],
        cells: &'a [LaneCell<L>],
        dies: usize,
        config: MemoryConfig,
    ) -> Self {
        Self {
            rows,
            cells,
            dies,
            config,
        }
    }

    /// Number of dies packed into the block (`1..=L::LANES`); die `j`
    /// occupies bit `j` of every lane.
    #[must_use]
    pub fn die_count(&self) -> usize {
        self.dies
    }

    /// Geometry shared by every die of the block.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Number of rows that are faulty in at least one die.
    #[must_use]
    pub fn faulty_row_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterates the block's faulty rows in ascending row order.
    pub fn rows(&self) -> impl Iterator<Item = BlockRow<'a, L>> + '_ {
        self.rows.iter().map(|entry| BlockRow {
            row: entry.row,
            dirty: entry.dirty,
            cells: &self.cells[entry.start as usize..entry.end as usize],
        })
    }
}

/// Packs one fault event for the transposition sort. Layout (LSB to MSB):
/// 2 kind bits, 8 die bits, 6 column bits, then the row — so an unstable
/// sort of the packed words yields `(row, col, die)` order and equal keys
/// are impossible (a die has at most one fault per cell). The 8-bit die
/// field caps blocks at 256 dies, today's widest [`Lane`].
#[inline]
pub(crate) fn pack_event(row: usize, col: usize, die: usize, kind: FaultKind) -> u64 {
    debug_assert!(col < 64 && die < 256);
    let kind_code = match kind {
        FaultKind::StuckAtZero => 0u64,
        FaultKind::StuckAtOne => 1,
        FaultKind::BitFlip => 2,
    };
    ((row as u64) << 16) | ((col as u64) << 10) | ((die as u64) << 2) | kind_code
}

/// The `(row, col)` bucket key of a packed event — what the counting sort
/// in [`BlockScratch::generate_block`](crate::BlockScratch::generate_block)
/// buckets on (die order inside a bucket is the arrival order, which is
/// already ascending).
#[inline]
pub(crate) fn event_sort_key(event: u64) -> usize {
    (event >> 10) as usize
}

/// Rebuilds the row directory and lane cells from sorted packed events.
/// Clears (but never shrinks) the output buffers.
pub(crate) fn transpose_events<L: Lane>(
    events: &[u64],
    cells: &mut Vec<LaneCell<L>>,
    rows: &mut Vec<BlockRowEntry<L>>,
) {
    cells.clear();
    rows.clear();
    for &event in events {
        let row = (event >> 16) as usize;
        let col = ((event >> 10) & 0x3F) as u32;
        let die = ((event >> 2) & 0xFF) as usize;
        let kind_code = event & 0b11;
        let die_bit = L::lane_bit(die);

        let new_row = rows.last().is_none_or(|entry| entry.row != row);
        if new_row {
            rows.push(BlockRowEntry {
                row,
                start: cells.len() as u32,
                end: cells.len() as u32,
                dirty: L::ZERO,
            });
        }
        let entry = rows.last_mut().expect("a row entry was just ensured");
        let new_cell = cells.len() == entry.start as usize || {
            let last = cells.last().expect("non-empty cell run for this row");
            last.col != col
        };
        if new_cell {
            cells.push(LaneCell {
                col,
                flips: L::ZERO,
                stuck: L::ZERO,
                stuck_value: L::ZERO,
            });
            entry.end = cells.len() as u32;
        }
        let cell = cells.last_mut().expect("a lane cell was just ensured");
        match kind_code {
            0 => cell.stuck |= die_bit, // stuck at zero: value bit stays 0
            1 => {
                cell.stuck |= die_bit;
                cell.stuck_value |= die_bit;
            }
            _ => cell.flips |= die_bit,
        }
        entry.dirty |= die_bit;
    }
}

/// Per-data-column residual-error lanes for one row of a block: bit `j` of
/// lane `c` says the word die `j` observes differs from the written word at
/// data bit `c`, after the mitigation scheme has done its work.
///
/// The buffer is fixed-size stack storage (64 lanes of `L`, ≤ 2 KiB at 256
/// dies) and clears sparsely through its column mask, so per-row reuse is
/// allocation-free.
#[derive(Debug, Clone)]
pub struct ResidualLanes<L: Lane = u64> {
    lanes: [L; 64],
    colmask: u64,
}

impl<L: Lane> Default for ResidualLanes<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: Lane> ResidualLanes<L> {
    /// An all-clear residual buffer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lanes: [L::ZERO; 64],
            colmask: 0,
        }
    }

    /// Clears every touched lane (sparse: only columns in the mask).
    pub fn clear(&mut self) {
        let mut mask = self.colmask;
        while mask != 0 {
            let col = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.lanes[col] = L::ZERO;
        }
        self.colmask = 0;
    }

    /// ORs `lane` into data column `col` (no-op for an all-zero lane, so
    /// the column mask stays tight).
    #[inline]
    pub fn accumulate(&mut self, col: usize, lane: L) {
        if !lane.is_zero() {
            self.lanes[col] |= lane;
            self.colmask |= 1u64 << col;
        }
    }

    /// Mask of data columns holding at least one residual error.
    #[must_use]
    pub fn colmask(&self) -> u64 {
        self.colmask
    }

    /// The raw residual lane for data column `col`: bit `j` says die `j`
    /// observes an error at this data bit. Columns outside
    /// [`colmask`](Self::colmask) read as zero.
    #[must_use]
    #[inline]
    pub fn lane(&self, col: usize) -> L {
        self.lanes[col]
    }

    /// Transposes die `die`'s residual lanes back into a per-word diff: bit
    /// `c` of the result is bit `die` of lane `c`.
    #[must_use]
    #[inline]
    pub fn gather_die(&self, die: usize) -> u64 {
        let mut diff = 0u64;
        let mut mask = self.colmask;
        while mask != 0 {
            let col = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            diff |= self.lanes[col].bit(die) << col;
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BackendKind, FaultKindLaw};
    use crate::scratch::{BlockScratch, DieScratch};
    use crate::seeder::{PlannedSample, StreamSeeder};

    fn config() -> MemoryConfig {
        MemoryConfig::new(128, 32).unwrap()
    }

    fn plan(start: u64, len: usize, n_faults: u64) -> Vec<PlannedSample> {
        (0..len as u64)
            .map(|j| PlannedSample {
                index: start + j,
                n_faults,
            })
            .collect()
    }

    /// Generates `plan` die by die through the per-sample path — the
    /// reference population every block width must reproduce exactly.
    fn per_sample_reference(
        backend: &Backend,
        seeder: &StreamSeeder,
        plan: &[PlannedSample],
    ) -> Vec<Vec<crate::fault::Fault>> {
        let mut reference = DieScratch::new(config());
        plan.iter()
            .map(|planned| {
                let mut rng = seeder.rng_for_sample(planned.index);
                reference
                    .generate(backend, &mut rng, planned.n_faults as usize)
                    .unwrap()
                    .iter()
                    .collect()
            })
            .collect()
    }

    /// Untransposes a block back into per-die fault lists.
    fn untranspose<L: Lane>(block: &DieBlock<'_, L>) -> Vec<Vec<crate::fault::Fault>> {
        let mut rebuilt: Vec<Vec<crate::fault::Fault>> = vec![Vec::new(); block.die_count()];
        for row in block.rows() {
            for cell in row.cells {
                for (die, faults) in rebuilt.iter_mut().enumerate() {
                    let fault = if cell.flips.bit(die) != 0 {
                        Some(crate::fault::Fault::bit_flip(row.row, cell.col as usize))
                    } else if cell.stuck.bit(die) != 0 {
                        Some(if cell.stuck_value.bit(die) != 0 {
                            crate::fault::Fault::stuck_at_one(row.row, cell.col as usize)
                        } else {
                            crate::fault::Fault::stuck_at_zero(row.row, cell.col as usize)
                        })
                    } else {
                        None
                    };
                    if let Some(fault) = fault {
                        faults.push(fault);
                    }
                }
            }
        }
        rebuilt
    }

    #[test]
    fn block_lanes_match_per_sample_maps_on_every_backend() {
        let seeder = StreamSeeder::new(0xB10C);
        for kind in BackendKind::ALL {
            for law in [
                FaultKindLaw::AlwaysFlip,
                FaultKindLaw::AsymmetricStuckAt {
                    p_stuck_at_zero: 0.4,
                },
            ] {
                let backend = Backend::at_p_cell(kind, config(), 1e-3)
                    .unwrap()
                    .with_kind_law(law)
                    .unwrap();
                let plan = plan(3, 40, 9);
                let expected = per_sample_reference(&backend, &seeder, &plan);
                // Block path over the same plan.
                let mut scratch = BlockScratch::<u64>::new(config());
                let block = scratch
                    .generate_block(&backend, &seeder, &plan, None)
                    .unwrap();
                assert_eq!(block.die_count(), 40);
                assert_eq!(untranspose(&block), expected, "{kind} {law:?}");
            }
        }
    }

    #[test]
    fn wide_block_lanes_match_per_sample_maps_on_every_backend() {
        let seeder = StreamSeeder::new(0x256B);
        for kind in BackendKind::ALL {
            for law in [
                FaultKindLaw::AlwaysFlip,
                FaultKindLaw::AsymmetricStuckAt {
                    p_stuck_at_zero: 0.4,
                },
            ] {
                let backend = Backend::at_p_cell(kind, config(), 1e-3)
                    .unwrap()
                    .with_kind_law(law)
                    .unwrap();
                // More dies than any single u64 lane can hold, and not a
                // multiple of 64, so every W256 word boundary is exercised.
                let plan = plan(5, 200, 9);
                let expected = per_sample_reference(&backend, &seeder, &plan);
                let mut scratch = BlockScratch::<W256>::new(config());
                let block = scratch
                    .generate_block(&backend, &seeder, &plan, None)
                    .unwrap();
                assert_eq!(block.die_count(), 200);
                assert_eq!(untranspose(&block), expected, "{kind} {law:?}");
            }
        }
    }

    #[test]
    fn block_rows_ascend_and_dirty_matches_presence() {
        let seeder = StreamSeeder::new(7);
        let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3).unwrap();
        let mut scratch = BlockScratch::<W256>::new(config());
        let block = scratch
            .generate_block(&backend, &seeder, &plan(0, 256, 12), None)
            .unwrap();
        let mut previous_row = None;
        for row in block.rows() {
            if let Some(previous) = previous_row {
                assert!(row.row > previous, "rows must ascend");
            }
            previous_row = Some(row.row);
            let mut presence = W256::ZERO;
            let mut previous_col = None;
            for cell in row.cells {
                if let Some(previous) = previous_col {
                    assert!(cell.col > previous, "columns must ascend");
                }
                previous_col = Some(cell.col);
                assert!(
                    (cell.flips & cell.stuck).is_zero(),
                    "one behaviour per cell"
                );
                assert!(
                    (cell.stuck_value & !cell.stuck).is_zero(),
                    "stuck values only under stuck lanes"
                );
                presence |= cell.presence();
            }
            assert_eq!(row.dirty, presence);
            assert!(
                !row.dirty.is_zero(),
                "rows without faults must not be listed"
            );
        }
    }

    #[test]
    fn single_fault_per_row_policy_matches_per_sample_redraws() {
        let seeder = StreamSeeder::new(0xF167);
        let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3).unwrap();
        let plan = plan(10, 24, 20);
        let mut reference = DieScratch::new(config());
        let mut expected: Vec<Vec<crate::fault::Fault>> = Vec::new();
        for planned in &plan {
            let mut rng = seeder.rng_for_sample(planned.index);
            let map = reference
                .generate_single_fault_per_row(&backend, &mut rng, planned.n_faults as usize, 8)
                .unwrap();
            expected.push(map.iter().collect());
        }
        let mut scratch = BlockScratch::<u64>::new(config());
        let block = scratch
            .generate_block(&backend, &seeder, &plan, Some(8))
            .unwrap();
        let mut total = 0usize;
        for row in block.rows() {
            for cell in row.cells {
                total += cell.presence().count_ones() as usize;
            }
        }
        let expected_total: usize = expected.iter().map(Vec::len).sum();
        assert_eq!(total, expected_total);
    }

    #[test]
    fn oversized_plans_are_rejected_per_width() {
        let seeder = StreamSeeder::new(1);
        let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3).unwrap();
        let mut narrow = BlockScratch::<u64>::new(config());
        assert!(narrow
            .generate_block(&backend, &seeder, &plan(0, 65, 1), None)
            .is_err());
        let mut wide = BlockScratch::<W256>::new(config());
        assert!(wide
            .generate_block(&backend, &seeder, &plan(0, 257, 1), None)
            .is_err());
        assert!(wide
            .generate_block(&backend, &seeder, &plan(0, 256, 1), None)
            .is_ok());
    }

    #[test]
    fn w256_lane_algebra_matches_the_u64_reference_per_word() {
        // Per-word equivalence: every Lane operation on W256 must act like
        // four independent u64 lanes.
        let a = W256([0x0123_4567_89AB_CDEF, !0, 0, 0xDEAD_BEEF_F00D_5EED]);
        let b = W256([0xFEDC_BA98_7654_3210, 0x5555_5555_5555_5555, 7, 0]);
        for index in 0..4 {
            assert_eq!((a & b).word(index), a.word(index) & b.word(index));
            assert_eq!((a | b).word(index), a.word(index) | b.word(index));
            assert_eq!((a ^ b).word(index), a.word(index) ^ b.word(index));
            assert_eq!((!a).word(index), !a.word(index));
            assert_eq!(W256::splat(0xAB).word(index), 0xAB);
        }
        assert_eq!(
            a.count_ones(),
            (0..4).map(|index| a.word(index).count_ones()).sum::<u32>()
        );
        assert!(W256::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn w256_die_addressing_spans_word_boundaries() {
        for die in [0usize, 1, 63, 64, 100, 127, 128, 200, 255] {
            let lane = W256::lane_bit(die);
            assert_eq!(lane.count_ones(), 1, "die {die}");
            assert_eq!(lane.bit(die), 1, "die {die}");
            assert_eq!(lane.bit((die + 1) % 256), 0, "die {die}");
            let mut visited = Vec::new();
            lane.for_each_die(|d| visited.push(d));
            assert_eq!(visited, vec![die]);
        }
        // for_each_die ascends across words.
        let lane = W256::lane_bit(3) | W256::lane_bit(64) | W256::lane_bit(255);
        let mut visited = Vec::new();
        lane.for_each_die(|d| visited.push(d));
        assert_eq!(visited, vec![3, 64, 255]);
    }

    #[test]
    fn residual_lanes_round_trip_and_clear_sparsely() {
        let mut residual = ResidualLanes::<u64>::new();
        residual.accumulate(3, 0b101);
        residual.accumulate(3, 0b010);
        residual.accumulate(31, 1 << 63);
        residual.accumulate(9, 0); // no-op
        assert_eq!(residual.colmask(), (1 << 3) | (1 << 31));
        assert_eq!(residual.gather_die(0), 1 << 3);
        assert_eq!(residual.gather_die(1), 1 << 3);
        assert_eq!(residual.gather_die(2), 1 << 3);
        assert_eq!(residual.gather_die(63), 1 << 31);
        assert_eq!(residual.gather_die(5), 0);
        residual.clear();
        assert_eq!(residual.colmask(), 0);
        for die in 0..64 {
            assert_eq!(residual.gather_die(die), 0);
        }
    }

    #[test]
    fn wide_residual_lanes_round_trip_beyond_die_64() {
        let mut residual = ResidualLanes::<W256>::new();
        residual.accumulate(3, W256::lane_bit(70) | W256::lane_bit(2));
        residual.accumulate(31, W256::lane_bit(255));
        residual.accumulate(9, W256::ZERO); // no-op
        assert_eq!(residual.colmask(), (1 << 3) | (1 << 31));
        assert_eq!(residual.gather_die(70), 1 << 3);
        assert_eq!(residual.gather_die(2), 1 << 3);
        assert_eq!(residual.gather_die(255), 1 << 31);
        assert_eq!(residual.gather_die(64), 0);
        residual.clear();
        assert_eq!(residual.colmask(), 0);
        for die in [0usize, 70, 255] {
            assert_eq!(residual.gather_die(die), 0);
        }
    }
}
