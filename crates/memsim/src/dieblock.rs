//! Transposed (bit-sliced) die blocks: up to 64 Monte-Carlo dies per `u64`
//! lane.
//!
//! # Transposed layout
//!
//! The scalar and sparse kernels evaluate one die at a time: a die is a
//! [`FaultMap`](crate::FaultMap), and every scheme walks its faulty rows.
//! The bit-sliced kernel instead packs **up to 64 consecutive samples of the
//! global plan** into one [`DieBlock`] and transposes the fault data: for
//! every `(row, column)` cell that is faulty in *any* die of the block, a
//! [`LaneCell`] holds three `u64` lanes whose bit `j` describes die `j`:
//!
//! * `flips` — die `j` has a bit-flip fault at this cell;
//! * `stuck` — die `j` has a stuck-at fault at this cell;
//! * `stuck_value` — the value die `j`'s cell is stuck at (meaningful only
//!   where `stuck` is set — the lane a [`FaultKindLaw`](crate::FaultKindLaw)
//!   populates).
//!
//! Cells are grouped by row ([`BlockRow`]), rows ascend, and cells within a
//! row ascend by column — the same deterministic order the flat
//! [`FaultMap`](crate::FaultMap) guarantees. Each row also carries a `dirty`
//! lane (`flips | stuck` OR-ed over its cells): bit `j` set means die `j`
//! has at least one fault in this row, i.e. the per-die sparse kernel would
//! have *visited* the row. Block reductions must use `dirty` (fault
//! **presence**, not observable error) as their visit predicate so they
//! reproduce the sparse kernel's `-0.0 + 0.0` accumulation bit for bit.
//!
//! With this layout one bitwise operation on a lane does the work of 64
//! scalar dies, which is how the mitigation schemes' `observe_block` paths
//! (in `faultmit-core`) evaluate a whole block per row walk.
//!
//! # Why RNG stream order is preserved
//!
//! Block *generation* is deliberately not vectorised: a block is filled by
//! running the existing per-sample generation path
//! ([`DieScratch::generate`](crate::DieScratch::generate) /
//! [`generate_single_fault_per_row`](crate::DieScratch::generate_single_fault_per_row))
//! once per planned sample, each with its own RNG from
//! [`StreamSeeder::rng_for_sample`](crate::StreamSeeder::rng_for_sample),
//! and transposing the resulting faults afterwards. Every sample therefore
//! consumes exactly the RNG stream it consumes today — determinism,
//! sharding and paired scheme comparison are untouched, and the block
//! kernel's fault populations are *bit-identical* to the scalar and sparse
//! kernels' by construction. Only **evaluation** is lane-parallel.
//!
//! # The scalar tail
//!
//! Campaign plans are not multiples of 64, and chunk boundaries (a pure
//! function of the global plan) never move: the executor groups each
//! chunk's samples into blocks of at most 64 and falls back to the
//! per-sample sparse path for degenerate single-sample groups. Any grouping
//! yields identical results because per-sample RNG streams and the
//! chunk-order reduction are independent of how samples are batched.

use crate::config::MemoryConfig;
use crate::fault::FaultKind;

/// The lanes of one faulty `(row, col)` cell across all dies of a block.
///
/// Bit `j` of each lane describes die `j` (the block's `j`-th planned
/// sample). At most one of `flips` / `stuck` is set per die — a physical
/// cell has exactly one behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneCell {
    /// Bit position (column) of the cell within the word, 0 = LSB.
    pub col: u32,
    /// Dies whose cell flips the stored bit on read.
    pub flips: u64,
    /// Dies whose cell is stuck at `stuck_value`.
    pub stuck: u64,
    /// The stuck-at value per die (only bits under `stuck` are meaningful).
    pub stuck_value: u64,
}

impl LaneCell {
    /// Dies that have *any* fault at this cell — the fault-presence lane
    /// that drives row-visit bookkeeping and the bit-shuffle FM-LUT vote.
    #[must_use]
    #[inline]
    pub fn presence(&self) -> u64 {
        self.flips | self.stuck
    }
}

/// One faulty row of a block: its index, its fault-presence (`dirty`) lane,
/// and its transposed cells sorted by ascending column.
#[derive(Debug, Clone, Copy)]
pub struct BlockRow<'a> {
    /// Row (word address) within the memory.
    pub row: usize,
    /// Bit `j` set ⇔ die `j` has at least one fault in this row.
    pub dirty: u64,
    /// The row's lane cells, ascending by column.
    pub cells: &'a [LaneCell],
}

/// Internal row directory entry: the cell range backing one [`BlockRow`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockRowEntry {
    pub(crate) row: usize,
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) dirty: u64,
}

/// A transposed view over up to 64 generated dies, borrowed from the
/// [`DieScratch`](crate::DieScratch) arena that generated them (valid until
/// the next generation call).
#[derive(Debug, Clone, Copy)]
pub struct DieBlock<'a> {
    rows: &'a [BlockRowEntry],
    cells: &'a [LaneCell],
    dies: usize,
    config: MemoryConfig,
}

impl<'a> DieBlock<'a> {
    pub(crate) fn new(
        rows: &'a [BlockRowEntry],
        cells: &'a [LaneCell],
        dies: usize,
        config: MemoryConfig,
    ) -> Self {
        Self {
            rows,
            cells,
            dies,
            config,
        }
    }

    /// Number of dies packed into the block (1..=64); die `j` occupies bit
    /// `j` of every lane.
    #[must_use]
    pub fn die_count(&self) -> usize {
        self.dies
    }

    /// Geometry shared by every die of the block.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Number of rows that are faulty in at least one die.
    #[must_use]
    pub fn faulty_row_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterates the block's faulty rows in ascending row order.
    pub fn rows(&self) -> impl Iterator<Item = BlockRow<'a>> + '_ {
        self.rows.iter().map(|entry| BlockRow {
            row: entry.row,
            dirty: entry.dirty,
            cells: &self.cells[entry.start as usize..entry.end as usize],
        })
    }
}

/// Packs one fault event for the transposition sort. Layout (LSB to MSB):
/// 2 kind bits, 6 die bits, 6 column bits, then the row — so an unstable
/// sort of the packed words yields `(row, col, die)` order and equal keys
/// are impossible (a die has at most one fault per cell).
#[inline]
pub(crate) fn pack_event(row: usize, col: usize, die: usize, kind: FaultKind) -> u64 {
    debug_assert!(col < 64 && die < 64);
    let kind_code = match kind {
        FaultKind::StuckAtZero => 0u64,
        FaultKind::StuckAtOne => 1,
        FaultKind::BitFlip => 2,
    };
    ((row as u64) << 14) | ((col as u64) << 8) | ((die as u64) << 2) | kind_code
}

/// Rebuilds the row directory and lane cells from sorted packed events.
/// Clears (but never shrinks) the output buffers.
pub(crate) fn transpose_events(
    events: &[u64],
    cells: &mut Vec<LaneCell>,
    rows: &mut Vec<BlockRowEntry>,
) {
    cells.clear();
    rows.clear();
    for &event in events {
        let row = (event >> 14) as usize;
        let col = ((event >> 8) & 0x3F) as u32;
        let die = (event >> 2) & 0x3F;
        let kind_code = event & 0b11;
        let die_bit = 1u64 << die;

        let new_row = rows.last().is_none_or(|entry| entry.row != row);
        if new_row {
            rows.push(BlockRowEntry {
                row,
                start: cells.len() as u32,
                end: cells.len() as u32,
                dirty: 0,
            });
        }
        let entry = rows.last_mut().expect("a row entry was just ensured");
        let new_cell = cells.len() == entry.start as usize || {
            let last = cells.last().expect("non-empty cell run for this row");
            last.col != col
        };
        if new_cell {
            cells.push(LaneCell {
                col,
                flips: 0,
                stuck: 0,
                stuck_value: 0,
            });
            entry.end = cells.len() as u32;
        }
        let cell = cells.last_mut().expect("a lane cell was just ensured");
        match kind_code {
            0 => cell.stuck |= die_bit, // stuck at zero: value bit stays 0
            1 => {
                cell.stuck |= die_bit;
                cell.stuck_value |= die_bit;
            }
            _ => cell.flips |= die_bit,
        }
        entry.dirty |= die_bit;
    }
}

/// Per-data-column residual-error lanes for one row of a block: bit `j` of
/// lane `c` says the word die `j` observes differs from the written word at
/// data bit `c`, after the mitigation scheme has done its work.
///
/// The buffer is fixed-size stack storage (64 lanes ≤ 512 bytes) and clears
/// sparsely through its column mask, so per-row reuse is allocation-free.
#[derive(Debug, Clone)]
pub struct ResidualLanes {
    lanes: [u64; 64],
    colmask: u64,
}

impl Default for ResidualLanes {
    fn default() -> Self {
        Self::new()
    }
}

impl ResidualLanes {
    /// An all-clear residual buffer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lanes: [0u64; 64],
            colmask: 0,
        }
    }

    /// Clears every touched lane (sparse: only columns in the mask).
    pub fn clear(&mut self) {
        let mut mask = self.colmask;
        while mask != 0 {
            let col = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.lanes[col] = 0;
        }
        self.colmask = 0;
    }

    /// ORs `lane` into data column `col` (no-op for an all-zero lane, so
    /// the column mask stays tight).
    #[inline]
    pub fn accumulate(&mut self, col: usize, lane: u64) {
        if lane != 0 {
            self.lanes[col] |= lane;
            self.colmask |= 1u64 << col;
        }
    }

    /// Mask of data columns holding at least one residual error.
    #[must_use]
    pub fn colmask(&self) -> u64 {
        self.colmask
    }

    /// The raw residual lane for data column `col`: bit `j` says die `j`
    /// observes an error at this data bit. Columns outside
    /// [`colmask`](Self::colmask) read as zero.
    #[must_use]
    #[inline]
    pub fn lane(&self, col: usize) -> u64 {
        self.lanes[col]
    }

    /// Transposes die `die`'s residual lanes back into a per-word diff: bit
    /// `c` of the result is bit `die` of lane `c`.
    #[must_use]
    #[inline]
    pub fn gather_die(&self, die: usize) -> u64 {
        let mut diff = 0u64;
        let mut mask = self.colmask;
        while mask != 0 {
            let col = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            diff |= ((self.lanes[col] >> die) & 1) << col;
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, BackendKind, FaultKindLaw};
    use crate::scratch::DieScratch;
    use crate::seeder::{PlannedSample, StreamSeeder};

    fn config() -> MemoryConfig {
        MemoryConfig::new(128, 32).unwrap()
    }

    fn plan(start: u64, len: usize, n_faults: u64) -> Vec<PlannedSample> {
        (0..len as u64)
            .map(|j| PlannedSample {
                index: start + j,
                n_faults,
            })
            .collect()
    }

    #[test]
    fn block_lanes_match_per_sample_maps_on_every_backend() {
        let seeder = StreamSeeder::new(0xB10C);
        for kind in BackendKind::ALL {
            for law in [
                FaultKindLaw::AlwaysFlip,
                FaultKindLaw::AsymmetricStuckAt {
                    p_stuck_at_zero: 0.4,
                },
            ] {
                let backend = Backend::at_p_cell(kind, config(), 1e-3)
                    .unwrap()
                    .with_kind_law(law)
                    .unwrap();
                let plan = plan(3, 40, 9);
                // Reference: the per-sample path, one die at a time.
                let mut reference = DieScratch::new(config());
                let mut expected: Vec<Vec<crate::fault::Fault>> = Vec::new();
                for planned in &plan {
                    let mut rng = seeder.rng_for_sample(planned.index);
                    let map = reference
                        .generate(&backend, &mut rng, planned.n_faults as usize)
                        .unwrap();
                    expected.push(map.iter().collect());
                }
                // Block path over the same plan.
                let mut scratch = DieScratch::new(config());
                let block = scratch
                    .generate_block(&backend, &seeder, &plan, None)
                    .unwrap();
                assert_eq!(block.die_count(), 40);
                // Untranspose the block and compare die by die.
                let mut rebuilt: Vec<Vec<crate::fault::Fault>> = vec![Vec::new(); plan.len()];
                for row in block.rows() {
                    for cell in row.cells {
                        for (die, faults) in rebuilt.iter_mut().enumerate() {
                            let bit = 1u64 << die;
                            let fault = if cell.flips & bit != 0 {
                                Some(crate::fault::Fault::bit_flip(row.row, cell.col as usize))
                            } else if cell.stuck & bit != 0 {
                                Some(if cell.stuck_value & bit != 0 {
                                    crate::fault::Fault::stuck_at_one(row.row, cell.col as usize)
                                } else {
                                    crate::fault::Fault::stuck_at_zero(row.row, cell.col as usize)
                                })
                            } else {
                                None
                            };
                            if let Some(fault) = fault {
                                faults.push(fault);
                            }
                        }
                    }
                }
                assert_eq!(rebuilt, expected, "{kind} {law:?}");
            }
        }
    }

    #[test]
    fn block_rows_ascend_and_dirty_matches_presence() {
        let seeder = StreamSeeder::new(7);
        let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3).unwrap();
        let mut scratch = DieScratch::new(config());
        let block = scratch
            .generate_block(&backend, &seeder, &plan(0, 64, 12), None)
            .unwrap();
        let mut previous_row = None;
        for row in block.rows() {
            if let Some(previous) = previous_row {
                assert!(row.row > previous, "rows must ascend");
            }
            previous_row = Some(row.row);
            let mut presence = 0u64;
            let mut previous_col = None;
            for cell in row.cells {
                if let Some(previous) = previous_col {
                    assert!(cell.col > previous, "columns must ascend");
                }
                previous_col = Some(cell.col);
                assert_eq!(cell.flips & cell.stuck, 0, "one behaviour per cell");
                assert_eq!(
                    cell.stuck_value & !cell.stuck,
                    0,
                    "stuck values only under stuck lanes"
                );
                presence |= cell.presence();
            }
            assert_eq!(row.dirty, presence);
            assert_ne!(row.dirty, 0, "rows without faults must not be listed");
        }
    }

    #[test]
    fn single_fault_per_row_policy_matches_per_sample_redraws() {
        let seeder = StreamSeeder::new(0xF167);
        let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3).unwrap();
        let plan = plan(10, 24, 20);
        let mut reference = DieScratch::new(config());
        let mut expected: Vec<Vec<crate::fault::Fault>> = Vec::new();
        for planned in &plan {
            let mut rng = seeder.rng_for_sample(planned.index);
            let map = reference
                .generate_single_fault_per_row(&backend, &mut rng, planned.n_faults as usize, 8)
                .unwrap();
            expected.push(map.iter().collect());
        }
        let mut scratch = DieScratch::new(config());
        let block = scratch
            .generate_block(&backend, &seeder, &plan, Some(8))
            .unwrap();
        let mut total = 0usize;
        for row in block.rows() {
            for cell in row.cells {
                total += cell.presence().count_ones() as usize;
            }
        }
        let expected_total: usize = expected.iter().map(Vec::len).sum();
        assert_eq!(total, expected_total);
    }

    #[test]
    fn oversized_plans_are_rejected() {
        let seeder = StreamSeeder::new(1);
        let backend = Backend::at_p_cell(BackendKind::Sram, config(), 1e-3).unwrap();
        let mut scratch = DieScratch::new(config());
        assert!(scratch
            .generate_block(&backend, &seeder, &plan(0, 65, 1), None)
            .is_err());
    }

    #[test]
    fn residual_lanes_round_trip_and_clear_sparsely() {
        let mut residual = ResidualLanes::new();
        residual.accumulate(3, 0b101);
        residual.accumulate(3, 0b010);
        residual.accumulate(31, 1 << 63);
        residual.accumulate(9, 0); // no-op
        assert_eq!(residual.colmask(), (1 << 3) | (1 << 31));
        assert_eq!(residual.gather_die(0), 1 << 3);
        assert_eq!(residual.gather_die(1), 1 << 3);
        assert_eq!(residual.gather_die(2), 1 << 3);
        assert_eq!(residual.gather_die(63), 1 << 31);
        assert_eq!(residual.gather_die(5), 0);
        residual.clear();
        assert_eq!(residual.colmask(), 0);
        for die in 0..64 {
            assert_eq!(residual.gather_die(die), 0);
        }
    }
}
