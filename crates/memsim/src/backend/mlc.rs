//! Multi-level-cell (MLC) NVM backend: drift-broadened level margins and
//! level-dependent, asymmetric bit-error placement.

use super::{place_distinct, FaultBackend, FaultKindLaw, OperatingPoint};
use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::FaultMap;
use crate::stats::{normal_cdf, normal_quantile};
use rand::rngs::StdRng;
use rand::Rng;

/// MLC NVM read errors behind the [`FaultBackend`] interface.
///
/// # Failure law
///
/// A 2-bit MLC cell stores one of four analog levels separated by
/// `level_spacing_sigma` drift-free standard deviations. Resistance drift
/// broadens the level distributions logarithmically with the time since
/// programming, so the effective margin shrinks by the drift factor
/// `d(t) = 1 + ν · ln(1 + t)` and the marginal per-cell error probability
/// is the closed form
///
/// ```text
///   P_cell(spacing, t) = Φ(−(spacing / 2) / d(t)),   d(t) = 1 + ν·ln(1 + t)
/// ```
///
/// — wider level spacing lowers the error rate, longer drift times raise
/// it. The operating point (`spacing`, `t`) replaces the SRAM backend's
/// `V_DD`.
///
/// # Spatial law: level-dependent bit errors
///
/// With the standard Gray mapping, three level boundaries exist, two of
/// which flip the cell's *LSB page* bit and one its *MSB page* bit — so LSB
/// bits misread about twice as often. Data bits map to cells alternately
/// (even word columns = LSB page, odd = MSB page), and
/// [`MlcNvmBackend::sample_with_count`] places faults with even columns
/// weighted `lsb_weight : 1` (default 2 : 1) over odd columns, rows
/// uniform. The requested fault count is always exact.
///
/// Fault kinds default to always-observable bit-flips (the paper's
/// injection protocol); [`MlcNvmBackend::with_kind_law`] switches to the
/// asymmetric stuck-at law modelling unidirectional resistance drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlcNvmBackend {
    config: MemoryConfig,
    level_spacing_sigma: f64,
    drift_time_s: f64,
    drift_nu: f64,
    lsb_weight: f64,
    kind_law: FaultKindLaw,
    p_cell: f64,
}

impl MlcNvmBackend {
    /// Creates the backend at the given level spacing (in drift-free σ
    /// units) and drift time (s), with the default drift coefficient
    /// `ν = 0.05` and LSB-page weight 2.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for a non-positive spacing or
    /// a negative / non-finite drift time.
    pub fn new(
        config: MemoryConfig,
        level_spacing_sigma: f64,
        drift_time_s: f64,
    ) -> Result<Self, MemError> {
        if level_spacing_sigma <= 0.0 || !level_spacing_sigma.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("level spacing {level_spacing_sigma} σ must be positive"),
            });
        }
        if drift_time_s < 0.0 || !drift_time_s.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("drift time {drift_time_s} s must be non-negative"),
            });
        }
        let mut backend = Self {
            config,
            level_spacing_sigma,
            drift_time_s,
            drift_nu: 0.05,
            lsb_weight: 2.0,
            kind_law: FaultKindLaw::AlwaysFlip,
            p_cell: 0.0,
        };
        backend.p_cell = backend.compute_p_cell();
        Ok(backend)
    }

    /// Creates the backend at one day of drift with the level spacing
    /// calibrated so the marginal per-cell error probability equals
    /// `p_cell` — used for fault-density-matched cross-technology
    /// comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside
    /// `(0, 0.5)` (an MLC read cannot be wrong more often than a fair coin
    /// under this margin law; `p_cell = 0` has no finite spacing).
    pub fn with_p_cell(config: MemoryConfig, p_cell: f64) -> Result<Self, MemError> {
        if !(p_cell > 0.0 && p_cell < 0.5) || p_cell.is_nan() {
            return Err(MemError::InvalidProbability { value: p_cell });
        }
        let mut backend = Self::new(config, 1.0, 86_400.0)?;
        // Invert Φ(−(spacing/2)/d) = p  ⇒  spacing = −2·d·Φ⁻¹(p).
        backend.level_spacing_sigma = -2.0 * backend.drift_factor() * normal_quantile(p_cell);
        backend.p_cell = backend.compute_p_cell();
        debug_assert!((backend.p_cell - p_cell).abs() <= p_cell * 1e-6 + 1e-15);
        Ok(backend)
    }

    /// Sets the drift coefficient `ν` (default 0.05).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for a negative or non-finite
    /// coefficient.
    pub fn with_drift_nu(mut self, drift_nu: f64) -> Result<Self, MemError> {
        if drift_nu < 0.0 || !drift_nu.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("drift coefficient {drift_nu} must be non-negative"),
            });
        }
        self.drift_nu = drift_nu;
        self.p_cell = self.compute_p_cell();
        Ok(self)
    }

    /// Sets the relative error weight of LSB-page (even) columns over
    /// MSB-page (odd) columns (default 2; use 1 for level-independent
    /// placement).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for a non-positive weight.
    pub fn with_lsb_weight(mut self, lsb_weight: f64) -> Result<Self, MemError> {
        if lsb_weight <= 0.0 || !lsb_weight.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("LSB-page weight {lsb_weight} must be positive"),
            });
        }
        self.lsb_weight = lsb_weight;
        Ok(self)
    }

    /// Sets the fault-kind law (default: always-observable bit-flips).
    ///
    /// # Errors
    ///
    /// Propagates law parameter validation errors.
    pub fn with_kind_law(mut self, kind_law: FaultKindLaw) -> Result<Self, MemError> {
        kind_law.validate()?;
        self.kind_law = kind_law;
        Ok(self)
    }

    /// The level spacing (drift-free σ units) this backend operates at.
    #[must_use]
    pub fn level_spacing_sigma(&self) -> f64 {
        self.level_spacing_sigma
    }

    /// The drift time (s) this backend operates at.
    #[must_use]
    pub fn drift_time_s(&self) -> f64 {
        self.drift_time_s
    }

    /// The drift broadening factor `d(t) = 1 + ν·ln(1 + t)`.
    #[must_use]
    pub fn drift_factor(&self) -> f64 {
        1.0 + self.drift_nu * self.drift_time_s.ln_1p()
    }

    fn compute_p_cell(&self) -> f64 {
        normal_cdf(-(self.level_spacing_sigma / 2.0) / self.drift_factor())
    }
}

impl FaultBackend for MlcNvmBackend {
    fn name(&self) -> &'static str {
        "mlc-nvm"
    }

    fn config(&self) -> MemoryConfig {
        self.config
    }

    fn p_cell(&self) -> f64 {
        self.p_cell
    }

    fn operating_point(&self) -> OperatingPoint {
        OperatingPoint::MlcNvm {
            level_spacing_sigma: self.level_spacing_sigma,
            drift_time_s: self.drift_time_s,
        }
    }

    fn sample_with_count(&self, rng: &mut StdRng, n_faults: usize) -> Result<FaultMap, MemError> {
        let rows = self.config.rows();
        let cols = self.config.word_bits();
        let even_cols = cols.div_ceil(2);
        let odd_cols = cols / 2;
        let even_mass = even_cols as f64 * self.lsb_weight;
        let total_mass = even_mass + odd_cols as f64;
        let propose = move |rng: &mut StdRng| {
            let row = rng.gen_range(0..rows);
            let u: f64 = rng.gen::<f64>() * total_mass;
            let col = if u < even_mass || odd_cols == 0 {
                // LSB page: even columns, uniform within the page.
                2 * ((u / self.lsb_weight) as usize).min(even_cols - 1)
            } else {
                // MSB page: odd columns.
                2 * ((u - even_mass) as usize).min(odd_cols - 1) + 1
            };
            (row, col)
        };
        place_distinct(self.config, rng, n_faults, self.kind_law, propose)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use rand::SeedableRng;

    fn config() -> MemoryConfig {
        MemoryConfig::new(256, 32).unwrap()
    }

    #[test]
    fn p_cell_matches_the_closed_form_margin_law() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        // Closed form: Φ(−(spacing/2)/d), d = 1 + 0.05·ln(1 + 86400).
        let drift = 1.0 + 0.05 * 86_400f64.ln_1p();
        let expected = normal_cdf(-(12.0 / 2.0) / drift);
        assert!(
            (backend.p_cell() - expected).abs() < expected * 1e-12,
            "p = {}, closed form = {expected}",
            backend.p_cell()
        );
        assert!((backend.drift_factor() - drift).abs() < 1e-12);
    }

    #[test]
    fn p_cell_is_monotone_in_spacing_and_drift_time() {
        let mut previous = 1.0;
        for &spacing in &[6.0, 8.0, 10.0, 12.0, 14.0] {
            let p = MlcNvmBackend::new(config(), spacing, 86_400.0)
                .unwrap()
                .p_cell();
            assert!(p < previous, "spacing = {spacing}");
            previous = p;
        }
        let mut previous = 0.0;
        for &t in &[0.0, 60.0, 3_600.0, 86_400.0, 3.15e7] {
            let p = MlcNvmBackend::new(config(), 12.0, t).unwrap().p_cell();
            assert!(p > previous, "t = {t}");
            previous = p;
        }
    }

    #[test]
    fn with_p_cell_calibrates_the_level_spacing() {
        for &p in &[1e-6, 1e-4, 1e-3, 1e-2] {
            let backend = MlcNvmBackend::with_p_cell(config(), p).unwrap();
            assert!(
                (backend.p_cell() - p).abs() < p * 1e-6,
                "requested {p}, got {}",
                backend.p_cell()
            );
            assert!(backend.level_spacing_sigma() > 0.0);
        }
        assert!(MlcNvmBackend::with_p_cell(config(), 0.0).is_err());
        assert!(MlcNvmBackend::with_p_cell(config(), 0.6).is_err());
        assert!(MlcNvmBackend::with_p_cell(config(), f64::NAN).is_err());
    }

    #[test]
    fn parameter_validation_rejects_nonsense() {
        assert!(MlcNvmBackend::new(config(), 0.0, 1.0).is_err());
        assert!(MlcNvmBackend::new(config(), -2.0, 1.0).is_err());
        assert!(MlcNvmBackend::new(config(), 12.0, -1.0).is_err());
        let backend = MlcNvmBackend::new(config(), 12.0, 1.0).unwrap();
        assert!(backend.with_drift_nu(-0.1).is_err());
        assert!(backend.with_lsb_weight(0.0).is_err());
    }

    #[test]
    fn lsb_page_columns_carry_twice_the_fault_mass() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        let mut even = 0usize;
        let mut odd = 0usize;
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = backend.sample_with_count(&mut rng, 200).unwrap();
            even += map.iter().filter(|f| f.col % 2 == 0).count();
            odd += map.iter().filter(|f| f.col % 2 == 1).count();
        }
        let ratio = even as f64 / odd as f64;
        assert!(
            (ratio - 2.0).abs() < 0.25,
            "LSB:MSB fault ratio {ratio}, expected ≈ 2"
        );
    }

    #[test]
    fn unit_lsb_weight_restores_uniform_columns() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0)
            .unwrap()
            .with_lsb_weight(1.0)
            .unwrap();
        let mut even = 0usize;
        let mut total = 0usize;
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = backend.sample_with_count(&mut rng, 200).unwrap();
            even += map.iter().filter(|f| f.col % 2 == 0).count();
            total += map.fault_count();
        }
        let even_fraction = even as f64 / total as f64;
        assert!(
            (even_fraction - 0.5).abs() < 0.05,
            "even-column fraction {even_fraction}, expected ≈ 0.5"
        );
    }

    #[test]
    fn drift_kind_law_is_asymmetric_when_enabled() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0)
            .unwrap()
            .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.75,
            })
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let map = backend.sample_with_count(&mut rng, 800).unwrap();
        let zeros = map
            .iter()
            .filter(|f| f.kind == FaultKind::StuckAtZero)
            .count();
        let fraction = zeros as f64 / 800.0;
        assert!(
            (fraction - 0.75).abs() < 0.05,
            "stuck-at-zero fraction {fraction}, expected ≈ 0.75"
        );
    }

    #[test]
    fn default_faults_are_observable_flips_and_counts_are_exact() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for &n in &[0usize, 1, 33, 512] {
            let map = backend.sample_with_count(&mut rng, n).unwrap();
            assert_eq!(map.fault_count(), n);
            assert!(map.iter().all(|f| f.kind == FaultKind::BitFlip));
        }
    }

    #[test]
    fn odd_word_widths_are_handled() {
        let narrow = MemoryConfig::new(16, 1).unwrap();
        let backend = MlcNvmBackend::new(narrow, 12.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let map = backend.sample_with_count(&mut rng, 10).unwrap();
        assert_eq!(map.fault_count(), 10);
        assert!(map.iter().all(|f| f.col == 0));
    }
}
