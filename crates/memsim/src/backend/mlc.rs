//! Multi-level-cell (MLC) NVM backend: drift-broadened level margins and
//! level-dependent, asymmetric bit-error placement.

use super::{place_distinct_into, FaultBackend, FaultKindLaw, OperatingPoint};
use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::FaultMap;
use crate::scratch::DieScratch;
use crate::stats::{normal_cdf, normal_quantile};
use rand::rngs::StdRng;
use rand::Rng;

/// MLC NVM read errors behind the [`FaultBackend`] interface.
///
/// # Failure law
///
/// A 2-bit MLC cell stores one of four analog levels separated by
/// `level_spacing_sigma` drift-free standard deviations. Resistance drift
/// broadens the level distributions logarithmically with the time since
/// programming, so the effective margin shrinks by the drift factor
/// `d(t) = 1 + ν · ln(1 + t)` and the marginal per-cell error probability
/// is the closed form
///
/// ```text
///   P_cell(spacing, t) = Φ(−(spacing / 2) / d(t)),   d(t) = 1 + ν·ln(1 + t)
/// ```
///
/// — wider level spacing lowers the error rate, longer drift times raise
/// it. The operating point (`spacing`, `t`) replaces the SRAM backend's
/// `V_DD`.
///
/// # Spatial law: level-dependent bit errors
///
/// With the standard Gray mapping, three level boundaries exist, two of
/// which flip the cell's *LSB page* bit and one its *MSB page* bit — so LSB
/// bits misread about twice as often. Data bits map to cells alternately
/// (even word columns = LSB page, odd = MSB page), and
/// [`MlcNvmBackend::sample_with_count`] places faults with even columns
/// weighted `lsb_weight : 1` (default 2 : 1) over odd columns, rows
/// uniform. The requested fault count is always exact.
///
/// # TLC / QLC level maps
///
/// [`MlcNvmBackend::with_bits_per_cell`] switches the backend to TLC
/// (3 bits, 8 levels) or QLC (4 bits, 16 levels). The per-level misread law
/// stays the per-boundary margin crossing
/// ([`MlcNvmBackend::level_misread_probability`]: edge levels have one
/// adjacent boundary, interior levels two), and the marginal `P_cell` is its
/// mean over levels, normalised to the 4-level reference so the 2-bit law
/// keeps its historical closed form:
///
/// ```text
///   P_cell(spacing, t, L) = (2(L−1)/L) / (3/2) · Φ(−(spacing / 2) / d(t))
/// ```
///
/// — `L = 4` gives the plain MLC law above, `L = 8` the factor `7/6`,
/// `L = 16` the factor `5/4`. The spatial law generalises too: a `b`-bit
/// reflected Gray code toggles its page-`p` bit on `2^(b−1−p)` of its
/// `2^b − 1` boundaries, so columns cycle through the `b` pages
/// (`col % b`) with fault mass `lsb_weight^(b−1−p)` per page-`p` column —
/// the Gray transition counts `4 : 2 : 1` (TLC) and `8 : 4 : 2 : 1` (QLC)
/// at the default weight.
///
/// Fault kinds default to always-observable bit-flips (the paper's
/// injection protocol); [`MlcNvmBackend::with_kind_law`] switches to the
/// asymmetric stuck-at law modelling unidirectional resistance drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlcNvmBackend {
    config: MemoryConfig,
    level_spacing_sigma: f64,
    drift_time_s: f64,
    drift_nu: f64,
    lsb_weight: f64,
    bits_per_cell: u32,
    kind_law: FaultKindLaw,
    p_cell: f64,
}

impl MlcNvmBackend {
    /// Creates the backend at the given level spacing (in drift-free σ
    /// units) and drift time (s), with the default drift coefficient
    /// `ν = 0.05` and LSB-page weight 2.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for a non-positive spacing or
    /// a negative / non-finite drift time.
    pub fn new(
        config: MemoryConfig,
        level_spacing_sigma: f64,
        drift_time_s: f64,
    ) -> Result<Self, MemError> {
        if level_spacing_sigma <= 0.0 || !level_spacing_sigma.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("level spacing {level_spacing_sigma} σ must be positive"),
            });
        }
        if drift_time_s < 0.0 || !drift_time_s.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("drift time {drift_time_s} s must be non-negative"),
            });
        }
        let mut backend = Self {
            config,
            level_spacing_sigma,
            drift_time_s,
            drift_nu: 0.05,
            lsb_weight: 2.0,
            bits_per_cell: 2,
            kind_law: FaultKindLaw::AlwaysFlip,
            p_cell: 0.0,
        };
        backend.p_cell = backend.compute_p_cell();
        Ok(backend)
    }

    /// Creates the backend at one day of drift with the level spacing
    /// calibrated so the marginal per-cell error probability equals
    /// `p_cell` — used for fault-density-matched cross-technology
    /// comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside
    /// `(0, 0.5)` (an MLC read cannot be wrong more often than a fair coin
    /// under this margin law; `p_cell = 0` has no finite spacing).
    pub fn with_p_cell(config: MemoryConfig, p_cell: f64) -> Result<Self, MemError> {
        if !(p_cell > 0.0 && p_cell < 0.5) || p_cell.is_nan() {
            return Err(MemError::InvalidProbability { value: p_cell });
        }
        let mut backend = Self::new(config, 1.0, 86_400.0)?;
        // Invert Φ(−(spacing/2)/d) = p  ⇒  spacing = −2·d·Φ⁻¹(p).
        backend.level_spacing_sigma = -2.0 * backend.drift_factor() * normal_quantile(p_cell);
        backend.p_cell = backend.compute_p_cell();
        debug_assert!((backend.p_cell - p_cell).abs() <= p_cell * 1e-6 + 1e-15);
        Ok(backend)
    }

    /// Sets the drift coefficient `ν` (default 0.05).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for a negative or non-finite
    /// coefficient.
    pub fn with_drift_nu(mut self, drift_nu: f64) -> Result<Self, MemError> {
        if drift_nu < 0.0 || !drift_nu.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("drift coefficient {drift_nu} must be non-negative"),
            });
        }
        self.drift_nu = drift_nu;
        self.p_cell = self.compute_p_cell();
        Ok(self)
    }

    /// Sets the relative error weight of LSB-page (even) columns over
    /// MSB-page (odd) columns (default 2; use 1 for level-independent
    /// placement).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for a non-positive weight.
    pub fn with_lsb_weight(mut self, lsb_weight: f64) -> Result<Self, MemError> {
        if lsb_weight <= 0.0 || !lsb_weight.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("LSB-page weight {lsb_weight} must be positive"),
            });
        }
        self.lsb_weight = lsb_weight;
        Ok(self)
    }

    /// Sets the number of bits stored per cell: 2 (MLC, 4 levels — the
    /// default), 3 (TLC, 8 levels) or 4 (QLC, 16 levels). Switching
    /// re-derives the marginal `P_cell` from the current spacing/drift under
    /// the generalised per-level law (see the type-level documentation), so
    /// apply this knob *before* reasoning about densities; the 2-bit setting
    /// is bit-identical to the historical MLC backend.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for any other cell capacity.
    pub fn with_bits_per_cell(mut self, bits_per_cell: u32) -> Result<Self, MemError> {
        if !(2..=4).contains(&bits_per_cell) {
            return Err(MemError::InvalidParameter {
                reason: format!(
                    "bits per cell must be 2 (MLC), 3 (TLC) or 4 (QLC), got {bits_per_cell}"
                ),
            });
        }
        self.bits_per_cell = bits_per_cell;
        self.p_cell = self.compute_p_cell();
        Ok(self)
    }

    /// Sets the fault-kind law (default: always-observable bit-flips).
    ///
    /// # Errors
    ///
    /// Propagates law parameter validation errors.
    pub fn with_kind_law(mut self, kind_law: FaultKindLaw) -> Result<Self, MemError> {
        kind_law.validate()?;
        self.kind_law = kind_law;
        Ok(self)
    }

    /// The level spacing (drift-free σ units) this backend operates at.
    #[must_use]
    pub fn level_spacing_sigma(&self) -> f64 {
        self.level_spacing_sigma
    }

    /// The drift time (s) this backend operates at.
    #[must_use]
    pub fn drift_time_s(&self) -> f64 {
        self.drift_time_s
    }

    /// The drift broadening factor `d(t) = 1 + ν·ln(1 + t)`.
    #[must_use]
    pub fn drift_factor(&self) -> f64 {
        1.0 + self.drift_nu * self.drift_time_s.ln_1p()
    }

    /// Bits stored per cell (2 = MLC, 3 = TLC).
    #[must_use]
    pub fn bits_per_cell(&self) -> u32 {
        self.bits_per_cell
    }

    /// Number of analog storage levels (`2^bits_per_cell`).
    #[must_use]
    pub fn levels(&self) -> usize {
        1usize << self.bits_per_cell
    }

    /// Probability that one adjacent level boundary is crossed at the
    /// current spacing and drift — the building block of the per-level law.
    #[must_use]
    pub fn boundary_crossing_probability(&self) -> f64 {
        normal_cdf(-(self.level_spacing_sigma / 2.0) / self.drift_factor())
    }

    /// Probability that a cell programmed to `level` is misread: one
    /// boundary-crossing term per adjacent boundary (edge levels have one
    /// neighbour, interior levels two).
    ///
    /// # Panics
    ///
    /// Panics when `level` is outside `0..levels()`.
    #[must_use]
    pub fn level_misread_probability(&self, level: usize) -> f64 {
        assert!(
            level < self.levels(),
            "level {level} outside 0..{}",
            self.levels()
        );
        let adjacent = if level == 0 || level == self.levels() - 1 {
            1.0
        } else {
            2.0
        };
        adjacent * self.boundary_crossing_probability()
    }

    fn compute_p_cell(&self) -> f64 {
        let per_boundary = self.boundary_crossing_probability();
        if self.bits_per_cell == 2 {
            // The historical MLC law, kept bit-identical: the 4-level mean
            // of the per-level law normalised by its own 3/2 factor.
            per_boundary
        } else {
            // Mean adjacent boundaries per level, 2(L−1)/L, normalised to
            // the 4-level reference factor 3/2 (7/6 for TLC).
            let levels = self.levels() as f64;
            let scale = (2.0 * (levels - 1.0) / levels) / 1.5;
            (per_boundary * scale).min(1.0)
        }
    }
}

impl FaultBackend for MlcNvmBackend {
    fn name(&self) -> &'static str {
        "mlc-nvm"
    }

    fn config(&self) -> MemoryConfig {
        self.config
    }

    fn p_cell(&self) -> f64 {
        self.p_cell
    }

    fn operating_point(&self) -> OperatingPoint {
        OperatingPoint::MlcNvm {
            level_spacing_sigma: self.level_spacing_sigma,
            drift_time_s: self.drift_time_s,
        }
    }

    fn sample_with_count(&self, rng: &mut StdRng, n_faults: usize) -> Result<FaultMap, MemError> {
        // One sampling implementation only: the scratch path with a fresh
        // (cold) arena — RNG consumption and resulting maps are identical
        // by construction.
        let mut scratch = DieScratch::new(self.config);
        self.sample_into(rng, n_faults, &mut scratch)?;
        Ok(scratch.into_map())
    }

    fn sample_into(
        &self,
        rng: &mut StdRng,
        n_faults: usize,
        scratch: &mut DieScratch,
    ) -> Result<(), MemError> {
        let rows = self.config.rows();
        let cols = self.config.word_bits();
        if self.bits_per_cell == 2 {
            let even_cols = cols.div_ceil(2);
            let odd_cols = cols / 2;
            let even_mass = even_cols as f64 * self.lsb_weight;
            let total_mass = even_mass + odd_cols as f64;
            let propose = move |rng: &mut StdRng| {
                let row = rng.gen_range(0..rows);
                let u: f64 = rng.gen::<f64>() * total_mass;
                let col = if u < even_mass || odd_cols == 0 {
                    // LSB page: even columns, uniform within the page.
                    2 * ((u / self.lsb_weight) as usize).min(even_cols - 1)
                } else {
                    // MSB page: odd columns.
                    2 * ((u - even_mass) as usize).min(odd_cols - 1) + 1
                };
                (row, col)
            };
            return place_distinct_into(
                self.config,
                rng,
                n_faults,
                self.kind_law,
                propose,
                scratch,
            );
        }

        // TLC/QLC: columns cycle through the b pages (col % b) with
        // per-column fault mass w^(b−1−p) for page p — at the default w = 2
        // the Gray-code boundary transition counts 4 : 2 : 1 (TLC) and
        // 8 : 4 : 2 : 1 (QLC). Page tables live on the stack (b ≤ 4) so the
        // scratch path stays allocation-free.
        let pages = self.bits_per_cell as usize;
        let mut page_cols = [0usize; 4];
        let mut page_weights = [0f64; 4];
        let mut page_masses = [0f64; 4];
        let mut total_mass = 0f64;
        for p in 0..pages {
            page_cols[p] = (cols + pages - 1 - p) / pages;
            page_weights[p] = self.lsb_weight.powi((pages - 1 - p) as i32);
            page_masses[p] = page_cols[p] as f64 * page_weights[p];
            total_mass += page_masses[p];
        }
        let last_page = page_cols[..pages]
            .iter()
            .rposition(|&count| count > 0)
            .expect("a memory word has at least one column");
        let propose = move |rng: &mut StdRng| {
            let row = rng.gen_range(0..rows);
            let mut u: f64 = rng.gen::<f64>() * total_mass;
            let mut chosen = last_page;
            for page in 0..pages {
                if page_cols[page] > 0 && (u < page_masses[page] || page == last_page) {
                    chosen = page;
                    break;
                }
                u -= page_masses[page];
            }
            let col =
                pages * ((u / page_weights[chosen]) as usize).min(page_cols[chosen] - 1) + chosen;
            (row, col)
        };
        place_distinct_into(self.config, rng, n_faults, self.kind_law, propose, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use rand::SeedableRng;

    fn config() -> MemoryConfig {
        MemoryConfig::new(256, 32).unwrap()
    }

    #[test]
    fn p_cell_matches_the_closed_form_margin_law() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        // Closed form: Φ(−(spacing/2)/d), d = 1 + 0.05·ln(1 + 86400).
        let drift = 1.0 + 0.05 * 86_400f64.ln_1p();
        let expected = normal_cdf(-(12.0 / 2.0) / drift);
        assert!(
            (backend.p_cell() - expected).abs() < expected * 1e-12,
            "p = {}, closed form = {expected}",
            backend.p_cell()
        );
        assert!((backend.drift_factor() - drift).abs() < 1e-12);
    }

    #[test]
    fn p_cell_is_monotone_in_spacing_and_drift_time() {
        let mut previous = 1.0;
        for &spacing in &[6.0, 8.0, 10.0, 12.0, 14.0] {
            let p = MlcNvmBackend::new(config(), spacing, 86_400.0)
                .unwrap()
                .p_cell();
            assert!(p < previous, "spacing = {spacing}");
            previous = p;
        }
        let mut previous = 0.0;
        for &t in &[0.0, 60.0, 3_600.0, 86_400.0, 3.15e7] {
            let p = MlcNvmBackend::new(config(), 12.0, t).unwrap().p_cell();
            assert!(p > previous, "t = {t}");
            previous = p;
        }
    }

    #[test]
    fn with_p_cell_calibrates_the_level_spacing() {
        for &p in &[1e-6, 1e-4, 1e-3, 1e-2] {
            let backend = MlcNvmBackend::with_p_cell(config(), p).unwrap();
            assert!(
                (backend.p_cell() - p).abs() < p * 1e-6,
                "requested {p}, got {}",
                backend.p_cell()
            );
            assert!(backend.level_spacing_sigma() > 0.0);
        }
        assert!(MlcNvmBackend::with_p_cell(config(), 0.0).is_err());
        assert!(MlcNvmBackend::with_p_cell(config(), 0.6).is_err());
        assert!(MlcNvmBackend::with_p_cell(config(), f64::NAN).is_err());
    }

    #[test]
    fn parameter_validation_rejects_nonsense() {
        assert!(MlcNvmBackend::new(config(), 0.0, 1.0).is_err());
        assert!(MlcNvmBackend::new(config(), -2.0, 1.0).is_err());
        assert!(MlcNvmBackend::new(config(), 12.0, -1.0).is_err());
        let backend = MlcNvmBackend::new(config(), 12.0, 1.0).unwrap();
        assert!(backend.with_drift_nu(-0.1).is_err());
        assert!(backend.with_lsb_weight(0.0).is_err());
    }

    #[test]
    fn lsb_page_columns_carry_twice_the_fault_mass() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        let mut even = 0usize;
        let mut odd = 0usize;
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = backend.sample_with_count(&mut rng, 200).unwrap();
            even += map.iter().filter(|f| f.col % 2 == 0).count();
            odd += map.iter().filter(|f| f.col % 2 == 1).count();
        }
        let ratio = even as f64 / odd as f64;
        assert!(
            (ratio - 2.0).abs() < 0.25,
            "LSB:MSB fault ratio {ratio}, expected ≈ 2"
        );
    }

    #[test]
    fn unit_lsb_weight_restores_uniform_columns() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0)
            .unwrap()
            .with_lsb_weight(1.0)
            .unwrap();
        let mut even = 0usize;
        let mut total = 0usize;
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = backend.sample_with_count(&mut rng, 200).unwrap();
            even += map.iter().filter(|f| f.col % 2 == 0).count();
            total += map.fault_count();
        }
        let even_fraction = even as f64 / total as f64;
        assert!(
            (even_fraction - 0.5).abs() < 0.05,
            "even-column fraction {even_fraction}, expected ≈ 0.5"
        );
    }

    #[test]
    fn drift_kind_law_is_asymmetric_when_enabled() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0)
            .unwrap()
            .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.75,
            })
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let map = backend.sample_with_count(&mut rng, 800).unwrap();
        let zeros = map
            .iter()
            .filter(|f| f.kind == FaultKind::StuckAtZero)
            .count();
        let fraction = zeros as f64 / 800.0;
        assert!(
            (fraction - 0.75).abs() < 0.05,
            "stuck-at-zero fraction {fraction}, expected ≈ 0.75"
        );
    }

    #[test]
    fn default_faults_are_observable_flips_and_counts_are_exact() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for &n in &[0usize, 1, 33, 512] {
            let map = backend.sample_with_count(&mut rng, n).unwrap();
            assert_eq!(map.fault_count(), n);
            assert!(map.iter().all(|f| f.kind == FaultKind::BitFlip));
        }
    }

    #[test]
    fn tlc_p_cell_matches_the_closed_form_per_level_law() {
        let mlc = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        let tlc = mlc.with_bits_per_cell(3).unwrap();
        assert_eq!(tlc.bits_per_cell(), 3);
        assert_eq!(tlc.levels(), 8);

        // Per-level law: edge levels cross one boundary, interior levels two.
        let per_boundary = tlc.boundary_crossing_probability();
        assert_eq!(tlc.level_misread_probability(0), per_boundary);
        assert_eq!(tlc.level_misread_probability(7), per_boundary);
        for level in 1..7 {
            assert_eq!(tlc.level_misread_probability(level), 2.0 * per_boundary);
        }

        // Marginal closed form: mean adjacent boundaries 2(L−1)/L = 7/4,
        // normalised by the 4-level reference 3/2 ⇒ P_cell = (7/6)·Φ.
        let expected = per_boundary * ((2.0 * 7.0 / 8.0) / 1.5);
        assert!(
            (tlc.p_cell() - expected).abs() <= expected * 1e-12,
            "p = {}, closed form = {expected}",
            tlc.p_cell()
        );
        // The mean of the per-level law, renormalised, is the same number.
        let mean: f64 = (0..8)
            .map(|l| tlc.level_misread_probability(l))
            .sum::<f64>()
            / 8.0;
        assert!((tlc.p_cell() - mean / 1.5).abs() <= expected * 1e-12);
        // And the 2-bit knob reproduces the historical law bit for bit.
        assert_eq!(
            mlc.with_bits_per_cell(2).unwrap().p_cell().to_bits(),
            mlc.p_cell().to_bits()
        );
        assert_eq!(mlc.p_cell().to_bits(), per_boundary.to_bits());
    }

    #[test]
    fn bits_per_cell_knob_rejects_unsupported_capacities() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        assert!(backend.with_bits_per_cell(1).is_err());
        assert!(backend.with_bits_per_cell(5).is_err());
        assert!(backend.with_bits_per_cell(3).is_ok());
        assert!(backend.with_bits_per_cell(4).is_ok());
    }

    #[test]
    fn qlc_p_cell_matches_the_closed_form_per_level_law() {
        let mlc = MlcNvmBackend::new(config(), 12.0, 86_400.0).unwrap();
        let qlc = mlc.with_bits_per_cell(4).unwrap();
        assert_eq!(qlc.bits_per_cell(), 4);
        assert_eq!(qlc.levels(), 16);

        // Per-level law: edge levels cross one boundary, interior levels two.
        let per_boundary = qlc.boundary_crossing_probability();
        assert_eq!(qlc.level_misread_probability(0), per_boundary);
        assert_eq!(qlc.level_misread_probability(15), per_boundary);
        for level in 1..15 {
            assert_eq!(qlc.level_misread_probability(level), 2.0 * per_boundary);
        }

        // Marginal closed form: mean adjacent boundaries 2(L−1)/L = 15/8,
        // normalised by the 4-level reference 3/2 ⇒ P_cell = (5/4)·Φ.
        let expected = per_boundary * ((2.0 * 15.0 / 16.0) / 1.5);
        assert!(
            (qlc.p_cell() - expected).abs() <= expected * 1e-12,
            "p = {}, closed form = {expected}",
            qlc.p_cell()
        );
        // The mean of the per-level law, renormalised, is the same number.
        let mean: f64 = (0..16)
            .map(|l| qlc.level_misread_probability(l))
            .sum::<f64>()
            / 16.0;
        assert!((qlc.p_cell() - mean / 1.5).abs() <= expected * 1e-12);
    }

    #[test]
    fn qlc_pages_carry_gray_transition_fault_mass() {
        // 8 : 4 : 2 : 1 across the four pages at the default weight.
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0)
            .unwrap()
            .with_bits_per_cell(4)
            .unwrap();
        let mut per_page = [0usize; 4];
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = backend.sample_with_count(&mut rng, 200).unwrap();
            for fault in map.iter() {
                per_page[fault.col % 4] += 1;
            }
        }
        // Every page owns 8 of the 32 word columns, so raw counts compare
        // directly; normalise against the MSB page.
        let msb = per_page[3].max(1) as f64;
        let ratios = [
            per_page[0] as f64 / msb,
            per_page[1] as f64 / msb,
            per_page[2] as f64 / msb,
        ];
        assert!(
            (ratios[0] - 8.0).abs() < 1.6,
            "LSB:MSB rate {} expected ≈ 8",
            ratios[0]
        );
        assert!(
            (ratios[1] - 4.0).abs() < 0.9,
            "page1:MSB rate {} expected ≈ 4",
            ratios[1]
        );
        assert!(
            (ratios[2] - 2.0).abs() < 0.5,
            "page2:MSB rate {} expected ≈ 2",
            ratios[2]
        );
    }

    #[test]
    fn qlc_sampling_is_exact_and_deterministic() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0)
            .unwrap()
            .with_bits_per_cell(4)
            .unwrap();
        for &n in &[0usize, 1, 33, 512] {
            let mut rng_a = StdRng::seed_from_u64(23);
            let mut rng_b = StdRng::seed_from_u64(23);
            let a = backend.sample_with_count(&mut rng_a, n).unwrap();
            let b = backend.sample_with_count(&mut rng_b, n).unwrap();
            assert_eq!(a.fault_count(), n);
            assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        }
        // Narrow words exercise the empty-page fallback.
        for word_bits in [1usize, 2, 3, 4, 5] {
            let narrow = MemoryConfig::new(16, word_bits).unwrap();
            let backend = MlcNvmBackend::new(narrow, 12.0, 0.0)
                .unwrap()
                .with_bits_per_cell(4)
                .unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let map = backend.sample_with_count(&mut rng, 10).unwrap();
            assert_eq!(map.fault_count(), 10, "{word_bits}-bit words");
            assert!(map.iter().all(|f| f.col < word_bits));
        }
    }

    #[test]
    fn tlc_pages_carry_gray_transition_fault_mass() {
        // 4 : 2 : 1 across LSB/CSB/MSB pages at the default weight.
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0)
            .unwrap()
            .with_bits_per_cell(3)
            .unwrap();
        let mut per_page = [0usize; 3];
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = backend.sample_with_count(&mut rng, 200).unwrap();
            for fault in map.iter() {
                per_page[fault.col % 3] += 1;
            }
        }
        // Normalise by the column count of each page (32 cols → 11/11/10).
        let rates = [
            per_page[0] as f64 / 11.0,
            per_page[1] as f64 / 11.0,
            per_page[2] as f64 / 10.0,
        ];
        assert!(
            (rates[0] / rates[2] - 4.0).abs() < 0.6,
            "LSB:MSB per-column rate {} expected ≈ 4",
            rates[0] / rates[2]
        );
        assert!(
            (rates[1] / rates[2] - 2.0).abs() < 0.35,
            "CSB:MSB per-column rate {} expected ≈ 2",
            rates[1] / rates[2]
        );
    }

    #[test]
    fn tlc_sampling_is_exact_and_deterministic() {
        let backend = MlcNvmBackend::new(config(), 12.0, 86_400.0)
            .unwrap()
            .with_bits_per_cell(3)
            .unwrap();
        for &n in &[0usize, 1, 33, 512] {
            let mut rng_a = StdRng::seed_from_u64(17);
            let mut rng_b = StdRng::seed_from_u64(17);
            let a = backend.sample_with_count(&mut rng_a, n).unwrap();
            let b = backend.sample_with_count(&mut rng_b, n).unwrap();
            assert_eq!(a.fault_count(), n);
            assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        }
        // Narrow words exercise the empty-page fallback.
        for word_bits in [1usize, 2, 3] {
            let narrow = MemoryConfig::new(16, word_bits).unwrap();
            let backend = MlcNvmBackend::new(narrow, 12.0, 0.0)
                .unwrap()
                .with_bits_per_cell(3)
                .unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let map = backend.sample_with_count(&mut rng, 10).unwrap();
            assert_eq!(map.fault_count(), 10, "{word_bits}-bit words");
            assert!(map.iter().all(|f| f.col < word_bits));
        }
    }

    #[test]
    fn odd_word_widths_are_handled() {
        let narrow = MemoryConfig::new(16, 1).unwrap();
        let backend = MlcNvmBackend::new(narrow, 12.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let map = backend.sample_with_count(&mut rng, 10).unwrap();
        assert_eq!(map.fault_count(), 10);
        assert!(map.iter().all(|f| f.col == 0));
    }
}
