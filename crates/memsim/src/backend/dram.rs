//! DRAM/eDRAM retention-failure backend: exponential weak-cell retention
//! times and spatially clustered fault placement.

use super::{place_distinct, place_distinct_into, FaultBackend, FaultKindLaw, OperatingPoint};
use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::FaultMap;
use crate::scratch::DieScratch;
use rand::rngs::StdRng;
use rand::Rng;

/// Reference die temperature (°C) the mean retention time is specified at.
pub const DRAM_REFERENCE_TEMP_C: f64 = 45.0;

/// Temperature increase (°C) that halves the weak-cell retention time — the
/// classic "retention halves every ~10 °C" DRAM rule of thumb.
pub const DRAM_RETENTION_HALVING_C: f64 = 10.0;

/// DRAM/eDRAM retention failures behind the [`FaultBackend`] interface.
///
/// # Failure law
///
/// A small *weak-cell* population (fraction `weak_cell_fraction` of all
/// cells, leaky due to junction defects) has exponentially distributed
/// retention times with mean `τ(T)`; a weak cell fails when its retention
/// time is shorter than the refresh interval `t_ref`. The marginal per-cell
/// fault probability is therefore the closed form
///
/// ```text
///   P_cell(t_ref, T) = weak_cell_fraction · (1 − exp(−t_ref / τ(T)))
///   τ(T) = mean_retention_s · 2^(−(T − 45 °C) / 10 °C)
/// ```
///
/// — longer refresh intervals and hotter dies both expose more failures,
/// and the operating point (`t_ref`, `T`) is the knob pair the campaign
/// sweeps, in place of the SRAM backend's `V_DD`.
///
/// # Spatial law
///
/// Retention failures are not iid: leaky cells share local substrate
/// defects, so they arrive in clusters. `sample_with_count` draws cluster
/// centres uniformly and places a burst of faults (mean `cluster_size`)
/// within a `±cluster_rows × ±cluster_cols` window around each centre
/// (toroidal wrap keeps the window inside the array), falling back to
/// uniform placement when a window fills up — the requested count is always
/// exact, so the campaign's failure-count sweep protocol is preserved.
///
/// Fault kinds default to always-observable bit-flips (the paper's
/// injection protocol); [`DramRetentionBackend::with_kind_law`] switches to
/// data-dependent stuck-at decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramRetentionBackend {
    config: MemoryConfig,
    refresh_interval_ms: f64,
    temperature_c: f64,
    weak_cell_fraction: f64,
    mean_retention_s: f64,
    cluster_size: usize,
    cluster_rows: usize,
    cluster_cols: usize,
    kind_law: FaultKindLaw,
    p_cell: f64,
}

impl DramRetentionBackend {
    /// Creates the backend at the given refresh interval (ms) and die
    /// temperature (°C) with default weak-cell statistics (fraction `10⁻³`,
    /// mean retention 2 s at 45 °C) and clustering (mean burst 4, ±2 rows ×
    /// ±4 columns).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for a non-positive refresh
    /// interval or non-finite temperature.
    pub fn new(
        config: MemoryConfig,
        refresh_interval_ms: f64,
        temperature_c: f64,
    ) -> Result<Self, MemError> {
        if refresh_interval_ms <= 0.0 || !refresh_interval_ms.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("refresh interval {refresh_interval_ms} ms must be positive"),
            });
        }
        if !temperature_c.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("temperature {temperature_c} °C must be finite"),
            });
        }
        let mut backend = Self {
            config,
            refresh_interval_ms,
            temperature_c,
            weak_cell_fraction: 1e-3,
            mean_retention_s: 2.0,
            cluster_size: 4,
            cluster_rows: 2,
            cluster_cols: 4,
            kind_law: FaultKindLaw::AlwaysFlip,
            p_cell: 0.0,
        };
        backend.p_cell = backend.compute_p_cell();
        Ok(backend)
    }

    /// Creates the backend at 45 °C with the refresh interval calibrated so
    /// the marginal per-cell fault probability equals `p_cell` — used for
    /// fault-density-matched cross-technology comparisons.
    ///
    /// The weak-cell fraction is enlarged when necessary (a refresh interval
    /// can only expose weak cells), keeping the calibration solvable for any
    /// `p_cell` in `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside
    /// `[0, 1)`.
    pub fn with_p_cell(config: MemoryConfig, p_cell: f64) -> Result<Self, MemError> {
        if !(0.0..1.0).contains(&p_cell) || p_cell.is_nan() {
            return Err(MemError::InvalidProbability { value: p_cell });
        }
        let mut backend = Self::new(config, 64.0, DRAM_REFERENCE_TEMP_C)?;
        if p_cell == 0.0 {
            backend.weak_cell_fraction = 0.0;
            backend.p_cell = 0.0;
            return Ok(backend);
        }
        // Keep the saturation ratio p / weak_fraction at a moderate level so
        // the required refresh interval stays finite and well-conditioned.
        backend.weak_cell_fraction = (p_cell * 4.0).max(backend.weak_cell_fraction).min(1.0);
        let saturation = p_cell / backend.weak_cell_fraction;
        backend.refresh_interval_ms = -backend.tau_s() * (-saturation).ln_1p() * 1e3;
        backend.p_cell = backend.compute_p_cell();
        debug_assert!((backend.p_cell - p_cell).abs() <= p_cell * 1e-9 + 1e-15);
        Ok(backend)
    }

    /// Sets the weak-cell fraction and mean retention time (s, at 45 °C).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] for a fraction outside
    /// `[0, 1]` or [`MemError::InvalidParameter`] for a non-positive mean
    /// retention.
    pub fn with_weak_cells(
        mut self,
        weak_cell_fraction: f64,
        mean_retention_s: f64,
    ) -> Result<Self, MemError> {
        if !(0.0..=1.0).contains(&weak_cell_fraction) || weak_cell_fraction.is_nan() {
            return Err(MemError::InvalidProbability {
                value: weak_cell_fraction,
            });
        }
        if mean_retention_s <= 0.0 || !mean_retention_s.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("mean retention {mean_retention_s} s must be positive"),
            });
        }
        self.weak_cell_fraction = weak_cell_fraction;
        self.mean_retention_s = mean_retention_s;
        self.p_cell = self.compute_p_cell();
        Ok(self)
    }

    /// Sets the clustering parameters: mean faults per cluster and the
    /// half-window (rows, columns) faults spread over around each centre.
    #[must_use]
    pub fn with_clustering(
        mut self,
        cluster_size: usize,
        cluster_rows: usize,
        cluster_cols: usize,
    ) -> Self {
        self.cluster_size = cluster_size.max(1);
        self.cluster_rows = cluster_rows;
        self.cluster_cols = cluster_cols;
        self
    }

    /// Sets the fault-kind law (default: always-observable bit-flips).
    ///
    /// # Errors
    ///
    /// Propagates law parameter validation errors.
    pub fn with_kind_law(mut self, kind_law: FaultKindLaw) -> Result<Self, MemError> {
        kind_law.validate()?;
        self.kind_law = kind_law;
        Ok(self)
    }

    /// The refresh interval (ms) this backend operates at.
    #[must_use]
    pub fn refresh_interval_ms(&self) -> f64 {
        self.refresh_interval_ms
    }

    /// The die temperature (°C) this backend operates at.
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// The weak-cell population fraction.
    #[must_use]
    pub fn weak_cell_fraction(&self) -> f64 {
        self.weak_cell_fraction
    }

    /// Mean weak-cell retention time (s) at the current temperature:
    /// `τ(T) = mean_retention_s · 2^(−(T − 45)/10)`.
    #[must_use]
    pub fn tau_s(&self) -> f64 {
        self.mean_retention_s
            * (-(self.temperature_c - DRAM_REFERENCE_TEMP_C) / DRAM_RETENTION_HALVING_C).exp2()
    }

    fn compute_p_cell(&self) -> f64 {
        let t_ref_s = self.refresh_interval_ms * 1e-3;
        self.weak_cell_fraction * (1.0 - (-t_ref_s / self.tau_s()).exp())
    }

    /// The backend's spatial proposal law, shared verbatim by the allocating
    /// and scratch sampling paths: cluster state persists across proposals —
    /// a centre serves a burst of faults before the next centre is drawn.
    fn proposer(&self) -> impl FnMut(&mut StdRng) -> (usize, usize) {
        let rows = self.config.rows();
        let cols = self.config.word_bits();
        let burst_max = (2 * self.cluster_size).saturating_sub(1).max(1);
        let cluster_rows = self.cluster_rows as i64;
        let cluster_cols = self.cluster_cols as i64;
        let mut remaining_in_cluster = 0usize;
        let mut centre = (0usize, 0usize);
        move |rng: &mut StdRng| {
            if remaining_in_cluster == 0 {
                centre = (rng.gen_range(0..rows), rng.gen_range(0..cols));
                remaining_in_cluster = rng.gen_range(1..=burst_max);
            }
            remaining_in_cluster -= 1;
            let dr = rng.gen_range(-cluster_rows..=cluster_rows);
            let dc = rng.gen_range(-cluster_cols..=cluster_cols);
            let row = (centre.0 as i64 + dr).rem_euclid(rows as i64) as usize;
            let col = (centre.1 as i64 + dc).rem_euclid(cols as i64) as usize;
            (row, col)
        }
    }
}

impl FaultBackend for DramRetentionBackend {
    fn name(&self) -> &'static str {
        "dram-retention"
    }

    fn config(&self) -> MemoryConfig {
        self.config
    }

    fn p_cell(&self) -> f64 {
        self.p_cell
    }

    fn operating_point(&self) -> OperatingPoint {
        OperatingPoint::DramRetention {
            refresh_interval_ms: self.refresh_interval_ms,
            temperature_c: self.temperature_c,
        }
    }

    fn sample_with_count(&self, rng: &mut StdRng, n_faults: usize) -> Result<FaultMap, MemError> {
        place_distinct(self.config, rng, n_faults, self.kind_law, self.proposer())
    }

    fn sample_into(
        &self,
        rng: &mut StdRng,
        n_faults: usize,
        scratch: &mut DieScratch,
    ) -> Result<(), MemError> {
        place_distinct_into(
            self.config,
            rng,
            n_faults,
            self.kind_law,
            self.proposer(),
            scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::montecarlo::FaultMapSampler;
    use rand::SeedableRng;

    fn config() -> MemoryConfig {
        MemoryConfig::new(256, 32).unwrap()
    }

    #[test]
    fn p_cell_matches_the_closed_form_retention_law() {
        let backend = DramRetentionBackend::new(config(), 64.0, 45.0).unwrap();
        // P = f_weak · (1 − exp(−t_ref/τ)), τ(45 °C) = mean retention.
        let expected = 1e-3 * (1.0 - (-0.064f64 / 2.0).exp());
        assert!(
            (backend.p_cell() - expected).abs() < expected * 1e-12,
            "p = {}, closed form = {expected}",
            backend.p_cell()
        );
    }

    #[test]
    fn p_cell_is_monotone_in_refresh_interval_and_temperature() {
        let mut previous = 0.0;
        for &t_ref in &[8.0, 16.0, 32.0, 64.0, 128.0, 256.0] {
            let p = DramRetentionBackend::new(config(), t_ref, 45.0)
                .unwrap()
                .p_cell();
            assert!(p > previous, "t_ref = {t_ref}");
            previous = p;
        }
        let mut previous = 0.0;
        for &temp in &[25.0, 45.0, 65.0, 85.0] {
            let p = DramRetentionBackend::new(config(), 64.0, temp)
                .unwrap()
                .p_cell();
            assert!(p > previous, "T = {temp}");
            previous = p;
        }
    }

    #[test]
    fn retention_halves_every_ten_degrees() {
        let cool = DramRetentionBackend::new(config(), 64.0, 45.0).unwrap();
        let hot = DramRetentionBackend::new(config(), 64.0, 55.0).unwrap();
        assert!((cool.tau_s() / hot.tau_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn with_p_cell_calibrates_the_refresh_interval() {
        for &p in &[1e-6, 1e-4, 1e-3, 1e-2] {
            let backend = DramRetentionBackend::with_p_cell(config(), p).unwrap();
            assert!(
                (backend.p_cell() - p).abs() < p * 1e-9,
                "requested {p}, got {}",
                backend.p_cell()
            );
            assert!(backend.refresh_interval_ms() > 0.0);
        }
        let zero = DramRetentionBackend::with_p_cell(config(), 0.0).unwrap();
        assert_eq!(zero.p_cell(), 0.0);
        assert!(DramRetentionBackend::with_p_cell(config(), 1.0).is_err());
        assert!(DramRetentionBackend::with_p_cell(config(), -0.1).is_err());
    }

    #[test]
    fn parameter_validation_rejects_nonsense() {
        assert!(DramRetentionBackend::new(config(), 0.0, 45.0).is_err());
        assert!(DramRetentionBackend::new(config(), -1.0, 45.0).is_err());
        assert!(DramRetentionBackend::new(config(), 64.0, f64::NAN).is_err());
        let backend = DramRetentionBackend::new(config(), 64.0, 45.0).unwrap();
        assert!(backend.with_weak_cells(2.0, 1.0).is_err());
        assert!(backend.with_weak_cells(0.5, 0.0).is_err());
        assert!(backend
            .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: -1.0
            })
            .is_err());
    }

    #[test]
    fn faults_are_spatially_clustered_relative_to_iid_sampling() {
        let backend = DramRetentionBackend::new(config(), 64.0, 45.0).unwrap();
        let iid = FaultMapSampler::new(config());
        let mut clustered_rows = 0usize;
        let mut iid_rows = 0usize;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            clustered_rows += backend
                .sample_with_count(&mut rng, 64)
                .unwrap()
                .faulty_row_count();
            let mut rng = StdRng::seed_from_u64(seed);
            iid_rows += iid
                .sample_with_count(&mut rng, 64)
                .unwrap()
                .faulty_row_count();
        }
        // Clusters concentrate faults into fewer rows than iid placement.
        assert!(
            (clustered_rows as f64) < 0.8 * iid_rows as f64,
            "clustered rows {clustered_rows} vs iid rows {iid_rows}"
        );
    }

    #[test]
    fn default_kind_law_is_observable_flips_and_decay_law_is_asymmetric() {
        let backend = DramRetentionBackend::new(config(), 64.0, 45.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let map = backend.sample_with_count(&mut rng, 200).unwrap();
        assert!(map.iter().all(|f| f.kind == FaultKind::BitFlip));

        let decay = backend
            .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.9,
            })
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let map = decay.sample_with_count(&mut rng, 400).unwrap();
        let zeros = map
            .iter()
            .filter(|f| f.kind == FaultKind::StuckAtZero)
            .count();
        assert!(
            zeros > 320,
            "decay polarity should dominate, got {zeros}/400 stuck-at-zero"
        );
    }

    #[test]
    fn exact_count_holds_even_at_full_array_density() {
        let tiny = MemoryConfig::new(4, 8).unwrap();
        let backend = DramRetentionBackend::new(tiny, 64.0, 45.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let map = backend.sample_with_count(&mut rng, 32).unwrap();
        assert_eq!(map.fault_count(), 32);
        assert!(backend.sample_with_count(&mut rng, 33).is_err());
    }
}
