//! Pluggable fault-generation backends for different memory technologies.
//!
//! The paper evaluates its mitigation schemes against iid SRAM
//! voltage-scaling failures only. Real systems face other fault processes:
//! DRAM/eDRAM retention failures cluster spatially and depend on the refresh
//! interval and temperature; multi-level-cell (MLC) NVM errors depend on the
//! level spacing, drift time, and which bit of the cell a data bit maps to.
//! The [`FaultBackend`] trait abstracts *where faults come from* so every
//! layer above (`faultmit-sim` campaigns, `faultmit-analysis` engines, the
//! figure binaries) can run against any technology:
//!
//! * a **per-cell failure law** — the marginal probability that a bit-cell
//!   is faulty at the backend's operating point ([`FaultBackend::p_cell`]);
//! * a **fault-map distribution** — how a given number of faults is placed
//!   over the array ([`FaultBackend::sample_with_count`]): iid uniform for
//!   SRAM, spatially clustered for DRAM retention, level-weighted columns
//!   for MLC NVM;
//! * an **operating point** — the technology-specific knob that moves the
//!   failure law (`V_DD` for SRAM, refresh interval + temperature for DRAM,
//!   level spacing + drift time for MLC NVM), reported as an
//!   [`OperatingPoint`] for tables and JSON series.
//!
//! The three in-tree implementations are [`SramVddBackend`] (the paper's
//! model — campaigns through it are bit-identical to the pre-backend
//! pipeline), [`DramRetentionBackend`] and [`MlcNvmBackend`]. The
//! [`Backend`] enum packages them behind one `Copy` type for CLI selection.
//!
//! # Adding your own backend
//!
//! Implement [`FaultBackend`] for your own type and every campaign layer
//! accepts it. A minimal backend with an iid law and a custom knob:
//!
//! ```
//! use faultmit_memsim::backend::{FaultBackend, OperatingPoint};
//! use faultmit_memsim::{
//!     DieBatch, FaultMap, FaultMapSampler, MemError, MemoryConfig, PlannedSample, StreamSeeder,
//! };
//! use rand::rngs::StdRng;
//!
//! /// Faults from radiation strikes: iid placement, rate set by altitude.
//! #[derive(Debug, Clone, Copy, PartialEq)]
//! struct RadiationBackend {
//!     config: MemoryConfig,
//!     altitude_km: f64,
//! }
//!
//! impl FaultBackend for RadiationBackend {
//!     fn name(&self) -> &'static str {
//!         "radiation"
//!     }
//!
//!     fn config(&self) -> MemoryConfig {
//!         self.config
//!     }
//!
//!     fn p_cell(&self) -> f64 {
//!         // Strike rate doubles every 2 km of altitude.
//!         1e-6 * (self.altitude_km / 2.0).exp2()
//!     }
//!
//!     fn operating_point(&self) -> OperatingPoint {
//!         OperatingPoint::Custom {
//!             parameter: self.altitude_km,
//!             unit: "km",
//!         }
//!     }
//!
//!     fn sample_with_count(
//!         &self,
//!         rng: &mut StdRng,
//!         n_faults: usize,
//!     ) -> Result<FaultMap, MemError> {
//!         // Strikes land uniformly; reuse the iid sampler.
//!         FaultMapSampler::new(self.config).sample_with_count(rng, n_faults)
//!     }
//! }
//!
//! # fn main() -> Result<(), MemError> {
//! let backend = RadiationBackend {
//!     config: MemoryConfig::new(64, 32)?,
//!     altitude_km: 10.0,
//! };
//! // The pipeline substrate accepts the custom backend directly.
//! let seeder = StreamSeeder::new(42);
//! let plan = [PlannedSample { index: 0, n_faults: 3 }];
//! let batch = DieBatch::generate_with_backend(&backend, &seeder, &plan)?;
//! assert_eq!(batch.iter().next().unwrap().1.fault_count(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! # Data-dependent faults: kind laws and data images
//!
//! By default every backend injects always-observable bit flips
//! ([`FaultKindLaw::AlwaysFlip`], the paper's protocol). Real decay
//! mechanisms are *stuck-at* and therefore data-dependent: whether a fault
//! corrupts a read depends on the stored word. Choose a law with the
//! backend's `with_kind_law` and evaluate against a
//! [`DataImage`](crate::image::DataImage) from the
//! [`ImageSpec`](crate::image::ImageSpec) catalogue:
//!
//! ```
//! use faultmit_memsim::backend::{FaultBackend, FaultKindLaw, MlcNvmBackend};
//! use faultmit_memsim::image::{DataImage, ImageSpec};
//! use faultmit_memsim::MemoryConfig;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), faultmit_memsim::MemError> {
//! let config = MemoryConfig::new(64, 32)?;
//! // Resistance drift mostly discharges cells: 90% of faults read 0.
//! let backend = MlcNvmBackend::new(config, 12.0, 86_400.0)?.with_kind_law(
//!     FaultKindLaw::AsymmetricStuckAt {
//!         p_stuck_at_zero: 0.9,
//!     },
//! )?;
//! let map = backend.sample_with_count(&mut StdRng::seed_from_u64(1), 32)?;
//!
//! let zeros = ImageSpec::Zeros.try_materialise(config)?;
//! let ones = ImageSpec::Ones.try_materialise(config)?;
//! let observable = |image: &dyn DataImage| {
//!     map.iter()
//!         .filter(|f| f.kind.corrupts((image.word(f.row) >> f.col) & 1 == 1))
//!         .count()
//! };
//! // Stuck-at-0 faults are silent over a zeros image but corrupt an
//! // all-ones image — the data dependence the fig9 campaign quantifies.
//! assert!(observable(zeros.as_ref()) < observable(ones.as_ref()));
//! # Ok(())
//! # }
//! ```

mod dram;
mod mlc;
mod sram;

pub use dram::DramRetentionBackend;
pub use mlc::MlcNvmBackend;
pub use sram::SramVddBackend;

use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::{FaultKind, FaultMap};
use crate::montecarlo::FailureCountDistribution;
use crate::scratch::DieScratch;
use crate::widegen::WideGenSpec;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// The technology-specific knob settings a backend's failure law is
/// evaluated at.
///
/// Reported by [`FaultBackend::operating_point`] so tables and JSON series
/// can label campaign results without knowing the backend type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OperatingPoint {
    /// SRAM under voltage scaling: the supply voltage in volts.
    SramVdd {
        /// Supply voltage (V).
        vdd: f64,
    },
    /// DRAM/eDRAM retention: refresh interval and die temperature.
    DramRetention {
        /// Refresh interval (ms).
        refresh_interval_ms: f64,
        /// Die temperature (°C).
        temperature_c: f64,
    },
    /// MLC NVM: level spacing (in drift-free σ units) and drift time.
    MlcNvm {
        /// Separation of adjacent storage levels, in units of the drift-free
        /// level standard deviation.
        level_spacing_sigma: f64,
        /// Time since programming (s); resistance drift widens the levels.
        drift_time_s: f64,
    },
    /// A single free-form knob, for user-defined backends.
    Custom {
        /// Knob value.
        parameter: f64,
        /// Unit label for reports.
        unit: &'static str,
    },
}

impl OperatingPoint {
    /// The primary scalar knob (the value swept in operating-point sweeps).
    #[must_use]
    pub fn primary_value(&self) -> f64 {
        match self {
            OperatingPoint::SramVdd { vdd } => *vdd,
            OperatingPoint::DramRetention {
                refresh_interval_ms,
                ..
            } => *refresh_interval_ms,
            OperatingPoint::MlcNvm {
                level_spacing_sigma,
                ..
            } => *level_spacing_sigma,
            OperatingPoint::Custom { parameter, .. } => *parameter,
        }
    }

    /// Human-readable label, e.g. `"Vdd=0.80V"` or `"t_ref=64ms @ 45C"`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            OperatingPoint::SramVdd { vdd } => format!("Vdd={vdd:.2}V"),
            OperatingPoint::DramRetention {
                refresh_interval_ms,
                temperature_c,
            } => format!("t_ref={refresh_interval_ms:.0}ms @ {temperature_c:.0}C"),
            OperatingPoint::MlcNvm {
                level_spacing_sigma,
                drift_time_s,
            } => format!("spacing={level_spacing_sigma:.1}sigma @ t={drift_time_s:.0}s"),
            OperatingPoint::Custom { parameter, unit } => format!("knob={parameter}{unit}"),
        }
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// How a backend assigns a [`FaultKind`] to each faulty cell.
///
/// The default everywhere is [`FaultKindLaw::AlwaysFlip`], matching the
/// paper's injection protocol in which every fault is observable regardless
/// of the stored data — the protocol under which the per-die paired
/// comparisons (shuffle ≤ unprotected on every die) are exact. The stuck-at
/// laws model data-dependent faults; under them scheme dominance holds in
/// expectation, not per die.
#[derive(Debug, Clone, Copy)]
pub enum FaultKindLaw {
    /// Every faulty cell flips its content (always observable).
    AlwaysFlip,
    /// Stuck at 0 or 1 with equal probability.
    RandomStuckAt,
    /// Stuck at 0 with probability `p_stuck_at_zero`, else stuck at 1 —
    /// models unidirectional decay (DRAM discharge, MLC resistance drift).
    AsymmetricStuckAt {
        /// Probability that a faulty cell reads 0.
        p_stuck_at_zero: f64,
    },
}

/// Identity comparison: asymmetric laws compare their probability **by bit
/// pattern**, so equality is total and reflexive (a hand-built NaN law
/// equals itself) and campaign identities containing a law are well-behaved
/// as `Eq` keys. Laws that round-trip through the `--kind-law` notation
/// always preserve their bits (shortest-round-trip `f64` printing).
impl PartialEq for FaultKindLaw {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (FaultKindLaw::AlwaysFlip, FaultKindLaw::AlwaysFlip)
            | (FaultKindLaw::RandomStuckAt, FaultKindLaw::RandomStuckAt) => true,
            (
                FaultKindLaw::AsymmetricStuckAt { p_stuck_at_zero: a },
                FaultKindLaw::AsymmetricStuckAt { p_stuck_at_zero: b },
            ) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for FaultKindLaw {}

impl FaultKindLaw {
    /// Validates the law's parameters.
    pub(crate) fn validate(&self) -> Result<(), MemError> {
        if let FaultKindLaw::AsymmetricStuckAt { p_stuck_at_zero } = self {
            if !(0.0..=1.0).contains(p_stuck_at_zero) || p_stuck_at_zero.is_nan() {
                return Err(MemError::InvalidProbability {
                    value: *p_stuck_at_zero,
                });
            }
        }
        Ok(())
    }

    /// Draws the kind of one faulty cell.
    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultKind {
        match self {
            FaultKindLaw::AlwaysFlip => FaultKind::BitFlip,
            FaultKindLaw::RandomStuckAt => {
                if rng.gen::<bool>() {
                    FaultKind::StuckAtOne
                } else {
                    FaultKind::StuckAtZero
                }
            }
            FaultKindLaw::AsymmetricStuckAt { p_stuck_at_zero } => {
                if rng.gen_bool(*p_stuck_at_zero) {
                    FaultKind::StuckAtZero
                } else {
                    FaultKind::StuckAtOne
                }
            }
        }
    }
}

impl fmt::Display for FaultKindLaw {
    /// The canonical `--kind-law` notation: `flip`, `stuck-at` (random
    /// polarity) or `stuck-at:P` with `P = Pr(stuck at 0)`. Round-trips
    /// through [`FromStr`] exactly (`f64` prints in shortest form).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKindLaw::AlwaysFlip => f.write_str("flip"),
            FaultKindLaw::RandomStuckAt => f.write_str("stuck-at"),
            FaultKindLaw::AsymmetricStuckAt { p_stuck_at_zero } => {
                write!(f, "stuck-at:{p_stuck_at_zero}")
            }
        }
    }
}

impl FromStr for FaultKindLaw {
    type Err = MemError;

    /// Parses the `--kind-law` notation: `flip` (the paper's
    /// always-observable protocol), `stuck-at` (stuck at 0 or 1 with equal
    /// probability) or `stuck-at:P` (stuck at 0 with probability `P`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        let law = match lower.as_str() {
            "flip" | "always-flip" | "bit-flip" | "bitflip" => FaultKindLaw::AlwaysFlip,
            "stuck-at" | "random-stuck-at" => FaultKindLaw::RandomStuckAt,
            _ => match lower.strip_prefix("stuck-at:") {
                Some(p) => {
                    let p_stuck_at_zero =
                        p.trim().parse().map_err(|_| MemError::InvalidParameter {
                            reason: format!("stuck-at probability '{p}' is not a number"),
                        })?;
                    FaultKindLaw::AsymmetricStuckAt { p_stuck_at_zero }
                }
                None => {
                    return Err(MemError::InvalidParameter {
                        reason: format!(
                            "unknown fault-kind law '{s}', expected flip|stuck-at|stuck-at:P"
                        ),
                    })
                }
            },
        };
        law.validate()?;
        Ok(law)
    }
}

/// A memory-technology fault model: per-cell failure law, fault-map
/// distribution, and operating-point parameterisation.
///
/// Implementations must be deterministic functions of the RNG passed to
/// [`FaultBackend::sample_with_count`]: the parallel pipeline hands every
/// Monte-Carlo sample an RNG derived from `(campaign seed, sample index)`,
/// and bit-identical campaigns at any worker count follow only if backends
/// never draw randomness from anywhere else.
///
/// See the [module documentation](self) for a worked custom-backend example.
pub trait FaultBackend: fmt::Debug + Send + Sync {
    /// Short technology name (`"sram-vdd"`, `"dram-retention"`, `"mlc-nvm"`).
    fn name(&self) -> &'static str;

    /// Memory geometry the backend generates fault maps for.
    fn config(&self) -> MemoryConfig;

    /// Marginal per-cell fault probability at the current operating point.
    fn p_cell(&self) -> f64;

    /// The operating point the failure law was evaluated at.
    fn operating_point(&self) -> OperatingPoint;

    /// Draws a fault map with exactly `n_faults` faulty cells, placed
    /// according to the backend's spatial law.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] when `n_faults` exceeds the
    /// cell count, or propagates map-construction errors.
    fn sample_with_count(&self, rng: &mut StdRng, n_faults: usize) -> Result<FaultMap, MemError>;

    /// Draws a fault map with exactly `n_faults` faults into a reusable
    /// [`DieScratch`] arena instead of allocating a fresh map.
    ///
    /// Implementations must consume the RNG **identically** to
    /// [`FaultBackend::sample_with_count`] and leave the arena's map equal
    /// to what that method would have returned — the sparse evaluation
    /// pipeline treats the two paths as interchangeable and the
    /// kernel-equivalence suite asserts it. The default implementation
    /// simply delegates to the allocating path and moves the result into
    /// the arena, so custom backends stay correct (but not allocation-free)
    /// without overriding this; the in-tree backends override it to reuse
    /// the arena's buffers end to end.
    ///
    /// # Errors
    ///
    /// Same contract as [`FaultBackend::sample_with_count`].
    fn sample_into(
        &self,
        rng: &mut StdRng,
        n_faults: usize,
        scratch: &mut DieScratch,
    ) -> Result<(), MemError> {
        let map = self.sample_with_count(rng, n_faults)?;
        scratch.replace_map(map);
        Ok(())
    }

    /// Declares whether the backend's [`FaultBackend::sample_into`]
    /// schedule can be replayed by the lane-interleaved block generator
    /// ([`crate::widegen`]): iid-uniform Floyd placement over the whole
    /// array, then one kind draw per fault in `(row, col)` order.
    ///
    /// Returning `Some` is a *promise* that the wide generator consuming
    /// each lane's stream that way produces exactly the faults
    /// `sample_into` would — the wide path is used as a drop-in for the
    /// scalar one wherever block kernels generate dies. Backends with any
    /// other schedule (data-dependent placement proposals, per-cell
    /// weighting) must keep the default `None`, which routes block
    /// generation through the scalar path unchanged.
    fn wide_generation(&self) -> Option<WideGenSpec> {
        None
    }

    /// Distribution of the die failure count `N` implied by the per-cell
    /// law (binomial over the marginal `p_cell`; for spatially correlated
    /// backends this is the matched-marginal approximation used to weight
    /// Monte-Carlo samples).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when the backend's `p_cell`
    /// is outside `[0, 1]`.
    fn failure_distribution(&self) -> Result<FailureCountDistribution, MemError> {
        FailureCountDistribution::for_memory(self.config(), self.p_cell())
    }
}

impl<B: FaultBackend + ?Sized> FaultBackend for &B {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn config(&self) -> MemoryConfig {
        (**self).config()
    }

    fn p_cell(&self) -> f64 {
        (**self).p_cell()
    }

    fn operating_point(&self) -> OperatingPoint {
        (**self).operating_point()
    }

    fn sample_with_count(&self, rng: &mut StdRng, n_faults: usize) -> Result<FaultMap, MemError> {
        (**self).sample_with_count(rng, n_faults)
    }

    fn sample_into(
        &self,
        rng: &mut StdRng,
        n_faults: usize,
        scratch: &mut DieScratch,
    ) -> Result<(), MemError> {
        (**self).sample_into(rng, n_faults, scratch)
    }

    fn wide_generation(&self) -> Option<WideGenSpec> {
        (**self).wide_generation()
    }

    fn failure_distribution(&self) -> Result<FailureCountDistribution, MemError> {
        (**self).failure_distribution()
    }
}

/// Identifier of an in-tree backend technology (the `--backend` CLI axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// SRAM under voltage scaling (the paper's model).
    Sram,
    /// DRAM/eDRAM retention failures.
    Dram,
    /// Multi-level-cell NVM read errors.
    Mlc,
}

impl BackendKind {
    /// All in-tree backend technologies.
    pub const ALL: [BackendKind; 3] = [BackendKind::Sram, BackendKind::Dram, BackendKind::Mlc];

    /// Canonical technology name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Sram => "sram-vdd",
            BackendKind::Dram => "dram-retention",
            BackendKind::Mlc => "mlc-nvm",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = MemError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sram" | "sram-vdd" => Ok(BackendKind::Sram),
            "dram" | "edram" | "dram-retention" => Ok(BackendKind::Dram),
            "mlc" | "nvm" | "mlc-nvm" => Ok(BackendKind::Mlc),
            other => Err(MemError::InvalidParameter {
                reason: format!("unknown backend '{other}', expected sram|dram|mlc"),
            }),
        }
    }
}

/// One of the three in-tree backends behind a single `Copy` type.
///
/// Useful wherever the backend is chosen at runtime (the `--backend` flag of
/// the figure binaries); statically-typed code can use the concrete backend
/// structs directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// SRAM voltage-scaling failures.
    Sram(SramVddBackend),
    /// DRAM/eDRAM retention failures.
    Dram(DramRetentionBackend),
    /// MLC NVM read errors.
    Mlc(MlcNvmBackend),
}

impl Backend {
    /// Which technology this backend models.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        match self {
            Backend::Sram(_) => BackendKind::Sram,
            Backend::Dram(_) => BackendKind::Dram,
            Backend::Mlc(_) => BackendKind::Mlc,
        }
    }

    /// Builds the backend of the given kind whose operating point is
    /// calibrated to reach the marginal per-cell fault probability `p_cell`
    /// — the knob that makes cross-technology comparisons fault-density
    /// matched.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside the
    /// range the technology's law can reach.
    pub fn at_p_cell(
        kind: BackendKind,
        config: MemoryConfig,
        p_cell: f64,
    ) -> Result<Self, MemError> {
        match kind {
            BackendKind::Sram => Ok(Backend::Sram(SramVddBackend::with_p_cell(config, p_cell)?)),
            BackendKind::Dram => Ok(Backend::Dram(DramRetentionBackend::with_p_cell(
                config, p_cell,
            )?)),
            BackendKind::Mlc => Ok(Backend::Mlc(MlcNvmBackend::with_p_cell(config, p_cell)?)),
        }
    }

    /// Replaces the backend's fault-kind law, whichever technology it
    /// models — the runtime-dispatch mirror of the per-backend
    /// `with_kind_law` constructors, used by the `--kind-law` CLI axis.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when the law's parameters
    /// are out of range.
    pub fn with_kind_law(self, kind_law: FaultKindLaw) -> Result<Self, MemError> {
        Ok(match self {
            Backend::Sram(b) => Backend::Sram(b.with_kind_law(kind_law)?),
            Backend::Dram(b) => Backend::Dram(b.with_kind_law(kind_law)?),
            Backend::Mlc(b) => Backend::Mlc(b.with_kind_law(kind_law)?),
        })
    }

    /// Builds the backend of the given kind at its reference operating point
    /// (nominal-minus-margin voltage for SRAM, 64 ms refresh at 45 °C for
    /// DRAM, one-day drift for MLC NVM).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors (none occur for a valid
    /// geometry).
    pub fn reference(kind: BackendKind, config: MemoryConfig) -> Result<Self, MemError> {
        match kind {
            BackendKind::Sram => Ok(Backend::Sram(SramVddBackend::at_vdd(
                config,
                crate::failure_model::CellFailureModel::default_28nm(),
                0.75,
            )?)),
            BackendKind::Dram => Ok(Backend::Dram(DramRetentionBackend::new(
                config, 64.0, 45.0,
            )?)),
            BackendKind::Mlc => Ok(Backend::Mlc(MlcNvmBackend::new(config, 12.0, 86_400.0)?)),
        }
    }
}

impl FaultBackend for Backend {
    fn name(&self) -> &'static str {
        match self {
            Backend::Sram(b) => b.name(),
            Backend::Dram(b) => b.name(),
            Backend::Mlc(b) => b.name(),
        }
    }

    fn config(&self) -> MemoryConfig {
        match self {
            Backend::Sram(b) => b.config(),
            Backend::Dram(b) => b.config(),
            Backend::Mlc(b) => b.config(),
        }
    }

    fn p_cell(&self) -> f64 {
        match self {
            Backend::Sram(b) => b.p_cell(),
            Backend::Dram(b) => b.p_cell(),
            Backend::Mlc(b) => b.p_cell(),
        }
    }

    fn operating_point(&self) -> OperatingPoint {
        match self {
            Backend::Sram(b) => b.operating_point(),
            Backend::Dram(b) => b.operating_point(),
            Backend::Mlc(b) => b.operating_point(),
        }
    }

    fn sample_with_count(&self, rng: &mut StdRng, n_faults: usize) -> Result<FaultMap, MemError> {
        match self {
            Backend::Sram(b) => b.sample_with_count(rng, n_faults),
            Backend::Dram(b) => b.sample_with_count(rng, n_faults),
            Backend::Mlc(b) => b.sample_with_count(rng, n_faults),
        }
    }

    fn sample_into(
        &self,
        rng: &mut StdRng,
        n_faults: usize,
        scratch: &mut DieScratch,
    ) -> Result<(), MemError> {
        match self {
            Backend::Sram(b) => b.sample_into(rng, n_faults, scratch),
            Backend::Dram(b) => b.sample_into(rng, n_faults, scratch),
            Backend::Mlc(b) => b.sample_into(rng, n_faults, scratch),
        }
    }

    fn wide_generation(&self) -> Option<WideGenSpec> {
        match self {
            Backend::Sram(b) => b.wide_generation(),
            Backend::Dram(b) => b.wide_generation(),
            Backend::Mlc(b) => b.wide_generation(),
        }
    }
}

impl From<SramVddBackend> for Backend {
    fn from(value: SramVddBackend) -> Self {
        Backend::Sram(value)
    }
}

impl From<DramRetentionBackend> for Backend {
    fn from(value: DramRetentionBackend) -> Self {
        Backend::Dram(value)
    }
}

impl From<MlcNvmBackend> for Backend {
    fn from(value: MlcNvmBackend) -> Self {
        Backend::Mlc(value)
    }
}

/// Places `n_faults` distinct faults by repeatedly proposing cells from
/// `propose` (the backend's spatial law), falling back to uniform rejection
/// sampling when a proposal streak keeps hitting occupied cells — this
/// guarantees the exact count and termination for every density up to a full
/// array.
pub(crate) fn place_distinct<R, P>(
    config: MemoryConfig,
    rng: &mut R,
    n_faults: usize,
    kind_law: FaultKindLaw,
    propose: P,
) -> Result<FaultMap, MemError>
where
    R: Rng + ?Sized,
    P: FnMut(&mut R) -> (usize, usize),
{
    let mut taken = std::collections::HashSet::with_capacity(n_faults);
    let mut map = FaultMap::new(config);
    place_distinct_core(
        config, rng, n_faults, kind_law, propose, &mut taken, &mut map,
    )?;
    Ok(map)
}

/// [`place_distinct`] into a scratch arena: identical placement algorithm
/// and RNG consumption, but the occupancy set and the fault map are the
/// arena's reusable (cleared, never dropped) containers.
pub(crate) fn place_distinct_into<R, P>(
    config: MemoryConfig,
    rng: &mut R,
    n_faults: usize,
    kind_law: FaultKindLaw,
    propose: P,
    scratch: &mut DieScratch,
) -> Result<(), MemError>
where
    R: Rng + ?Sized,
    P: FnMut(&mut R) -> (usize, usize),
{
    scratch.reset_map(config);
    scratch.taken.clear();
    place_distinct_core(
        config,
        rng,
        n_faults,
        kind_law,
        propose,
        &mut scratch.taken,
        &mut scratch.map,
    )
}

fn place_distinct_core<R, P>(
    config: MemoryConfig,
    rng: &mut R,
    n_faults: usize,
    kind_law: FaultKindLaw,
    mut propose: P,
    taken: &mut std::collections::HashSet<usize>,
    map: &mut FaultMap,
) -> Result<(), MemError>
where
    R: Rng + ?Sized,
    P: FnMut(&mut R) -> (usize, usize),
{
    const MAX_PROPOSALS_PER_FAULT: usize = 16;
    let total = config.total_cells();
    if n_faults > total {
        return Err(MemError::InvalidParameter {
            reason: format!("cannot place {n_faults} faults in {total} cells"),
        });
    }
    // `taken` guarantees distinct cells, so the map is bulk-loaded and
    // sorted once at the end (a per-fault sorted insert is quadratic at
    // dense fault counts). The RNG schedule is untouched.
    while map.fault_count() < n_faults {
        let mut placed = false;
        for _ in 0..MAX_PROPOSALS_PER_FAULT {
            let (row, col) = propose(rng);
            if taken.insert(config.cell_index(row, col)) {
                let kind = kind_law.sample(rng);
                map.push_unsorted(crate::fault::Fault::new(row, col, kind))?;
                placed = true;
                break;
            }
        }
        if !placed {
            // Uniform fallback over the remaining free cells.
            loop {
                let index = rng.gen_range(0..total);
                if taken.insert(index) {
                    let (row, col) = config.cell_position(index);
                    let kind = kind_law.sample(rng);
                    map.push_unsorted(crate::fault::Fault::new(row, col, kind))?;
                    break;
                }
            }
        }
    }
    map.restore_sorted_order();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn config() -> MemoryConfig {
        MemoryConfig::new(64, 32).unwrap()
    }

    #[test]
    fn backend_kind_parses_aliases() {
        assert_eq!("sram".parse::<BackendKind>().unwrap(), BackendKind::Sram);
        assert_eq!(
            "SRAM-VDD".parse::<BackendKind>().unwrap(),
            BackendKind::Sram
        );
        assert_eq!("dram".parse::<BackendKind>().unwrap(), BackendKind::Dram);
        assert_eq!("edram".parse::<BackendKind>().unwrap(), BackendKind::Dram);
        assert_eq!("mlc".parse::<BackendKind>().unwrap(), BackendKind::Mlc);
        assert_eq!("nvm".parse::<BackendKind>().unwrap(), BackendKind::Mlc);
        assert!("flash".parse::<BackendKind>().is_err());
    }

    #[test]
    fn backend_enum_dispatch_matches_inner_backend() {
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, config(), 1e-3).unwrap();
            assert_eq!(backend.kind(), kind);
            assert_eq!(backend.name(), kind.name());
            assert_eq!(backend.config(), config());
            assert!(
                (backend.p_cell().log10() - (-3.0)).abs() < 0.05,
                "{kind}: p_cell = {}",
                backend.p_cell()
            );
            let dist = backend.failure_distribution().unwrap();
            assert!((dist.p_cell() - backend.p_cell()).abs() < 1e-15);
        }
    }

    #[test]
    fn reference_operating_points_are_valid() {
        for kind in BackendKind::ALL {
            let backend = Backend::reference(kind, config()).unwrap();
            let p = backend.p_cell();
            assert!(p > 0.0 && p < 1.0, "{kind}: p_cell = {p}");
            assert!(!backend.operating_point().label().is_empty());
        }
    }

    #[test]
    fn every_backend_samples_exact_counts_deterministically() {
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, config(), 1e-3).unwrap();
            for &n in &[0usize, 1, 7, 64, 500] {
                let mut rng_a = StdRng::seed_from_u64(9);
                let mut rng_b = StdRng::seed_from_u64(9);
                let a = backend.sample_with_count(&mut rng_a, n).unwrap();
                let b = backend.sample_with_count(&mut rng_b, n).unwrap();
                assert_eq!(a.fault_count(), n, "{kind} with {n} faults");
                assert_eq!(
                    a.iter().collect::<Vec<_>>(),
                    b.iter().collect::<Vec<_>>(),
                    "{kind} with {n} faults is not RNG-deterministic"
                );
            }
        }
    }

    #[test]
    fn backends_reject_overfull_requests() {
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, MemoryConfig::new(2, 8).unwrap(), 1e-3).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            assert!(backend.sample_with_count(&mut rng, 17).is_err(), "{kind}");
            assert_eq!(
                backend
                    .sample_with_count(&mut rng, 16)
                    .unwrap()
                    .fault_count(),
                16,
                "{kind} must fill the whole array"
            );
        }
    }

    #[test]
    fn operating_point_labels_and_values() {
        let op = OperatingPoint::SramVdd { vdd: 0.8 };
        assert_eq!(op.label(), "Vdd=0.80V");
        assert_eq!(op.primary_value(), 0.8);
        let op = OperatingPoint::DramRetention {
            refresh_interval_ms: 64.0,
            temperature_c: 45.0,
        };
        assert!(op.label().contains("64ms"));
        assert_eq!(op.primary_value(), 64.0);
        let op = OperatingPoint::MlcNvm {
            level_spacing_sigma: 12.0,
            drift_time_s: 86_400.0,
        };
        assert!(op.label().contains("12.0sigma"));
        let op = OperatingPoint::Custom {
            parameter: 3.0,
            unit: "km",
        };
        assert_eq!(op.to_string(), "knob=3km");
        assert_eq!(op.primary_value(), 3.0);
    }

    #[test]
    fn fault_kind_law_validation_and_sampling() {
        assert!(FaultKindLaw::AlwaysFlip.validate().is_ok());
        assert!(FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 0.75
        }
        .validate()
        .is_ok());
        assert!(FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 1.5
        }
        .validate()
        .is_err());

        let mut rng = StdRng::seed_from_u64(5);
        let law = FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 0.75,
        };
        let zeros = (0..4000)
            .filter(|_| law.sample(&mut rng) == FaultKind::StuckAtZero)
            .count();
        assert!(
            (zeros as f64 / 4000.0 - 0.75).abs() < 0.03,
            "stuck-at-zero fraction {}",
            zeros as f64 / 4000.0
        );
    }

    #[test]
    fn fault_kind_laws_round_trip_through_the_cli_notation() {
        for law in [
            FaultKindLaw::AlwaysFlip,
            FaultKindLaw::RandomStuckAt,
            FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.9,
            },
            FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 1.0 / 3.0,
            },
        ] {
            let round: FaultKindLaw = law.to_string().parse().unwrap();
            assert_eq!(round, law, "{law} does not round-trip");
        }
        assert_eq!(
            "FLIP".parse::<FaultKindLaw>().unwrap(),
            FaultKindLaw::AlwaysFlip
        );
        assert_eq!(
            "random-stuck-at".parse::<FaultKindLaw>().unwrap(),
            FaultKindLaw::RandomStuckAt
        );
        assert_eq!(
            "stuck-at:0.25".parse::<FaultKindLaw>().unwrap(),
            FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.25
            }
        );
        assert!("stuck-at:1.5".parse::<FaultKindLaw>().is_err());
        assert!("stuck-at:x".parse::<FaultKindLaw>().is_err());
        assert!("decay".parse::<FaultKindLaw>().is_err());
    }

    #[test]
    fn fault_kind_law_equality_is_reflexive_even_for_hand_built_nan() {
        // Bitwise probability comparison keeps Eq's reflexivity contract
        // for laws built without going through validation.
        let nan = FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: f64::NAN,
        };
        assert_eq!(nan, nan);
        assert_ne!(
            nan,
            FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.5
            }
        );
        assert_ne!(FaultKindLaw::AlwaysFlip, FaultKindLaw::RandomStuckAt);
    }

    #[test]
    fn backend_enum_forwards_kind_laws_to_every_technology() {
        let law = FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 1.0,
        };
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, config(), 1e-3)
                .unwrap()
                .with_kind_law(law)
                .unwrap();
            let mut rng = StdRng::seed_from_u64(21);
            let map = backend.sample_with_count(&mut rng, 40).unwrap();
            assert!(
                map.iter().all(|f| f.kind == FaultKind::StuckAtZero),
                "{kind} ignored the kind law"
            );
            assert!(Backend::at_p_cell(kind, config(), 1e-3)
                .unwrap()
                .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                    p_stuck_at_zero: 2.0
                })
                .is_err());
        }
    }
}
