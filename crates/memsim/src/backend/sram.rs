//! The paper's SRAM voltage-scaling backend.

use super::{FaultBackend, FaultKindLaw, OperatingPoint};
use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::failure_model::{CellFailureModel, NOMINAL_VDD};
use crate::fault::{Fault, FaultMap};
use crate::montecarlo::FaultMapSampler;
use crate::scratch::DieScratch;
use crate::widegen::WideGenSpec;
use rand::rngs::StdRng;

/// SRAM bit-cell failures exposed by supply-voltage scaling — the paper's
/// fault model behind the [`FaultBackend`] interface.
///
/// The per-cell law is the analytical Gaussian noise-margin model
/// ([`CellFailureModel`]): `P_cell(V_DD) = Φ(−z(V_DD))`. Faults are placed
/// iid-uniformly over the array as always-observable bit-flips, exactly like
/// the pre-backend pipeline ([`FaultMapSampler`] with the `AlwaysFlip`
/// policy), so campaigns through this backend are **bit-identical** to the
/// historical SRAM-only results at the same seed.
///
/// # Example
///
/// ```
/// use faultmit_memsim::backend::{FaultBackend, SramVddBackend};
/// use faultmit_memsim::{CellFailureModel, MemoryConfig};
///
/// # fn main() -> Result<(), faultmit_memsim::MemError> {
/// let backend = SramVddBackend::at_vdd(
///     MemoryConfig::paper_16kb(),
///     CellFailureModel::default_28nm(),
///     0.7,
/// )?;
/// assert!(backend.p_cell() > 1e-5, "scaled voltage exposes faults");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramVddBackend {
    config: MemoryConfig,
    model: CellFailureModel,
    vdd: f64,
    p_cell: f64,
    kind_law: FaultKindLaw,
}

impl SramVddBackend {
    /// Creates the backend operating at supply voltage `vdd` under the given
    /// failure model.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] when `vdd` is not finite.
    pub fn at_vdd(
        config: MemoryConfig,
        model: CellFailureModel,
        vdd: f64,
    ) -> Result<Self, MemError> {
        if !vdd.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: format!("supply voltage {vdd} must be finite"),
            });
        }
        Ok(Self {
            config,
            model,
            vdd,
            p_cell: model.p_cell(vdd),
            kind_law: FaultKindLaw::AlwaysFlip,
        })
    }

    /// Creates the backend from a raw per-cell fault probability, deriving
    /// the equivalent supply voltage from the default 28 nm model — the
    /// constructor behind the legacy `(memory, p_cell)` campaign APIs, which
    /// therefore stay bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside
    /// `[0, 1]`.
    pub fn with_p_cell(config: MemoryConfig, p_cell: f64) -> Result<Self, MemError> {
        if !(0.0..=1.0).contains(&p_cell) || p_cell.is_nan() {
            return Err(MemError::InvalidProbability { value: p_cell });
        }
        let model = CellFailureModel::default_28nm();
        let (vdd_min, vdd_max) = model.voltage_range();
        // The degenerate probabilities 0 and 1 have no finite pre-image under
        // the Gaussian law; report the calibration boundary instead.
        let vdd = if p_cell <= 0.0 {
            NOMINAL_VDD.max(vdd_max)
        } else if p_cell >= 1.0 {
            vdd_min
        } else {
            model
                .vdd_for_p_cell(p_cell)?
                .clamp(vdd_min - 0.5, vdd_max + 0.5)
        };
        Ok(Self {
            config,
            model,
            vdd,
            p_cell,
            kind_law: FaultKindLaw::AlwaysFlip,
        })
    }

    /// The failure model translating voltages into fault probabilities.
    #[must_use]
    pub fn model(&self) -> &CellFailureModel {
        &self.model
    }

    /// The supply voltage this backend operates at.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Sets how faulty cells behave. The default is
    /// [`FaultKindLaw::AlwaysFlip`], the paper's injection protocol — and
    /// the backend's bit-identical legacy sampling path. Any other law
    /// draws each cell's stuck-at polarity *after* placing the fault at the
    /// legacy sampler's position, so fault locations are unchanged and only
    /// the data-dependent behaviour differs.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when the law's parameters
    /// are out of range.
    pub fn with_kind_law(mut self, kind_law: FaultKindLaw) -> Result<Self, MemError> {
        kind_law.validate()?;
        self.kind_law = kind_law;
        Ok(self)
    }

    /// The fault-kind law in effect.
    #[must_use]
    pub fn kind_law(&self) -> FaultKindLaw {
        self.kind_law
    }
}

impl FaultBackend for SramVddBackend {
    fn name(&self) -> &'static str {
        "sram-vdd"
    }

    fn config(&self) -> MemoryConfig {
        self.config
    }

    fn p_cell(&self) -> f64 {
        self.p_cell
    }

    fn operating_point(&self) -> OperatingPoint {
        OperatingPoint::SramVdd { vdd: self.vdd }
    }

    fn sample_with_count(&self, rng: &mut StdRng, n_faults: usize) -> Result<FaultMap, MemError> {
        // Exactly the pre-backend sampling path (iid uniform bit-flips): the
        // bit-identity of historical SRAM campaigns rests on this delegation.
        let map = FaultMapSampler::new(self.config).sample_with_count(rng, n_faults)?;
        if matches!(self.kind_law, FaultKindLaw::AlwaysFlip) {
            return Ok(map);
        }
        // Non-default law: keep the legacy positions, re-draw each cell's
        // behaviour in the map's deterministic (row, column) order.
        let faults: Vec<Fault> = map
            .iter()
            .map(|fault| Fault::new(fault.row, fault.col, self.kind_law.sample(rng)))
            .collect();
        FaultMap::from_faults(self.config, faults)
    }

    fn sample_into(
        &self,
        rng: &mut StdRng,
        n_faults: usize,
        scratch: &mut DieScratch,
    ) -> Result<(), MemError> {
        // Same RNG schedule as `sample_with_count`: Floyd placement first
        // (into the arena's index buffers), then — for non-default laws —
        // one kind draw per fault in (row, column) order.
        FaultMapSampler::new(self.config).sample_with_count_into(rng, n_faults, scratch)?;
        if !matches!(self.kind_law, FaultKindLaw::AlwaysFlip) {
            scratch.map.rekind_in_order(|| self.kind_law.sample(rng));
        }
        Ok(())
    }

    fn wide_generation(&self) -> Option<WideGenSpec> {
        // The two methods above are exactly the wide-capable schedule:
        // iid-uniform Floyd placement, then one kind draw per fault in
        // (row, column) order.
        Some(WideGenSpec {
            kind_law: self.kind_law,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use rand::SeedableRng;

    fn config() -> MemoryConfig {
        MemoryConfig::new(64, 32).unwrap()
    }

    #[test]
    fn p_cell_matches_the_gaussian_noise_margin_law() {
        // Closed form: P_cell(V) = Φ(−z(V)) — the backend must agree with
        // the underlying model exactly.
        let model = CellFailureModel::default_28nm();
        for &vdd in &[0.6, 0.7, 0.8, 0.9, 1.0] {
            let backend = SramVddBackend::at_vdd(config(), model, vdd).unwrap();
            assert_eq!(backend.p_cell(), model.p_cell(vdd), "vdd = {vdd}");
            assert_eq!(backend.operating_point(), OperatingPoint::SramVdd { vdd });
        }
    }

    #[test]
    fn with_p_cell_round_trips_through_the_voltage_axis() {
        for &p in &[1e-8, 1e-6, 1e-4, 1e-2] {
            let backend = SramVddBackend::with_p_cell(config(), p).unwrap();
            assert_eq!(backend.p_cell(), p);
            let recovered = backend.model().p_cell(backend.vdd());
            assert!(
                (recovered.log10() - p.log10()).abs() < 0.05,
                "p = {p}, recovered = {recovered}"
            );
        }
    }

    #[test]
    fn with_p_cell_handles_degenerate_probabilities() {
        let zero = SramVddBackend::with_p_cell(config(), 0.0).unwrap();
        assert_eq!(zero.p_cell(), 0.0);
        assert!(zero.vdd() >= NOMINAL_VDD);
        let one = SramVddBackend::with_p_cell(config(), 1.0).unwrap();
        assert_eq!(one.p_cell(), 1.0);
        assert!(SramVddBackend::with_p_cell(config(), -0.1).is_err());
        assert!(SramVddBackend::with_p_cell(config(), f64::NAN).is_err());
        assert!(
            SramVddBackend::at_vdd(config(), CellFailureModel::default_28nm(), f64::INFINITY)
                .is_err()
        );
    }

    #[test]
    fn sampling_is_bit_identical_to_the_legacy_fault_map_sampler() {
        let backend = SramVddBackend::with_p_cell(config(), 1e-3).unwrap();
        let sampler = FaultMapSampler::new(config());
        for seed in 0..8u64 {
            let mut rng_backend = StdRng::seed_from_u64(seed);
            let mut rng_legacy = StdRng::seed_from_u64(seed);
            let a = backend.sample_with_count(&mut rng_backend, 12).unwrap();
            let b = sampler.sample_with_count(&mut rng_legacy, 12).unwrap();
            assert_eq!(
                a.iter().collect::<Vec<_>>(),
                b.iter().collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn faults_are_always_observable_bit_flips() {
        let backend = SramVddBackend::with_p_cell(config(), 1e-3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let map = backend.sample_with_count(&mut rng, 100).unwrap();
        assert!(map.iter().all(|f| f.kind == FaultKind::BitFlip));
    }

    #[test]
    fn kind_law_changes_behaviour_but_not_positions() {
        let flip = SramVddBackend::with_p_cell(config(), 1e-3).unwrap();
        let stuck = flip
            .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 1.0,
            })
            .unwrap();
        assert_eq!(stuck.kind_law(), stuck.kind_law());
        let map_flip = flip
            .sample_with_count(&mut StdRng::seed_from_u64(11), 50)
            .unwrap();
        let map_stuck = stuck
            .sample_with_count(&mut StdRng::seed_from_u64(11), 50)
            .unwrap();
        // Same RNG prefix → same cell positions; only the kinds differ.
        let positions = |map: &FaultMap| map.iter().map(|f| (f.row, f.col)).collect::<Vec<_>>();
        assert_eq!(positions(&map_flip), positions(&map_stuck));
        assert!(map_stuck.iter().all(|f| f.kind == FaultKind::StuckAtZero));
        // Deterministic in the RNG.
        let again = stuck
            .sample_with_count(&mut StdRng::seed_from_u64(11), 50)
            .unwrap();
        assert_eq!(
            map_stuck.iter().collect::<Vec<_>>(),
            again.iter().collect::<Vec<_>>()
        );
        // Out-of-range laws are rejected.
        assert!(flip
            .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: -0.5
            })
            .is_err());
    }
}
