//! Fault descriptions and per-die fault maps.
//!
//! A *fault* is a persistent defect of a single bit-cell caused by parametric
//! variation (possibly exposed by voltage scaling). Once a die has been
//! manufactured the number and location of its faults is fixed, which is why
//! the bit-shuffling scheme can record them once (via BIST) and compensate on
//! every subsequent access.

use crate::config::MemoryConfig;
use crate::error::MemError;
use std::collections::BTreeMap;

/// Behaviour of a faulty bit-cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The cell always reads `0` regardless of the stored value.
    StuckAtZero,
    /// The cell always reads `1` regardless of the stored value.
    StuckAtOne,
    /// The cell returns the complement of the stored value (models a cell
    /// whose read path flips the content, e.g. a destructive read upset).
    BitFlip,
}

impl FaultKind {
    /// All fault kinds, useful for exhaustive testing.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::StuckAtZero,
        FaultKind::StuckAtOne,
        FaultKind::BitFlip,
    ];

    /// Applies the fault to a single stored bit, returning the bit observed
    /// by a read.
    #[must_use]
    pub fn apply(self, stored: bool) -> bool {
        match self {
            FaultKind::StuckAtZero => false,
            FaultKind::StuckAtOne => true,
            FaultKind::BitFlip => !stored,
        }
    }

    /// Whether a read of a cell storing `stored` would observe an error.
    #[must_use]
    pub fn corrupts(self, stored: bool) -> bool {
        self.apply(stored) != stored
    }
}

/// A single faulty bit-cell: its location and behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Row (word address) of the faulty cell.
    pub row: usize,
    /// Column (bit position within the word, 0 = LSB) of the faulty cell.
    pub col: usize,
    /// Behaviour of the faulty cell.
    pub kind: FaultKind,
}

impl Fault {
    /// Creates a fault at `(row, col)` with the given behaviour.
    #[must_use]
    pub fn new(row: usize, col: usize, kind: FaultKind) -> Self {
        Self { row, col, kind }
    }

    /// Convenience constructor for a stuck-at-zero fault.
    #[must_use]
    pub fn stuck_at_zero(row: usize, col: usize) -> Self {
        Self::new(row, col, FaultKind::StuckAtZero)
    }

    /// Convenience constructor for a stuck-at-one fault.
    #[must_use]
    pub fn stuck_at_one(row: usize, col: usize) -> Self {
        Self::new(row, col, FaultKind::StuckAtOne)
    }

    /// Convenience constructor for a bit-flip fault.
    #[must_use]
    pub fn bit_flip(row: usize, col: usize) -> Self {
        Self::new(row, col, FaultKind::BitFlip)
    }
}

/// The set of faulty bit-cells of one manufactured die.
///
/// At most one fault is recorded per cell; inserting a second fault at the
/// same `(row, col)` replaces the previous one (the physical cell has exactly
/// one behaviour).
///
/// # Example
///
/// ```
/// use faultmit_memsim::{Fault, FaultKind, FaultMap, MemoryConfig};
///
/// # fn main() -> Result<(), faultmit_memsim::MemError> {
/// let config = MemoryConfig::new(16, 32)?;
/// let mut map = FaultMap::new(config);
/// map.insert(Fault::bit_flip(3, 31))?;
/// map.insert(Fault::stuck_at_one(7, 0))?;
///
/// assert_eq!(map.fault_count(), 2);
/// assert_eq!(map.faulty_columns(3), vec![31]);
/// assert!(map.row_has_fault(7));
/// assert!(!map.row_has_fault(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    config: MemoryConfig,
    /// Faults indexed by row, then column (BTreeMap keeps deterministic order).
    by_row: BTreeMap<usize, BTreeMap<usize, FaultKind>>,
    count: usize,
}

impl FaultMap {
    /// Creates an empty fault map for the given geometry.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            config,
            by_row: BTreeMap::new(),
            count: 0,
        }
    }

    /// Geometry this fault map was built for.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Inserts (or replaces) a fault.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`] or [`MemError::ColumnOutOfRange`]
    /// if the location is outside the array.
    pub fn insert(&mut self, fault: Fault) -> Result<(), MemError> {
        self.config.check_row(fault.row)?;
        self.config.check_col(fault.col)?;
        let previous = self
            .by_row
            .entry(fault.row)
            .or_default()
            .insert(fault.col, fault.kind);
        if previous.is_none() {
            self.count += 1;
        }
        Ok(())
    }

    /// Removes the fault at `(row, col)`, returning its kind if present.
    pub fn remove(&mut self, row: usize, col: usize) -> Option<FaultKind> {
        let row_map = self.by_row.get_mut(&row)?;
        let removed = row_map.remove(&col);
        if removed.is_some() {
            self.count -= 1;
            if row_map.is_empty() {
                self.by_row.remove(&row);
            }
        }
        removed
    }

    /// Total number of faulty cells (`N_failures` in the paper).
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.count
    }

    /// `true` when the die has no faulty cell.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The fault affecting cell `(row, col)`, if any.
    #[must_use]
    pub fn fault_at(&self, row: usize, col: usize) -> Option<FaultKind> {
        self.by_row.get(&row).and_then(|m| m.get(&col)).copied()
    }

    /// `true` when the given row contains at least one faulty cell.
    #[must_use]
    pub fn row_has_fault(&self, row: usize) -> bool {
        self.by_row.contains_key(&row)
    }

    /// Number of rows that contain at least one faulty cell.
    #[must_use]
    pub fn faulty_row_count(&self) -> usize {
        self.by_row.len()
    }

    /// Faulty bit positions of `row`, sorted ascending (LSB first).
    #[must_use]
    pub fn faulty_columns(&self, row: usize) -> Vec<usize> {
        self.by_row
            .get(&row)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Highest faulty bit position of `row`, if any.
    ///
    /// This is the quantity that determines the worst-case error magnitude of
    /// an unprotected word (`2^b` for bit position `b`).
    #[must_use]
    pub fn highest_faulty_column(&self, row: usize) -> Option<usize> {
        self.by_row
            .get(&row)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// Iterates over all faults in deterministic (row, column) order.
    pub fn iter(&self) -> impl Iterator<Item = Fault> + '_ {
        self.by_row.iter().flat_map(|(&row, cols)| {
            cols.iter()
                .map(move |(&col, &kind)| Fault { row, col, kind })
        })
    }

    /// Iterates over rows that contain faults, in ascending row order.
    pub fn faulty_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.by_row.keys().copied()
    }

    /// Number of faults per row as a dense vector of length `rows()`.
    #[must_use]
    pub fn faults_per_row(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.rows()];
        for (&row, cols) in &self.by_row {
            counts[row] = cols.len();
        }
        counts
    }

    /// Maximum number of faults found in any single row.
    #[must_use]
    pub fn max_faults_per_row(&self) -> usize {
        self.by_row.values().map(BTreeMap::len).max().unwrap_or(0)
    }

    /// Builds a fault map from an iterator of faults.
    ///
    /// # Errors
    ///
    /// Propagates the first out-of-range location encountered.
    pub fn from_faults<I>(config: MemoryConfig, faults: I) -> Result<Self, MemError>
    where
        I: IntoIterator<Item = Fault>,
    {
        let mut map = Self::new(config);
        for fault in faults {
            map.insert(fault)?;
        }
        Ok(map)
    }
}

impl Extend<Fault> for FaultMap {
    /// Extends the map, silently skipping out-of-range faults.
    ///
    /// Use [`FaultMap::insert`] directly when out-of-range locations should be
    /// treated as errors.
    fn extend<I: IntoIterator<Item = Fault>>(&mut self, iter: I) {
        for fault in iter {
            let _ = self.insert(fault);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MemoryConfig {
        MemoryConfig::new(8, 32).unwrap()
    }

    #[test]
    fn fault_kind_apply_matches_semantics() {
        assert!(!FaultKind::StuckAtZero.apply(true));
        assert!(!FaultKind::StuckAtZero.apply(false));
        assert!(FaultKind::StuckAtOne.apply(true));
        assert!(FaultKind::StuckAtOne.apply(false));
        assert!(!FaultKind::BitFlip.apply(true));
        assert!(FaultKind::BitFlip.apply(false));
    }

    #[test]
    fn fault_kind_corrupts_only_when_observable() {
        // A stuck-at-zero cell storing 0 is not observably corrupt.
        assert!(!FaultKind::StuckAtZero.corrupts(false));
        assert!(FaultKind::StuckAtZero.corrupts(true));
        assert!(FaultKind::StuckAtOne.corrupts(false));
        assert!(!FaultKind::StuckAtOne.corrupts(true));
        // A flipping cell always corrupts.
        assert!(FaultKind::BitFlip.corrupts(false));
        assert!(FaultKind::BitFlip.corrupts(true));
    }

    #[test]
    fn insert_and_query() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::stuck_at_one(2, 5)).unwrap();
        map.insert(Fault::bit_flip(2, 31)).unwrap();
        map.insert(Fault::stuck_at_zero(7, 0)).unwrap();

        assert_eq!(map.fault_count(), 3);
        assert_eq!(map.faulty_row_count(), 2);
        assert_eq!(map.fault_at(2, 5), Some(FaultKind::StuckAtOne));
        assert_eq!(map.fault_at(2, 6), None);
        assert_eq!(map.faulty_columns(2), vec![5, 31]);
        assert_eq!(map.highest_faulty_column(2), Some(31));
        assert_eq!(map.highest_faulty_column(0), None);
    }

    #[test]
    fn inserting_same_cell_twice_replaces() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::stuck_at_one(1, 1)).unwrap();
        map.insert(Fault::stuck_at_zero(1, 1)).unwrap();
        assert_eq!(map.fault_count(), 1);
        assert_eq!(map.fault_at(1, 1), Some(FaultKind::StuckAtZero));
    }

    #[test]
    fn remove_clears_empty_rows() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::bit_flip(3, 4)).unwrap();
        assert_eq!(map.remove(3, 4), Some(FaultKind::BitFlip));
        assert_eq!(map.remove(3, 4), None);
        assert!(map.is_empty());
        assert!(!map.row_has_fault(3));
    }

    #[test]
    fn out_of_range_insert_is_rejected() {
        let mut map = FaultMap::new(config());
        assert!(map.insert(Fault::bit_flip(8, 0)).is_err());
        assert!(map.insert(Fault::bit_flip(0, 32)).is_err());
        assert!(map.is_empty());
    }

    #[test]
    fn iteration_is_deterministic_and_sorted() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::bit_flip(5, 1)).unwrap();
        map.insert(Fault::bit_flip(1, 30)).unwrap();
        map.insert(Fault::bit_flip(1, 2)).unwrap();

        let collected: Vec<(usize, usize)> = map.iter().map(|f| (f.row, f.col)).collect();
        assert_eq!(collected, vec![(1, 2), (1, 30), (5, 1)]);
    }

    #[test]
    fn faults_per_row_is_dense() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::bit_flip(1, 2)).unwrap();
        map.insert(Fault::bit_flip(1, 3)).unwrap();
        map.insert(Fault::bit_flip(6, 0)).unwrap();
        let per_row = map.faults_per_row();
        assert_eq!(per_row.len(), 8);
        assert_eq!(per_row[1], 2);
        assert_eq!(per_row[6], 1);
        assert_eq!(per_row.iter().sum::<usize>(), 3);
        assert_eq!(map.max_faults_per_row(), 2);
    }

    #[test]
    fn from_faults_builds_equivalent_map() {
        let faults = vec![Fault::bit_flip(0, 0), Fault::stuck_at_one(4, 9)];
        let map = FaultMap::from_faults(config(), faults.clone()).unwrap();
        assert_eq!(map.fault_count(), 2);
        let rebuilt: Vec<Fault> = map.iter().collect();
        assert_eq!(rebuilt.len(), 2);
        assert!(rebuilt.contains(&faults[0]));
        assert!(rebuilt.contains(&faults[1]));
    }
}
