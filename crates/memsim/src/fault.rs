//! Fault descriptions and per-die fault maps.
//!
//! A *fault* is a persistent defect of a single bit-cell caused by parametric
//! variation (possibly exposed by voltage scaling). Once a die has been
//! manufactured the number and location of its faults is fixed, which is why
//! the bit-shuffling scheme can record them once (via BIST) and compensate on
//! every subsequent access.

use crate::config::MemoryConfig;
use crate::error::MemError;

/// Behaviour of a faulty bit-cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The cell always reads `0` regardless of the stored value.
    StuckAtZero,
    /// The cell always reads `1` regardless of the stored value.
    StuckAtOne,
    /// The cell returns the complement of the stored value (models a cell
    /// whose read path flips the content, e.g. a destructive read upset).
    BitFlip,
}

impl FaultKind {
    /// All fault kinds, useful for exhaustive testing.
    pub const ALL: [FaultKind; 3] = [
        FaultKind::StuckAtZero,
        FaultKind::StuckAtOne,
        FaultKind::BitFlip,
    ];

    /// Applies the fault to a single stored bit, returning the bit observed
    /// by a read.
    #[must_use]
    pub fn apply(self, stored: bool) -> bool {
        match self {
            FaultKind::StuckAtZero => false,
            FaultKind::StuckAtOne => true,
            FaultKind::BitFlip => !stored,
        }
    }

    /// Whether a read of a cell storing `stored` would observe an error.
    #[must_use]
    pub fn corrupts(self, stored: bool) -> bool {
        self.apply(stored) != stored
    }
}

/// A single faulty bit-cell: its location and behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Row (word address) of the faulty cell.
    pub row: usize,
    /// Column (bit position within the word, 0 = LSB) of the faulty cell.
    pub col: usize,
    /// Behaviour of the faulty cell.
    pub kind: FaultKind,
}

impl Fault {
    /// Creates a fault at `(row, col)` with the given behaviour.
    #[must_use]
    pub fn new(row: usize, col: usize, kind: FaultKind) -> Self {
        Self { row, col, kind }
    }

    /// Convenience constructor for a stuck-at-zero fault.
    #[must_use]
    pub fn stuck_at_zero(row: usize, col: usize) -> Self {
        Self::new(row, col, FaultKind::StuckAtZero)
    }

    /// Convenience constructor for a stuck-at-one fault.
    #[must_use]
    pub fn stuck_at_one(row: usize, col: usize) -> Self {
        Self::new(row, col, FaultKind::StuckAtOne)
    }

    /// Convenience constructor for a bit-flip fault.
    #[must_use]
    pub fn bit_flip(row: usize, col: usize) -> Self {
        Self::new(row, col, FaultKind::BitFlip)
    }
}

/// The set of faulty bit-cells of one manufactured die.
///
/// At most one fault is recorded per cell; inserting a second fault at the
/// same `(row, col)` replaces the previous one (the physical cell has exactly
/// one behaviour).
///
/// # Flat storage layout
///
/// Faults live in one flat `Vec<Fault>` kept sorted by `(row, col)` — a
/// CSR-style layout without an explicit offset array, since per-die fault
/// counts are tiny (tens to hundreds). Row lookups are two binary searches
/// ([`slice::partition_point`]) yielding a contiguous
/// [`FaultMap::row_faults`] slice, and [`FaultMap::rows_with_faults`] walks
/// the groups in one pass. Compared to the previous
/// `BTreeMap<usize, BTreeMap<usize, FaultKind>>` this removes all per-node
/// heap allocation and pointer chasing from the Monte-Carlo hot loop, and
/// [`FaultMap::clear`] lets a scratch map be refilled die after die with no
/// steady-state allocation at all (see `DieScratch`).
///
/// Inserts shift the tail of the vector (`O(n)` worst case), which is far
/// cheaper at campaign fault counts than the pointer-chased alternative —
/// and backends insert in mostly ascending index order anyway.
///
/// # Example
///
/// ```
/// use faultmit_memsim::{Fault, FaultKind, FaultMap, MemoryConfig};
///
/// # fn main() -> Result<(), faultmit_memsim::MemError> {
/// let config = MemoryConfig::new(16, 32)?;
/// let mut map = FaultMap::new(config);
/// map.insert(Fault::bit_flip(3, 31))?;
/// map.insert(Fault::stuck_at_one(7, 0))?;
///
/// assert_eq!(map.fault_count(), 2);
/// assert_eq!(map.faulty_columns(3), vec![31]);
/// assert!(map.row_has_fault(7));
/// assert!(!map.row_has_fault(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    config: MemoryConfig,
    /// All faults, sorted by `(row, col)` — the flat CSR-style store.
    faults: Vec<Fault>,
}

impl FaultMap {
    /// Creates an empty fault map for the given geometry.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            config,
            faults: Vec::new(),
        }
    }

    /// Geometry this fault map was built for.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Position of `(row, col)` in the sorted store: `Ok` when present,
    /// `Err` with the insertion point otherwise.
    fn position(&self, row: usize, col: usize) -> Result<usize, usize> {
        self.faults
            .binary_search_by(|f| (f.row, f.col).cmp(&(row, col)))
    }

    /// The contiguous index range holding the faults of `row`.
    fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        let start = self.faults.partition_point(|f| f.row < row);
        let end = start + self.faults[start..].partition_point(|f| f.row == row);
        start..end
    }

    /// Inserts (or replaces) a fault.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`] or [`MemError::ColumnOutOfRange`]
    /// if the location is outside the array.
    pub fn insert(&mut self, fault: Fault) -> Result<(), MemError> {
        self.config.check_row(fault.row)?;
        self.config.check_col(fault.col)?;
        match self.position(fault.row, fault.col) {
            Ok(index) => self.faults[index] = fault,
            Err(index) => self.faults.insert(index, fault),
        }
        Ok(())
    }

    /// Appends a fault without restoring the sort invariant — the bulk-load
    /// fast path for samplers that already guarantee distinct cells. Every
    /// batch of `push_unsorted` calls must be followed by
    /// [`restore_sorted_order`](Self::restore_sorted_order) before the map
    /// is queried (a per-fault sorted insert would make bulk generation
    /// quadratic in the fault count).
    pub(crate) fn push_unsorted(&mut self, fault: Fault) -> Result<(), MemError> {
        self.config.check_row(fault.row)?;
        self.config.check_col(fault.col)?;
        self.faults.push(fault);
        Ok(())
    }

    /// Restores the `(row, col)` sort invariant after a `push_unsorted`
    /// batch. Cells are distinct by the caller's contract, so an unstable
    /// sort is exact.
    pub(crate) fn restore_sorted_order(&mut self) {
        self.faults.sort_unstable_by_key(|f| (f.row, f.col));
    }

    /// Removes the fault at `(row, col)`, returning its kind if present.
    pub fn remove(&mut self, row: usize, col: usize) -> Option<FaultKind> {
        match self.position(row, col) {
            Ok(index) => Some(self.faults.remove(index).kind),
            Err(_) => None,
        }
    }

    /// Removes every fault while keeping the allocated capacity — the reset
    /// that lets one scratch map serve an entire campaign without
    /// steady-state allocation.
    pub fn clear(&mut self) {
        self.faults.clear();
    }

    /// Total number of faulty cells (`N_failures` in the paper).
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the die has no faulty cell.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault affecting cell `(row, col)`, if any.
    #[must_use]
    pub fn fault_at(&self, row: usize, col: usize) -> Option<FaultKind> {
        self.position(row, col)
            .ok()
            .map(|index| self.faults[index].kind)
    }

    /// `true` when the given row contains at least one faulty cell.
    #[must_use]
    pub fn row_has_fault(&self, row: usize) -> bool {
        !self.row_faults(row).is_empty()
    }

    /// Number of rows that contain at least one faulty cell.
    #[must_use]
    pub fn faulty_row_count(&self) -> usize {
        self.rows_with_faults().count()
    }

    /// The faults of `row` as a contiguous slice, sorted by column — the
    /// zero-copy row view sparse evaluation kernels consume (see
    /// `MitigationScheme::observe_sparse` in `faultmit-core`).
    #[must_use]
    pub fn row_faults(&self, row: usize) -> &[Fault] {
        &self.faults[self.row_range(row)]
    }

    /// Faulty bit positions of `row`, sorted ascending (LSB first).
    ///
    /// Allocates; hot paths should prefer [`FaultMap::row_faults`].
    #[must_use]
    pub fn faulty_columns(&self, row: usize) -> Vec<usize> {
        self.row_faults(row).iter().map(|f| f.col).collect()
    }

    /// Highest faulty bit position of `row`, if any.
    ///
    /// This is the quantity that determines the worst-case error magnitude of
    /// an unprotected word (`2^b` for bit position `b`).
    #[must_use]
    pub fn highest_faulty_column(&self, row: usize) -> Option<usize> {
        self.row_faults(row).last().map(|f| f.col)
    }

    /// Iterates over all faults in deterministic (row, column) order.
    pub fn iter(&self) -> impl Iterator<Item = Fault> + '_ {
        self.faults.iter().copied()
    }

    /// Iterates over rows that contain faults, in ascending row order.
    pub fn faulty_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows_with_faults().map(|(row, _)| row)
    }

    /// Iterates over `(row, row fault slice)` groups in ascending row order
    /// — one linear pass over the flat store, the event-driven walk the
    /// sparse MSE kernels are built on.
    pub fn rows_with_faults(&self) -> impl Iterator<Item = (usize, &[Fault])> + '_ {
        RowGroups {
            faults: &self.faults,
        }
    }

    /// Number of faults per row as a dense vector of length `rows()`.
    #[must_use]
    pub fn faults_per_row(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.rows()];
        for fault in &self.faults {
            counts[fault.row] += 1;
        }
        counts
    }

    /// Maximum number of faults found in any single row.
    #[must_use]
    pub fn max_faults_per_row(&self) -> usize {
        self.rows_with_faults()
            .map(|(_, faults)| faults.len())
            .max()
            .unwrap_or(0)
    }

    /// Heap capacity (in faults) of the flat store — the quantity the
    /// zero-allocation regression tests watch across scratch reuse.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.faults.capacity()
    }

    /// Re-draws the kind of every stored fault in `(row, col)` order while
    /// keeping positions — the in-place twin of the SRAM backend's legacy
    /// "place with the default law, then re-kind in map order" protocol.
    pub(crate) fn rekind_in_order(&mut self, mut kind: impl FnMut() -> FaultKind) {
        for fault in &mut self.faults {
            fault.kind = kind();
        }
    }

    /// Builds a fault map from an iterator of faults.
    ///
    /// # Errors
    ///
    /// Propagates the first out-of-range location encountered.
    pub fn from_faults<I>(config: MemoryConfig, faults: I) -> Result<Self, MemError>
    where
        I: IntoIterator<Item = Fault>,
    {
        let mut map = Self::new(config);
        for fault in faults {
            map.insert(fault)?;
        }
        Ok(map)
    }
}

impl Extend<Fault> for FaultMap {
    /// Extends the map, silently skipping out-of-range faults.
    ///
    /// Use [`FaultMap::insert`] directly when out-of-range locations should be
    /// treated as errors.
    fn extend<I: IntoIterator<Item = Fault>>(&mut self, iter: I) {
        for fault in iter {
            let _ = self.insert(fault);
        }
    }
}

/// Group-by-row iterator over the flat sorted fault store: yields one
/// `(row, slice)` pair per faulty row, in ascending row order, without
/// allocating.
struct RowGroups<'a> {
    faults: &'a [Fault],
}

impl RowGroups<'_> {
    /// Linear probes per group before switching to binary search. Groups of
    /// one or two faults (the overwhelmingly common case at campaign fault
    /// densities) never pay the search setup; fault-heavy rows — e.g. the
    /// stuck-at fig9 configs, where a single row can hold a large share of
    /// the die's faults — find their boundary in `O(log n)` instead of
    /// walking every fault of the group.
    const LINEAR_PROBES: usize = 8;

    /// Length of the leading row group, found by an exhaustive linear scan —
    /// the reference the equivalence test pins the hybrid walk against.
    #[cfg(test)]
    fn group_len_linear(faults: &[Fault], row: usize) -> usize {
        let mut len = 1;
        while len < faults.len() && faults[len].row == row {
            len += 1;
        }
        len
    }

    /// Length of the leading row group, found by [`slice::partition_point`]
    /// after `probed` elements are already known to belong to it.
    fn group_len_binary(faults: &[Fault], row: usize, probed: usize) -> usize {
        probed + faults[probed..].partition_point(|f| f.row == row)
    }
}

impl<'a> Iterator for RowGroups<'a> {
    type Item = (usize, &'a [Fault]);

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.faults.first()?;
        let row = first.row;
        // Hybrid probe: scan linearly first — groups are tiny (usually one
        // fault), so this walks each fault once across the whole iteration —
        // and fall back to a partition_point binary search for the rare
        // fault-heavy rows whose group outruns the probe window.
        let mut len = 1;
        let probe_limit = Self::LINEAR_PROBES.min(self.faults.len());
        while len < probe_limit && self.faults[len].row == row {
            len += 1;
        }
        if len == Self::LINEAR_PROBES && len < self.faults.len() && self.faults[len].row == row {
            len = Self::group_len_binary(self.faults, row, len);
        }
        let (group, rest) = self.faults.split_at(len);
        self.faults = rest;
        Some((row, group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MemoryConfig {
        MemoryConfig::new(8, 32).unwrap()
    }

    #[test]
    fn fault_kind_apply_matches_semantics() {
        assert!(!FaultKind::StuckAtZero.apply(true));
        assert!(!FaultKind::StuckAtZero.apply(false));
        assert!(FaultKind::StuckAtOne.apply(true));
        assert!(FaultKind::StuckAtOne.apply(false));
        assert!(!FaultKind::BitFlip.apply(true));
        assert!(FaultKind::BitFlip.apply(false));
    }

    #[test]
    fn fault_kind_corrupts_only_when_observable() {
        // A stuck-at-zero cell storing 0 is not observably corrupt.
        assert!(!FaultKind::StuckAtZero.corrupts(false));
        assert!(FaultKind::StuckAtZero.corrupts(true));
        assert!(FaultKind::StuckAtOne.corrupts(false));
        assert!(!FaultKind::StuckAtOne.corrupts(true));
        // A flipping cell always corrupts.
        assert!(FaultKind::BitFlip.corrupts(false));
        assert!(FaultKind::BitFlip.corrupts(true));
    }

    #[test]
    fn insert_and_query() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::stuck_at_one(2, 5)).unwrap();
        map.insert(Fault::bit_flip(2, 31)).unwrap();
        map.insert(Fault::stuck_at_zero(7, 0)).unwrap();

        assert_eq!(map.fault_count(), 3);
        assert_eq!(map.faulty_row_count(), 2);
        assert_eq!(map.fault_at(2, 5), Some(FaultKind::StuckAtOne));
        assert_eq!(map.fault_at(2, 6), None);
        assert_eq!(map.faulty_columns(2), vec![5, 31]);
        assert_eq!(map.highest_faulty_column(2), Some(31));
        assert_eq!(map.highest_faulty_column(0), None);
    }

    #[test]
    fn inserting_same_cell_twice_replaces() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::stuck_at_one(1, 1)).unwrap();
        map.insert(Fault::stuck_at_zero(1, 1)).unwrap();
        assert_eq!(map.fault_count(), 1);
        assert_eq!(map.fault_at(1, 1), Some(FaultKind::StuckAtZero));
    }

    #[test]
    fn remove_clears_empty_rows() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::bit_flip(3, 4)).unwrap();
        assert_eq!(map.remove(3, 4), Some(FaultKind::BitFlip));
        assert_eq!(map.remove(3, 4), None);
        assert!(map.is_empty());
        assert!(!map.row_has_fault(3));
    }

    #[test]
    fn out_of_range_insert_is_rejected() {
        let mut map = FaultMap::new(config());
        assert!(map.insert(Fault::bit_flip(8, 0)).is_err());
        assert!(map.insert(Fault::bit_flip(0, 32)).is_err());
        assert!(map.is_empty());
    }

    #[test]
    fn iteration_is_deterministic_and_sorted() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::bit_flip(5, 1)).unwrap();
        map.insert(Fault::bit_flip(1, 30)).unwrap();
        map.insert(Fault::bit_flip(1, 2)).unwrap();

        let collected: Vec<(usize, usize)> = map.iter().map(|f| (f.row, f.col)).collect();
        assert_eq!(collected, vec![(1, 2), (1, 30), (5, 1)]);
    }

    #[test]
    fn faults_per_row_is_dense() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::bit_flip(1, 2)).unwrap();
        map.insert(Fault::bit_flip(1, 3)).unwrap();
        map.insert(Fault::bit_flip(6, 0)).unwrap();
        let per_row = map.faults_per_row();
        assert_eq!(per_row.len(), 8);
        assert_eq!(per_row[1], 2);
        assert_eq!(per_row[6], 1);
        assert_eq!(per_row.iter().sum::<usize>(), 3);
        assert_eq!(map.max_faults_per_row(), 2);
    }

    #[test]
    fn row_faults_returns_sorted_contiguous_slices() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::bit_flip(5, 1)).unwrap();
        map.insert(Fault::stuck_at_one(1, 30)).unwrap();
        map.insert(Fault::stuck_at_zero(1, 2)).unwrap();

        assert_eq!(
            map.row_faults(1),
            &[Fault::stuck_at_zero(1, 2), Fault::stuck_at_one(1, 30)]
        );
        assert_eq!(map.row_faults(5), &[Fault::bit_flip(5, 1)]);
        assert!(map.row_faults(0).is_empty());
        assert!(map.row_faults(7).is_empty());
    }

    #[test]
    fn rows_with_faults_walks_groups_in_ascending_order() {
        let mut map = FaultMap::new(config());
        map.insert(Fault::bit_flip(6, 0)).unwrap();
        map.insert(Fault::bit_flip(2, 9)).unwrap();
        map.insert(Fault::bit_flip(2, 3)).unwrap();
        map.insert(Fault::bit_flip(0, 31)).unwrap();

        let groups: Vec<(usize, usize)> = map
            .rows_with_faults()
            .map(|(row, faults)| (row, faults.len()))
            .collect();
        assert_eq!(groups, vec![(0, 1), (2, 2), (6, 1)]);
        let rows: Vec<usize> = map.faulty_rows().collect();
        assert_eq!(rows, vec![0, 2, 6]);
    }

    #[test]
    fn row_group_cursor_and_binary_search_agree_on_fault_heavy_dies() {
        // Pin the hybrid iterator's two boundary finders against each other
        // across group shapes from singletons to full fault-heavy rows (the
        // stuck-at fig9 regime that motivates the partition_point path).
        let wide = MemoryConfig::new(64, 32).unwrap();
        let mut state = 0x9E37_79B9u64;
        let mut next_state = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for density in [1usize, 2, 7, 8, 9, 20, 32] {
            let mut map = FaultMap::new(wide);
            for _ in 0..200 {
                let row = (next_state() as usize) % 64;
                for _ in 0..density {
                    let col = (next_state() as usize) % 32;
                    map.insert(Fault::bit_flip(row, col)).unwrap();
                }
            }
            // Walk the flat store group by group; at every cursor position
            // both finders must report the same boundary, and the iterator
            // itself must match the exhaustive linear reference.
            let mut rest: &[Fault] = &map.faults;
            let mut reference = Vec::new();
            while let Some(first) = rest.first() {
                let linear = RowGroups::group_len_linear(rest, first.row);
                for probed in 1..=linear.min(RowGroups::LINEAR_PROBES) {
                    assert_eq!(
                        RowGroups::group_len_binary(rest, first.row, probed),
                        linear,
                        "density {density}: cursor scan and partition_point disagree"
                    );
                }
                reference.push((first.row, linear));
                rest = &rest[linear..];
            }
            let hybrid: Vec<(usize, usize)> = map
                .rows_with_faults()
                .map(|(row, faults)| (row, faults.len()))
                .collect();
            assert_eq!(hybrid, reference, "density {density}");
        }
    }

    #[test]
    fn clear_keeps_capacity_for_scratch_reuse() {
        let mut map = FaultMap::new(config());
        for col in 0..16 {
            map.insert(Fault::bit_flip(3, col)).unwrap();
        }
        let capacity = map.capacity();
        assert!(capacity >= 16);
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.capacity(), capacity);
        // Refilling up to the old watermark must not reallocate.
        for col in 0..16 {
            map.insert(Fault::stuck_at_one(2, col)).unwrap();
        }
        assert_eq!(map.capacity(), capacity);
    }

    #[test]
    fn from_faults_builds_equivalent_map() {
        let faults = vec![Fault::bit_flip(0, 0), Fault::stuck_at_one(4, 9)];
        let map = FaultMap::from_faults(config(), faults.clone()).unwrap();
        assert_eq!(map.fault_count(), 2);
        let rebuilt: Vec<Fault> = map.iter().collect();
        assert_eq!(rebuilt.len(), 2);
        assert!(rebuilt.contains(&faults[0]));
        assert!(rebuilt.contains(&faults[1]));
    }
}
