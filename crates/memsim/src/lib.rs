//! Functional model of an unreliable SRAM data memory.
//!
//! This crate provides the memory substrate used by the DAC'15 bit-shuffling
//! reproduction:
//!
//! * [`SramArray`] — an `R × W` functional SRAM model with word-granular
//!   access and persistent, variation-induced bit-cell faults applied on read.
//! * [`FaultMap`] / [`Fault`] — the set of faulty bit-cells of one
//!   manufactured die (location + behaviour).
//! * [`CellFailureModel`] — an analytical Gaussian noise-margin model of the
//!   bit-cell failure probability `P_cell(V_DD)` replacing the paper's
//!   SPICE/importance-sampling flow (Fig. 2).
//! * [`backend`] — the [`FaultBackend`] abstraction over memory
//!   technologies: [`SramVddBackend`] (the paper's model, bit-identical to
//!   the historical pipeline), [`DramRetentionBackend`] (exponential
//!   weak-cell retention times, spatially clustered faults) and
//!   [`MlcNvmBackend`] (drift-broadened level margins, level-dependent
//!   asymmetric bit errors). See the module docs for a worked
//!   "add your own backend" example.
//! * [`image`] — data images: [`DataImage`] word sources and the
//!   [`ImageSpec`] catalogue (zeros, ones, uniform-random, sparse,
//!   application matrices) against which data-aware campaigns evaluate
//!   stuck-at faults relative to the stored word.
//! * [`DieSampler`] and [`montecarlo`] — Monte-Carlo generation of dies and
//!   fault maps following the binomial failure-count distribution of Eq. (4).
//! * [`StreamSeeder`] / [`DieBatch`] — deterministic stream-splitting of a
//!   campaign seed into per-sample RNGs and batched die generation, the
//!   sampling substrate of the parallel fault-injection pipeline
//!   (`faultmit-sim`): fault maps depend only on `(campaign seed, sample
//!   index)`, never on which worker thread draws them.
//! * [`MarchBist`] — a March C- built-in self test that locates faulty cells,
//!   producing the per-row report that seeds the bit-shuffling FM-LUT.
//! * [`dieblock`] — transposed (bit-sliced) die blocks, generic over the
//!   sealed [`Lane`] width: up to `L::LANES` planned samples packed into
//!   lanes ([`DieBlock`], [`LaneCell`], [`ResidualLanes`]) — 64 dies per
//!   `u64` or 256 per [`W256`] — for the lane-parallel evaluation kernels,
//!   generated from the same per-sample RNG streams as the scalar paths.
//! * [`widegen`] — lane-interleaved die-block *generation*: [`WIDE_LANES`]
//!   independent per-sample xoshiro256++ streams advanced as SoA array ops
//!   ([`rand::wide::WideXoshiro`]), lane-masked Floyd sampling and kind
//!   draws, emitting straight into the block event buffer. Backends opt in
//!   via [`FaultBackend::wide_generation`] ([`WideGenSpec`]); each lane's
//!   stream stays bit-for-bit the one [`StreamSeeder::rng_for_sample`]
//!   produces, so the wide and scalar generators are interchangeable.
//!
//! # Example
//!
//! ```
//! use faultmit_memsim::{MemoryConfig, SramArray, Fault, FaultKind, FaultMap};
//!
//! # fn main() -> Result<(), faultmit_memsim::MemError> {
//! let config = MemoryConfig::new(4, 32)?;
//! let mut faults = FaultMap::new(config);
//! faults.insert(Fault::new(0, 31, FaultKind::StuckAtOne))?;
//!
//! let mut array = SramArray::with_faults(config, faults);
//! array.write(0, 0)?;
//! // The stuck-at-one cell corrupts the MSB of row 0.
//! assert_eq!(array.read(0)?, 1 << 31);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod array;
pub mod backend;
pub mod bist;
pub mod config;
pub mod dieblock;
pub mod error;
pub mod failure_model;
pub mod fault;
pub mod image;
pub mod montecarlo;
pub mod redundancy;
pub mod scratch;
pub mod seeder;
pub mod stats;
pub mod voltage;
pub mod widegen;

pub use array::{corrupt_word, SramArray};
pub use backend::{
    Backend, BackendKind, DramRetentionBackend, FaultBackend, FaultKindLaw, MlcNvmBackend,
    OperatingPoint, SramVddBackend,
};
pub use bist::{BistReport, MarchBist, RowFaultReport};
pub use config::MemoryConfig;
pub use dieblock::{BlockRow, DieBlock, Lane, LaneCell, ResidualLanes, W256};
pub use error::MemError;
pub use failure_model::{CellFailureModel, FailureModelBuilder};
pub use fault::{Fault, FaultKind, FaultMap};
pub use image::{AppImage, DataImage, ImageSpec, WordImage};
pub use montecarlo::{DieSampler, FailureCountDistribution, FaultMapSampler};
pub use redundancy::{repair_yield, spares_for_full_repair, RowRepair};
pub use scratch::{BlockScratch, DieScratch};
pub use seeder::{DieBatch, PlannedSample, StreamSeeder};
pub use voltage::{VddSweep, VoltageScaledDie};
pub use widegen::{WideGenSpec, WIDE_LANES};
