//! Row-redundancy repair — the classical yield-enhancement baseline the paper
//! argues against (§2).
//!
//! Memories traditionally tolerate manufacturing defects by adding spare rows
//! (and/or columns) and remapping faulty addresses to spares at test time.
//! The paper points out that as `P_cell` rises under voltage scaling, the
//! number of spares needed to repair *every* faulty row "increases
//! tremendously", making redundancy economically unattractive exactly where
//! approximate schemes shine. This module provides that baseline so the
//! trade-off can be reproduced: how many spare rows a die needs for a full
//! repair, the repaired fault map, and the repair yield of a population.

use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::{Fault, FaultMap};
use std::collections::BTreeMap;

/// A row-redundancy repair plan for one die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowRepair {
    config: MemoryConfig,
    spare_rows: usize,
    /// Faulty row → spare index assignments, in ascending row order.
    remapped: BTreeMap<usize, usize>,
    /// Faulty rows that could not be remapped because the spares ran out.
    unrepaired: Vec<usize>,
}

impl RowRepair {
    /// Plans a repair of `faults` using at most `spare_rows` spare rows.
    ///
    /// Faulty rows are remapped greedily in ascending row order, which is
    /// optimal for row sparing (every faulty row costs exactly one spare).
    /// Spare rows themselves are assumed fault-free, as in the classical
    /// analysis; correlated spare failures only make redundancy look worse.
    #[must_use]
    pub fn plan(faults: &FaultMap, spare_rows: usize) -> Self {
        let mut remapped = BTreeMap::new();
        let mut unrepaired = Vec::new();
        for (index, row) in faults.faulty_rows().enumerate() {
            if index < spare_rows {
                remapped.insert(row, index);
            } else {
                unrepaired.push(row);
            }
        }
        Self {
            config: faults.config(),
            spare_rows,
            remapped,
            unrepaired,
        }
    }

    /// Number of spare rows available to the plan.
    #[must_use]
    pub fn spare_rows(&self) -> usize {
        self.spare_rows
    }

    /// Number of spare rows actually consumed.
    #[must_use]
    pub fn spares_used(&self) -> usize {
        self.remapped.len()
    }

    /// `true` when every faulty row was remapped to a spare.
    #[must_use]
    pub fn is_fully_repaired(&self) -> bool {
        self.unrepaired.is_empty()
    }

    /// Faulty rows that remain exposed after the repair.
    #[must_use]
    pub fn unrepaired_rows(&self) -> &[usize] {
        &self.unrepaired
    }

    /// The spare index a row was remapped to, if any.
    #[must_use]
    pub fn spare_for_row(&self, row: usize) -> Option<usize> {
        self.remapped.get(&row).copied()
    }

    /// The fault map seen by the application after the repair: faults in
    /// remapped rows disappear, faults in unrepaired rows remain.
    ///
    /// # Errors
    ///
    /// Never fails for a plan built from a well-formed fault map; the
    /// `Result` mirrors fault-map construction.
    pub fn residual_faults(&self, faults: &FaultMap) -> Result<FaultMap, MemError> {
        let residual: Vec<Fault> = faults
            .iter()
            .filter(|fault| !self.remapped.contains_key(&fault.row))
            .collect();
        FaultMap::from_faults(self.config, residual)
    }
}

/// Number of spare rows required to fully repair a die (= its faulty-row
/// count), the quantity whose growth with `P_cell` makes redundancy
/// uneconomical.
#[must_use]
pub fn spares_for_full_repair(faults: &FaultMap) -> usize {
    faults.faulty_row_count()
}

/// Fraction of dies in `dies` that a given spare-row budget fully repairs
/// (the repair yield of the redundancy scheme).
#[must_use]
pub fn repair_yield(dies: &[FaultMap], spare_rows: usize) -> f64 {
    if dies.is_empty() {
        return 0.0;
    }
    let repaired = dies
        .iter()
        .filter(|die| die.faulty_row_count() <= spare_rows)
        .count();
    repaired as f64 / dies.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::DieSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> MemoryConfig {
        MemoryConfig::new(64, 32).unwrap()
    }

    fn map(faults: &[Fault]) -> FaultMap {
        FaultMap::from_faults(config(), faults.iter().copied()).unwrap()
    }

    #[test]
    fn fault_free_die_needs_no_spares() {
        let faults = map(&[]);
        let plan = RowRepair::plan(&faults, 0);
        assert!(plan.is_fully_repaired());
        assert_eq!(plan.spares_used(), 0);
        assert_eq!(spares_for_full_repair(&faults), 0);
    }

    #[test]
    fn each_faulty_row_consumes_one_spare() {
        let faults = map(&[
            Fault::bit_flip(3, 0),
            Fault::bit_flip(3, 31), // same row: still one spare
            Fault::bit_flip(9, 5),
            Fault::bit_flip(40, 7),
        ]);
        assert_eq!(spares_for_full_repair(&faults), 3);
        let plan = RowRepair::plan(&faults, 3);
        assert!(plan.is_fully_repaired());
        assert_eq!(plan.spares_used(), 3);
        assert_eq!(plan.spare_for_row(3), Some(0));
        assert_eq!(plan.spare_for_row(9), Some(1));
        assert_eq!(plan.spare_for_row(40), Some(2));
        assert_eq!(plan.spare_for_row(10), None);
    }

    #[test]
    fn insufficient_spares_leave_residual_faults() {
        let faults = map(&[
            Fault::bit_flip(1, 31),
            Fault::bit_flip(5, 30),
            Fault::bit_flip(60, 29),
        ]);
        let plan = RowRepair::plan(&faults, 2);
        assert!(!plan.is_fully_repaired());
        assert_eq!(plan.unrepaired_rows(), &[60]);
        let residual = plan.residual_faults(&faults).unwrap();
        assert_eq!(residual.fault_count(), 1);
        assert!(residual.row_has_fault(60));
        assert!(!residual.row_has_fault(1));
    }

    #[test]
    fn full_repair_leaves_an_empty_residual_map() {
        let faults = map(&[Fault::bit_flip(8, 8), Fault::stuck_at_one(11, 0)]);
        let plan = RowRepair::plan(&faults, 10);
        let residual = plan.residual_faults(&faults).unwrap();
        assert!(residual.is_empty());
        assert_eq!(plan.spare_rows(), 10);
    }

    #[test]
    fn repair_yield_grows_with_spare_budget_and_spare_demand_with_p_cell() {
        let mut rng = StdRng::seed_from_u64(3);
        let low = DieSampler::new(config(), 1e-3).unwrap();
        let high = DieSampler::new(config(), 2e-2).unwrap();
        let low_dies = low.sample_dies(&mut rng, 200).unwrap();
        let high_dies = high.sample_dies(&mut rng, 200).unwrap();

        // Yield is monotone in the spare budget.
        let mut previous = 0.0;
        for spares in 0..8 {
            let y = repair_yield(&low_dies, spares);
            assert!(y >= previous);
            previous = y;
        }
        // A higher cell failure probability needs more spares for the same
        // yield — the paper's economic argument against redundancy.
        let spares_needed = |dies: &[FaultMap]| -> usize {
            (0..=64)
                .find(|&s| repair_yield(dies, s) >= 0.95)
                .unwrap_or(64)
        };
        assert!(spares_needed(&high_dies) > spares_needed(&low_dies));
        assert_eq!(repair_yield(&[], 4), 0.0);
    }
}
