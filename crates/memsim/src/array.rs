//! Functional `R × W` SRAM array with persistent bit-cell faults.

use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::{FaultKind, FaultMap};

/// Functional model of a word-organised SRAM array.
///
/// Data is stored exactly as written; faults are applied on *read*, modelling
/// bit-cells that cannot reliably hold or deliver their content. This mirrors
/// the paper's functional 16 KB memory model used for fault injection during
/// the application-quality study (§5.2).
///
/// # Example
///
/// ```
/// use faultmit_memsim::{Fault, FaultMap, MemoryConfig, SramArray};
///
/// # fn main() -> Result<(), faultmit_memsim::MemError> {
/// let config = MemoryConfig::new(8, 32)?;
/// let mut faults = FaultMap::new(config);
/// faults.insert(Fault::bit_flip(2, 31))?;
///
/// let mut mem = SramArray::with_faults(config, faults);
/// mem.write(2, 0x0000_1234)?;
/// // The MSB cell of row 2 flips on read: huge error magnitude.
/// assert_eq!(mem.read(2)?, 0x8000_1234);
/// // Fault-free rows are unaffected.
/// mem.write(3, 0x0000_1234)?;
/// assert_eq!(mem.read(3)?, 0x0000_1234);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramArray {
    config: MemoryConfig,
    words: Vec<u64>,
    faults: FaultMap,
    reads: u64,
    writes: u64,
}

impl SramArray {
    /// Creates a fault-free array with all cells initialised to zero.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self::with_faults(config, FaultMap::new(config))
    }

    /// Creates an array with the given fault map.
    ///
    /// The fault map's geometry is trusted to match `config`; use
    /// [`SramArray::try_with_faults`] for untrusted maps.
    #[must_use]
    pub fn with_faults(config: MemoryConfig, faults: FaultMap) -> Self {
        Self {
            config,
            words: vec![0; config.rows()],
            faults,
            reads: 0,
            writes: 0,
        }
    }

    /// Creates an array with the given fault map, checking geometries match.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::GeometryMismatch`] when the fault map was built for
    /// a different geometry.
    pub fn try_with_faults(config: MemoryConfig, faults: FaultMap) -> Result<Self, MemError> {
        if faults.config() != config {
            return Err(MemError::GeometryMismatch {
                reason: format!(
                    "fault map is for {}x{} but array is {}x{}",
                    faults.config().rows(),
                    faults.config().word_bits(),
                    config.rows(),
                    config.word_bits()
                ),
            });
        }
        Ok(Self::with_faults(config, faults))
    }

    /// Geometry of the array.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// The fault map of this die.
    #[must_use]
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Replaces the fault map (e.g. when scaling V_DD exposes more faults).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::GeometryMismatch`] when the new map was built for a
    /// different geometry.
    pub fn set_faults(&mut self, faults: FaultMap) -> Result<(), MemError> {
        if faults.config() != self.config {
            return Err(MemError::GeometryMismatch {
                reason: "fault map geometry differs from array geometry".to_owned(),
            });
        }
        self.faults = faults;
        Ok(())
    }

    /// Writes `value` to `row`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`] or [`MemError::ValueTooWide`].
    pub fn write(&mut self, row: usize, value: u64) -> Result<(), MemError> {
        self.config.check_row(row)?;
        self.config.check_value(value)?;
        self.words[row] = value;
        self.writes += 1;
        Ok(())
    }

    /// Reads the word at `row`, applying any cell faults.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`].
    pub fn read(&mut self, row: usize) -> Result<u64, MemError> {
        self.config.check_row(row)?;
        self.reads += 1;
        Ok(self.observe(row))
    }

    /// Reads the word at `row` without counting the access (for analysis).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`].
    pub fn peek(&self, row: usize) -> Result<u64, MemError> {
        self.config.check_row(row)?;
        Ok(self.observe(row))
    }

    /// The value most recently written to `row`, bypassing faults.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`].
    pub fn stored(&self, row: usize) -> Result<u64, MemError> {
        self.config.check_row(row)?;
        Ok(self.words[row])
    }

    /// Number of reads performed so far.
    #[must_use]
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of writes performed so far.
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Clears all stored data (faults are retained — they are physical).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Bit-error word for `row`: a mask of the bit positions whose read value
    /// currently differs from the stored value.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`].
    pub fn error_mask(&self, row: usize) -> Result<u64, MemError> {
        self.config.check_row(row)?;
        Ok(self.observe(row) ^ self.words[row])
    }

    fn observe(&self, row: usize) -> u64 {
        let stored = self.words[row];
        if !self.faults.row_has_fault(row) {
            return stored;
        }
        let mut observed = stored;
        for col in self.faults.faulty_columns(row) {
            // The per-row fault list only contains valid columns.
            let kind = self
                .faults
                .fault_at(row, col)
                .expect("column reported faulty must have a fault");
            let stored_bit = (stored >> col) & 1 == 1;
            let read_bit = kind.apply(stored_bit);
            if read_bit {
                observed |= 1 << col;
            } else {
                observed &= !(1 << col);
            }
        }
        observed & self.config.word_mask()
    }
}

/// Applies a fault of the given kind to bit `col` of `value`, returning the
/// corrupted word.
///
/// This is a convenience used by analyses that corrupt words without
/// materialising a full [`SramArray`].
#[must_use]
pub fn corrupt_word(value: u64, col: usize, kind: FaultKind) -> u64 {
    let stored_bit = (value >> col) & 1 == 1;
    let read_bit = kind.apply(stored_bit);
    if read_bit {
        value | (1 << col)
    } else {
        value & !(1 << col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;

    fn small_config() -> MemoryConfig {
        MemoryConfig::new(4, 16).unwrap()
    }

    #[test]
    fn fault_free_array_reads_back_written_data() {
        let mut mem = SramArray::new(small_config());
        for row in 0..4 {
            mem.write(row, (row as u64) * 3 + 1).unwrap();
        }
        for row in 0..4 {
            assert_eq!(mem.read(row).unwrap(), (row as u64) * 3 + 1);
        }
        assert_eq!(mem.read_count(), 4);
        assert_eq!(mem.write_count(), 4);
    }

    #[test]
    fn stuck_at_faults_force_bits() {
        let config = small_config();
        let mut faults = FaultMap::new(config);
        faults.insert(Fault::stuck_at_one(0, 3)).unwrap();
        faults.insert(Fault::stuck_at_zero(1, 0)).unwrap();
        let mut mem = SramArray::with_faults(config, faults);

        mem.write(0, 0).unwrap();
        assert_eq!(mem.read(0).unwrap(), 0b1000);

        mem.write(1, 0b1).unwrap();
        assert_eq!(mem.read(1).unwrap(), 0);
    }

    #[test]
    fn bit_flip_faults_always_corrupt() {
        let config = small_config();
        let mut faults = FaultMap::new(config);
        faults.insert(Fault::bit_flip(2, 15)).unwrap();
        let mut mem = SramArray::with_faults(config, faults);

        mem.write(2, 0).unwrap();
        assert_eq!(mem.read(2).unwrap(), 1 << 15);
        mem.write(2, 1 << 15).unwrap();
        assert_eq!(mem.read(2).unwrap(), 0);
    }

    #[test]
    fn stuck_at_faults_may_be_silent() {
        // A stuck-at-one cell storing a 1 causes no observable error.
        let config = small_config();
        let mut faults = FaultMap::new(config);
        faults.insert(Fault::stuck_at_one(0, 7)).unwrap();
        let mut mem = SramArray::with_faults(config, faults);
        mem.write(0, 1 << 7).unwrap();
        assert_eq!(mem.read(0).unwrap(), 1 << 7);
        assert_eq!(mem.error_mask(0).unwrap(), 0);
    }

    #[test]
    fn error_mask_reports_corrupted_positions() {
        let config = small_config();
        let mut faults = FaultMap::new(config);
        faults.insert(Fault::bit_flip(3, 2)).unwrap();
        faults.insert(Fault::bit_flip(3, 9)).unwrap();
        let mut mem = SramArray::with_faults(config, faults);
        mem.write(3, 0).unwrap();
        assert_eq!(mem.error_mask(3).unwrap(), (1 << 2) | (1 << 9));
    }

    #[test]
    fn stored_bypasses_faults_and_peek_does_not_count() {
        let config = small_config();
        let mut faults = FaultMap::new(config);
        faults.insert(Fault::stuck_at_zero(0, 4)).unwrap();
        let mut mem = SramArray::with_faults(config, faults);
        mem.write(0, 0xFF).unwrap();
        assert_eq!(mem.stored(0).unwrap(), 0xFF);
        assert_eq!(mem.peek(0).unwrap(), 0xFF & !(1 << 4));
        assert_eq!(mem.read_count(), 0);
    }

    #[test]
    fn out_of_range_accesses_are_rejected() {
        let mut mem = SramArray::new(small_config());
        assert!(mem.write(4, 0).is_err());
        assert!(mem.read(4).is_err());
        assert!(mem.peek(4).is_err());
        assert!(mem.stored(4).is_err());
        assert!(mem.error_mask(4).is_err());
        assert!(mem.write(0, 0x1_0000).is_err());
    }

    #[test]
    fn geometry_mismatch_is_detected() {
        let config_a = MemoryConfig::new(4, 16).unwrap();
        let config_b = MemoryConfig::new(8, 16).unwrap();
        let map_b = FaultMap::new(config_b);
        assert!(SramArray::try_with_faults(config_a, map_b.clone()).is_err());
        let mut mem = SramArray::new(config_a);
        assert!(mem.set_faults(map_b).is_err());
    }

    #[test]
    fn clear_resets_data_but_keeps_faults() {
        let config = small_config();
        let mut faults = FaultMap::new(config);
        faults.insert(Fault::stuck_at_one(1, 1)).unwrap();
        let mut mem = SramArray::with_faults(config, faults);
        mem.write(1, 0xABC).unwrap();
        mem.clear();
        assert_eq!(mem.stored(1).unwrap(), 0);
        // Fault still present after clear.
        assert_eq!(mem.peek(1).unwrap(), 0b10);
    }

    #[test]
    fn corrupt_word_helper_matches_array_behaviour() {
        for kind in FaultKind::ALL {
            for col in [0usize, 7, 15] {
                for value in [0u64, 0xFFFF, 0x5A5A] {
                    let config = small_config();
                    let mut faults = FaultMap::new(config);
                    faults.insert(Fault::new(0, col, kind)).unwrap();
                    let mut mem = SramArray::with_faults(config, faults);
                    mem.write(0, value & config.word_mask()).unwrap();
                    assert_eq!(
                        mem.read(0).unwrap(),
                        corrupt_word(value & config.word_mask(), col, kind)
                    );
                }
            }
        }
    }
}
