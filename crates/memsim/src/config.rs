//! Memory geometry configuration.

use crate::error::MemError;

/// Maximum supported word width in bits.
///
/// Words are modelled as `u64`, so the simulator supports any width up to 64
/// bits; the paper's evaluation uses 32-bit words.
pub const MAX_WORD_BITS: usize = 64;

/// Geometry of a word-organised SRAM array: `rows × word_bits` bit-cells.
///
/// The paper's quality evaluation uses a 16 KB memory with 32-bit words,
/// available here as [`MemoryConfig::paper_16kb`].
///
/// # Example
///
/// ```
/// use faultmit_memsim::MemoryConfig;
///
/// # fn main() -> Result<(), faultmit_memsim::MemError> {
/// let config = MemoryConfig::new(4096, 32)?;
/// assert_eq!(config.total_cells(), 131_072);
/// assert_eq!(config.capacity_bytes(), 16 * 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryConfig {
    rows: usize,
    word_bits: usize,
}

impl MemoryConfig {
    /// Creates a configuration with `rows` words of `word_bits` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidGeometry`] if `rows` is zero or `word_bits`
    /// is zero or larger than [`MAX_WORD_BITS`].
    pub fn new(rows: usize, word_bits: usize) -> Result<Self, MemError> {
        if rows == 0 {
            return Err(MemError::InvalidGeometry {
                reason: "memory must have at least one row".to_owned(),
            });
        }
        if word_bits == 0 || word_bits > MAX_WORD_BITS {
            return Err(MemError::InvalidGeometry {
                reason: format!("word width must be in 1..={MAX_WORD_BITS}, got {word_bits}"),
            });
        }
        Ok(Self { rows, word_bits })
    }

    /// Creates a configuration from a capacity in bytes and a word width.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidGeometry`] if the capacity is not an exact
    /// multiple of the word size or any derived parameter is invalid.
    pub fn from_capacity(capacity_bytes: usize, word_bits: usize) -> Result<Self, MemError> {
        if word_bits == 0 || !word_bits.is_multiple_of(8) {
            return Err(MemError::InvalidGeometry {
                reason: format!("word width {word_bits} must be a positive multiple of 8"),
            });
        }
        let word_bytes = word_bits / 8;
        if capacity_bytes == 0 || !capacity_bytes.is_multiple_of(word_bytes) {
            return Err(MemError::InvalidGeometry {
                reason: format!(
                    "capacity {capacity_bytes} B is not a multiple of the {word_bytes} B word size"
                ),
            });
        }
        Self::new(capacity_bytes / word_bytes, word_bits)
    }

    /// The 16 KB, 32-bit-word memory used throughout the paper's evaluation.
    #[must_use]
    pub fn paper_16kb() -> Self {
        Self {
            rows: 16 * 1024 / 4,
            word_bits: 32,
        }
    }

    /// Number of rows (words) in the array.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Word width in bits (`W` in the paper).
    #[must_use]
    pub fn word_bits(&self) -> usize {
        self.word_bits
    }

    /// Total number of bit-cells `M = R × W`.
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.rows * self.word_bits
    }

    /// Capacity in bytes (rounded down for word widths that are not a
    /// multiple of 8).
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.rows * self.word_bits / 8
    }

    /// A mask with the low `word_bits` bits set.
    #[must_use]
    pub fn word_mask(&self) -> u64 {
        if self.word_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.word_bits) - 1
        }
    }

    /// Returns `Ok(())` when `row` addresses a valid word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RowOutOfRange`] otherwise.
    pub fn check_row(&self, row: usize) -> Result<(), MemError> {
        if row < self.rows {
            Ok(())
        } else {
            Err(MemError::RowOutOfRange {
                row,
                rows: self.rows,
            })
        }
    }

    /// Returns `Ok(())` when `col` addresses a valid bit position.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ColumnOutOfRange`] otherwise.
    pub fn check_col(&self, col: usize) -> Result<(), MemError> {
        if col < self.word_bits {
            Ok(())
        } else {
            Err(MemError::ColumnOutOfRange {
                col,
                word_bits: self.word_bits,
            })
        }
    }

    /// Returns `Ok(())` when `value` fits in the word width.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ValueTooWide`] otherwise.
    pub fn check_value(&self, value: u64) -> Result<(), MemError> {
        if value & !self.word_mask() == 0 {
            Ok(())
        } else {
            Err(MemError::ValueTooWide {
                value,
                word_bits: self.word_bits,
            })
        }
    }

    /// Flat cell index of `(row, col)` using row-major order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `row` or `col` are out of range; use
    /// [`MemoryConfig::check_row`]/[`MemoryConfig::check_col`] first for
    /// untrusted input.
    #[must_use]
    pub fn cell_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.word_bits);
        row * self.word_bits + col
    }

    /// Inverse of [`MemoryConfig::cell_index`].
    #[must_use]
    pub fn cell_position(&self, index: usize) -> (usize, usize) {
        (index / self.word_bits, index % self.word_bits)
    }
}

impl Default for MemoryConfig {
    /// Defaults to the paper's 16 KB, 32-bit word memory.
    fn default() -> Self {
        Self::paper_16kb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_memory_has_expected_geometry() {
        let c = MemoryConfig::paper_16kb();
        assert_eq!(c.rows(), 4096);
        assert_eq!(c.word_bits(), 32);
        assert_eq!(c.total_cells(), 131_072);
        assert_eq!(c.capacity_bytes(), 16 * 1024);
    }

    #[test]
    fn rejects_zero_rows_and_bad_widths() {
        assert!(MemoryConfig::new(0, 32).is_err());
        assert!(MemoryConfig::new(16, 0).is_err());
        assert!(MemoryConfig::new(16, 65).is_err());
        assert!(MemoryConfig::new(16, 64).is_ok());
    }

    #[test]
    fn from_capacity_round_trips() {
        let c = MemoryConfig::from_capacity(16 * 1024, 32).unwrap();
        assert_eq!(c, MemoryConfig::paper_16kb());
        assert!(MemoryConfig::from_capacity(10, 32).is_err());
        assert!(MemoryConfig::from_capacity(0, 32).is_err());
        assert!(MemoryConfig::from_capacity(64, 7).is_err());
    }

    #[test]
    fn word_mask_matches_width() {
        assert_eq!(MemoryConfig::new(1, 8).unwrap().word_mask(), 0xFF);
        assert_eq!(MemoryConfig::new(1, 32).unwrap().word_mask(), 0xFFFF_FFFF);
        assert_eq!(MemoryConfig::new(1, 64).unwrap().word_mask(), u64::MAX);
    }

    #[test]
    fn bounds_checks_work() {
        let c = MemoryConfig::new(4, 16).unwrap();
        assert!(c.check_row(3).is_ok());
        assert!(c.check_row(4).is_err());
        assert!(c.check_col(15).is_ok());
        assert!(c.check_col(16).is_err());
        assert!(c.check_value(0xFFFF).is_ok());
        assert!(c.check_value(0x10000).is_err());
    }

    #[test]
    fn cell_index_round_trips() {
        let c = MemoryConfig::new(8, 32).unwrap();
        for row in 0..8 {
            for col in 0..32 {
                let idx = c.cell_index(row, col);
                assert_eq!(c.cell_position(idx), (row, col));
            }
        }
    }

    #[test]
    fn default_is_paper_memory() {
        assert_eq!(MemoryConfig::default(), MemoryConfig::paper_16kb());
    }
}
