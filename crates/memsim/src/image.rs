//! Data images: *what the memory stores* during fault evaluation.
//!
//! The paper's observation (§5.2) — and the premise of the
//! Heterogeneous-Reliability-Memory line of work — is that the impact of a
//! memory fault depends on the application data it corrupts: a stuck-at-0
//! cell under a bit that already stores 0 is harmless, while the same cell
//! under a 1 bit silently flips it. The historical MSE campaigns evaluated
//! an all-zeros background, which makes every fault of the paper's
//! `AlwaysFlip` injection protocol observable but collapses the stuck-at
//! laws ([`crate::backend::FaultKindLaw`]) into "stuck-at-1 hurts,
//! stuck-at-0 never does".
//!
//! A [`DataImage`] is a deterministic source of stored words, one per
//! memory row, that data-aware evaluators read the faulty memory against.
//! [`ImageSpec`] is the campaign-level identity of an image — `Copy`,
//! order-insensitive and CLI-parseable (`--image zeros|ones|random[:seed]|`
//! `sparse[:seed]|wine|madelon|har`) — so campaigns over images shard and
//! merge with the same bit-identity guarantees as every other campaign
//! axis.
//!
//! The application-matrix images ([`AppImage`]) name fixed-point quantised
//! benchmark datasets; their *data generation* lives above this crate (the
//! `faultmit-apps` image module materialises them through
//! [`WordImage`]), which is why [`ImageSpec::try_materialise`] resolves
//! only the self-contained sources.

use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::seeder::StreamSeeder;
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// RNG stream id reserved for data-image generation, distinct from the
/// fault-placement stream (0) so image words and fault maps never share
/// random state.
const IMAGE_STREAM: u64 = 0xDA7A;

/// Default seed of the seedable image sources when `--image random` /
/// `--image sparse` is given without an explicit seed.
pub const DEFAULT_IMAGE_SEED: u64 = 0xDA7A_5EED;

/// A deterministic source of stored memory words, one per row.
///
/// Implementations must be pure functions of `(self, row)`: the parallel
/// pipeline evaluates rows from many worker threads and campaigns must stay
/// bit-identical at any worker count, so an image may not carry mutable
/// state or draw randomness outside a per-row derivation.
pub trait DataImage: fmt::Debug + Send + Sync {
    /// Human-readable image name for reports and JSON series.
    fn label(&self) -> String;

    /// The word stored in `row`.
    fn word(&self, row: usize) -> u64;

    /// Renders the image into a dense per-row word vector — the shape the
    /// data-aware evaluators consume.
    fn materialise(&self, rows: usize) -> Vec<u64> {
        (0..rows).map(|row| self.word(row)).collect()
    }
}

/// The all-zeros image: the historical MSE background, under which every
/// stuck-at-1 and bit-flip fault is observable and stuck-at-0 is silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZerosImage;

impl DataImage for ZerosImage {
    fn label(&self) -> String {
        "zeros".to_owned()
    }

    fn word(&self, _row: usize) -> u64 {
        0
    }
}

/// The all-ones image (every data bit set): the adversarial complement of
/// [`ZerosImage`] — stuck-at-0 faults all observable, stuck-at-1 silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnesImage {
    mask: u64,
}

impl OnesImage {
    /// Creates the image for the given memory geometry (every word stores
    /// [`MemoryConfig::word_mask`]).
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            mask: config.word_mask(),
        }
    }
}

impl DataImage for OnesImage {
    fn label(&self) -> String {
        "ones".to_owned()
    }

    fn word(&self, _row: usize) -> u64 {
        self.mask
    }
}

/// Uniform-random words, derived per row from `(seed, row)` via the same
/// SplitMix64 stream-splitting the fault pipeline uses — every bit is 0 or
/// 1 with probability ½ independently, so half of all stuck-at faults are
/// silent in expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformRandomImage {
    seed: u64,
    mask: u64,
}

impl UniformRandomImage {
    /// Creates the image for the given memory geometry from `seed`.
    #[must_use]
    pub fn new(seed: u64, config: MemoryConfig) -> Self {
        Self {
            seed,
            mask: config.word_mask(),
        }
    }
}

impl DataImage for UniformRandomImage {
    fn label(&self) -> String {
        format!("random:{}", self.seed)
    }

    fn word(&self, row: usize) -> u64 {
        let mut rng = StreamSeeder::new(self.seed).rng_for(IMAGE_STREAM, row as u64);
        rng.gen::<u64>() & self.mask
    }
}

/// A sparse, low-entropy image: most rows store zero, and roughly one row
/// in [`SparseImage::DENSITY`] stores a single set bit at a random
/// position — the profile of zero-initialised buffers, one-hot encodings
/// and sparse matrices, under which stuck-at-0 faults are almost always
/// silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseImage {
    seed: u64,
    word_bits: usize,
}

impl SparseImage {
    /// One row in `DENSITY` is non-zero.
    pub const DENSITY: u32 = 8;

    /// Creates the image for the given memory geometry from `seed`.
    #[must_use]
    pub fn new(seed: u64, config: MemoryConfig) -> Self {
        Self {
            seed,
            word_bits: config.word_bits(),
        }
    }
}

impl DataImage for SparseImage {
    fn label(&self) -> String {
        format!("sparse:{}", self.seed)
    }

    fn word(&self, row: usize) -> u64 {
        let mut rng = StreamSeeder::new(self.seed).rng_for(IMAGE_STREAM, row as u64);
        if rng.gen_range(0..Self::DENSITY as usize) == 0 {
            1u64 << rng.gen_range(0..self.word_bits)
        } else {
            0
        }
    }
}

/// A concrete word image backed by an explicit word list, cycled over the
/// rows — the carrier for externally materialised images (fixed-point
/// application matrices quantised by the apps layer, golden images from
/// disk, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordImage {
    label: String,
    words: Vec<u64>,
}

impl WordImage {
    /// Wraps a non-empty word list under the given label.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] when `words` is empty.
    pub fn new(label: impl Into<String>, words: Vec<u64>) -> Result<Self, MemError> {
        if words.is_empty() {
            return Err(MemError::InvalidParameter {
                reason: "a word image needs at least one word".to_owned(),
            });
        }
        Ok(Self {
            label: label.into(),
            words,
        })
    }

    /// The backing word list.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl DataImage for WordImage {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn word(&self, row: usize) -> u64 {
        self.words[row % self.words.len()]
    }
}

/// A fixed-point application matrix image: one of the benchmark datasets,
/// quantised to the memory's word format. Named here so [`ImageSpec`] can
/// carry the identity through campaign configs and shard files; the data
/// generation and quantisation live in the apps layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppImage {
    /// The wine-quality regression features (the Elasticnet benchmark).
    Wine,
    /// The Madelon classification features (the PCA benchmark).
    Madelon,
    /// The activity-recognition features (the KNN benchmark).
    Har,
}

impl AppImage {
    /// All application images, in catalogue order.
    pub const ALL: [AppImage; 3] = [AppImage::Wine, AppImage::Madelon, AppImage::Har];

    /// Canonical image name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AppImage::Wine => "wine",
            AppImage::Madelon => "madelon",
            AppImage::Har => "har",
        }
    }
}

/// The campaign-level identity of a data image: which stored-data pattern a
/// data-aware campaign evaluates faults against.
///
/// `Copy`, hashable and round-trippable through its [`fmt::Display`] form,
/// so it can ride inside campaign configurations, figure specs and shard
/// checkpoint files. Parse with [`FromStr`]:
///
/// ```
/// use faultmit_memsim::image::ImageSpec;
///
/// assert_eq!("zeros".parse::<ImageSpec>().unwrap(), ImageSpec::Zeros);
/// let random: ImageSpec = "random:7".parse().unwrap();
/// assert_eq!(random, ImageSpec::UniformRandom { seed: 7 });
/// // Display is the canonical round-trippable form.
/// assert_eq!(random.to_string().parse::<ImageSpec>().unwrap(), random);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageSpec {
    /// All-zeros background — the historical MSE protocol and the pipeline's
    /// bit-identical fast path.
    Zeros,
    /// All data bits set.
    Ones,
    /// Uniform-random words derived from the seed.
    UniformRandom {
        /// Seed of the per-row word derivation.
        seed: u64,
    },
    /// Sparse/low-entropy pattern derived from the seed.
    Sparse {
        /// Seed of the per-row word derivation.
        seed: u64,
    },
    /// A fixed-point quantised application matrix (materialised by the apps
    /// layer).
    App(AppImage),
}

impl ImageSpec {
    /// `true` for the all-zeros image — the campaigns' bit-identical legacy
    /// fast path.
    #[must_use]
    pub fn is_zeros(&self) -> bool {
        matches!(self, ImageSpec::Zeros)
    }

    /// `true` when materialisation needs the application layer (benchmark
    /// data generation and fixed-point quantisation).
    #[must_use]
    pub fn requires_app_data(&self) -> bool {
        matches!(self, ImageSpec::App(_))
    }

    /// Materialises the self-contained image sources for the given memory
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] for [`ImageSpec::App`] images,
    /// whose dataset generation lives above this crate — resolve those
    /// through the apps layer's image module instead.
    pub fn try_materialise(&self, config: MemoryConfig) -> Result<Box<dyn DataImage>, MemError> {
        Ok(match self {
            ImageSpec::Zeros => Box::new(ZerosImage),
            ImageSpec::Ones => Box::new(OnesImage::new(config)),
            ImageSpec::UniformRandom { seed } => Box::new(UniformRandomImage::new(*seed, config)),
            ImageSpec::Sparse { seed } => Box::new(SparseImage::new(*seed, config)),
            ImageSpec::App(app) => {
                return Err(MemError::InvalidParameter {
                    reason: format!(
                        "the '{}' application image is materialised by the apps layer \
                         (faultmit-apps image module), not by faultmit-memsim",
                        app.name()
                    ),
                })
            }
        })
    }
}

impl fmt::Display for ImageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageSpec::Zeros => f.write_str("zeros"),
            ImageSpec::Ones => f.write_str("ones"),
            ImageSpec::UniformRandom { seed } => write!(f, "random:{seed}"),
            ImageSpec::Sparse { seed } => write!(f, "sparse:{seed}"),
            ImageSpec::App(app) => f.write_str(app.name()),
        }
    }
}

impl FromStr for ImageSpec {
    type Err = MemError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        // The `app:<name>` alias embeds a colon, so resolve it before the
        // seed split below would misread `<name>` as a seed.
        if let Some(app) = lower.strip_prefix("app:") {
            return match app {
                "wine" => Ok(ImageSpec::App(AppImage::Wine)),
                "madelon" => Ok(ImageSpec::App(AppImage::Madelon)),
                "har" | "activity" => Ok(ImageSpec::App(AppImage::Har)),
                other => Err(MemError::InvalidParameter {
                    reason: format!(
                        "unknown application image '{other}', expected wine|madelon|har"
                    ),
                }),
            };
        }
        let (name, seed) = match lower.split_once(':') {
            Some((name, seed)) => {
                let seed: u64 = seed
                    .trim()
                    .parse()
                    .map_err(|_| MemError::InvalidParameter {
                        reason: format!("image seed '{seed}' is not a 64-bit unsigned integer"),
                    })?;
                (name.trim(), Some(seed))
            }
            None => (lower.as_str(), None),
        };
        let spec = match name {
            "zeros" | "zero" => ImageSpec::Zeros,
            "ones" | "one" => ImageSpec::Ones,
            "random" | "uniform" => ImageSpec::UniformRandom {
                seed: seed.unwrap_or(DEFAULT_IMAGE_SEED),
            },
            "sparse" => ImageSpec::Sparse {
                seed: seed.unwrap_or(DEFAULT_IMAGE_SEED),
            },
            "wine" => ImageSpec::App(AppImage::Wine),
            "madelon" => ImageSpec::App(AppImage::Madelon),
            "har" | "activity" => ImageSpec::App(AppImage::Har),
            other => {
                return Err(MemError::InvalidParameter {
                    reason: format!(
                        "unknown image '{other}', expected \
                         zeros|ones|random[:seed]|sparse[:seed]|wine|madelon|har"
                    ),
                })
            }
        };
        // A seed on a non-seedable image is a user error, not noise.
        if seed.is_some()
            && !matches!(
                spec,
                ImageSpec::UniformRandom { .. } | ImageSpec::Sparse { .. }
            )
        {
            return Err(MemError::InvalidParameter {
                reason: format!("image '{name}' does not take a seed"),
            });
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MemoryConfig {
        MemoryConfig::new(64, 32).unwrap()
    }

    #[test]
    fn zeros_and_ones_images_are_constant() {
        let zeros = ZerosImage;
        let ones = OnesImage::new(config());
        for row in [0usize, 1, 63] {
            assert_eq!(zeros.word(row), 0);
            assert_eq!(ones.word(row), 0xFFFF_FFFF);
        }
        let wide = MemoryConfig::new(4, 64).unwrap();
        assert_eq!(OnesImage::new(wide).word(0), u64::MAX);
        let narrow = MemoryConfig::new(4, 1).unwrap();
        assert_eq!(OnesImage::new(narrow).word(0), 1);
        assert_eq!(zeros.materialise(4), vec![0; 4]);
    }

    #[test]
    fn random_image_is_deterministic_per_row_and_masked() {
        let image = UniformRandomImage::new(42, config());
        for row in 0..256 {
            let word = image.word(row);
            assert_eq!(word, image.word(row), "row {row} is not deterministic");
            assert_eq!(word >> 32, 0, "row {row} exceeds the word width");
        }
        // Different seeds and different rows diverge.
        assert_ne!(image.word(0), UniformRandomImage::new(43, config()).word(0));
        assert_ne!(image.word(0), image.word(1));
        // Roughly half of the bits are set across many rows.
        let set_bits: u32 = (0..512).map(|row| image.word(row).count_ones()).sum();
        let fraction = f64::from(set_bits) / (512.0 * 32.0);
        assert!((fraction - 0.5).abs() < 0.05, "set-bit fraction {fraction}");
    }

    #[test]
    fn sparse_image_is_mostly_zero_with_single_bit_rows() {
        let image = SparseImage::new(7, config());
        let words = image.materialise(4096);
        let non_zero = words.iter().filter(|&&w| w != 0).count();
        for &word in &words {
            assert!(word.count_ones() <= 1, "word {word:#x} is not one-hot");
            assert_eq!(word >> 32, 0);
        }
        let density = non_zero as f64 / 4096.0;
        let expected = 1.0 / f64::from(SparseImage::DENSITY);
        assert!(
            (density - expected).abs() < 0.03,
            "non-zero density {density}, expected ~{expected}"
        );
        assert_eq!(words, image.materialise(4096), "not deterministic");
    }

    #[test]
    fn word_image_cycles_and_rejects_empty_lists() {
        let image = WordImage::new("demo", vec![1, 2, 3]).unwrap();
        assert_eq!(image.label(), "demo");
        assert_eq!(image.word(0), 1);
        assert_eq!(image.word(4), 2);
        assert_eq!(image.materialise(5), vec![1, 2, 3, 1, 2]);
        assert_eq!(image.words(), &[1, 2, 3]);
        assert!(WordImage::new("empty", vec![]).is_err());
    }

    #[test]
    fn image_specs_round_trip_through_display() {
        let specs = [
            ImageSpec::Zeros,
            ImageSpec::Ones,
            ImageSpec::UniformRandom { seed: 7 },
            ImageSpec::UniformRandom {
                seed: DEFAULT_IMAGE_SEED,
            },
            ImageSpec::Sparse { seed: u64::MAX },
            ImageSpec::App(AppImage::Wine),
            ImageSpec::App(AppImage::Madelon),
            ImageSpec::App(AppImage::Har),
        ];
        for spec in specs {
            let round: ImageSpec = spec.to_string().parse().unwrap();
            assert_eq!(round, spec, "{spec} does not round-trip");
        }
    }

    #[test]
    fn image_spec_parsing_accepts_aliases_and_rejects_garbage() {
        assert_eq!("ZEROS".parse::<ImageSpec>().unwrap(), ImageSpec::Zeros);
        assert_eq!("one".parse::<ImageSpec>().unwrap(), ImageSpec::Ones);
        assert_eq!(
            "random".parse::<ImageSpec>().unwrap(),
            ImageSpec::UniformRandom {
                seed: DEFAULT_IMAGE_SEED
            }
        );
        assert_eq!(
            "uniform:9".parse::<ImageSpec>().unwrap(),
            ImageSpec::UniformRandom { seed: 9 }
        );
        assert_eq!(
            "sparse:3".parse::<ImageSpec>().unwrap(),
            ImageSpec::Sparse { seed: 3 }
        );
        assert_eq!(
            "activity".parse::<ImageSpec>().unwrap(),
            ImageSpec::App(AppImage::Har)
        );
        // The app:<name> prefix form resolves despite its embedded colon.
        for (alias, app) in [
            ("app:wine", AppImage::Wine),
            ("APP:MADELON", AppImage::Madelon),
            ("app:har", AppImage::Har),
            ("app:activity", AppImage::Har),
        ] {
            assert_eq!(
                alias.parse::<ImageSpec>().unwrap(),
                ImageSpec::App(app),
                "{alias}"
            );
        }
        assert!("app:noise".parse::<ImageSpec>().is_err());
        assert!("noise".parse::<ImageSpec>().is_err());
        assert!("random:xyz".parse::<ImageSpec>().is_err());
        assert!("zeros:5".parse::<ImageSpec>().is_err());
        assert!("wine:1".parse::<ImageSpec>().is_err());
    }

    #[test]
    fn try_materialise_covers_self_contained_sources_only() {
        for spec in [
            ImageSpec::Zeros,
            ImageSpec::Ones,
            ImageSpec::UniformRandom { seed: 1 },
            ImageSpec::Sparse { seed: 1 },
        ] {
            let image = spec.try_materialise(config()).unwrap();
            assert_eq!(image.materialise(64).len(), 64);
            assert!(!spec.requires_app_data());
        }
        let spec = ImageSpec::App(AppImage::Wine);
        assert!(spec.requires_app_data());
        let error = spec.try_materialise(config()).unwrap_err();
        assert!(error.to_string().contains("apps layer"), "{error}");
        assert!(ImageSpec::Zeros.is_zeros());
        assert!(!ImageSpec::Ones.is_zeros());
    }

    #[test]
    fn app_image_names_are_stable() {
        assert_eq!(AppImage::ALL.len(), 3);
        for app in AppImage::ALL {
            assert_eq!(
                ImageSpec::App(app).to_string(),
                app.name(),
                "display must match the canonical name"
            );
        }
    }
}
