//! Voltage scaling and the fault-inclusion property.
//!
//! In the presence of process variations, the set of failing cells of a die
//! grows monotonically as the supply voltage is scaled down: a cell that
//! fails at a given `V_DD` fails at every lower `V_DD` (the *fault inclusion
//! property* of \[14\] in the paper). This module models a die as a fixed
//! vector of per-cell margin deviations; the fault map exposed at any `V_DD`
//! is derived by thresholding those deviations against the failure model.

use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::failure_model::CellFailureModel;
use crate::fault::{Fault, FaultKind, FaultMap};
use crate::stats::sample_standard_normal;
use rand::Rng;

/// A manufactured die with per-cell variation, from which voltage-dependent
/// fault maps can be derived.
///
/// Each cell carries a fixed margin deviation drawn once at "manufacturing
/// time"; the cell fails at supply voltage `V_DD` when its deviation is lower
/// than `−z(V_DD)` where `z` is the failure model's margin z-score. Because
/// `z(V_DD)` decreases as the voltage drops, the failing set only grows —
/// fault inclusion holds by construction.
///
/// # Example
///
/// ```
/// use faultmit_memsim::{CellFailureModel, MemoryConfig, VoltageScaledDie};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), faultmit_memsim::MemError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let die = VoltageScaledDie::manufacture(
///     MemoryConfig::new(256, 32)?,
///     CellFailureModel::default_28nm(),
///     &mut rng,
/// );
/// let faults_high = die.fault_map_at(0.9)?;
/// let faults_low = die.fault_map_at(0.6)?;
/// assert!(faults_low.fault_count() >= faults_high.fault_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageScaledDie {
    config: MemoryConfig,
    model: CellFailureModel,
    /// Per-cell margin deviation in σ units (standard normal at manufacture).
    deviations: Vec<f64>,
}

impl VoltageScaledDie {
    /// "Manufactures" a die by drawing a margin deviation for every cell.
    pub fn manufacture<R: Rng + ?Sized>(
        config: MemoryConfig,
        model: CellFailureModel,
        rng: &mut R,
    ) -> Self {
        let deviations = (0..config.total_cells())
            .map(|_| sample_standard_normal(rng))
            .collect();
        Self {
            config,
            model,
            deviations,
        }
    }

    /// Geometry of this die.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Failure model used to translate voltages into failure thresholds.
    #[must_use]
    pub fn model(&self) -> &CellFailureModel {
        &self.model
    }

    /// Whether the cell at `(row, col)` fails at supply voltage `vdd`.
    ///
    /// # Errors
    ///
    /// Returns a range error when the location is outside the array.
    pub fn cell_fails_at(&self, row: usize, col: usize, vdd: f64) -> Result<bool, MemError> {
        self.config.check_row(row)?;
        self.config.check_col(col)?;
        let deviation = self.deviations[self.config.cell_index(row, col)];
        Ok(deviation < -self.model.margin_z(vdd))
    }

    /// Derives the fault map exposed at supply voltage `vdd`.
    ///
    /// Faulty cells are modelled as bit-flips (an observable error for any
    /// stored value), matching the paper's injection model.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed die; the `Result` mirrors the fallible
    /// fault-map insertion API.
    pub fn fault_map_at(&self, vdd: f64) -> Result<FaultMap, MemError> {
        let threshold = -self.model.margin_z(vdd);
        let mut map = FaultMap::new(self.config);
        for (index, &deviation) in self.deviations.iter().enumerate() {
            if deviation < threshold {
                let (row, col) = self.config.cell_position(index);
                map.insert(Fault::new(row, col, FaultKind::BitFlip))?;
            }
        }
        Ok(map)
    }

    /// Number of failing cells at supply voltage `vdd`.
    #[must_use]
    pub fn failure_count_at(&self, vdd: f64) -> usize {
        let threshold = -self.model.margin_z(vdd);
        self.deviations.iter().filter(|&&d| d < threshold).count()
    }

    /// The lowest voltage (within the model's calibrated range, sampled at
    /// `steps` points) at which the die has at most `max_failures` failing
    /// cells. Returns `None` if even the highest voltage exposes more
    /// failures than allowed.
    #[must_use]
    pub fn min_vdd_for_failure_budget(&self, max_failures: usize, steps: usize) -> Option<f64> {
        let (lo, hi) = self.model.voltage_range();
        let steps = steps.max(2);
        let mut best = None;
        for i in 0..steps {
            let vdd = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
            if self.failure_count_at(vdd) <= max_failures {
                best = Some(vdd);
                break;
            }
        }
        best
    }
}

/// An inclusive sweep over supply voltages, used by the Fig. 2 reproduction
/// and the voltage-scaling example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VddSweep {
    start: f64,
    stop: f64,
    steps: usize,
}

impl VddSweep {
    /// Creates a sweep from `start` to `stop` (inclusive) with `steps` points.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] when fewer than two steps are
    /// requested or the voltages are not finite.
    pub fn new(start: f64, stop: f64, steps: usize) -> Result<Self, MemError> {
        if steps < 2 {
            return Err(MemError::InvalidParameter {
                reason: format!("a voltage sweep needs at least 2 steps, got {steps}"),
            });
        }
        if !start.is_finite() || !stop.is_finite() {
            return Err(MemError::InvalidParameter {
                reason: "voltage sweep bounds must be finite".to_owned(),
            });
        }
        Ok(Self { start, stop, steps })
    }

    /// The paper's Fig. 2 voltage range: 0.6 V to 1.0 V.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] when fewer than two steps are
    /// requested.
    pub fn paper_fig2(steps: usize) -> Result<Self, MemError> {
        Self::new(0.6, 1.0, steps)
    }

    /// Number of points in the sweep.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps
    }

    /// `true` when the sweep contains no points (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }

    /// Iterates over the voltages of the sweep, from `start` to `stop`.
    pub fn voltages(&self) -> impl Iterator<Item = f64> + '_ {
        let (start, stop, steps) = (self.start, self.stop, self.steps);
        (0..steps).map(move |i| start + (stop - start) * i as f64 / (steps - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn die() -> VoltageScaledDie {
        let mut rng = StdRng::seed_from_u64(99);
        // A deliberately pessimistic model so small arrays still show faults.
        let model = crate::failure_model::FailureModelBuilder::new()
            .anchor(1.0, 1e-4)
            .anchor(0.6, 5e-2)
            .build()
            .unwrap();
        VoltageScaledDie::manufacture(MemoryConfig::new(512, 32).unwrap(), model, &mut rng)
    }

    #[test]
    fn fault_inclusion_property_holds() {
        let die = die();
        let mut previous: Option<FaultMap> = None;
        for vdd in [1.0, 0.9, 0.8, 0.7, 0.6] {
            let map = die.fault_map_at(vdd).unwrap();
            if let Some(prev) = &previous {
                // Every fault present at the higher voltage must persist.
                for fault in prev.iter() {
                    assert!(
                        map.fault_at(fault.row, fault.col).is_some(),
                        "fault at ({}, {}) vanished when scaling to {vdd} V",
                        fault.row,
                        fault.col
                    );
                }
                assert!(map.fault_count() >= prev.fault_count());
            }
            previous = Some(map);
        }
    }

    #[test]
    fn failure_count_matches_fault_map() {
        let die = die();
        for vdd in [0.6, 0.75, 0.9] {
            assert_eq!(
                die.failure_count_at(vdd),
                die.fault_map_at(vdd).unwrap().fault_count()
            );
        }
    }

    #[test]
    fn failure_count_tracks_model_expectation() {
        let die = die();
        let cells = die.config().total_cells() as f64;
        for vdd in [0.6, 0.7] {
            let expected = die.model().p_cell(vdd) * cells;
            let observed = die.failure_count_at(vdd) as f64;
            // Loose bound: binomial fluctuation around the expectation.
            assert!(
                (observed - expected).abs() < 5.0 * expected.sqrt() + 5.0,
                "vdd = {vdd}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn cell_fails_at_is_consistent_with_map() {
        let die = die();
        let map = die.fault_map_at(0.65).unwrap();
        for fault in map.iter().take(20) {
            assert!(die.cell_fails_at(fault.row, fault.col, 0.65).unwrap());
        }
        assert!(die.cell_fails_at(1000, 0, 0.65).is_err());
        assert!(die.cell_fails_at(0, 99, 0.65).is_err());
    }

    #[test]
    fn min_vdd_for_failure_budget_is_monotone_in_budget() {
        let die = die();
        let tight = die.min_vdd_for_failure_budget(0, 41);
        let loose = die.min_vdd_for_failure_budget(1000, 41);
        if let (Some(tight), Some(loose)) = (tight, loose) {
            assert!(loose <= tight + 1e-9);
        }
        // A huge budget is always satisfiable at the lowest voltage.
        assert!(loose.is_some());
    }

    #[test]
    fn sweep_produces_requested_points() {
        let sweep = VddSweep::new(0.6, 1.0, 5).unwrap();
        let points: Vec<f64> = sweep.voltages().collect();
        assert_eq!(points.len(), 5);
        assert!((points[0] - 0.6).abs() < 1e-12);
        assert!((points[4] - 1.0).abs() < 1e-12);
        assert!((points[2] - 0.8).abs() < 1e-12);
        assert_eq!(sweep.len(), 5);
        assert!(!sweep.is_empty());
    }

    #[test]
    fn sweep_rejects_degenerate_inputs() {
        assert!(VddSweep::new(0.6, 1.0, 1).is_err());
        assert!(VddSweep::new(f64::NAN, 1.0, 4).is_err());
        assert!(VddSweep::paper_fig2(9).is_ok());
    }
}
