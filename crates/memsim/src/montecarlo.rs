//! Monte-Carlo generation of dies and fault maps.
//!
//! The paper's evaluation (§4, §5.2) injects random bit-flips according to
//! fault maps drawn for each failure count `N = 1..N_max`, with the number of
//! samples per failure count proportional to `Pr(N = n)` (Eq. (4)). This
//! module provides:
//!
//! * [`FailureCountDistribution`] — the binomial distribution of the number of
//!   failures in a memory of `M` cells with failure probability `P_cell`;
//! * [`FaultMapSampler`] — uniform sampling of fault maps with an exact number
//!   of faults (the paper's "maps of random bit-flip locations for each
//!   failure count");
//! * [`DieSampler`] — sampling of whole dies where the failure count itself is
//!   drawn from the binomial distribution (used when simulating a production
//!   lot rather than sweeping failure counts).

use crate::config::MemoryConfig;
use crate::error::MemError;
use crate::fault::{Fault, FaultKind, FaultMap};
use crate::scratch::DieScratch;
use crate::stats::{binomial_pmf, sample_binomial};
use rand::seq::index::sample as sample_indices;
use rand::seq::index::sample_into as sample_indices_into;
use rand::Rng;

/// Binomial distribution of the failure count `N` of a memory sample
/// (Eq. (4): `Pr(N = n) = C(M, n) · P_cell^n · (1 − P_cell)^(M−n)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureCountDistribution {
    total_cells: u64,
    p_cell: f64,
}

impl FailureCountDistribution {
    /// Creates the distribution for a memory with `total_cells` bit-cells and
    /// per-cell failure probability `p_cell`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside
    /// `[0, 1]`.
    pub fn new(total_cells: usize, p_cell: f64) -> Result<Self, MemError> {
        if !(0.0..=1.0).contains(&p_cell) || p_cell.is_nan() {
            return Err(MemError::InvalidProbability { value: p_cell });
        }
        Ok(Self {
            total_cells: total_cells as u64,
            p_cell,
        })
    }

    /// Convenience constructor from a memory configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside
    /// `[0, 1]`.
    pub fn for_memory(config: MemoryConfig, p_cell: f64) -> Result<Self, MemError> {
        Self::new(config.total_cells(), p_cell)
    }

    /// Number of bit-cells `M`.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.total_cells
    }

    /// Per-cell failure probability `P_cell`.
    #[must_use]
    pub fn p_cell(&self) -> f64 {
        self.p_cell
    }

    /// `Pr(N = n)`.
    #[must_use]
    pub fn pmf(&self, n: u64) -> f64 {
        binomial_pmf(self.total_cells, n, self.p_cell)
    }

    /// `Pr(N ≤ n)`.
    #[must_use]
    pub fn cdf(&self, n: u64) -> f64 {
        (0..=n.min(self.total_cells))
            .map(|k| self.pmf(k))
            .sum::<f64>()
            .min(1.0)
    }

    /// Expected failure count `M · P_cell`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.total_cells as f64 * self.p_cell
    }

    /// Smallest `n` such that `Pr(N ≤ n) ≥ coverage`.
    ///
    /// The paper chooses `N_max` such that 99 % of memories have no more than
    /// `N_max` failures; that is `n_max(0.99)`.
    #[must_use]
    pub fn n_max(&self, coverage: f64) -> u64 {
        let coverage = coverage.clamp(0.0, 1.0);
        let mut cumulative = 0.0;
        let mut n = 0u64;
        loop {
            cumulative += self.pmf(n);
            if cumulative >= coverage || n >= self.total_cells {
                return n;
            }
            n += 1;
        }
    }

    /// Draws a failure count `N ~ Bin(M, P_cell)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        sample_binomial(rng, self.total_cells, self.p_cell)
    }

    /// Number of Monte-Carlo samples to allocate to failure count `n` out of
    /// a total budget of `total_runs` runs, following the paper's
    /// `Pr(N = n) · T_run` rule.
    #[must_use]
    pub fn samples_for_count(&self, n: u64, total_runs: u64) -> u64 {
        (self.pmf(n) * total_runs as f64).round() as u64
    }
}

/// Uniform sampler of fault maps with an exact number of faulty cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultMapSampler {
    config: MemoryConfig,
    kind_policy: FaultKindPolicy,
}

/// How the behaviour of each sampled faulty cell is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKindPolicy {
    /// Every faulty cell flips its content (the paper's random bit-flip
    /// injection — an error is always observed regardless of the data).
    AlwaysFlip,
    /// Each faulty cell is stuck at 0 or 1 with equal probability, so roughly
    /// half of the faults are silent for any given data word.
    RandomStuckAt,
    /// Uniform mix of stuck-at-0, stuck-at-1 and flip faults.
    Mixed,
}

impl FaultMapSampler {
    /// Creates a sampler that injects bit-flip faults (the paper's model).
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self {
            config,
            kind_policy: FaultKindPolicy::AlwaysFlip,
        }
    }

    /// Creates a sampler with an explicit fault-kind policy.
    #[must_use]
    pub fn with_policy(config: MemoryConfig, kind_policy: FaultKindPolicy) -> Self {
        Self {
            config,
            kind_policy,
        }
    }

    /// Geometry sampled fault maps are built for.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Draws a fault map with exactly `n_faults` faulty cells placed uniformly
    /// at random over the array (without replacement).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] when `n_faults` exceeds the
    /// number of cells in the array.
    pub fn sample_with_count<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_faults: usize,
    ) -> Result<FaultMap, MemError> {
        let total = self.config.total_cells();
        if n_faults > total {
            return Err(MemError::InvalidParameter {
                reason: format!("cannot place {n_faults} faults in {total} cells"),
            });
        }
        let mut map = FaultMap::new(self.config);
        // Floyd's algorithm yields distinct indices, so the map can be
        // bulk-loaded and sorted once (a per-fault sorted insert is
        // quadratic at dense fault counts). Kind draws stay in index order
        // — the RNG schedule is untouched.
        for index in sample_indices(rng, total, n_faults).into_iter() {
            let (row, col) = self.config.cell_position(index);
            let kind = self.sample_kind(rng);
            map.push_unsorted(Fault::new(row, col, kind))?;
        }
        map.restore_sorted_order();
        Ok(map)
    }

    /// The allocation-free twin of [`FaultMapSampler::sample_with_count`]:
    /// draws into the scratch arena's reusable buffers (Floyd's algorithm
    /// via [`sample_indices_into`], map cleared in place) with **identical
    /// RNG consumption**, so the two paths produce bit-identical maps from
    /// the same RNG state.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidParameter`] when `n_faults` exceeds the
    /// number of cells in the array.
    pub fn sample_with_count_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_faults: usize,
        scratch: &mut DieScratch,
    ) -> Result<(), MemError> {
        let total = self.config.total_cells();
        if n_faults > total {
            return Err(MemError::InvalidParameter {
                reason: format!("cannot place {n_faults} faults in {total} cells"),
            });
        }
        scratch.reset_map(self.config);
        sample_indices_into(
            rng,
            total,
            n_faults,
            &mut scratch.chosen,
            &mut scratch.indices,
        );
        // Same bulk-load-then-sort as `sample_with_count`: indices are
        // distinct and kind draws keep their index-order RNG schedule.
        for i in 0..scratch.indices.len() {
            let (row, col) = self.config.cell_position(scratch.indices[i]);
            let kind = self.sample_kind(rng);
            scratch.map.push_unsorted(Fault::new(row, col, kind))?;
        }
        scratch.map.restore_sorted_order();
        Ok(())
    }

    /// Draws a fault map whose failure count follows `Bin(M, p_cell)`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside
    /// `[0, 1]`.
    pub fn sample_with_p_cell<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        p_cell: f64,
    ) -> Result<FaultMap, MemError> {
        let dist = FailureCountDistribution::for_memory(self.config, p_cell)?;
        let n = dist.sample(rng) as usize;
        self.sample_with_count(rng, n)
    }

    fn sample_kind<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultKind {
        match self.kind_policy {
            FaultKindPolicy::AlwaysFlip => FaultKind::BitFlip,
            FaultKindPolicy::RandomStuckAt => {
                if rng.gen::<bool>() {
                    FaultKind::StuckAtOne
                } else {
                    FaultKind::StuckAtZero
                }
            }
            FaultKindPolicy::Mixed => match rng.gen_range(0..3) {
                0 => FaultKind::StuckAtZero,
                1 => FaultKind::StuckAtOne,
                _ => FaultKind::BitFlip,
            },
        }
    }
}

/// Samples complete dies: a fault map whose failure count follows the
/// binomial distribution implied by a failure model or explicit `P_cell`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSampler {
    sampler: FaultMapSampler,
    p_cell: f64,
}

impl DieSampler {
    /// Creates a die sampler for the given geometry and cell failure
    /// probability.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidProbability`] when `p_cell` is outside
    /// `[0, 1]`.
    pub fn new(config: MemoryConfig, p_cell: f64) -> Result<Self, MemError> {
        if !(0.0..=1.0).contains(&p_cell) || p_cell.is_nan() {
            return Err(MemError::InvalidProbability { value: p_cell });
        }
        Ok(Self {
            sampler: FaultMapSampler::new(config),
            p_cell,
        })
    }

    /// Per-cell failure probability used by this sampler.
    #[must_use]
    pub fn p_cell(&self) -> f64 {
        self.p_cell
    }

    /// Geometry of sampled dies.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.sampler.config()
    }

    /// The failure-count distribution of sampled dies.
    #[must_use]
    pub fn failure_distribution(&self) -> FailureCountDistribution {
        FailureCountDistribution {
            total_cells: self.config().total_cells() as u64,
            p_cell: self.p_cell,
        }
    }

    /// Draws one die's fault map.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from fault-map construction (none are
    /// expected for a well-formed sampler).
    pub fn sample_die<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<FaultMap, MemError> {
        self.sampler.sample_with_p_cell(rng, self.p_cell)
    }

    /// Draws `count` dies.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`DieSampler::sample_die`].
    pub fn sample_dies<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
    ) -> Result<Vec<FaultMap>, MemError> {
        (0..count).map(|_| self.sample_die(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> MemoryConfig {
        MemoryConfig::new(64, 32).unwrap()
    }

    #[test]
    fn failure_distribution_pmf_normalises() {
        let dist = FailureCountDistribution::new(2048, 0.002).unwrap();
        let total: f64 = (0..=64).map(|n| dist.pmf(n)).sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!((dist.mean() - 4.096).abs() < 1e-9);
    }

    #[test]
    fn failure_distribution_rejects_bad_probability() {
        assert!(FailureCountDistribution::new(100, -0.1).is_err());
        assert!(FailureCountDistribution::new(100, 1.1).is_err());
        assert!(FailureCountDistribution::new(100, f64::NAN).is_err());
    }

    #[test]
    fn n_max_covers_requested_probability_mass() {
        let dist = FailureCountDistribution::for_memory(MemoryConfig::paper_16kb(), 1e-3).unwrap();
        let n99 = dist.n_max(0.99);
        // Mean is ~131; the 99th percentile must be somewhat above the mean.
        assert!(n99 > 131 && n99 < 170, "n_max(0.99) = {n99}");
        assert!(dist.cdf(n99) >= 0.99);
        assert!(dist.cdf(n99.saturating_sub(1)) < 0.99);
    }

    #[test]
    fn samples_for_count_follows_pmf() {
        let dist = FailureCountDistribution::new(1000, 0.01).unwrap();
        let runs = 1_000_000;
        let at_mean = dist.samples_for_count(10, runs);
        let far_tail = dist.samples_for_count(100, runs);
        assert!(at_mean > 10_000);
        assert_eq!(far_tail, 0);
    }

    #[test]
    fn fault_map_sampler_places_exact_count_without_duplicates() {
        let sampler = FaultMapSampler::new(config());
        let mut rng = StdRng::seed_from_u64(1);
        for &n in &[0usize, 1, 5, 50, 500] {
            let map = sampler.sample_with_count(&mut rng, n).unwrap();
            assert_eq!(map.fault_count(), n, "requested {n} faults");
        }
    }

    #[test]
    fn fault_map_sampler_rejects_overfull_request() {
        let sampler = FaultMapSampler::new(MemoryConfig::new(2, 8).unwrap());
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sampler.sample_with_count(&mut rng, 17).is_err());
        assert!(sampler.sample_with_count(&mut rng, 16).is_ok());
    }

    #[test]
    fn always_flip_policy_produces_only_flip_faults() {
        let sampler = FaultMapSampler::new(config());
        let mut rng = StdRng::seed_from_u64(3);
        let map = sampler.sample_with_count(&mut rng, 100).unwrap();
        assert!(map.iter().all(|f| f.kind == FaultKind::BitFlip));
    }

    #[test]
    fn stuck_at_policy_produces_both_polarities() {
        let sampler = FaultMapSampler::with_policy(config(), FaultKindPolicy::RandomStuckAt);
        let mut rng = StdRng::seed_from_u64(4);
        let map = sampler.sample_with_count(&mut rng, 200).unwrap();
        let zeros = map
            .iter()
            .filter(|f| f.kind == FaultKind::StuckAtZero)
            .count();
        let ones = map
            .iter()
            .filter(|f| f.kind == FaultKind::StuckAtOne)
            .count();
        assert_eq!(zeros + ones, 200);
        assert!(zeros > 50 && ones > 50, "zeros={zeros}, ones={ones}");
    }

    #[test]
    fn mixed_policy_produces_all_kinds() {
        let sampler = FaultMapSampler::with_policy(config(), FaultKindPolicy::Mixed);
        let mut rng = StdRng::seed_from_u64(5);
        let map = sampler.sample_with_count(&mut rng, 300).unwrap();
        for kind in FaultKind::ALL {
            assert!(map.iter().any(|f| f.kind == kind), "missing {kind:?}");
        }
    }

    #[test]
    fn fault_locations_are_spread_over_rows() {
        let sampler = FaultMapSampler::new(config());
        let mut rng = StdRng::seed_from_u64(6);
        let map = sampler.sample_with_count(&mut rng, 256).unwrap();
        // With 2048 cells and 256 faults, faults should span many rows.
        assert!(map.faulty_row_count() > 40);
    }

    #[test]
    fn die_sampler_tracks_binomial_mean() {
        let sampler = DieSampler::new(config(), 0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let dies = sampler.sample_dies(&mut rng, 400).unwrap();
        let mean = dies.iter().map(|d| d.fault_count() as f64).sum::<f64>() / dies.len() as f64;
        let expected = sampler.failure_distribution().mean();
        assert!(
            (mean - expected).abs() < expected * 0.2 + 1.0,
            "mean = {mean}, expected = {expected}"
        );
    }

    #[test]
    fn die_sampler_rejects_bad_probability() {
        assert!(DieSampler::new(config(), -0.5).is_err());
        assert!(DieSampler::new(config(), 2.0).is_err());
    }

    #[test]
    fn zero_p_cell_yields_fault_free_dies() {
        let sampler = DieSampler::new(config(), 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let die = sampler.sample_die(&mut rng).unwrap();
        assert!(die.is_empty());
    }
}
