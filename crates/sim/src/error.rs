//! Error types of the simulation pipeline.

use faultmit_memsim::MemError;
use std::error::Error;
use std::fmt;

/// Errors reported by the campaign pipeline itself.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A campaign parameter is invalid.
    InvalidParameter {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying memory-simulation operation failed.
    Memory(MemError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { reason } => {
                write!(f, "invalid campaign parameter: {reason}")
            }
            SimError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Memory(e) => Some(e),
            SimError::InvalidParameter { .. } => None,
        }
    }
}

impl From<MemError> for SimError {
    fn from(value: MemError) -> Self {
        SimError::Memory(value)
    }
}

/// Errors of a fallible campaign run: either the pipeline failed, or the
/// caller-supplied per-sample evaluator did.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError<E> {
    /// The pipeline failed (configuration or sampling).
    Sim(SimError),
    /// The per-sample evaluator failed.
    Eval(E),
}

impl<E: fmt::Display> fmt::Display for RunError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "{e}"),
            RunError::Eval(e) => write!(f, "evaluator error: {e}"),
        }
    }
}

impl<E: Error + 'static> Error for RunError<E> {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            RunError::Eval(e) => Some(e),
        }
    }
}

impl<E> From<SimError> for RunError<E> {
    fn from(value: SimError) -> Self {
        RunError::Sim(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::InvalidParameter {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        let r: RunError<SimError> = RunError::Eval(e.clone());
        assert!(r.to_string().contains("evaluator error"));
        let s: RunError<SimError> = e.into();
        assert!(matches!(s, RunError::Sim(_)));
    }
}
