//! Mergeable accumulators — the reduction side of the pipeline.
//!
//! Worker threads fold the samples of each chunk into a chunk-local
//! accumulator; the campaign then merges chunk accumulators **in chunk
//! order**. Any statistic whose accumulation is order-preserving under this
//! scheme (counts, weighted sample lists, per-failure-count CDFs, …)
//! therefore comes out bit-identical regardless of the worker count.

/// One evaluated Monte-Carlo sample: a die shared by every scheme of the
/// catalogue, with one metric value per scheme (paired comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct PairedSample {
    /// Global sample index within the campaign.
    pub sample_index: u64,
    /// Number of faults injected into this die.
    pub n_faults: u64,
    /// Statistical weight of the sample (`Pr(N = n) / samples_per_count`).
    pub weight: f64,
    /// Metric value per scheme, in catalogue order.
    pub metrics: Vec<f64>,
}

/// A statistic that can absorb per-sample records and merge with the
/// accumulator of another (earlier-finishing or later) chunk.
///
/// `merge` receives chunks in **ascending chunk order**, so implementations
/// that append preserve the global sample order.
pub trait Accumulator: Send {
    /// Folds one evaluated sample into the statistic.
    fn record(&mut self, sample: &PairedSample);

    /// Absorbs the accumulator of the next chunk (in chunk order).
    fn merge(&mut self, other: Self);
}

/// The identity accumulator: keeps every record, in order.
///
/// Useful for tests and for callers that want to post-process raw paired
/// records themselves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectRecords {
    /// All recorded samples in global sample order.
    pub records: Vec<PairedSample>,
}

impl CollectRecords {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Accumulator for CollectRecords {
    fn record(&mut self, sample: &PairedSample) {
        self.records.push(sample.clone());
    }

    fn merge(&mut self, other: Self) {
        self.records.extend(other.records);
    }
}

/// Pairs two accumulators so one campaign pass can feed both.
impl<A: Accumulator, B: Accumulator> Accumulator for (A, B) {
    fn record(&mut self, sample: &PairedSample) {
        self.0.record(sample);
        self.1.record(sample);
    }

    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(index: u64) -> PairedSample {
        PairedSample {
            sample_index: index,
            n_faults: 1,
            weight: 0.5,
            metrics: vec![index as f64],
        }
    }

    #[test]
    fn collect_records_preserves_order_across_merges() {
        let mut left = CollectRecords::new();
        left.record(&sample(0));
        left.record(&sample(1));
        let mut right = CollectRecords::new();
        right.record(&sample(2));
        left.merge(right);
        let indices: Vec<u64> = left.records.iter().map(|r| r.sample_index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn tuple_accumulator_feeds_both_sides() {
        let mut pair = (CollectRecords::new(), CollectRecords::new());
        pair.record(&sample(7));
        let mut other = (CollectRecords::new(), CollectRecords::new());
        other.record(&sample(8));
        pair.merge(other);
        assert_eq!(pair.0.records.len(), 2);
        assert_eq!(pair.1.records.len(), 2);
    }
}
