//! The unified parallel fault-injection pipeline.
//!
//! This crate is the single engine behind every Monte-Carlo evaluation in
//! the workspace — from Fig. 5's memory-MSE CDFs to Fig. 7's application
//! quality. It composes three ideas:
//!
//! * **Deterministic stream splitting** — every Monte-Carlo sample derives
//!   its RNG from the campaign seed and its global sample index
//!   ([`faultmit_memsim::StreamSeeder`]), never from execution order.
//! * **Paired scheme comparison** — each sampled die is evaluated under
//!   *every* scheme of the catalogue in one pass, so schemes are compared on
//!   identical fault populations (the protocol stressed by
//!   heterogeneous-reliability-memory studies).
//! * **Mergeable accumulators** — chunk-local statistics implementing
//!   [`Accumulator`] merge in chunk order, making the reduction
//!   order-preserving and therefore bit-identical at any worker count.
//!
//! Campaigns are generic over the fault-generating
//! [`faultmit_memsim::FaultBackend`]: [`CampaignConfig::new`] keeps the
//! paper's SRAM voltage-scaling model (bit-identical to the historical
//! pipeline), while [`CampaignConfig::for_backend`] runs the identical
//! protocol against DRAM-retention, MLC-NVM or user-defined fault
//! processes.
//!
//! ```
//! use faultmit_core::Scheme;
//! use faultmit_memsim::MemoryConfig;
//! use faultmit_sim::{Campaign, CampaignConfig, CollectRecords, Parallelism};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CampaignConfig::new(MemoryConfig::new(256, 32)?, 1e-3)?
//!     .with_samples_per_count(5)
//!     .with_max_failures(4)
//!     .with_parallelism(Parallelism::threads(2));
//! let campaign = Campaign::new(config);
//! let schemes = [Scheme::unprotected32(), Scheme::shuffle32(5)?];
//! let records = campaign.run(
//!     &schemes,
//!     42,
//!     |scheme, map| faultmit_core::MitigationScheme::observe(scheme, map, 0, 0).value as f64,
//!     CollectRecords::new,
//! )?;
//! // 4 failure counts × 5 samples, each evaluated under both schemes.
//! assert_eq!(records.records.len(), 20);
//! assert!(records.records.iter().all(|r| r.metrics.len() == 2));
//! # Ok(())
//! # }
//! ```
//!
//! # Sharded, resumable campaigns
//!
//! A campaign is a *plan over sample-index ranges*, so it can be split into
//! [`ShardSpec`] shards whose chunk ranges tile the global plan: each shard
//! is an independent process (or machine), and shard accumulators merged in
//! shard order are **bit-identical** to the monolithic run — monolithic
//! execution is just the `0/1` shard ([`Campaign::run`] delegates to
//! [`Campaign::run_shard`] with [`ShardSpec::solo`]). In-process:
//!
//! ```
//! use faultmit_core::Scheme;
//! use faultmit_memsim::MemoryConfig;
//! use faultmit_sim::{Accumulator, Campaign, CampaignConfig, CollectRecords, ShardSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CampaignConfig::new(MemoryConfig::new(256, 32)?, 1e-3)?
//!     .with_samples_per_count(6)
//!     .with_max_failures(4)
//!     .with_chunk_size(4);
//! let campaign = Campaign::new(config);
//! let schemes = [Scheme::unprotected32()];
//! let metric = |_: &Scheme, map: &faultmit_memsim::FaultMap| map.fault_count() as f64;
//!
//! let monolithic = campaign.run(&schemes, 7, metric, CollectRecords::new)?;
//! let mut merged = CollectRecords::new();
//! for index in 0..3 {
//!     let shard = ShardSpec::new(index, 3)?;
//!     merged.merge(campaign.run_shard(&schemes, 7, shard, metric, CollectRecords::new)?);
//! }
//! assert_eq!(merged, monolithic); // bit-identical, not just statistically equal
//! # Ok(())
//! # }
//! ```
//!
//! Across processes and machines, the `faultmit-bench` crate packages this
//! as the `campaign_shard` / `campaign_merge` binaries — each host
//! evaluates one shard of any registered figure campaign and serialises
//! its panel state to JSON; the merge step folds the shard files in shard
//! order and renders the exact figure JSON the monolithic binary would
//! have written — and as the single-command `campaign_run` driver, which
//! spawns and retries `campaign_shard` child processes locally. A
//! completed shard file doubles as a checkpoint — re-running a partially
//! finished campaign recomputes only the missing shards:
//!
//! ```text
//! host-a$ campaign_shard --figure fig5 --backend dram --shard 0/2 --out shards/fig5-dram-0of2.json
//! host-b$ campaign_shard --figure fig5 --backend dram --shard 1/2 --out shards/fig5-dram-1of2.json
//! # gather the shard files, then render Fig. 5 byte-identically to the
//! # monolithic `fig5_mse_cdf --json`:
//! host-a$ campaign_merge shards/fig5-dram-0of2.json shards/fig5-dram-1of2.json \
//!             --out results/fig5-dram.json
//! # or, on one host, the whole sharded flow in one command:
//! host-a$ campaign_run --figure fig8_backend_matrix --shards 4 --jobs 2 --out results/fig8.json
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accumulate;
pub mod campaign;
pub mod error;
pub mod executor;

pub use accumulate::{Accumulator, CollectRecords, PairedSample};
pub use campaign::{
    Campaign, CampaignConfig, KernelKind, MapPolicy, ShardSpec, ShardStats,
    AUTO_FAULTS_PER_ROW_THRESHOLD,
};
pub use error::{RunError, SimError};
pub use executor::{run_chunked, run_chunked_with, Parallelism};
