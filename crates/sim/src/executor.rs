//! A small deterministic fork-join executor built on scoped threads.
//!
//! The workspace has no access to `rayon`, so the pipeline brings its own
//! executor: work is split into *chunks* whose contents never depend on the
//! worker count, workers claim chunk indices from an atomic counter, and the
//! results are handed back **in chunk order**. Combined with per-sample RNG
//! streams ([`faultmit_memsim::StreamSeeder`]) this makes every campaign
//! bit-identical whether it runs on one thread or sixteen.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a campaign uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Everything on the calling thread (no worker threads at all).
    Serial,
    /// Exactly this many worker threads.
    Threads(NonZeroUsize),
    /// One worker per available CPU ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
}

impl Parallelism {
    /// Convenience constructor clamping `threads` to at least 1.
    #[must_use]
    pub fn threads(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(n) if n.get() > 1 => Parallelism::Threads(n),
            _ => Parallelism::Serial,
        }
    }

    /// The number of workers this setting resolves to on the current host.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.get(),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Runs `work(chunk_index)` for every index in `0..chunk_count` using up to
/// `workers` threads and returns the results **in chunk-index order**.
///
/// The schedule (which thread runs which chunk) is dynamic, but since each
/// chunk's work is self-contained and results are reordered by index, the
/// output is independent of the worker count and of scheduling.
pub fn run_chunked<T, F>(chunk_count: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked_with(chunk_count, workers, || (), |(), index| work(index))
}

/// [`run_chunked`] with **per-worker scratch state**: every worker thread
/// builds one `S` via `make_state` and threads it through all the chunks it
/// claims, so warm buffers (e.g. a `DieScratch` arena) survive from chunk to
/// chunk instead of being rebuilt per chunk.
///
/// Determinism is unaffected: scratch state may only hold reusable storage,
/// never anything the chunk's *result* depends on — each chunk's output must
/// remain a pure function of its index, which the serial-vs-threaded
/// bit-identity suites verify.
pub fn run_chunked_with<S, T, M, F>(
    chunk_count: usize,
    workers: usize,
    make_state: M,
    work: F,
) -> Vec<T>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if workers <= 1 || chunk_count <= 1 {
        let mut state = make_state();
        return (0..chunk_count)
            .map(|index| work(&mut state, index))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..chunk_count).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers.min(chunk_count) {
            scope.spawn(|| {
                let mut state = make_state();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= chunk_count {
                        break;
                    }
                    let result = work(&mut state, index);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every chunk index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallelism_resolves_to_positive_worker_counts() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::threads(0).worker_count(), 1);
        assert_eq!(Parallelism::threads(1).worker_count(), 1);
        assert_eq!(Parallelism::threads(4).worker_count(), 4);
        assert!(Parallelism::Auto.worker_count() >= 1);
    }

    #[test]
    fn results_come_back_in_chunk_order() {
        for workers in [1usize, 2, 4, 8] {
            let out = run_chunked(37, workers, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_chunk_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_chunked(100, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        let distinct: HashSet<usize> = out.into_iter().collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let out: Vec<usize> = run_chunked(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn per_worker_state_is_reused_across_chunks() {
        // Each worker's scratch counter grows with the chunks it claims;
        // the total across all results equals the chunk count, and results
        // stay in chunk order regardless of worker count.
        for workers in [1usize, 2, 4] {
            let out = run_chunked_with(
                24,
                workers,
                || 0usize,
                |claimed, index| {
                    *claimed += 1;
                    (index, *claimed)
                },
            );
            let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
            assert_eq!(indices, (0..24).collect::<Vec<_>>(), "{workers} workers");
            assert!(
                out.iter().all(|&(_, claimed)| claimed >= 1),
                "{workers} workers"
            );
            if workers == 1 {
                // Serial: one state serves every chunk in order.
                let counts: Vec<usize> = out.iter().map(|&(_, c)| c).collect();
                assert_eq!(counts, (1..=24).collect::<Vec<_>>());
            }
        }
    }
}
