//! The campaign orchestrator: one engine from die sampling to metric CDFs.
//!
//! A [`Campaign`] drives the paper's Monte-Carlo protocol (§4/§5.2): for
//! every failure count `n = 1..=N_max` it draws `samples_per_count` fault
//! maps and evaluates **every scheme of the catalogue on the same die**
//! (paired comparison), weighting each sample by `Pr(N = n) /
//! samples_per_count` so the union describes the manufactured-die
//! population.
//!
//! The work is split into fixed-size chunks that worker threads claim
//! dynamically. Each sample derives its RNG from the campaign seed and its
//! global index ([`StreamSeeder`]), and chunk results merge in chunk order,
//! so a campaign is **bit-identical at any worker count** — the property the
//! serial-vs-parallel regression tests pin down.
//!
//! Campaigns are generic over the fault-generating [`FaultBackend`]: the
//! default [`SramVddBackend`] reproduces the paper's iid voltage-scaling
//! model bit-for-bit, while `DramRetentionBackend` / `MlcNvmBackend` (or
//! any user-defined backend) swap in structured, non-iid fault processes
//! without touching the campaign protocol — determinism and paired
//! comparison hold for every backend because per-sample RNG streams depend
//! only on `(seed, sample index)`.

use crate::accumulate::{Accumulator, PairedSample};
use crate::error::{RunError, SimError};
use crate::executor::{run_chunked_with, Parallelism};
use faultmit_core::MitigationScheme;
use faultmit_memsim::{
    BlockScratch, DieBatch, DieBlock, DieScratch, FailureCountDistribution, FaultBackend, FaultMap,
    ImageSpec, Lane, MemoryConfig, PlannedSample, SramVddBackend, StreamSeeder,
};
use faultmit_obs as obs;
use std::convert::Infallible;
use std::fmt;
use std::ops::Range;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One shard of a campaign split across `shard_count` independent runs.
///
/// A campaign's work list is deterministic (it depends only on the
/// configuration), so it can be partitioned into `shard_count` disjoint
/// chunk ranges and each range evaluated by a separate process — or a
/// separate machine, since per-sample RNG streams derive from
/// `(seed, global sample index)` alone. Accumulators of the shards merged
/// **in shard order** are bit-identical to the monolithic run: the
/// monolithic path *is* the `0/1` shard ([`ShardSpec::solo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    shard_index: usize,
    shard_count: usize,
}

impl ShardSpec {
    /// Creates the spec for shard `shard_index` of `shard_count`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `shard_count` is zero or
    /// `shard_index` is out of range.
    pub fn new(shard_index: usize, shard_count: usize) -> Result<Self, SimError> {
        if shard_count == 0 {
            return Err(SimError::InvalidParameter {
                reason: "shard count must be at least 1".to_owned(),
            });
        }
        if shard_index >= shard_count {
            return Err(SimError::InvalidParameter {
                reason: format!("shard index {shard_index} outside 0..{shard_count}"),
            });
        }
        Ok(Self {
            shard_index,
            shard_count,
        })
    }

    /// The single shard covering the whole campaign — monolithic execution.
    #[must_use]
    pub fn solo() -> Self {
        Self {
            shard_index: 0,
            shard_count: 1,
        }
    }

    /// All shards of a `shard_count`-way split, in shard order — the work
    /// list a campaign driver schedules. An empty iterator for
    /// `shard_count == 0` (no valid spec exists).
    pub fn all(shard_count: usize) -> impl Iterator<Item = ShardSpec> {
        (0..shard_count).map(move |shard_index| Self {
            shard_index,
            shard_count,
        })
    }

    /// This shard's index in `0..shard_count()`.
    #[must_use]
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// Total number of shards the campaign is split into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// `true` when this spec covers the whole campaign (`0/1`).
    #[must_use]
    pub fn is_solo(&self) -> bool {
        self.shard_count == 1
    }

    /// The contiguous range of chunk indices this shard owns out of
    /// `chunk_count` total chunks.
    ///
    /// Ranges of consecutive shards tile `0..chunk_count` exactly (balanced
    /// to within one chunk), so concatenating all shards in shard order
    /// reproduces the monolithic chunk sequence.
    #[must_use]
    pub fn chunk_range(&self, chunk_count: usize) -> Range<usize> {
        let start = self.shard_index * chunk_count / self.shard_count;
        let end = (self.shard_index + 1) * chunk_count / self.shard_count;
        start..end
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.shard_index, self.shard_count)
    }
}

impl FromStr for ShardSpec {
    type Err = SimError;

    /// Parses the `I/K` notation used by the `--shard` CLI flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let invalid = || SimError::InvalidParameter {
            reason: format!("shard spec '{s}' must be I/K with 0 <= I < K"),
        };
        let (index, count) = s.split_once('/').ok_or_else(invalid)?;
        let index: usize = index.trim().parse().map_err(|_| invalid())?;
        let count: usize = count.trim().parse().map_err(|_| invalid())?;
        Self::new(index, count)
    }
}

/// How sampled fault maps are filtered before evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapPolicy {
    /// Keep every sampled map (the Fig. 5 protocol).
    #[default]
    Unrestricted,
    /// Redraw (up to the given bound) maps that place more than one fault in
    /// a single row — the Fig. 7 protocol under which SECDED is error-free.
    ///
    /// The filter is **best-effort**: when the budget is exhausted the last
    /// map is kept even if it still has multi-fault rows. Under the iid SRAM
    /// backend at Fig. 7 densities redraws virtually always succeed, but
    /// spatially structured backends (clustered DRAM retention) collide by
    /// construction, so at higher fault counts most kept maps retain
    /// multi-fault rows and word-level ECC is *not* error-free — an expected
    /// property of those technologies, not a sampling artefact.
    SingleFaultPerRow {
        /// Maximum redraws per sample before giving up and keeping the map.
        max_redraws: usize,
    },
}

/// Timing breakdown of one shard run, returned by the `_stats` variants of
/// the shard runners ([`Campaign::try_run_shard_stats`],
/// [`Campaign::run_shard_blocks_stats`]).
///
/// The plain runners skip the timing instrumentation entirely (no clock
/// reads in the hot loop), and results are bit-identical either way — the
/// stats are observability, not configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Wall-clock seconds spent generating dies (sampling fault maps /
    /// blocks), summed across worker threads — with more than one worker
    /// this is CPU time and can exceed the shard's elapsed time.
    pub generation_seconds: f64,
    /// Everything the observability layer recorded during the run: the
    /// delta of the calling thread's current [`faultmit_obs::Recorder`]
    /// across the shard (zero when no recorder is installed). Counter
    /// totals obey the same worker-count bit-identity contract as the
    /// results; stage times and realloc events are host-dependent.
    pub metrics: obs::MetricsSnapshot,
}

/// Which evaluation kernel a campaign drives. Every fixed kernel produces
/// **bit-identical** per-panel results (the `kernel_equivalence` suite pins
/// this); they differ only in throughput. [`KernelKind::Auto`] resolves to
/// one of the fixed kernels per campaign before any sampling happens, so it
/// inherits the same bit-identity guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// The dense row-walking kernel over the generic `observe` path.
    Scalar,
    /// The event-driven kernel walking only fault-bearing rows through
    /// `observe_sparse` — the default.
    #[default]
    Sparse,
    /// The bit-sliced kernel: up to 64 dies transposed into `u64` lanes and
    /// evaluated together through `observe_block`, with a scalar tail for
    /// leftover samples.
    Bitsliced,
    /// The wide bit-sliced kernel: up to 256 dies transposed into
    /// [`W256`](faultmit_memsim::W256) lanes (four `u64` words per lane,
    /// autovectorisable element-wise ops) and evaluated together through the
    /// wide block observer, with a scalar tail for leftover samples.
    Bitsliced256,
    /// Density-adaptive choice: resolves to [`KernelKind::Bitsliced256`]
    /// when the expected fault density meets
    /// [`AUTO_FAULTS_PER_ROW_THRESHOLD`] faults per row, and to
    /// [`KernelKind::Sparse`] otherwise. See [`KernelKind::resolve`].
    Auto,
}

/// The density threshold of the `auto` kernel policy, in expected faults
/// per memory row.
///
/// At or above this density (one expected fault per sixteen rows), most
/// sampled dies carry enough fault-bearing rows that the per-row transpose
/// and lane-wide evaluation of the 256-die bit-sliced kernel amortises its
/// fixed cost; below it, the event-driven sparse kernel's skip-empty-rows
/// advantage wins. The constant is pinned by a unit test against the benched
/// operating points in `benches/pipeline.rs`.
pub const AUTO_FAULTS_PER_ROW_THRESHOLD: f64 = 1.0 / 16.0;

impl KernelKind {
    /// All kernels, in scalar → sparse → bitsliced → bitsliced256 → auto
    /// order.
    pub const ALL: [KernelKind; 5] = [
        KernelKind::Scalar,
        KernelKind::Sparse,
        KernelKind::Bitsliced,
        KernelKind::Bitsliced256,
        KernelKind::Auto,
    ];

    /// The CLI / telemetry name of the kernel.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Sparse => "sparse",
            KernelKind::Bitsliced => "bitsliced",
            KernelKind::Bitsliced256 => "bitsliced256",
            KernelKind::Auto => "auto",
        }
    }

    /// Resolves the density-adaptive `auto` kernel to a fixed kernel for a
    /// campaign expecting `expected_faults_per_die` faults spread over
    /// `rows` memory rows; fixed kernels return themselves unchanged.
    ///
    /// `Auto` picks [`KernelKind::Bitsliced256`] when the expected density
    /// reaches [`AUTO_FAULTS_PER_ROW_THRESHOLD`] faults per row and
    /// [`KernelKind::Sparse`] otherwise (including the degenerate
    /// `rows == 0` case).
    #[must_use]
    pub fn resolve(self, expected_faults_per_die: f64, rows: usize) -> KernelKind {
        self.resolve_with_threshold(expected_faults_per_die, rows, AUTO_FAULTS_PER_ROW_THRESHOLD)
    }

    /// [`KernelKind::resolve`] with an explicit density threshold in faults
    /// per row, the hook behind the `--auto-threshold` CLI override. The
    /// default threshold is [`AUTO_FAULTS_PER_ROW_THRESHOLD`].
    #[must_use]
    pub fn resolve_with_threshold(
        self,
        expected_faults_per_die: f64,
        rows: usize,
        faults_per_row_threshold: f64,
    ) -> KernelKind {
        match self {
            KernelKind::Auto => {
                #[allow(clippy::cast_precision_loss)]
                let dense_threshold = rows as f64 * faults_per_row_threshold;
                if rows > 0 && expected_faults_per_die >= dense_threshold {
                    KernelKind::Bitsliced256
                } else {
                    KernelKind::Sparse
                }
            }
            fixed => fixed,
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for KernelKind {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "scalar" => Ok(KernelKind::Scalar),
            "sparse" => Ok(KernelKind::Sparse),
            "bitsliced" => Ok(KernelKind::Bitsliced),
            "bitsliced256" => Ok(KernelKind::Bitsliced256),
            "auto" => Ok(KernelKind::Auto),
            other => Err(SimError::InvalidParameter {
                reason: format!(
                    "unknown kernel '{other}' (expected \
                     scalar|sparse|bitsliced|bitsliced256|auto)"
                ),
            }),
        }
    }
}

/// Configuration of a fault-injection campaign, generic over the
/// fault-generating [`FaultBackend`] (default: the paper's SRAM model, so
/// existing `(memory, p_cell)` call sites are unchanged and bit-identical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig<B: FaultBackend = SramVddBackend> {
    backend: B,
    samples_per_count: usize,
    max_failures: Option<u64>,
    exact_failures: Option<u64>,
    coverage: f64,
    chunk_size: usize,
    parallelism: Parallelism,
    map_policy: MapPolicy,
    image: ImageSpec,
    scratch_reuse: bool,
    wide_generation: bool,
}

impl CampaignConfig<SramVddBackend> {
    /// Creates a campaign over an SRAM memory with the given geometry and
    /// cell failure probability — the legacy constructor, equivalent to
    /// [`CampaignConfig::for_backend`] with
    /// [`SramVddBackend::with_p_cell`].
    ///
    /// Defaults: 100 fault maps per failure count, failure counts up to the
    /// 99th percentile of the binomial distribution, unrestricted maps,
    /// chunked in blocks of 32 samples, one worker per CPU.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `p_cell` is outside
    /// `[0, 1]`.
    pub fn new(memory: MemoryConfig, p_cell: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&p_cell) || p_cell.is_nan() {
            return Err(SimError::InvalidParameter {
                reason: format!("cell failure probability {p_cell} outside [0, 1]"),
            });
        }
        Self::for_backend(SramVddBackend::with_p_cell(memory, p_cell)?)
    }
}

impl<B: FaultBackend> CampaignConfig<B> {
    /// Creates a campaign drawing dies from the given backend, with the
    /// same defaults as [`CampaignConfig::new`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when the backend reports a
    /// per-cell fault probability outside `[0, 1]`.
    pub fn for_backend(backend: B) -> Result<Self, SimError> {
        let p_cell = backend.p_cell();
        if !(0.0..=1.0).contains(&p_cell) || p_cell.is_nan() {
            return Err(SimError::InvalidParameter {
                reason: format!(
                    "backend '{}' reports cell failure probability {p_cell} outside [0, 1]",
                    backend.name()
                ),
            });
        }
        Ok(Self {
            backend,
            samples_per_count: 100,
            max_failures: None,
            exact_failures: None,
            coverage: 0.99,
            chunk_size: 32,
            parallelism: Parallelism::default(),
            map_policy: MapPolicy::default(),
            image: ImageSpec::Zeros,
            scratch_reuse: true,
            wide_generation: true,
        })
    }

    /// Sets the number of fault maps drawn per failure count.
    #[must_use]
    pub fn with_samples_per_count(mut self, samples: usize) -> Self {
        self.samples_per_count = samples.max(1);
        self
    }

    /// Caps the largest simulated failure count.
    #[must_use]
    pub fn with_max_failures(mut self, max_failures: u64) -> Self {
        self.max_failures = Some(max_failures);
        self
    }

    /// Simulates a single fixed failure count instead of the binomial sweep
    /// (used by ablations that operate at explicit fault densities). Every
    /// sample then carries weight `1 / samples_per_count`.
    #[must_use]
    pub fn with_exact_failures(mut self, failures: u64) -> Self {
        self.exact_failures = Some(failures);
        self
    }

    /// Sets the probability mass the automatically derived `N_max` covers
    /// (default 0.99, the paper's choice).
    #[must_use]
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        self.coverage = coverage.clamp(0.0, 1.0);
        self
    }

    /// Sets the number of samples per work chunk.
    ///
    /// The chunk size trades scheduling overhead against load balance; it
    /// does **not** affect results (chunks merge in order).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Sets the worker-thread policy.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the fault-map filtering policy.
    #[must_use]
    pub fn with_map_policy(mut self, map_policy: MapPolicy) -> Self {
        self.map_policy = map_policy;
        self
    }

    /// Declares the data image the campaign's metric is evaluated against
    /// (default: [`ImageSpec::Zeros`], the paper's all-zeros background).
    ///
    /// The campaign core hands every evaluator the raw fault map regardless
    /// of the image — data-awareness belongs to the metric — but recording
    /// the image here makes it part of the campaign's identity, so
    /// data-aware evaluator layers (the MSE engine of `faultmit-analysis`)
    /// and campaign reports read one authoritative value.
    #[must_use]
    pub fn with_image(mut self, image: ImageSpec) -> Self {
        self.image = image;
        self
    }

    /// Toggles per-worker [`DieScratch`] reuse (default **on**): each worker
    /// thread keeps one warm arena across all its chunks, so steady-state
    /// die generation performs zero heap allocations. Turning it off
    /// restores the legacy fresh-allocation `DieBatch` path — results are
    /// **bit-identical** either way (the kernel-equivalence suite pins
    /// this); the toggle exists as the scalar baseline for throughput
    /// benches and as the cross-check in equivalence tests.
    #[must_use]
    pub fn with_scratch_reuse(mut self, scratch_reuse: bool) -> Self {
        self.scratch_reuse = scratch_reuse;
        self
    }

    /// Whether per-worker scratch arenas are reused across dies.
    #[must_use]
    pub fn scratch_reuse(&self) -> bool {
        self.scratch_reuse
    }

    /// Toggles the lane-interleaved block generation path (default **on**):
    /// block kernels ([`KernelKind::Bitsliced`]/[`KernelKind::Bitsliced256`])
    /// generate wide-capable backends' dies [`faultmit_memsim::WIDE_LANES`]
    /// at a time through [`faultmit_memsim::widegen`]. Results are
    /// **bit-identical** either way — each lane replays the exact scalar
    /// per-sample RNG stream — so the toggle exists as the scalar baseline
    /// for throughput benches and as the cross-check in equivalence tests.
    /// Backends that do not opt in, and single-fault-per-row map policies,
    /// take the scalar path regardless.
    #[must_use]
    pub fn with_wide_generation(mut self, wide_generation: bool) -> Self {
        self.wide_generation = wide_generation;
        self
    }

    /// Whether block kernels use the lane-interleaved generation path.
    #[must_use]
    pub fn wide_generation(&self) -> bool {
        self.wide_generation
    }

    /// The data image the campaign's metric is declared against.
    #[must_use]
    pub fn image(&self) -> ImageSpec {
        self.image
    }

    /// The fault-generating backend under study.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Memory geometry under study.
    #[must_use]
    pub fn memory(&self) -> MemoryConfig {
        self.backend.config()
    }

    /// Marginal cell failure probability at the backend's operating point.
    #[must_use]
    pub fn p_cell(&self) -> f64 {
        self.backend.p_cell()
    }

    /// Number of fault maps per failure count.
    #[must_use]
    pub fn samples_per_count(&self) -> usize {
        self.samples_per_count
    }

    /// The configured worker-thread policy.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The configured fault-map policy.
    #[must_use]
    pub fn map_policy(&self) -> MapPolicy {
        self.map_policy
    }

    /// The failure-count distribution implied by the configuration.
    ///
    /// # Errors
    ///
    /// Propagates invalid-probability errors (none occur for a validated
    /// configuration).
    pub fn failure_distribution(&self) -> Result<FailureCountDistribution, SimError> {
        Ok(self.backend.failure_distribution()?)
    }

    /// The largest failure count that will be simulated.
    ///
    /// # Errors
    ///
    /// Propagates errors from building the failure distribution.
    pub fn effective_max_failures(&self) -> Result<u64, SimError> {
        match self.max_failures {
            Some(n) => Ok(n),
            None => Ok(self.failure_distribution()?.n_max(self.coverage)),
        }
    }

    /// The expected number of faults injected per sampled die, used by the
    /// [`KernelKind::Auto`] density policy.
    ///
    /// An exact-failure campaign injects exactly that count into every die;
    /// a swept campaign runs `samples_per_count` dies at every count in
    /// `1..=effective_max_failures`, so the mean over the whole campaign is
    /// the midpoint `(1 + n_max) / 2`.
    ///
    /// # Errors
    ///
    /// Propagates errors from building the failure distribution.
    pub fn expected_faults_per_die(&self) -> Result<f64, SimError> {
        #[allow(clippy::cast_precision_loss)]
        match self.exact_failures {
            Some(n) => Ok(n as f64),
            None => Ok((1.0 + self.effective_max_failures()? as f64) / 2.0),
        }
    }
}

/// The parallel fault-injection campaign engine, generic over the
/// fault-generating backend.
#[derive(Debug, Clone)]
pub struct Campaign<B: FaultBackend = SramVddBackend> {
    config: CampaignConfig<B>,
}

impl<B: FaultBackend> Campaign<B> {
    /// Creates an engine for the given configuration.
    #[must_use]
    pub fn new(config: CampaignConfig<B>) -> Self {
        Self { config }
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig<B> {
        &self.config
    }

    /// Runs the campaign with an infallible per-sample metric.
    ///
    /// `evaluate(scheme, fault_map)` is called once per `(scheme, die)` pair
    /// — every scheme sees the identical die. `make_accumulator` creates one
    /// chunk-local accumulator per work chunk; chunk results merge in chunk
    /// order into the returned accumulator.
    ///
    /// Monolithic execution is the [`ShardSpec::solo`] special case of
    /// [`Campaign::run_shard`].
    ///
    /// # Errors
    ///
    /// Propagates configuration and sampling errors.
    pub fn run<S, F, A>(
        &self,
        schemes: &[S],
        seed: u64,
        evaluate: F,
        make_accumulator: impl Fn() -> A + Sync,
    ) -> Result<A, SimError>
    where
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> f64 + Sync,
        A: Accumulator,
    {
        self.run_shard(schemes, seed, ShardSpec::solo(), evaluate, make_accumulator)
    }

    /// Runs one shard of the campaign with an infallible per-sample metric
    /// (see [`Campaign::try_run_shard`]).
    ///
    /// # Errors
    ///
    /// Propagates configuration and sampling errors.
    pub fn run_shard<S, F, A>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        evaluate: F,
        make_accumulator: impl Fn() -> A + Sync,
    ) -> Result<A, SimError>
    where
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> f64 + Sync,
        A: Accumulator,
    {
        self.try_run_shard(
            schemes,
            seed,
            shard,
            |scheme, map| Ok::<f64, Infallible>(evaluate(scheme, map)),
            make_accumulator,
        )
        .map_err(|error| match error {
            RunError::Sim(e) => e,
            RunError::Eval(infallible) => match infallible {},
        })
    }

    /// Runs the campaign with a fallible per-sample metric (e.g. the
    /// application-quality evaluator, which can fail on degenerate data).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Sim`] for pipeline errors and [`RunError::Eval`]
    /// with the first evaluator error in deterministic (chunk-order)
    /// position.
    pub fn try_run<S, F, A, E>(
        &self,
        schemes: &[S],
        seed: u64,
        evaluate: F,
        make_accumulator: impl Fn() -> A + Sync,
    ) -> Result<A, RunError<E>>
    where
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> Result<f64, E> + Sync,
        A: Accumulator,
        E: Send,
    {
        self.try_run_shard(schemes, seed, ShardSpec::solo(), evaluate, make_accumulator)
    }

    /// The number of chunks the campaign's work list is split into — the
    /// granularity at which [`ShardSpec::chunk_range`] partitions work.
    ///
    /// # Errors
    ///
    /// Propagates errors from building the failure distribution.
    pub fn chunk_count(&self) -> Result<usize, SimError> {
        Ok(self.plan_len()?.div_ceil(self.config.chunk_size))
    }

    /// The global sample-index range the given shard evaluates.
    ///
    /// Shard ranges are disjoint and tile `0..total samples` in shard
    /// order; an empty range means the shard has no work (more shards than
    /// chunks).
    ///
    /// # Errors
    ///
    /// Propagates errors from building the failure distribution.
    pub fn shard_sample_range(&self, shard: ShardSpec) -> Result<Range<u64>, SimError> {
        let plan_len = self.plan_len()?;
        let chunks = shard.chunk_range(plan_len.div_ceil(self.config.chunk_size));
        let start = (chunks.start * self.config.chunk_size).min(plan_len);
        let end = (chunks.end * self.config.chunk_size).min(plan_len);
        Ok(start as u64..end as u64)
    }

    fn plan_len(&self) -> Result<usize, SimError> {
        Ok(match self.config.exact_failures {
            Some(_) => self.config.samples_per_count,
            None => self.config.effective_max_failures()? as usize * self.config.samples_per_count,
        })
    }

    /// Runs one shard of the campaign: only the chunks of
    /// [`ShardSpec::chunk_range`] are generated and evaluated, but chunk
    /// boundaries and per-sample RNG streams are computed from the *global*
    /// plan, so shard accumulators merged in shard order (in the sense of
    /// [`Accumulator::merge`]) are **bit-identical** to the monolithic run —
    /// including order-sensitive floating-point weight sums — for every
    /// backend and any worker count. [`Campaign::try_run`] is the
    /// [`ShardSpec::solo`] special case of this method.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Sim`] for pipeline errors and [`RunError::Eval`]
    /// with the first evaluator error in deterministic (chunk-order)
    /// position within the shard.
    pub fn try_run_shard<S, F, A, E>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        evaluate: F,
        make_accumulator: impl Fn() -> A + Sync,
    ) -> Result<A, RunError<E>>
    where
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> Result<f64, E> + Sync,
        A: Accumulator,
        E: Send,
    {
        self.try_run_shard_timed(schemes, seed, shard, evaluate, make_accumulator, None)
    }

    /// [`Campaign::try_run_shard`] plus a [`ShardStats`] timing breakdown.
    /// The accumulator is bit-identical to the untimed runner's.
    ///
    /// # Errors
    ///
    /// Same contract as [`Campaign::try_run_shard`].
    pub fn try_run_shard_stats<S, F, A, E>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        evaluate: F,
        make_accumulator: impl Fn() -> A + Sync,
    ) -> Result<(A, ShardStats), RunError<E>>
    where
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> Result<f64, E> + Sync,
        A: Accumulator,
        E: Send,
    {
        let gen_nanos = AtomicU64::new(0);
        let recorder = obs::current();
        let before = recorder.as_ref().map(|r| r.snapshot());
        let accumulator = self.try_run_shard_timed(
            schemes,
            seed,
            shard,
            evaluate,
            make_accumulator,
            Some(&gen_nanos),
        )?;
        let stats = ShardStats {
            generation_seconds: gen_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            metrics: match (&recorder, &before) {
                (Some(recorder), Some(before)) => recorder.snapshot().since(before),
                _ => obs::MetricsSnapshot::default(),
            },
        };
        Ok((accumulator, stats))
    }

    /// [`Campaign::try_run_shard`] with an optional generation timer:
    /// workers add the nanoseconds they spend generating dies to
    /// `gen_timer` (the mechanism behind
    /// [`Campaign::try_run_shard_stats`]). `None` skips every clock read —
    /// the plain runner delegates here with `None` at zero cost. Layers
    /// that dispatch kernels themselves (the analysis engine) thread their
    /// own timer through this entry point.
    ///
    /// # Errors
    ///
    /// Same contract as [`Campaign::try_run_shard`].
    pub fn try_run_shard_timed<S, F, A, E>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        evaluate: F,
        make_accumulator: impl Fn() -> A + Sync,
        gen_timer: Option<&AtomicU64>,
    ) -> Result<A, RunError<E>>
    where
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> Result<f64, E> + Sync,
        A: Accumulator,
        E: Send,
    {
        let plan_span = obs::span(obs::Stage::Plan);
        let distribution = self.config.failure_distribution()?;
        let samples_per_count = self.config.samples_per_count;
        let (plan, weights) = match self.config.exact_failures {
            Some(n) => {
                let plan: Vec<PlannedSample> = (0..samples_per_count as u64)
                    .map(|k| PlannedSample {
                        index: k,
                        n_faults: n,
                    })
                    .collect();
                let mut weights = vec![0.0; n as usize + 1];
                weights[n as usize] = 1.0 / samples_per_count as f64;
                (plan, weights)
            }
            None => {
                let max_failures = self.config.effective_max_failures()?;
                let plan = build_plan(max_failures, samples_per_count);
                let weights = (0..=max_failures)
                    .map(|n| distribution.pmf(n) / samples_per_count as f64)
                    .collect();
                (plan, weights)
            }
        };
        drop(plan_span);

        let backend = &self.config.backend;
        let seeder = StreamSeeder::new(seed);
        let chunk_size = self.config.chunk_size;
        let chunk_count = plan.len().div_ceil(chunk_size);
        // Chunk boundaries come from the global plan; the shard only selects
        // which contiguous run of chunks to evaluate, so every chunk's
        // contents (and its samples' RNG streams) are identical whether the
        // campaign runs monolithically or split across processes.
        let owned_chunks = shard.chunk_range(chunk_count);
        let workers = self.config.parallelism.worker_count();
        let map_policy = self.config.map_policy;
        let scratch_reuse = self.config.scratch_reuse;

        // The calling thread's recorder (if any) is re-installed on every
        // worker so hot-path counters land in one place regardless of the
        // thread the chunk happens to run on.
        let recorder = obs::current();
        let timing = gen_timer.is_some() || recorder.is_some();

        // Per-worker scratch: a warm `DieScratch` arena plus a recycled
        // metrics buffer, both reused across every chunk the worker claims.
        // Scratch holds storage only — each chunk's result stays a pure
        // function of its index, so bit-identity at any worker count is
        // unaffected.
        let chunk_results: Vec<Result<A, RunError<E>>> = run_chunked_with(
            owned_chunks.len(),
            workers,
            || {
                (
                    recorder.as_ref().map(obs::install),
                    DieScratch::new(backend.config()),
                    Vec::<f64>::with_capacity(schemes.len()),
                )
            },
            |(_recorder_guard, scratch, metrics), local_index| {
                let chunk_index = owned_chunks.start + local_index;
                let start = chunk_index * chunk_size;
                let end = (start + chunk_size).min(plan.len());
                let mut accumulator = make_accumulator();
                // Timing is accumulated locally per chunk and flushed with
                // one atomic add (and one arena flush), so the (optional)
                // stage clocks cost a few reads per die and nothing
                // cross-thread.
                let mut arena = obs::MetricsArena::new();
                let mut gen_nanos = 0u64;
                let mut observe_nanos = 0u64;
                let mut reduce_nanos = 0u64;
                let evaluated = (end - start) as u64;

                if scratch_reuse {
                    for planned in &plan[start..end] {
                        let mut rng = seeder.rng_for_sample(planned.index);
                        let n = planned.n_faults as usize;
                        let clock = timing.then(Instant::now);
                        let map = match map_policy {
                            MapPolicy::Unrestricted => scratch.generate(backend, &mut rng, n),
                            MapPolicy::SingleFaultPerRow { max_redraws } => scratch
                                .generate_single_fault_per_row(backend, &mut rng, n, max_redraws),
                        }
                        .map_err(|e| RunError::Sim(SimError::from(e)))?;
                        let clock = clock.map(|t| {
                            gen_nanos += t.elapsed().as_nanos() as u64;
                            Instant::now()
                        });
                        metrics.clear();
                        for scheme in schemes {
                            metrics.push(evaluate(scheme, map).map_err(RunError::Eval)?);
                        }
                        let clock = clock.map(|t| {
                            observe_nanos += t.elapsed().as_nanos() as u64;
                            Instant::now()
                        });
                        let sample = PairedSample {
                            sample_index: planned.index,
                            n_faults: planned.n_faults,
                            weight: weights[planned.n_faults as usize],
                            metrics: std::mem::take(metrics),
                        };
                        accumulator.record(&sample);
                        // Reclaim the metrics buffer for the next die.
                        *metrics = sample.metrics;
                        if let Some(t) = clock {
                            reduce_nanos += t.elapsed().as_nanos() as u64;
                        }
                    }
                } else {
                    // Legacy fresh-allocation path: one `DieBatch` per chunk
                    // — the reference the equivalence suite compares against
                    // and the scalar baseline of the throughput benches.
                    let clock = timing.then(Instant::now);
                    let batch = match map_policy {
                        MapPolicy::Unrestricted => {
                            DieBatch::generate_with_backend(backend, &seeder, &plan[start..end])
                        }
                        MapPolicy::SingleFaultPerRow { max_redraws } => {
                            DieBatch::generate_single_fault_per_row_with_backend(
                                backend,
                                &seeder,
                                &plan[start..end],
                                max_redraws,
                            )
                        }
                    }
                    .map_err(|e| RunError::Sim(SimError::from(e)))?;
                    let clock = clock.map(|t| {
                        gen_nanos += t.elapsed().as_nanos() as u64;
                        Instant::now()
                    });

                    for (planned, map) in batch.iter() {
                        let metrics = schemes
                            .iter()
                            .map(|scheme| evaluate(scheme, map))
                            .collect::<Result<Vec<f64>, E>>()
                            .map_err(RunError::Eval)?;
                        accumulator.record(&PairedSample {
                            sample_index: planned.index,
                            n_faults: planned.n_faults,
                            weight: weights[planned.n_faults as usize],
                            metrics,
                        });
                    }
                    if let Some(t) = clock {
                        observe_nanos += t.elapsed().as_nanos() as u64;
                    }
                }

                if let Some(timer) = gen_timer {
                    timer.fetch_add(gen_nanos, Ordering::Relaxed);
                }
                arena.count(obs::Counter::ChunksExecuted, 1);
                arena.count(obs::Counter::SamplesEvaluated, evaluated);
                if timing {
                    arena.add_stage(obs::Stage::Generate, gen_nanos, evaluated);
                    arena.add_stage(obs::Stage::Observe, observe_nanos, evaluated);
                    arena.add_stage(obs::Stage::Reduce, reduce_nanos, evaluated);
                }
                arena.flush();
                Ok(accumulator)
            },
        );

        let merge_span = obs::span(obs::Stage::Merge);
        let mut merged = make_accumulator();
        for result in chunk_results {
            merged.merge(result?);
        }
        drop(merge_span);
        Ok(merged)
    }

    /// Runs one shard through the **bit-sliced** evaluation pipeline: each
    /// chunk's samples are grouped into transposed [`DieBlock`]s of up to
    /// `L::LANES` dies (64 for `u64` lanes, 256 for
    /// [`W256`](faultmit_memsim::W256)), `evaluate_block(scheme, block,
    /// out)` fills `out[j]` with die `j`'s metric for all dies at once, and
    /// degenerate single-sample groups fall back to the scalar
    /// `evaluate_sample` tail — so any `(samples, chunk size, shard)` plan
    /// still works at any lane width.
    ///
    /// Chunk boundaries, per-sample RNG streams, weights and record order
    /// are computed exactly as in [`Campaign::try_run_shard`]; when the two
    /// evaluators agree per die, the resulting accumulator is
    /// **bit-identical** to the per-sample kernels at any worker count,
    /// shard split and lane width.
    ///
    /// # Errors
    ///
    /// Propagates configuration and sampling errors.
    pub fn run_shard_blocks<L, S, F, G, A>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        evaluate_sample: F,
        evaluate_block: G,
        make_accumulator: impl Fn() -> A + Sync,
    ) -> Result<A, SimError>
    where
        L: Lane,
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> f64 + Sync,
        G: Fn(&S, &DieBlock<'_, L>, &mut [f64]) + Sync,
        A: Accumulator,
    {
        self.run_shard_blocks_timed(
            schemes,
            seed,
            shard,
            evaluate_sample,
            evaluate_block,
            make_accumulator,
            None,
        )
    }

    /// [`Campaign::run_shard_blocks`] plus a [`ShardStats`] timing
    /// breakdown. The accumulator is bit-identical to the untimed runner's.
    ///
    /// # Errors
    ///
    /// Same contract as [`Campaign::run_shard_blocks`].
    pub fn run_shard_blocks_stats<L, S, F, G, A>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        evaluate_sample: F,
        evaluate_block: G,
        make_accumulator: impl Fn() -> A + Sync,
    ) -> Result<(A, ShardStats), SimError>
    where
        L: Lane,
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> f64 + Sync,
        G: Fn(&S, &DieBlock<'_, L>, &mut [f64]) + Sync,
        A: Accumulator,
    {
        let gen_nanos = AtomicU64::new(0);
        let recorder = obs::current();
        let before = recorder.as_ref().map(|r| r.snapshot());
        let accumulator = self.run_shard_blocks_timed(
            schemes,
            seed,
            shard,
            evaluate_sample,
            evaluate_block,
            make_accumulator,
            Some(&gen_nanos),
        )?;
        let stats = ShardStats {
            generation_seconds: gen_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            metrics: match (&recorder, &before) {
                (Some(recorder), Some(before)) => recorder.snapshot().since(before),
                _ => obs::MetricsSnapshot::default(),
            },
        };
        Ok((accumulator, stats))
    }

    /// [`Campaign::run_shard_blocks`] with an optional generation timer
    /// (see [`Campaign::try_run_shard_timed`] for the protocol).
    ///
    /// # Errors
    ///
    /// Same contract as [`Campaign::run_shard_blocks`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_shard_blocks_timed<L, S, F, G, A>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        evaluate_sample: F,
        evaluate_block: G,
        make_accumulator: impl Fn() -> A + Sync,
        gen_timer: Option<&AtomicU64>,
    ) -> Result<A, SimError>
    where
        L: Lane,
        S: MitigationScheme + Sync,
        F: Fn(&S, &FaultMap) -> f64 + Sync,
        G: Fn(&S, &DieBlock<'_, L>, &mut [f64]) + Sync,
        A: Accumulator,
    {
        let plan_span = obs::span(obs::Stage::Plan);
        let distribution = self.config.failure_distribution()?;
        let samples_per_count = self.config.samples_per_count;
        let (plan, weights) = match self.config.exact_failures {
            Some(n) => {
                let plan: Vec<PlannedSample> = (0..samples_per_count as u64)
                    .map(|k| PlannedSample {
                        index: k,
                        n_faults: n,
                    })
                    .collect();
                let mut weights = vec![0.0; n as usize + 1];
                weights[n as usize] = 1.0 / samples_per_count as f64;
                (plan, weights)
            }
            None => {
                let max_failures = self.config.effective_max_failures()?;
                let plan = build_plan(max_failures, samples_per_count);
                let weights = (0..=max_failures)
                    .map(|n| distribution.pmf(n) / samples_per_count as f64)
                    .collect();
                (plan, weights)
            }
        };
        drop(plan_span);

        let backend = &self.config.backend;
        let seeder = StreamSeeder::new(seed);
        let chunk_size = self.config.chunk_size;
        let chunk_count = plan.len().div_ceil(chunk_size);
        let owned_chunks = shard.chunk_range(chunk_count);
        let workers = self.config.parallelism.worker_count();
        // The single-fault-per-row protocol threads through the block
        // generator as a redraw budget so RNG consumption stays identical.
        let max_redraws = match self.config.map_policy {
            MapPolicy::Unrestricted => None,
            MapPolicy::SingleFaultPerRow { max_redraws } => Some(max_redraws),
        };
        let wide_generation = self.config.wide_generation;

        // Re-install the calling thread's recorder (if any) on every worker
        // so block-kernel counters land in one place.
        let recorder = obs::current();
        let timing = gen_timer.is_some() || recorder.is_some();

        // Per-worker scratch: one warm arena (fault map + transposed block
        // buffers), a recycled per-die metrics vector, and the per-scheme
        // block output matrix (schemes × L::LANES lanes).
        let chunk_results: Vec<Result<A, SimError>> = run_chunked_with(
            owned_chunks.len(),
            workers,
            || {
                let mut scratch = BlockScratch::<L>::new(backend.config());
                scratch.set_wide_generation(wide_generation);
                (
                    recorder.as_ref().map(obs::install),
                    scratch,
                    Vec::<f64>::with_capacity(schemes.len()),
                    vec![0.0f64; schemes.len() * L::LANES],
                )
            },
            |(_recorder_guard, scratch, metrics, block_out), local_index| {
                let chunk_index = owned_chunks.start + local_index;
                let start = chunk_index * chunk_size;
                let end = (start + chunk_size).min(plan.len());
                let mut accumulator = make_accumulator();
                // Per-chunk local accumulation, one atomic flush per chunk.
                let mut arena = obs::MetricsArena::new();
                let mut gen_nanos = 0u64;
                let mut observe_nanos = 0u64;
                let mut reduce_nanos = 0u64;
                let evaluated = (end - start) as u64;

                for group in plan[start..end].chunks(L::LANES) {
                    if let [planned] = group {
                        // Scalar tail: a lone sample is cheaper through the
                        // per-die sparse path than through transposition.
                        let scalar = scratch.scalar_mut();
                        let mut rng = seeder.rng_for_sample(planned.index);
                        let n = planned.n_faults as usize;
                        let clock = timing.then(Instant::now);
                        let map = match max_redraws {
                            None => scalar.generate(backend, &mut rng, n),
                            Some(budget) => {
                                scalar.generate_single_fault_per_row(backend, &mut rng, n, budget)
                            }
                        }
                        .map_err(SimError::from)?;
                        let clock = clock.map(|t| {
                            gen_nanos += t.elapsed().as_nanos() as u64;
                            Instant::now()
                        });
                        metrics.clear();
                        for scheme in schemes {
                            metrics.push(evaluate_sample(scheme, map));
                        }
                        let clock = clock.map(|t| {
                            observe_nanos += t.elapsed().as_nanos() as u64;
                            Instant::now()
                        });
                        let sample = PairedSample {
                            sample_index: planned.index,
                            n_faults: planned.n_faults,
                            weight: weights[planned.n_faults as usize],
                            metrics: std::mem::take(metrics),
                        };
                        accumulator.record(&sample);
                        *metrics = sample.metrics;
                        if let Some(t) = clock {
                            reduce_nanos += t.elapsed().as_nanos() as u64;
                        }
                        continue;
                    }

                    let clock = timing.then(Instant::now);
                    let block = scratch
                        .generate_block(backend, &seeder, group, max_redraws)
                        .map_err(SimError::from)?;
                    let clock = clock.map(|t| {
                        gen_nanos += t.elapsed().as_nanos() as u64;
                        Instant::now()
                    });
                    for (s, scheme) in schemes.iter().enumerate() {
                        evaluate_block(
                            scheme,
                            &block,
                            &mut block_out[s * L::LANES..(s + 1) * L::LANES],
                        );
                    }
                    let clock = clock.map(|t| {
                        observe_nanos += t.elapsed().as_nanos() as u64;
                        Instant::now()
                    });
                    for (j, planned) in group.iter().enumerate() {
                        metrics.clear();
                        for s in 0..schemes.len() {
                            metrics.push(block_out[s * L::LANES + j]);
                        }
                        let sample = PairedSample {
                            sample_index: planned.index,
                            n_faults: planned.n_faults,
                            weight: weights[planned.n_faults as usize],
                            metrics: std::mem::take(metrics),
                        };
                        accumulator.record(&sample);
                        *metrics = sample.metrics;
                    }
                    if let Some(t) = clock {
                        reduce_nanos += t.elapsed().as_nanos() as u64;
                    }
                }
                if let Some(timer) = gen_timer {
                    timer.fetch_add(gen_nanos, Ordering::Relaxed);
                }
                arena.count(obs::Counter::ChunksExecuted, 1);
                arena.count(obs::Counter::SamplesEvaluated, evaluated);
                if timing {
                    arena.add_stage(obs::Stage::Generate, gen_nanos, evaluated);
                    arena.add_stage(obs::Stage::Observe, observe_nanos, evaluated);
                    arena.add_stage(obs::Stage::Reduce, reduce_nanos, evaluated);
                }
                arena.flush();
                Ok(accumulator)
            },
        );

        let merge_span = obs::span(obs::Stage::Merge);
        let mut merged = make_accumulator();
        for result in chunk_results {
            merged.merge(result?);
        }
        drop(merge_span);
        Ok(merged)
    }
}

/// The campaign's work list: `samples_per_count` samples for every failure
/// count `1..=max_failures`, with globally unique, dense sample indices.
fn build_plan(max_failures: u64, samples_per_count: usize) -> Vec<PlannedSample> {
    let mut plan = Vec::with_capacity(max_failures as usize * samples_per_count);
    for n in 1..=max_failures {
        for k in 0..samples_per_count as u64 {
            plan.push(PlannedSample {
                index: (n - 1) * samples_per_count as u64 + k,
                n_faults: n,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::CollectRecords;
    use faultmit_core::Scheme;

    fn config() -> CampaignConfig {
        CampaignConfig::new(MemoryConfig::new(128, 32).unwrap(), 1e-3)
            .unwrap()
            .with_samples_per_count(10)
            .with_max_failures(6)
            .with_chunk_size(4)
    }

    #[test]
    fn config_validation() {
        assert!(CampaignConfig::new(MemoryConfig::new(16, 32).unwrap(), -0.1).is_err());
        assert!(CampaignConfig::new(MemoryConfig::new(16, 32).unwrap(), 1.5).is_err());
        assert!(CampaignConfig::new(MemoryConfig::new(16, 32).unwrap(), f64::NAN).is_err());
    }

    #[test]
    fn image_spec_rides_in_the_config_identity() {
        use faultmit_memsim::ImageSpec;
        let base = config();
        assert!(base.image().is_zeros());
        let imaged = base.with_image(ImageSpec::UniformRandom { seed: 5 });
        assert_eq!(imaged.image(), ImageSpec::UniformRandom { seed: 5 });
        assert_ne!(base, imaged, "the image is part of the campaign identity");
    }

    #[test]
    fn plan_indices_are_dense_and_unique() {
        let plan = build_plan(5, 7);
        assert_eq!(plan.len(), 35);
        for (i, sample) in plan.iter().enumerate() {
            assert_eq!(sample.index, i as u64);
            assert_eq!(sample.n_faults, 1 + i as u64 / 7);
        }
    }

    #[test]
    fn paired_metrics_line_up_with_schemes() {
        let campaign = Campaign::new(config());
        let schemes = [Scheme::unprotected32(), Scheme::secded32()];
        let result = campaign
            .run(
                &schemes,
                1,
                |scheme, map| map.fault_count() as f64 + scheme.extra_bits_per_row() as f64,
                CollectRecords::new,
            )
            .unwrap();
        assert_eq!(result.records.len(), 60);
        for record in &result.records {
            assert_eq!(record.metrics.len(), 2);
            // Same die for both schemes: the metrics differ exactly by the
            // extra-bits term, proving the map is shared.
            assert_eq!(record.metrics[1] - record.metrics[0], 7.0);
            assert_eq!(record.metrics[0], record.n_faults as f64);
        }
    }

    #[test]
    fn records_arrive_in_global_sample_order() {
        let campaign = Campaign::new(config().with_parallelism(Parallelism::threads(4)));
        let result = campaign
            .run(
                &[Scheme::unprotected32()],
                2,
                |_, map| map.fault_count() as f64,
                CollectRecords::new,
            )
            .unwrap();
        let indices: Vec<u64> = result.records.iter().map(|r| r.sample_index).collect();
        assert_eq!(indices, (0..60).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let serial = Campaign::new(config().with_parallelism(Parallelism::Serial));
        let parallel = Campaign::new(config().with_parallelism(Parallelism::threads(8)));
        let schemes = [Scheme::unprotected32(), Scheme::shuffle32(3).unwrap()];
        let evaluate =
            |scheme: &Scheme, map: &FaultMap| map.fault_count() as f64 * scheme.word_bits() as f64;
        let a = serial
            .run(&schemes, 7, evaluate, CollectRecords::new)
            .unwrap();
        let b = parallel
            .run(&schemes, 7, evaluate, CollectRecords::new)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chunk_size_does_not_change_results() {
        let schemes = [Scheme::unprotected32()];
        let evaluate = |_: &Scheme, map: &FaultMap| map.fault_count() as f64;
        let small = Campaign::new(config().with_chunk_size(1))
            .run(&schemes, 3, evaluate, CollectRecords::new)
            .unwrap();
        let large = Campaign::new(config().with_chunk_size(1000))
            .run(&schemes, 3, evaluate, CollectRecords::new)
            .unwrap();
        assert_eq!(small, large);
    }

    #[test]
    fn weights_follow_the_binomial_pmf() {
        let campaign = Campaign::new(config());
        let distribution = campaign.config().failure_distribution().unwrap();
        let result = campaign
            .run(
                &[Scheme::unprotected32()],
                5,
                |_, _| 0.0,
                CollectRecords::new,
            )
            .unwrap();
        for record in &result.records {
            let expected = distribution.pmf(record.n_faults) / 10.0;
            assert!((record.weight - expected).abs() <= 1e-18 + expected * 1e-12);
        }
    }

    #[test]
    fn single_fault_per_row_policy_is_applied() {
        let campaign = Campaign::new(
            config().with_map_policy(MapPolicy::SingleFaultPerRow { max_redraws: 1000 }),
        );
        let result = campaign
            .run(
                &[Scheme::secded32()],
                11,
                |scheme, map| {
                    // Under the policy SECDED corrects every die.
                    faultmit_core::MitigationScheme::observe(scheme, map, 0, 0).value as f64
                },
                CollectRecords::new,
            )
            .unwrap();
        assert!(!result.records.is_empty());
    }

    #[test]
    fn exact_failure_count_mode_samples_one_count() {
        let campaign = Campaign::new(config().with_exact_failures(5));
        let result = campaign
            .run(
                &[Scheme::unprotected32()],
                9,
                |_, map| map.fault_count() as f64,
                CollectRecords::new,
            )
            .unwrap();
        assert_eq!(result.records.len(), 10);
        for record in &result.records {
            assert_eq!(record.n_faults, 5);
            assert_eq!(record.metrics[0], 5.0);
            assert!((record.weight - 0.1).abs() < 1e-15);
        }
    }

    #[test]
    fn evaluator_errors_surface_deterministically() {
        let campaign = Campaign::new(config().with_parallelism(Parallelism::threads(4)));
        let result = campaign.try_run(
            &[Scheme::unprotected32()],
            1,
            |_, map| {
                if map.fault_count() >= 3 {
                    Err("too many faults")
                } else {
                    Ok(0.0)
                }
            },
            CollectRecords::new,
        );
        assert_eq!(result.unwrap_err(), RunError::Eval("too many faults"));
    }

    #[test]
    fn effective_max_failures_uses_coverage_or_override() {
        let auto = CampaignConfig::new(MemoryConfig::new(4096, 32).unwrap(), 1e-3).unwrap();
        let n_auto = auto.effective_max_failures().unwrap();
        assert!(n_auto > 131, "n_max must exceed the mean failure count");
        assert_eq!(
            auto.with_max_failures(20).effective_max_failures().unwrap(),
            20
        );
    }

    #[test]
    fn legacy_constructor_is_bit_identical_to_the_sram_backend_path() {
        use faultmit_memsim::SramVddBackend;
        let memory = MemoryConfig::new(128, 32).unwrap();
        let legacy = Campaign::new(
            CampaignConfig::new(memory, 1e-3)
                .unwrap()
                .with_samples_per_count(10)
                .with_max_failures(6),
        );
        let explicit = Campaign::new(
            CampaignConfig::for_backend(SramVddBackend::with_p_cell(memory, 1e-3).unwrap())
                .unwrap()
                .with_samples_per_count(10)
                .with_max_failures(6),
        );
        let schemes = [Scheme::unprotected32()];
        let evaluate = |_: &Scheme, map: &FaultMap| map.fault_count() as f64;
        let a = legacy
            .run(&schemes, 31, evaluate, CollectRecords::new)
            .unwrap();
        let b = explicit
            .run(&schemes, 31, evaluate, CollectRecords::new)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn campaigns_run_identically_on_every_backend_at_any_worker_count() {
        use faultmit_memsim::{Backend, BackendKind};
        let memory = MemoryConfig::new(128, 32).unwrap();
        let schemes = [Scheme::unprotected32(), Scheme::shuffle32(3).unwrap()];
        let evaluate = |_: &Scheme, map: &FaultMap| map.fault_count() as f64;
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
            let base = CampaignConfig::for_backend(backend)
                .unwrap()
                .with_samples_per_count(8)
                .with_max_failures(5)
                .with_chunk_size(3);
            let serial = Campaign::new(base.with_parallelism(Parallelism::Serial))
                .run(&schemes, 13, evaluate, CollectRecords::new)
                .unwrap();
            let threaded = Campaign::new(base.with_parallelism(Parallelism::threads(4)))
                .run(&schemes, 13, evaluate, CollectRecords::new)
                .unwrap();
            assert_eq!(serial, threaded, "{kind} diverges across worker counts");
            assert_eq!(serial.records.len(), 40, "{kind}");
        }
    }

    #[test]
    fn shard_spec_validates_and_parses() {
        assert!(ShardSpec::new(0, 0).is_err());
        assert!(ShardSpec::new(3, 3).is_err());
        let spec = ShardSpec::new(1, 4).unwrap();
        assert_eq!(spec.shard_index(), 1);
        assert_eq!(spec.shard_count(), 4);
        assert!(!spec.is_solo());
        assert!(ShardSpec::solo().is_solo());
        assert_eq!(spec.to_string(), "1/4");
        assert_eq!("1/4".parse::<ShardSpec>().unwrap(), spec);
        assert_eq!("0/1".parse::<ShardSpec>().unwrap(), ShardSpec::solo());
        assert_eq!(
            ShardSpec::all(3).collect::<Vec<_>>(),
            vec![
                ShardSpec::new(0, 3).unwrap(),
                ShardSpec::new(1, 3).unwrap(),
                ShardSpec::new(2, 3).unwrap(),
            ]
        );
        assert_eq!(ShardSpec::all(0).count(), 0);
        assert!("4/4".parse::<ShardSpec>().is_err());
        assert!("1".parse::<ShardSpec>().is_err());
        assert!("a/b".parse::<ShardSpec>().is_err());
        assert!("1/0".parse::<ShardSpec>().is_err());
    }

    #[test]
    fn shard_chunk_ranges_tile_the_chunk_space() {
        for chunk_count in [0usize, 1, 2, 5, 16, 37] {
            for shard_count in [1usize, 2, 3, 7, 40] {
                let mut next = 0;
                for index in 0..shard_count {
                    let range = ShardSpec::new(index, shard_count)
                        .unwrap()
                        .chunk_range(chunk_count);
                    assert_eq!(
                        range.start, next,
                        "{chunk_count} chunks, {shard_count} shards"
                    );
                    next = range.end;
                }
                assert_eq!(next, chunk_count);
            }
        }
    }

    #[test]
    fn sharded_runs_merged_in_order_match_the_monolithic_run() {
        let campaign = Campaign::new(config().with_parallelism(Parallelism::threads(4)));
        let schemes = [Scheme::unprotected32(), Scheme::shuffle32(3).unwrap()];
        let evaluate =
            |scheme: &Scheme, map: &FaultMap| map.fault_count() as f64 * scheme.word_bits() as f64;
        let monolithic = campaign
            .run(&schemes, 19, evaluate, CollectRecords::new)
            .unwrap();
        for shard_count in [1usize, 2, 3, 7, 64] {
            let mut merged = CollectRecords::new();
            for index in 0..shard_count {
                let shard = ShardSpec::new(index, shard_count).unwrap();
                let part = campaign
                    .run_shard(&schemes, 19, shard, evaluate, CollectRecords::new)
                    .unwrap();
                merged.merge(part);
            }
            assert_eq!(merged, monolithic, "{shard_count} shards diverge");
        }
    }

    #[test]
    fn shard_sample_ranges_are_disjoint_and_complete() {
        let campaign = Campaign::new(config());
        let total = campaign.shard_sample_range(ShardSpec::solo()).unwrap();
        assert_eq!(total, 0..60);
        assert_eq!(campaign.chunk_count().unwrap(), 15);
        for shard_count in [2usize, 3, 7, 100] {
            let mut next = 0;
            for index in 0..shard_count {
                let range = campaign
                    .shard_sample_range(ShardSpec::new(index, shard_count).unwrap())
                    .unwrap();
                assert_eq!(range.start, next, "{shard_count} shards");
                next = range.end;
            }
            assert_eq!(next, 60);
        }
    }

    #[test]
    fn exact_failure_campaigns_shard_identically() {
        let campaign = Campaign::new(config().with_exact_failures(4));
        let schemes = [Scheme::unprotected32()];
        let evaluate = |_: &Scheme, map: &FaultMap| map.fault_count() as f64;
        let monolithic = campaign
            .run(&schemes, 5, evaluate, CollectRecords::new)
            .unwrap();
        let mut merged = CollectRecords::new();
        for index in 0..3 {
            merged.merge(
                campaign
                    .run_shard(
                        &schemes,
                        5,
                        ShardSpec::new(index, 3).unwrap(),
                        evaluate,
                        CollectRecords::new,
                    )
                    .unwrap(),
            );
        }
        assert_eq!(merged, monolithic);
    }

    #[test]
    fn kernel_kind_parses_and_displays() {
        assert_eq!(KernelKind::ALL.len(), 5);
        for kernel in KernelKind::ALL {
            assert_eq!(kernel.as_str().parse::<KernelKind>().unwrap(), kernel);
            assert_eq!(kernel.to_string(), kernel.as_str());
        }
        assert_eq!(KernelKind::default(), KernelKind::Sparse);
        let error = "simd".parse::<KernelKind>().unwrap_err().to_string();
        assert!(
            error.contains("scalar|sparse|bitsliced|bitsliced256|auto"),
            "the unknown-kernel error must list the full valid set: {error}"
        );
    }

    #[test]
    fn auto_kernel_resolves_by_fault_density() {
        // Fixed kernels resolve to themselves regardless of density.
        for kernel in [
            KernelKind::Scalar,
            KernelKind::Sparse,
            KernelKind::Bitsliced,
            KernelKind::Bitsliced256,
        ] {
            assert_eq!(kernel.resolve(1e9, 128), kernel);
            assert_eq!(kernel.resolve(0.0, 128), kernel);
        }
        // Auto flips exactly at rows / 16 expected faults per die.
        let rows = 4096usize;
        let threshold = rows as f64 * AUTO_FAULTS_PER_ROW_THRESHOLD;
        assert_eq!(
            KernelKind::Auto.resolve(threshold, rows),
            KernelKind::Bitsliced256
        );
        assert_eq!(
            KernelKind::Auto.resolve(threshold - 1.0, rows),
            KernelKind::Sparse
        );
        // Degenerate geometry falls back to sparse.
        assert_eq!(KernelKind::Auto.resolve(10.0, 0), KernelKind::Sparse);
    }

    #[test]
    fn expected_faults_per_die_follows_the_campaign_plan() {
        // An exact-failure campaign injects that count into every die.
        let exact = config().with_exact_failures(8192);
        assert_eq!(exact.expected_faults_per_die().unwrap(), 8192.0);
        // A swept campaign averages the uniform 1..=n_max plan.
        let swept = config().with_max_failures(13);
        assert_eq!(swept.expected_faults_per_die().unwrap(), 7.0);
    }

    #[test]
    fn block_scheduling_matches_the_per_sample_pipeline() {
        // A per-die metric computable from both representations: the die's
        // fault count. The block path must reproduce the per-sample path's
        // records exactly — indices, weights, metric values, order — for
        // non-multiple-of-lane-width plans, any shard split, both map
        // policies, and both lane widths.
        use faultmit_memsim::{Backend, BackendKind, W256};
        let count_block = |_: &Scheme, block: &DieBlock<'_>, out: &mut [f64]| {
            out[..block.die_count()].fill(0.0);
            for row in block.rows() {
                for cell in row.cells {
                    cell.presence().for_each_die(|die| out[die] += 1.0);
                }
            }
        };
        let count_block_wide = |_: &Scheme, block: &DieBlock<'_, W256>, out: &mut [f64]| {
            out[..block.die_count()].fill(0.0);
            for row in block.rows() {
                for cell in row.cells {
                    cell.presence().for_each_die(|die| out[die] += 1.0);
                }
            }
        };
        let count_sample = |_: &Scheme, map: &FaultMap| map.fault_count() as f64;
        let schemes = [Scheme::unprotected32(), Scheme::shuffle32(3).unwrap()];
        for kind in [BackendKind::Sram, BackendKind::Dram] {
            for policy in [
                MapPolicy::Unrestricted,
                MapPolicy::SingleFaultPerRow { max_redraws: 50 },
            ] {
                let backend =
                    Backend::at_p_cell(kind, MemoryConfig::new(128, 32).unwrap(), 1e-3).unwrap();
                // 7 samples per count × 13 counts = 91 samples: chunks of
                // 70 split into one 64-die block plus a 6-die block, and
                // the last chunk leaves a 21-die block.
                let base = CampaignConfig::for_backend(backend)
                    .unwrap()
                    .with_samples_per_count(7)
                    .with_max_failures(13)
                    .with_chunk_size(70)
                    .with_map_policy(policy);
                let campaign = Campaign::new(base);
                let reference = campaign
                    .run(&schemes, 23, count_sample, CollectRecords::new)
                    .unwrap();
                for shard_count in [1usize, 3] {
                    let mut merged = CollectRecords::new();
                    let mut merged_wide = CollectRecords::new();
                    for index in 0..shard_count {
                        let shard = ShardSpec::new(index, shard_count).unwrap();
                        merged.merge(
                            campaign
                                .run_shard_blocks(
                                    &schemes,
                                    23,
                                    shard,
                                    count_sample,
                                    count_block,
                                    CollectRecords::new,
                                )
                                .unwrap(),
                        );
                        merged_wide.merge(
                            campaign
                                .run_shard_blocks(
                                    &schemes,
                                    23,
                                    shard,
                                    count_sample,
                                    count_block_wide,
                                    CollectRecords::new,
                                )
                                .unwrap(),
                        );
                    }
                    assert_eq!(merged, reference, "{kind} {policy:?} {shard_count} shards");
                    assert_eq!(
                        merged_wide, reference,
                        "{kind} {policy:?} {shard_count} shards (W256 lanes)"
                    );
                }
            }
        }
    }

    #[test]
    fn block_scheduling_takes_the_scalar_tail_for_lone_samples() {
        // chunk_size 1 forces every group down the scalar tail; results
        // must still match.
        let campaign = Campaign::new(config().with_chunk_size(1));
        let schemes = [Scheme::unprotected32()];
        let reference = campaign
            .run(
                &schemes,
                3,
                |_, map| map.fault_count() as f64,
                CollectRecords::new,
            )
            .unwrap();
        let blocks = campaign
            .run_shard_blocks::<u64, _, _, _, _>(
                &schemes,
                3,
                ShardSpec::solo(),
                |_, map| map.fault_count() as f64,
                |_, _, _| panic!("single-sample groups must use the scalar tail"),
                CollectRecords::new,
            )
            .unwrap();
        assert_eq!(blocks, reference);
    }

    #[test]
    fn single_fault_per_row_policy_works_for_structured_backends() {
        use faultmit_memsim::DramRetentionBackend;
        let memory = MemoryConfig::new(64, 32).unwrap();
        let backend = DramRetentionBackend::new(memory, 64.0, 45.0).unwrap();
        let campaign = Campaign::new(
            CampaignConfig::for_backend(backend)
                .unwrap()
                .with_samples_per_count(6)
                .with_max_failures(4)
                .with_map_policy(MapPolicy::SingleFaultPerRow { max_redraws: 2000 }),
        );
        let result = campaign
            .run(
                &[Scheme::unprotected32()],
                3,
                |_, map| map.max_faults_per_row() as f64,
                CollectRecords::new,
            )
            .unwrap();
        // Clustered placement collides often; the redraw budget must still
        // deliver single-fault rows for these low counts.
        for record in &result.records {
            assert!(
                record.metrics[0] <= 1.0,
                "sample {} kept a multi-fault row",
                record.sample_index
            );
        }
    }
}
