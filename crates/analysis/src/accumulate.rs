//! Pipeline accumulators turning paired samples into per-scheme yield models.
//!
//! These types are the analysis-side half of the parallel fault-injection
//! pipeline: [`faultmit_sim::Campaign`] streams [`PairedSample`] records
//! (one metric per scheme, same die) into a chunk-local
//! [`CatalogueAccumulator`]; chunk accumulators merge in chunk order, and
//! [`CatalogueAccumulator::into_yield_models`] converts the reduction into
//! the [`YieldModel`]s behind Fig. 5.

use crate::cdf::EmpiricalCdf;
use crate::yield_model::YieldModel;
use faultmit_memsim::FailureCountDistribution;
use faultmit_sim::{Accumulator, PairedSample};
use std::collections::BTreeMap;

/// Per-scheme, per-failure-count quality CDFs accumulated from paired
/// samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogueAccumulator {
    per_scheme: Vec<BTreeMap<u64, EmpiricalCdf>>,
}

impl CatalogueAccumulator {
    /// Creates an accumulator for a catalogue of `scheme_count` schemes.
    #[must_use]
    pub fn new(scheme_count: usize) -> Self {
        Self {
            per_scheme: vec![BTreeMap::new(); scheme_count],
        }
    }

    /// Number of schemes tracked.
    #[must_use]
    pub fn scheme_count(&self) -> usize {
        self.per_scheme.len()
    }

    /// The accumulated per-scheme, per-failure-count CDFs in catalogue
    /// order — the accumulator's complete shard state, exposed so campaign
    /// shards can serialise it (see `faultmit-bench`'s shard-state module).
    #[must_use]
    pub fn per_scheme_counts(&self) -> &[BTreeMap<u64, EmpiricalCdf>] {
        &self.per_scheme
    }

    /// Rebuilds an accumulator from previously captured shard state (the
    /// inverse of [`CatalogueAccumulator::per_scheme_counts`]).
    ///
    /// Observation order inside each CDF is preserved, so a round-trip
    /// through serialisation followed by [`Accumulator::merge`] is
    /// bit-identical to merging the original accumulators.
    #[must_use]
    pub fn from_per_scheme_counts(per_scheme: Vec<BTreeMap<u64, EmpiricalCdf>>) -> Self {
        Self { per_scheme }
    }

    /// Total number of recorded samples of the first scheme (all schemes see
    /// the same count).
    #[must_use]
    pub fn samples_recorded(&self) -> usize {
        self.per_scheme
            .first()
            .map(|counts| counts.values().map(EmpiricalCdf::len).sum())
            .unwrap_or(0)
    }

    /// Converts the accumulated statistics into one [`YieldModel`] per
    /// scheme, in catalogue order.
    #[must_use]
    pub fn into_yield_models(self, distribution: FailureCountDistribution) -> Vec<YieldModel> {
        self.per_scheme
            .into_iter()
            .map(|per_count| YieldModel::from_per_count(distribution, per_count))
            .collect()
    }
}

impl Accumulator for CatalogueAccumulator {
    fn record(&mut self, sample: &PairedSample) {
        assert_eq!(
            sample.metrics.len(),
            self.per_scheme.len(),
            "paired sample metric count does not match the scheme catalogue"
        );
        for (scheme, &metric) in self.per_scheme.iter_mut().zip(&sample.metrics) {
            // Use the pipeline-provided statistical weight directly, so there
            // is exactly one weighting formula in the system. Downstream
            // consumers (combined_cdf, the Fig. 7 CDF assembly) renormalise
            // per failure count, so conditional probabilities are unchanged.
            scheme
                .entry(sample.n_faults)
                .or_default()
                .add(metric, sample.weight);
        }
    }

    fn merge(&mut self, other: Self) {
        if self.per_scheme.is_empty() {
            self.per_scheme = other.per_scheme;
            return;
        }
        assert_eq!(
            self.per_scheme.len(),
            other.per_scheme.len(),
            "merging accumulators of different catalogue sizes"
        );
        for (mine, theirs) in self.per_scheme.iter_mut().zip(other.per_scheme) {
            for (failures, cdf) in theirs {
                mine.entry(failures).or_default().absorb(cdf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(index: u64, n_faults: u64, metrics: &[f64]) -> PairedSample {
        PairedSample {
            sample_index: index,
            n_faults,
            weight: 0.1,
            metrics: metrics.to_vec(),
        }
    }

    fn distribution() -> FailureCountDistribution {
        FailureCountDistribution::new(1000, 1e-3).unwrap()
    }

    #[test]
    fn records_split_by_scheme_and_count() {
        let mut acc = CatalogueAccumulator::new(2);
        acc.record(&sample(0, 1, &[10.0, 1.0]));
        acc.record(&sample(1, 1, &[20.0, 2.0]));
        acc.record(&sample(2, 3, &[30.0, 3.0]));
        assert_eq!(acc.scheme_count(), 2);
        assert_eq!(acc.samples_recorded(), 3);

        let models = acc.into_yield_models(distribution());
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].sampled_counts(), vec![1, 3]);
        // Scheme 0 saw MSE 10/20 at one failure; scheme 1 saw 1/2.
        assert!(models[0].conditional_pass_probability(1, 15.0) > 0.49);
        assert!(models[1].conditional_pass_probability(1, 15.0) > 0.99);
    }

    #[test]
    fn merge_preserves_sample_order() {
        let mut left = CatalogueAccumulator::new(1);
        left.record(&sample(0, 2, &[1.0]));
        let mut right = CatalogueAccumulator::new(1);
        right.record(&sample(1, 2, &[2.0]));
        right.record(&sample(2, 5, &[3.0]));
        left.merge(right);

        let mut serial = CatalogueAccumulator::new(1);
        serial.record(&sample(0, 2, &[1.0]));
        serial.record(&sample(1, 2, &[2.0]));
        serial.record(&sample(2, 5, &[3.0]));
        assert_eq!(left, serial);
    }

    #[test]
    fn merge_into_default_adopts_the_other_side() {
        let mut base = CatalogueAccumulator::default();
        let mut other = CatalogueAccumulator::new(3);
        other.record(&sample(0, 1, &[1.0, 2.0, 3.0]));
        base.merge(other.clone());
        assert_eq!(base, other);
    }

    #[test]
    #[should_panic(expected = "metric count")]
    fn mismatched_metric_count_is_rejected() {
        let mut acc = CatalogueAccumulator::new(2);
        acc.record(&sample(0, 1, &[1.0]));
    }
}
