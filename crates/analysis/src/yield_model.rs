//! The quality-aware yield criterion of §4 (Eq. (3)–(5)).
//!
//! The traditional yield criterion rejects every die with one or more
//! failures. The paper relaxes it: a die passes as long as its quality
//! (here: the local MSE of Eq. (6)) stays below an application-specific
//! threshold. The yield is then
//!
//! ```text
//!   Pr(Q ≤ q_max) = Σ_n Pr(N = n) · Pr(Q ≤ q_max | N = n)
//! ```
//!
//! [`YieldModel`] combines the binomial failure-count distribution
//! (Eq. (4)) with per-failure-count quality distributions estimated by
//! Monte-Carlo fault injection, and answers both directions of the question:
//! the yield at a given quality constraint, and the quality constraint that
//! must be tolerated to reach a given yield target.

use crate::cdf::EmpiricalCdf;
use crate::error::AnalysisError;
use faultmit_memsim::FailureCountDistribution;
use std::collections::BTreeMap;

/// A `(target yield, tolerated quality)` pair, e.g. "99.9999 % of dies have
/// MSE below 10⁶".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityBand {
    /// The yield target in `[0, 1]`.
    pub target_yield: f64,
    /// The smallest quality threshold (lower quality value = better, e.g.
    /// MSE) that achieves the target yield.
    pub max_quality: f64,
}

/// Joint failure-count / quality model implementing Eq. (3)–(5).
///
/// Quality values are "lower is better" (the paper uses MSE). Dies with zero
/// failures are assumed to have perfect quality (value 0).
#[derive(Debug, Clone)]
pub struct YieldModel {
    distribution: FailureCountDistribution,
    per_count: BTreeMap<u64, EmpiricalCdf>,
}

impl YieldModel {
    /// Creates a model for the given failure-count distribution.
    #[must_use]
    pub fn new(distribution: FailureCountDistribution) -> Self {
        Self {
            distribution,
            per_count: BTreeMap::new(),
        }
    }

    /// The underlying failure-count distribution.
    #[must_use]
    pub fn distribution(&self) -> &FailureCountDistribution {
        &self.distribution
    }

    /// Builds a model directly from per-failure-count quality CDFs — the
    /// parallel pipeline's reduction output.
    #[must_use]
    pub fn from_per_count(
        distribution: FailureCountDistribution,
        per_count: BTreeMap<u64, EmpiricalCdf>,
    ) -> Self {
        Self {
            distribution,
            per_count,
        }
    }

    /// Adds Monte-Carlo quality samples observed for dies with exactly
    /// `failures` failures.
    pub fn add_samples<I>(&mut self, failures: u64, samples: I)
    where
        I: IntoIterator<Item = f64>,
    {
        let cdf = self.per_count.entry(failures).or_default();
        for sample in samples {
            cdf.add(sample, 1.0);
        }
    }

    /// Absorbs the per-count quality CDF of another model built over the same
    /// failure-count distribution (order-preserving parallel reduction).
    pub fn merge(&mut self, other: YieldModel) {
        debug_assert_eq!(
            self.distribution, other.distribution,
            "merging yield models over different die populations"
        );
        for (failures, cdf) in other.per_count {
            self.per_count.entry(failures).or_default().absorb(cdf);
        }
    }

    /// Failure counts for which quality samples have been recorded.
    #[must_use]
    pub fn sampled_counts(&self) -> Vec<u64> {
        self.per_count.keys().copied().collect()
    }

    /// The per-failure-count quality CDFs (pipeline accumulation output).
    #[must_use]
    pub fn per_count_cdfs(&self) -> &BTreeMap<u64, EmpiricalCdf> {
        &self.per_count
    }

    /// `Pr(Q ≤ q_max | N = n)` from the recorded samples (1 for `n = 0`,
    /// 0 for counts that were never sampled — a conservative assumption).
    #[must_use]
    pub fn conditional_pass_probability(&self, failures: u64, q_max: f64) -> f64 {
        if failures == 0 {
            return if q_max >= 0.0 { 1.0 } else { 0.0 };
        }
        match self.per_count.get(&failures) {
            Some(cdf) if !cdf.is_empty() => cdf.probability_at_or_below(q_max),
            _ => 0.0,
        }
    }

    /// The yield at quality constraint `q_max`: `Σ_n Pr(N = n) · Pr(Q ≤ q_max | N = n)`
    /// over `n = 0` and every sampled failure count (Eq. (5)).
    #[must_use]
    pub fn yield_at_quality(&self, q_max: f64) -> f64 {
        let mut total = self.distribution.pmf(0) * self.conditional_pass_probability(0, q_max);
        for (&n, cdf) in &self.per_count {
            if cdf.is_empty() {
                continue;
            }
            total += self.distribution.pmf(n) * cdf.probability_at_or_below(q_max);
        }
        total.min(1.0)
    }

    /// The traditional zero-failure yield `Pr(N = 0)` for reference.
    #[must_use]
    pub fn zero_failure_yield(&self) -> f64 {
        self.distribution.pmf(0)
    }

    /// The smallest quality threshold that achieves `target_yield`, searched
    /// over the union of all recorded sample values.
    ///
    /// Returns `None` when the target cannot be reached even when tolerating
    /// the worst observed quality (e.g. because unsampled failure counts
    /// carry too much probability mass).
    #[must_use]
    pub fn quality_for_yield(&self, target_yield: f64) -> Option<QualityBand> {
        if self.yield_at_quality(0.0) >= target_yield {
            return Some(QualityBand {
                target_yield,
                max_quality: 0.0,
            });
        }
        // Candidate thresholds are the observed sample values themselves.
        let mut thresholds: Vec<f64> = self
            .per_count
            .values()
            .flat_map(|cdf| cdf.samples().map(|(value, _)| value))
            .filter(|v| v.is_finite())
            .collect();
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        thresholds.dedup();
        thresholds
            .into_iter()
            .find(|&q| self.yield_at_quality(q) >= target_yield)
            .map(|max_quality| QualityBand {
                target_yield,
                max_quality,
            })
    }

    /// The combined, weighted quality CDF over all dies (the Fig. 5 series):
    /// each sample of failure count `n` enters with weight
    /// `Pr(N = n) / (#samples at n)`, and the zero-failure mass enters as a
    /// perfect-quality sample.
    #[must_use]
    pub fn combined_cdf(&self) -> EmpiricalCdf {
        let mut combined = EmpiricalCdf::new();
        combined.add(0.0, self.distribution.pmf(0));
        for (&n, cdf) in &self.per_count {
            if cdf.is_empty() {
                continue;
            }
            let scale = self.distribution.pmf(n) / cdf.total_weight();
            for (value, weight) in cdf.samples() {
                combined.add(value, weight * scale);
            }
        }
        combined
    }

    /// Convenience: quality bands at the yield targets highlighted in the
    /// paper (90 %, 99 %, 99.99 %, 99.9999 %).
    #[must_use]
    pub fn paper_quality_bands(&self) -> Vec<QualityBand> {
        [0.9, 0.99, 0.9999, 0.999_999]
            .iter()
            .filter_map(|&target| self.quality_for_yield(target))
            .collect()
    }

    /// Checks that at least one quality sample has been recorded.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptyDistribution`] when no samples exist.
    pub fn ensure_populated(&self) -> Result<(), AnalysisError> {
        if self.per_count.values().all(EmpiricalCdf::is_empty) {
            Err(AnalysisError::EmptyDistribution)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distribution() -> FailureCountDistribution {
        // Small memory: 1000 cells at P_cell = 1e-3 → mean 1 failure.
        FailureCountDistribution::new(1000, 1e-3).unwrap()
    }

    #[test]
    fn zero_failure_yield_matches_distribution() {
        let model = YieldModel::new(distribution());
        assert!((model.zero_failure_yield() - distribution().pmf(0)).abs() < 1e-15);
        assert!(model.ensure_populated().is_err());
    }

    #[test]
    fn conditional_probability_for_zero_failures_is_one() {
        let model = YieldModel::new(distribution());
        assert_eq!(model.conditional_pass_probability(0, 0.0), 1.0);
        assert_eq!(model.conditional_pass_probability(0, 1e9), 1.0);
        // Unsampled counts are conservatively treated as failing.
        assert_eq!(model.conditional_pass_probability(3, 1e9), 0.0);
    }

    #[test]
    fn yield_at_quality_combines_counts() {
        let mut model = YieldModel::new(distribution());
        // Dies with 1 failure: half have MSE 10, half MSE 1000.
        model.add_samples(1, [10.0, 10.0, 1000.0, 1000.0]);
        // Dies with 2 failures: all have MSE 1e6.
        model.add_samples(2, [1e6, 1e6]);
        assert!(model.ensure_populated().is_ok());

        let p0 = distribution().pmf(0);
        let p1 = distribution().pmf(1);
        let p2 = distribution().pmf(2);

        let y = model.yield_at_quality(100.0);
        assert!((y - (p0 + 0.5 * p1)).abs() < 1e-12);
        let y = model.yield_at_quality(1e5);
        assert!((y - (p0 + p1)).abs() < 1e-12);
        let y = model.yield_at_quality(1e7);
        assert!((y - (p0 + p1 + p2)).abs() < 1e-12);
    }

    #[test]
    fn yield_is_monotone_in_quality_threshold() {
        let mut model = YieldModel::new(distribution());
        model.add_samples(1, (1..=50).map(|i| i as f64 * 7.0));
        model.add_samples(2, (1..=50).map(|i| i as f64 * 70.0));
        let mut previous = 0.0;
        for q in [0.0, 10.0, 100.0, 1000.0, 10000.0] {
            let y = model.yield_at_quality(q);
            assert!(y >= previous);
            assert!(y <= 1.0);
            previous = y;
        }
    }

    #[test]
    fn quality_for_yield_finds_smallest_threshold() {
        let mut model = YieldModel::new(distribution());
        model.add_samples(1, [1.0, 2.0, 3.0, 4.0]);
        // Zero-failure mass alone is ~36.8%, so a 30% target needs MSE 0.
        let band = model.quality_for_yield(0.3).unwrap();
        assert_eq!(band.max_quality, 0.0);
        // A 50% target needs to also accept some single-failure dies.
        let band = model.quality_for_yield(0.5).unwrap();
        assert!(band.max_quality >= 1.0);
        assert!(model.yield_at_quality(band.max_quality) >= 0.5);
        // An unreachable target returns None (dies with ≥2 failures are
        // unsampled and there are not enough sampled ones).
        assert!(model.quality_for_yield(0.9999).is_none());
    }

    #[test]
    fn combined_cdf_total_weight_tracks_coverage() {
        let mut model = YieldModel::new(distribution());
        model.add_samples(1, [5.0; 10]);
        model.add_samples(2, [50.0; 10]);
        let combined = model.combined_cdf();
        let expected_weight = distribution().pmf(0) + distribution().pmf(1) + distribution().pmf(2);
        assert!((combined.total_weight() - expected_weight).abs() < 1e-9);
        // Quality 5 or better: zero-failure dies plus all one-failure dies.
        let p = combined.probability_at_or_below(5.0) * combined.total_weight();
        assert!((p - (distribution().pmf(0) + distribution().pmf(1))).abs() < 1e-9);
    }

    #[test]
    fn paper_quality_bands_are_sorted_by_difficulty() {
        let mut model = YieldModel::new(FailureCountDistribution::new(1000, 1e-4).unwrap());
        model.add_samples(1, (1..=100).map(f64::from));
        let bands = model.paper_quality_bands();
        assert!(!bands.is_empty());
        for window in bands.windows(2) {
            assert!(window[1].target_yield >= window[0].target_yield);
            assert!(window[1].max_quality >= window[0].max_quality);
        }
    }
}
