//! Weighted empirical cumulative distribution functions.
//!
//! Fig. 5 and Fig. 7 of the paper plot CDFs of a quality metric over
//! Monte-Carlo memory samples, where each sample's weight is the probability
//! of its failure count (`Pr(N = n)`, Eq. (4)).
//!
//! The storage layer is [`CdfSketch`] — a mergeable accumulator of
//! `(value, weight)` observations designed for the parallel pipeline's
//! chunk-order reduction: worker threads build chunk-local sketches and
//! [`CdfSketch::absorb`] concatenates them without re-ordering, so the merged
//! sketch is bit-identical to a serial accumulation. [`EmpiricalCdf`] wraps a
//! sketch with the query API (`P(X ≤ x)`, quantiles, support, grids).

use crate::error::AnalysisError;

/// A mergeable sketch of weighted observations — the accumulator under
/// [`EmpiricalCdf`].
///
/// Observations are stored in insertion order; [`CdfSketch::absorb`] appends
/// another sketch's observations wholesale. Since the parallel pipeline
/// merges chunk sketches in chunk order, the observation sequence (and the
/// floating-point total weight, which is order-sensitive) never depends on
/// the worker count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CdfSketch {
    samples: Vec<(f64, f64)>,
    total_weight: f64,
}

impl CdfSketch {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a sketch from `(value, weight)` observations in order — the
    /// deserialisation path of the shard-state files.
    ///
    /// Each observation is re-[`push`](CdfSketch::push)ed, so the running
    /// (order-sensitive) total weight is re-accumulated exactly as a serial
    /// accumulation would: a sketch serialised as its observation list and
    /// rebuilt through this constructor is bit-identical to the original.
    #[must_use]
    pub fn from_observations<I>(observations: I) -> Self
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        let mut sketch = Self::new();
        for (value, weight) in observations {
            sketch.push(value, weight);
        }
        sketch
    }

    /// Adds one observation with the given non-negative weight.
    ///
    /// Observations with zero weight or non-finite values are ignored.
    pub fn push(&mut self, value: f64, weight: f64) {
        if !value.is_finite() || !weight.is_finite() || weight <= 0.0 {
            return;
        }
        self.samples.push((value, weight));
        self.total_weight += weight;
    }

    /// Appends every observation of `other`, preserving both orders.
    pub fn absorb(&mut self, other: Self) {
        for (value, weight) in other.samples {
            // Re-accumulate the weight so the running sum matches a serial
            // accumulation exactly.
            self.total_weight += weight;
            self.samples.push((value, weight));
        }
    }

    /// Number of stored observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total accumulated weight.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The stored `(value, weight)` observations in insertion order.
    #[must_use]
    pub fn observations(&self) -> &[(f64, f64)] {
        &self.samples
    }
}

/// A weighted empirical CDF.
///
/// # Example
///
/// ```
/// use faultmit_analysis::EmpiricalCdf;
///
/// # fn main() -> Result<(), faultmit_analysis::AnalysisError> {
/// let mut cdf = EmpiricalCdf::new();
/// cdf.add(1.0, 0.25);
/// cdf.add(10.0, 0.5);
/// cdf.add(100.0, 0.25);
/// assert!((cdf.probability_at_or_below(10.0) - 0.75).abs() < 1e-12);
/// assert_eq!(cdf.quantile(0.5), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EmpiricalCdf {
    sketch: CdfSketch,
}

impl EmpiricalCdf {
    /// Creates an empty CDF.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a CDF from equally weighted samples.
    #[must_use]
    pub fn from_samples<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut cdf = Self::new();
        for value in values {
            cdf.add(value, 1.0);
        }
        cdf
    }

    /// Wraps an accumulated sketch.
    #[must_use]
    pub fn from_sketch(sketch: CdfSketch) -> Self {
        Self { sketch }
    }

    /// The underlying mergeable sketch.
    #[must_use]
    pub fn sketch(&self) -> &CdfSketch {
        &self.sketch
    }

    /// Adds one observation with the given non-negative weight.
    ///
    /// Observations with zero weight or non-finite values are ignored.
    pub fn add(&mut self, value: f64, weight: f64) {
        self.sketch.push(value, weight);
    }

    /// Merges all samples of `other` into `self` (borrowing shim over
    /// [`EmpiricalCdf::absorb`]).
    pub fn merge(&mut self, other: &EmpiricalCdf) {
        self.absorb(other.clone());
    }

    /// Consumes `other`, appending its observations in order — the cheap
    /// parallel-reduction path.
    pub fn absorb(&mut self, other: EmpiricalCdf) {
        self.sketch.absorb(other.sketch);
    }

    /// Number of stored observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sketch.len()
    }

    /// `true` when no observation has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Total accumulated weight.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.sketch.total_weight()
    }

    /// Iterates over the stored `(value, weight)` observations in insertion
    /// order.
    pub fn samples(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.sketch.observations().iter().copied()
    }

    fn sorted_observations(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.sketch.observations().to_vec();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("values are finite"));
        sorted
    }

    /// `P(X ≤ x)` — the fraction of (weighted) observations at or below `x`.
    ///
    /// Returns 0 for an empty CDF.
    #[must_use]
    pub fn probability_at_or_below(&self, x: f64) -> f64 {
        if self.sketch.is_empty() || self.sketch.total_weight() <= 0.0 {
            return 0.0;
        }
        let mass: f64 = self
            .sketch
            .observations()
            .iter()
            .filter(|(value, _)| *value <= x)
            .map(|(_, weight)| weight)
            .sum();
        mass / self.sketch.total_weight()
    }

    /// The smallest observed value `x` such that `P(X ≤ x) ≥ p`.
    ///
    /// For `p ≤ 0` this is the minimum observation and for `p ≥ 1` the
    /// maximum.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty; use [`EmpiricalCdf::try_quantile`] for a
    /// fallible variant.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        self.try_quantile(p).expect("quantile of an empty CDF")
    }

    /// Fallible variant of [`EmpiricalCdf::quantile`].
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptyDistribution`] when no sample was added.
    pub fn try_quantile(&self, p: f64) -> Result<f64, AnalysisError> {
        if self.sketch.is_empty() {
            return Err(AnalysisError::EmptyDistribution);
        }
        let sorted = self.sorted_observations();
        let target = p.clamp(0.0, 1.0) * self.sketch.total_weight();
        let mut cumulative = 0.0;
        for &(value, weight) in &sorted {
            cumulative += weight;
            if cumulative >= target {
                return Ok(value);
            }
        }
        Ok(sorted.last().expect("non-empty").0)
    }

    /// Minimum observed value.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptyDistribution`] when no sample was added.
    pub fn min(&self) -> Result<f64, AnalysisError> {
        self.sketch
            .observations()
            .iter()
            .map(|&(v, _)| v)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
            .ok_or(AnalysisError::EmptyDistribution)
    }

    /// Maximum observed value.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptyDistribution`] when no sample was added.
    pub fn max(&self) -> Result<f64, AnalysisError> {
        self.sketch
            .observations()
            .iter()
            .map(|&(v, _)| v)
            .max_by(|a, b| a.partial_cmp(b).expect("finite"))
            .ok_or(AnalysisError::EmptyDistribution)
    }

    /// Weighted mean of the observations.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptyDistribution`] when no sample was added.
    pub fn mean(&self) -> Result<f64, AnalysisError> {
        if self.sketch.is_empty() || self.sketch.total_weight() <= 0.0 {
            return Err(AnalysisError::EmptyDistribution);
        }
        Ok(self
            .sketch
            .observations()
            .iter()
            .map(|&(v, w)| v * w)
            .sum::<f64>()
            / self.sketch.total_weight())
    }

    /// Evaluates the CDF at a grid of points, returning `(x, P(X ≤ x))`
    /// pairs — the series plotted in Fig. 5 / Fig. 7.
    #[must_use]
    pub fn evaluate_at(&self, grid: &[f64]) -> Vec<(f64, f64)> {
        grid.iter()
            .map(|&x| (x, self.probability_at_or_below(x)))
            .collect()
    }

    /// A logarithmically spaced grid spanning the observed support, padded by
    /// one decade on each side. Useful for plotting MSE CDFs whose support
    /// spans many orders of magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptyDistribution`] when no sample was added,
    /// or [`AnalysisError::InvalidParameter`] when fewer than two points are
    /// requested.
    pub fn log_grid(&self, points: usize) -> Result<Vec<f64>, AnalysisError> {
        if points < 2 {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("a grid needs at least 2 points, got {points}"),
            });
        }
        let min = self.min()?.max(1e-12);
        let max = self.max()?.max(min * 10.0);
        let lo = min.log10() - 1.0;
        let hi = max.log10() + 1.0;
        Ok((0..points)
            .map(|i| 10f64.powf(lo + (hi - lo) * i as f64 / (points - 1) as f64))
            .collect())
    }
}

impl FromIterator<f64> for EmpiricalCdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::from_samples(iter)
    }
}

impl Extend<(f64, f64)> for EmpiricalCdf {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        for (value, weight) in iter {
            self.add(value, weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = EmpiricalCdf::new();
        assert!(cdf.is_empty());
        assert_eq!(cdf.probability_at_or_below(10.0), 0.0);
        assert_eq!(cdf.try_quantile(0.5), Err(AnalysisError::EmptyDistribution));
        assert!(cdf.min().is_err());
        assert!(cdf.max().is_err());
        assert!(cdf.mean().is_err());
        assert!(cdf.log_grid(10).is_err());
    }

    #[test]
    fn unweighted_cdf_matches_rank_statistics() {
        let cdf = EmpiricalCdf::from_samples([5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 5);
        assert!((cdf.probability_at_or_below(3.0) - 0.6).abs() < 1e-12);
        assert!((cdf.probability_at_or_below(0.5) - 0.0).abs() < 1e-12);
        assert!((cdf.probability_at_or_below(5.0) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.quantile(0.2), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
        assert_eq!(cdf.min().unwrap(), 1.0);
        assert_eq!(cdf.max().unwrap(), 5.0);
        assert!((cdf.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weights_shift_the_distribution() {
        let mut cdf = EmpiricalCdf::new();
        cdf.add(0.0, 9.0);
        cdf.add(100.0, 1.0);
        assert!((cdf.probability_at_or_below(0.0) - 0.9).abs() < 1e-12);
        assert_eq!(cdf.quantile(0.89), 0.0);
        assert_eq!(cdf.quantile(0.95), 100.0);
        assert!((cdf.mean().unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_observations_are_ignored() {
        let mut cdf = EmpiricalCdf::new();
        cdf.add(f64::NAN, 1.0);
        cdf.add(f64::INFINITY, 1.0);
        cdf.add(1.0, 0.0);
        cdf.add(1.0, -2.0);
        assert!(cdf.is_empty());
        cdf.add(1.0, 1.0);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn merge_and_extend_accumulate() {
        let mut a = EmpiricalCdf::from_samples([1.0, 2.0]);
        let b = EmpiricalCdf::from_samples([3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        a.extend([(5.0, 2.0)]);
        assert_eq!(a.len(), 5);
        assert!((a.total_weight() - 6.0).abs() < 1e-12);
        let collected: EmpiricalCdf = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn sketch_absorb_matches_serial_accumulation() {
        // Weights whose sum is order-sensitive in floating point.
        let weights = [1e-3, 1e16, 1.0, 1e-7, 3.5, 1e12];
        let mut serial = CdfSketch::new();
        for (i, &w) in weights.iter().enumerate() {
            serial.push(i as f64, w);
        }
        let mut left = CdfSketch::new();
        left.push(0.0, weights[0]);
        left.push(1.0, weights[1]);
        let mut mid = CdfSketch::new();
        mid.push(2.0, weights[2]);
        mid.push(3.0, weights[3]);
        let mut right = CdfSketch::new();
        right.push(4.0, weights[4]);
        right.push(5.0, weights[5]);
        left.absorb(mid);
        left.absorb(right);
        assert_eq!(left, serial);
        assert_eq!(
            left.total_weight().to_bits(),
            serial.total_weight().to_bits()
        );
    }

    #[test]
    fn absorb_is_a_cheap_merge() {
        let mut a = EmpiricalCdf::from_samples([1.0, 2.0]);
        a.absorb(EmpiricalCdf::from_samples([3.0]));
        a.absorb(EmpiricalCdf::new());
        assert_eq!(a.len(), 3);
        let values: Vec<f64> = a.samples().map(|(v, _)| v).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_sketch_round_trips() {
        let mut sketch = CdfSketch::new();
        sketch.push(2.0, 1.0);
        sketch.push(4.0, 3.0);
        let cdf = EmpiricalCdf::from_sketch(sketch.clone());
        assert_eq!(cdf.sketch(), &sketch);
        assert_eq!(cdf.quantile(1.0), 4.0);
    }

    #[test]
    fn evaluate_at_produces_monotone_series() {
        let cdf = EmpiricalCdf::from_samples([1.0, 10.0, 100.0, 1000.0]);
        let grid = [0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0];
        let series = cdf.evaluate_at(&grid);
        assert_eq!(series.len(), grid.len());
        for window in series.windows(2) {
            assert!(window[1].1 >= window[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn log_grid_spans_support() {
        let cdf = EmpiricalCdf::from_samples([1.0, 1e6]);
        let grid = cdf.log_grid(13).unwrap();
        assert_eq!(grid.len(), 13);
        assert!(grid[0] <= 1.0);
        assert!(*grid.last().unwrap() >= 1e6);
        for window in grid.windows(2) {
            assert!(window[1] > window[0]);
        }
        assert!(cdf.log_grid(1).is_err());
    }

    #[test]
    fn quantile_is_monotone_in_p() {
        let cdf = EmpiricalCdf::from_samples((1..=100).map(f64::from));
        let mut previous = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = cdf.quantile(i as f64 / 10.0);
            assert!(q >= previous);
            previous = q;
        }
    }
}
