//! The local mean-square-error quality function (Eq. (6) of the paper).
//!
//! The paper uses the MSE over the error magnitudes of all words in the
//! memory as a fast, application-agnostic proxy for output quality:
//!
//! ```text
//!   MSE = (1/R) · Σ_i (2^{b_i})²         0 ≤ b_i < W
//! ```
//!
//! where `b_i` is the data-bit position affected by the `i`-th failure after
//! the protection scheme has done its work (a corrected failure contributes
//! nothing; an unprotected failure at the MSB contributes `4^{W-1}`).
//!
//! The implementation evaluates each faulty row through the scheme's
//! [`observe`](faultmit_core::MitigationScheme::observe) path with an
//! all-zeros background so that every bit-flip fault is observable, and sums
//! `4^b` over the bit positions that differ — identical to Eq. (6) for the
//! paper's bit-flip injection model.
//!
//! Two kernels compute the same sum. The scalar kernels ([`memory_mse`],
//! [`memory_mse_for_data`]) drive the generic `observe` path row by row; the
//! event-driven kernels ([`memory_mse_sparse`], [`memory_mse_sparse_with`])
//! walk the fault map's sorted row groups once, hand each scheme its row
//! slice through
//! [`observe_sparse`](faultmit_core::MitigationScheme::observe_sparse), and
//! gather written words only for fault-bearing rows. Both accumulate
//! per-row contributions in ascending row order, so their results are
//! **bit-identical** (the `kernel_equivalence` integration suite pins this).

use faultmit_core::{BlockLane, MitigationScheme};
use faultmit_memsim::{DieBlock, Fault, FaultKind, FaultMap, ResidualLanes};
use faultmit_obs as obs;

/// Exact `4^b` for every data-bit position, precomputed so the hot
/// squared-error loop avoids `powi`.
///
/// `4^b = 2^(2b)` is a power of two, so the entry is just the IEEE-754
/// exponent field `1023 + 2b` — bit-identical to `4.0f64.powi(b)`, which
/// multiplies exactly representable powers of two.
const POW4: [f64; 64] = {
    let mut table = [0.0f64; 64];
    let mut b = 0;
    while b < 64 {
        table[b] = f64::from_bits(((1023 + 2 * b) as u64) << 52);
        b += 1;
    }
    table
};

/// Squared error magnitude of one corrupted word: `Σ 4^b` over the bit
/// positions where `observed` differs from `written`.
///
/// # Example
///
/// ```
/// use faultmit_analysis::word_squared_error;
///
/// assert_eq!(word_squared_error(0b0000, 0b0001), 1.0);        // bit 0
/// assert_eq!(word_squared_error(0b0000, 0b1000), 64.0);       // bit 3 → 4^3
/// assert_eq!(word_squared_error(0b0000, 0b1001), 65.0);       // both
/// assert_eq!(word_squared_error(42, 42), 0.0);
/// ```
#[must_use]
pub fn word_squared_error(written: u64, observed: u64) -> f64 {
    let mut diff = written ^ observed;
    let mut total = 0.0;
    while diff != 0 {
        let bit = diff.trailing_zeros();
        total += POW4[bit as usize];
        diff &= diff - 1;
    }
    total
}

/// Squared error contributed by one row of a faulty memory under a protection
/// scheme, assuming an all-zeros data background (every bit-flip fault is
/// observable, matching the paper's injection model).
#[must_use]
pub fn row_squared_error<S: MitigationScheme + ?Sized>(
    scheme: &S,
    faults: &FaultMap,
    row: usize,
) -> f64 {
    let observed = scheme.observe(faults, row, 0);
    word_squared_error(0, observed.value)
}

/// The memory-wide MSE of Eq. (6): the mean over all `R` rows of the squared
/// error magnitude each row exhibits under the given protection scheme.
///
/// Rows without faults contribute zero, so only faulty rows are visited.
#[must_use]
pub fn memory_mse<S: MitigationScheme + ?Sized>(scheme: &S, faults: &FaultMap) -> f64 {
    let rows = faults.config().rows() as f64;
    let total: f64 = faults
        .faulty_rows()
        .map(|row| row_squared_error(scheme, faults, row))
        .sum();
    total / rows
}

/// The memory-wide MSE for a specific data image (one value per row), using
/// the actual written values instead of the all-zeros background. Stuck-at
/// faults that happen to agree with the stored data then contribute nothing.
///
/// # Panics
///
/// Panics if `data` has fewer entries than the memory has rows.
#[must_use]
pub fn memory_mse_for_data<S: MitigationScheme + ?Sized>(
    scheme: &S,
    faults: &FaultMap,
    data: &[u64],
) -> f64 {
    let rows = faults.config().rows();
    assert!(
        data.len() >= rows,
        "data image has {} entries but the memory has {rows} rows",
        data.len()
    );
    let total: f64 = faults
        .faulty_rows()
        .map(|row| {
            let observed = scheme.observe(faults, row, data[row]);
            word_squared_error(data[row], observed.value)
        })
        .sum();
    total / rows as f64
}

/// Event-driven twin of [`memory_mse`]: one pass over the fault map's sorted
/// row groups, evaluating each fault-bearing row through the scheme's
/// allocation-free
/// [`observe_sparse`](MitigationScheme::observe_sparse) path (falling back
/// per row to the generic `observe` when a scheme has no sparse path).
///
/// Per-row contributions accumulate in ascending row order, exactly like the
/// scalar kernel, so the result is bit-identical to [`memory_mse`].
#[must_use]
pub fn memory_mse_sparse<S: MitigationScheme + ?Sized>(scheme: &S, faults: &FaultMap) -> f64 {
    memory_mse_sparse_with(scheme, faults, |_| 0)
}

/// [`memory_mse_sparse`] against an arbitrary written-word source (a
/// [`faultmit_memsim::DataImage`] row lookup, a dense slice, ...).
///
/// Only fault-bearing rows query `written`, so data images need never be
/// materialised memory-wide: at sparse fault densities almost every row is
/// clean and contributes exactly zero. Bit-identical to
/// [`memory_mse_for_data`] when `written` agrees with the dense image.
#[must_use]
pub fn memory_mse_sparse_with<S, W>(scheme: &S, faults: &FaultMap, written: W) -> f64
where
    S: MitigationScheme + ?Sized,
    W: Fn(usize) -> u64,
{
    let rows = faults.config().rows() as f64;
    // -0.0 is the IEEE additive identity and what `Iterator::sum::<f64>`
    // folds from: a fault-free die must yield the same bits (-0.0, not
    // +0.0) as the scalar kernel's empty sum.
    let mut total = -0.0;
    for (row, row_faults) in faults.rows_with_faults() {
        let stored = written(row);
        let observed = scheme
            .observe_sparse(row_faults, stored)
            .unwrap_or_else(|| scheme.observe(faults, row, stored));
        total += word_squared_error(stored, observed.value);
    }
    total / rows
}

/// Bit-sliced twin of [`memory_mse_sparse_with`]: evaluates all dies of a
/// transposed [`DieBlock`] in one walk over its faulty rows, writing die
/// `j`'s MSE to `out[j]`.
///
/// Generic over the [`Lane`](faultmit_memsim::Lane) width `L` (`u64` = 64
/// dies, `W256` = 256): per
/// row the scheme's lane-parallel block observer — selected by width
/// through [`BlockLane::observe_block_on`] — produces per-data-bit
/// residual-error lanes; the reduction then scatters each residual lane's
/// `4^col` weight into per-die row partials in ascending column order,
/// touching every residual bit exactly once. Bit-identity with the sparse
/// kernel holds by construction at every width: the visit set is fault
/// **presence** per die (exactly the rows `rows_with_faults` hands the
/// sparse kernel), rows are walked in the same ascending order, each die's
/// sum starts from the same `-0.0` IEEE additive identity, and the
/// column-order scatter folds the identical diff bits in the identical
/// LSB-first order `word_squared_error(0, diff)` would. Schemes without a
/// block path at width `L` fall back to their sparse path per die.
///
/// # Panics
///
/// Panics if `out` is shorter than the block's die count, or if the scheme
/// provides neither a block nor a sparse path (block evaluation requires a
/// sparse-capable scheme).
pub fn block_mse_into<S, W, L>(scheme: &S, block: &DieBlock<'_, L>, written: W, out: &mut [f64])
where
    S: MitigationScheme + ?Sized,
    W: Fn(usize) -> u64,
    L: BlockLane,
{
    let dies = block.die_count();
    assert!(
        out.len() >= dies,
        "output slice holds {} dies but the block has {dies}",
        out.len()
    );
    let rows = block.config().rows() as f64;
    // One running sum per die, each starting from the -0.0 additive
    // identity the scalar kernels fold from. Stack storage sized by the
    // lane width: the block path allocates nothing in steady state.
    let mut totals = L::die_array(-0.0f64);
    let totals = totals.as_mut();
    // Per-row squared-error partials, scattered column-by-column so every
    // residual bit is touched exactly once (a per-die `gather_die` walk
    // would re-scan the full column mask once per dirty die). Entries are
    // cleared sparsely through the seen-die mask after each row.
    let mut row_err = L::die_array(0.0f64);
    let row_err = row_err.as_mut();
    let mut residual = ResidualLanes::<L>::new();
    // Block-observer vs whole-row-fallback tallies, flushed once per block.
    let mut block_rows = 0u64;
    let mut fallback_rows = 0u64;
    let mut fallback_dies = 0u64;
    for row in block.rows() {
        let stored = written(row.row);
        residual.clear();
        if L::observe_block_on(scheme, row.cells, stored, &mut residual) {
            block_rows += 1;
        } else {
            // Per-die fallback through the sparse path: rebuild each dirty
            // die's sorted fault slice on the stack.
            fallback_rows += 1;
            let mut scratch = [Fault::bit_flip(0, 0); 64];
            row.dirty.for_each_die(|die| {
                fallback_dies += 1;
                let mut len = 0;
                for cell in row.cells {
                    if cell.presence().bit(die) != 0 {
                        let kind = if cell.flips.bit(die) != 0 {
                            FaultKind::BitFlip
                        } else if cell.stuck_value.bit(die) != 0 {
                            FaultKind::StuckAtOne
                        } else {
                            FaultKind::StuckAtZero
                        };
                        scratch[len] = Fault::new(row.row, cell.col as usize, kind);
                        len += 1;
                    }
                }
                let observed = scheme
                    .observe_sparse(&scratch[..len], stored)
                    .expect("block evaluation requires a sparse-capable scheme");
                let mut diff = stored ^ observed.value;
                while diff != 0 {
                    let col = diff.trailing_zeros() as usize;
                    diff &= diff - 1;
                    residual.accumulate(col, L::lane_bit(die));
                }
            });
        }
        // Scatter the residual into per-die partials in ascending column
        // order — the same LSB-first `4^b` fold `word_squared_error` applies
        // to a gathered diff, so each partial is bit-identical to it.
        let mut seen = L::ZERO;
        let mut mask = residual.colmask();
        while mask != 0 {
            let col = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let lane = residual.lane(col);
            seen |= lane;
            lane.for_each_die(|die| row_err[die] += POW4[col]);
        }
        // Visit exactly the dies whose map holds a fault in this row — the
        // sparse kernel's visit set — even when their residual is zero
        // (silent stuck-at faults still contribute a +0.0 term).
        row.dirty.for_each_die(|die| totals[die] += row_err[die]);
        seen.for_each_die(|die| row_err[die] = 0.0);
    }
    obs::count(obs::Counter::ObserveBlockRows, block_rows);
    if fallback_rows != 0 {
        obs::count(obs::Counter::ObserveFallbackRows, fallback_rows);
        obs::count(obs::Counter::ObserveFallbackDies, fallback_dies);
    }
    for (slot, total) in out[..dies].iter_mut().zip(totals.iter()) {
        *slot = *total / rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_core::Scheme;
    use faultmit_memsim::{Fault, MemoryConfig};

    fn map(faults: &[Fault]) -> FaultMap {
        let config = MemoryConfig::new(64, 32).unwrap();
        FaultMap::from_faults(config, faults.iter().copied()).unwrap()
    }

    #[test]
    fn word_squared_error_basic_cases() {
        assert_eq!(word_squared_error(0, 0), 0.0);
        assert_eq!(word_squared_error(0, 1 << 31), 4.0_f64.powi(31));
        assert_eq!(
            word_squared_error(0xFF, 0x0F),
            4.0_f64.powi(4) + 4.0_f64.powi(5) + 4.0_f64.powi(6) + 4.0_f64.powi(7)
        );
    }

    #[test]
    fn unprotected_mse_matches_equation_6() {
        // Two failures at bits 31 and 3 in a 64-row memory:
        // MSE = (4^31 + 4^3) / 64.
        let faults = map(&[Fault::bit_flip(0, 31), Fault::bit_flip(17, 3)]);
        let mse = memory_mse(&Scheme::unprotected32(), &faults);
        let expected = (4.0_f64.powi(31) + 4.0_f64.powi(3)) / 64.0;
        assert!((mse - expected).abs() < expected * 1e-12);
    }

    #[test]
    fn secded_mse_is_zero_for_single_fault_per_word() {
        let faults = map(&[Fault::bit_flip(0, 31), Fault::bit_flip(17, 3)]);
        assert_eq!(memory_mse(&Scheme::secded32(), &faults), 0.0);
    }

    #[test]
    fn secded_mse_is_nonzero_for_double_fault_words() {
        let faults = map(&[Fault::bit_flip(4, 30), Fault::bit_flip(4, 2)]);
        assert!(memory_mse(&Scheme::secded32(), &faults) > 0.0);
    }

    #[test]
    fn shuffle_mse_is_bounded_by_segment_size() {
        // 10 single-fault rows, all at high-significance bits.
        let faults: Vec<Fault> = (0..10).map(|r| Fault::bit_flip(r, 31 - r)).collect();
        let faults = map(&faults);
        for n_fm in 1..=5usize {
            let scheme = Scheme::shuffle32(n_fm).unwrap();
            let s = 32usize >> n_fm;
            let per_fault_bound = 4.0_f64.powi(s as i32 - 1);
            let mse = memory_mse(&scheme, &faults);
            assert!(
                mse <= 10.0 * per_fault_bound / 64.0 + 1e-9,
                "n_FM {n_fm}: {mse}"
            );
        }
    }

    #[test]
    fn mse_ordering_matches_fig5_for_msb_faults() {
        // Faults in the MSB half: unprotected >> P-ECC-corrected == 0,
        // shuffling small but non-zero.
        let faults = map(&[Fault::bit_flip(3, 31), Fault::bit_flip(9, 29)]);
        let unprotected = memory_mse(&Scheme::unprotected32(), &faults);
        let pecc = memory_mse(&Scheme::pecc32(), &faults);
        let shuffle1 = memory_mse(&Scheme::shuffle32(1).unwrap(), &faults);
        assert!(unprotected > shuffle1);
        assert_eq!(pecc, 0.0);
        assert!(shuffle1 > 0.0);
    }

    #[test]
    fn mse_ordering_matches_fig5_for_lsb_half_faults() {
        // Faults in the unprotected P-ECC half at bit 15: P-ECC pays 4^15,
        // bit-shuffling with nFM >= 2 pays at most 4^7.
        let faults = map(&[Fault::bit_flip(3, 15), Fault::bit_flip(9, 14)]);
        let pecc = memory_mse(&Scheme::pecc32(), &faults);
        let shuffle2 = memory_mse(&Scheme::shuffle32(2).unwrap(), &faults);
        let shuffle5 = memory_mse(&Scheme::shuffle32(5).unwrap(), &faults);
        assert!(pecc > shuffle2);
        assert!(shuffle2 > shuffle5);
    }

    #[test]
    fn mse_scales_inversely_with_memory_rows() {
        let small = MemoryConfig::new(16, 32).unwrap();
        let large = MemoryConfig::new(256, 32).unwrap();
        let fault = Fault::bit_flip(1, 20);
        let small_map = FaultMap::from_faults(small, [fault]).unwrap();
        let large_map = FaultMap::from_faults(large, [fault]).unwrap();
        let scheme = Scheme::unprotected32();
        let ratio = memory_mse(&scheme, &small_map) / memory_mse(&scheme, &large_map);
        assert!((ratio - 16.0).abs() < 1e-9);
    }

    #[test]
    fn data_dependent_mse_sees_silent_stuck_at_faults() {
        let config = MemoryConfig::new(16, 32).unwrap();
        let faults = FaultMap::from_faults(config, [Fault::stuck_at_one(2, 31)]).unwrap();
        let scheme = Scheme::unprotected32();
        // Background where bit 31 of row 2 is already set: the stuck-at-one
        // fault is silent.
        let mut data = vec![0u64; 16];
        data[2] = 1 << 31;
        assert_eq!(memory_mse_for_data(&scheme, &faults, &data), 0.0);
        // All-zeros background: the same fault costs 4^31 / 16.
        let zeros = vec![0u64; 16];
        assert!(memory_mse_for_data(&scheme, &faults, &zeros) > 0.0);
    }

    #[test]
    #[should_panic(expected = "data image")]
    fn data_dependent_mse_panics_on_short_image() {
        let faults = map(&[Fault::bit_flip(0, 0)]);
        let _ = memory_mse_for_data(&Scheme::unprotected32(), &faults, &[0u64; 3]);
    }

    #[test]
    fn empty_fault_map_has_zero_mse() {
        let faults = map(&[]);
        for scheme in Scheme::fig5_catalogue() {
            assert_eq!(memory_mse(&scheme, &faults), 0.0);
        }
    }

    #[test]
    fn pow4_table_is_bit_identical_to_powi() {
        for (b, entry) in POW4.iter().enumerate() {
            assert_eq!(entry.to_bits(), 4.0_f64.powi(b as i32).to_bits(), "4^{b}");
        }
    }

    #[test]
    fn sparse_kernel_is_bit_identical_to_the_scalar_kernel() {
        // Dense, sparse, multi-fault-per-row and stuck-at maps, every
        // catalogue scheme (plus SECDED), zeros and non-trivial images.
        let cases: Vec<Vec<Fault>> = vec![
            vec![],
            vec![Fault::bit_flip(5, 31)],
            vec![Fault::bit_flip(0, 0), Fault::bit_flip(63, 31)],
            vec![
                Fault::bit_flip(7, 3),
                Fault::bit_flip(7, 29),
                Fault::stuck_at_one(7, 30),
                Fault::stuck_at_zero(12, 15),
            ],
            (0..64).map(|r| Fault::bit_flip(r, (r * 7) % 32)).collect(),
        ];
        let mut schemes = Scheme::fig5_catalogue();
        schemes.push(Scheme::secded32());
        for faults in &cases {
            let faults = map(faults);
            let image: Vec<u64> = (0..64).map(|r| (r as u64).wrapping_mul(0x9E37)).collect();
            for scheme in &schemes {
                assert_eq!(
                    memory_mse_sparse(scheme, &faults).to_bits(),
                    memory_mse(scheme, &faults).to_bits(),
                    "{} (zeros)",
                    scheme.name()
                );
                assert_eq!(
                    memory_mse_sparse_with(scheme, &faults, |row| image[row]).to_bits(),
                    memory_mse_for_data(scheme, &faults, &image).to_bits(),
                    "{} (data)",
                    scheme.name()
                );
            }
        }
    }

    /// The width-generic body of the block bit-identity sweep: every die of
    /// a `dies`-sample block must reproduce the sparse kernel's MSE bit for
    /// bit, across backends, kind laws and catalogue schemes.
    fn check_block_kernel_against_sparse<L: BlockLane>(dies: u64) {
        use faultmit_memsim::{
            Backend, BackendKind, BlockScratch, DieScratch, FaultKindLaw, PlannedSample,
            StreamSeeder,
        };
        let config = MemoryConfig::new(128, 32).unwrap();
        let seeder = StreamSeeder::new(0x4B17_51CE);
        let image: Vec<u64> = (0..128u64)
            .map(|r| r.wrapping_mul(0x9E37) & 0xFFFF_FFFF)
            .collect();
        let mut schemes = Scheme::fig5_catalogue();
        schemes.push(Scheme::secded32());
        for kind in BackendKind::ALL {
            for law in [
                FaultKindLaw::AlwaysFlip,
                FaultKindLaw::AsymmetricStuckAt {
                    p_stuck_at_zero: 0.5,
                },
            ] {
                let backend = Backend::at_p_cell(kind, config, 1e-3)
                    .unwrap()
                    .with_kind_law(law)
                    .unwrap();
                let plan: Vec<PlannedSample> = (0..dies)
                    .map(|index| PlannedSample {
                        index,
                        n_faults: 1 + (index * 5) % 30,
                    })
                    .collect();
                let mut scratch = BlockScratch::<L>::new(config);
                let block = scratch
                    .generate_block(&backend, &seeder, &plan, None)
                    .unwrap();
                let mut out = vec![0.0f64; plan.len()];
                for scheme in &schemes {
                    block_mse_into(scheme, &block, |row| image[row], &mut out);
                    for (j, planned) in plan.iter().enumerate() {
                        let mut reference = DieScratch::new(config);
                        let mut rng = seeder.rng_for_sample(planned.index);
                        let map = reference
                            .generate(&backend, &mut rng, planned.n_faults as usize)
                            .unwrap();
                        assert_eq!(
                            out[j].to_bits(),
                            memory_mse_sparse_with(scheme, map, |row| image[row]).to_bits(),
                            "{kind} {law:?} {} die {j}",
                            scheme.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_kernel_is_bit_identical_to_the_sparse_kernel() {
        // A deliberately non-multiple-of-64 block size.
        check_block_kernel_against_sparse::<u64>(37);
    }

    #[test]
    fn wide_block_kernel_is_bit_identical_to_the_sparse_kernel() {
        // More dies than a u64 lane holds, not a multiple of 64, so dies in
        // every W256 word (and a ragged tail) are exercised.
        check_block_kernel_against_sparse::<faultmit_memsim::W256>(201);
    }

    #[test]
    fn block_kernel_falls_back_for_schemes_without_a_block_path() {
        use faultmit_memsim::{Backend, BackendKind, BlockScratch, PlannedSample, StreamSeeder};
        // A sparse-capable scheme with no block path goes through the
        // per-die fallback inside the block reduction and still agrees.
        struct SparseOnly;
        impl MitigationScheme for SparseOnly {
            fn name(&self) -> String {
                "sparse-only".to_owned()
            }
            fn word_bits(&self) -> usize {
                32
            }
            fn observe(
                &self,
                faults: &FaultMap,
                row: usize,
                written: u64,
            ) -> faultmit_core::ObservedWord {
                let value = Scheme::unprotected32().observe(faults, row, written).value;
                faultmit_core::ObservedWord {
                    value,
                    reliable: true,
                }
            }
            fn observe_sparse(
                &self,
                row_faults: &[Fault],
                written: u64,
            ) -> Option<faultmit_core::ObservedWord> {
                Scheme::unprotected32().observe_sparse(row_faults, written)
            }
            fn worst_case_error_magnitude(&self, bit: usize) -> u64 {
                1u64 << bit
            }
            fn extra_bits_per_row(&self) -> usize {
                0
            }
        }
        let config = MemoryConfig::new(64, 32).unwrap();
        let seeder = StreamSeeder::new(11);
        let backend = Backend::at_p_cell(BackendKind::Sram, config, 1e-3).unwrap();
        let plan: Vec<PlannedSample> = (0..16u64)
            .map(|index| PlannedSample { index, n_faults: 8 })
            .collect();
        let mut scratch = BlockScratch::<u64>::new(config);
        let block = scratch
            .generate_block(&backend, &seeder, &plan, None)
            .unwrap();
        let mut out = vec![0.0f64; plan.len()];
        block_mse_into(&SparseOnly, &block, |_| 0, &mut out);
        let mut expected = vec![0.0f64; plan.len()];
        block_mse_into(&Scheme::unprotected32(), &block, |_| 0, &mut expected);
        for (a, b) in out.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The wide kernel takes the same per-die fallback: SparseOnly has
        // no observe_block_wide either.
        let mut wide = BlockScratch::<faultmit_memsim::W256>::new(config);
        let block = wide.generate_block(&backend, &seeder, &plan, None).unwrap();
        let mut wide_out = vec![0.0f64; plan.len()];
        block_mse_into(&SparseOnly, &block, |_| 0, &mut wide_out);
        for (a, b) in wide_out.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sparse_kernel_falls_back_for_schemes_without_a_sparse_path() {
        // A custom scheme with no `observe_sparse` override goes through the
        // generic path inside the sparse kernel and still agrees.
        struct Invert {
            bits: usize,
        }
        impl MitigationScheme for Invert {
            fn name(&self) -> String {
                "invert".to_owned()
            }
            fn word_bits(&self) -> usize {
                self.bits
            }
            fn observe(
                &self,
                faults: &FaultMap,
                row: usize,
                written: u64,
            ) -> faultmit_core::ObservedWord {
                let corrupted = faults
                    .faulty_columns(row)
                    .iter()
                    .fold(written, |w, &col| w ^ (1u64 << col));
                faultmit_core::ObservedWord {
                    value: corrupted,
                    reliable: true,
                }
            }
            fn worst_case_error_magnitude(&self, bit: usize) -> u64 {
                1u64 << bit
            }
            fn extra_bits_per_row(&self) -> usize {
                0
            }
        }
        let scheme = Invert { bits: 32 };
        let faults = map(&[Fault::bit_flip(2, 9), Fault::bit_flip(40, 1)]);
        assert_eq!(
            memory_mse_sparse(&scheme, &faults).to_bits(),
            memory_mse(&scheme, &faults).to_bits()
        );
    }
}
