//! The local mean-square-error quality function (Eq. (6) of the paper).
//!
//! The paper uses the MSE over the error magnitudes of all words in the
//! memory as a fast, application-agnostic proxy for output quality:
//!
//! ```text
//!   MSE = (1/R) · Σ_i (2^{b_i})²         0 ≤ b_i < W
//! ```
//!
//! where `b_i` is the data-bit position affected by the `i`-th failure after
//! the protection scheme has done its work (a corrected failure contributes
//! nothing; an unprotected failure at the MSB contributes `4^{W-1}`).
//!
//! The implementation evaluates each faulty row through the scheme's
//! [`observe`](faultmit_core::MitigationScheme::observe) path with an
//! all-zeros background so that every bit-flip fault is observable, and sums
//! `4^b` over the bit positions that differ — identical to Eq. (6) for the
//! paper's bit-flip injection model.

use faultmit_core::MitigationScheme;
use faultmit_memsim::FaultMap;

/// Squared error magnitude of one corrupted word: `Σ 4^b` over the bit
/// positions where `observed` differs from `written`.
///
/// # Example
///
/// ```
/// use faultmit_analysis::word_squared_error;
///
/// assert_eq!(word_squared_error(0b0000, 0b0001), 1.0);        // bit 0
/// assert_eq!(word_squared_error(0b0000, 0b1000), 64.0);       // bit 3 → 4^3
/// assert_eq!(word_squared_error(0b0000, 0b1001), 65.0);       // both
/// assert_eq!(word_squared_error(42, 42), 0.0);
/// ```
#[must_use]
pub fn word_squared_error(written: u64, observed: u64) -> f64 {
    let mut diff = written ^ observed;
    let mut total = 0.0;
    while diff != 0 {
        let bit = diff.trailing_zeros();
        total += 4.0_f64.powi(bit as i32);
        diff &= diff - 1;
    }
    total
}

/// Squared error contributed by one row of a faulty memory under a protection
/// scheme, assuming an all-zeros data background (every bit-flip fault is
/// observable, matching the paper's injection model).
#[must_use]
pub fn row_squared_error<S: MitigationScheme + ?Sized>(
    scheme: &S,
    faults: &FaultMap,
    row: usize,
) -> f64 {
    let observed = scheme.observe(faults, row, 0);
    word_squared_error(0, observed.value)
}

/// The memory-wide MSE of Eq. (6): the mean over all `R` rows of the squared
/// error magnitude each row exhibits under the given protection scheme.
///
/// Rows without faults contribute zero, so only faulty rows are visited.
#[must_use]
pub fn memory_mse<S: MitigationScheme + ?Sized>(scheme: &S, faults: &FaultMap) -> f64 {
    let rows = faults.config().rows() as f64;
    let total: f64 = faults
        .faulty_rows()
        .map(|row| row_squared_error(scheme, faults, row))
        .sum();
    total / rows
}

/// The memory-wide MSE for a specific data image (one value per row), using
/// the actual written values instead of the all-zeros background. Stuck-at
/// faults that happen to agree with the stored data then contribute nothing.
///
/// # Panics
///
/// Panics if `data` has fewer entries than the memory has rows.
#[must_use]
pub fn memory_mse_for_data<S: MitigationScheme + ?Sized>(
    scheme: &S,
    faults: &FaultMap,
    data: &[u64],
) -> f64 {
    let rows = faults.config().rows();
    assert!(
        data.len() >= rows,
        "data image has {} entries but the memory has {rows} rows",
        data.len()
    );
    let total: f64 = faults
        .faulty_rows()
        .map(|row| {
            let observed = scheme.observe(faults, row, data[row]);
            word_squared_error(data[row], observed.value)
        })
        .sum();
    total / rows as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_core::Scheme;
    use faultmit_memsim::{Fault, MemoryConfig};

    fn map(faults: &[Fault]) -> FaultMap {
        let config = MemoryConfig::new(64, 32).unwrap();
        FaultMap::from_faults(config, faults.iter().copied()).unwrap()
    }

    #[test]
    fn word_squared_error_basic_cases() {
        assert_eq!(word_squared_error(0, 0), 0.0);
        assert_eq!(word_squared_error(0, 1 << 31), 4.0_f64.powi(31));
        assert_eq!(
            word_squared_error(0xFF, 0x0F),
            4.0_f64.powi(4) + 4.0_f64.powi(5) + 4.0_f64.powi(6) + 4.0_f64.powi(7)
        );
    }

    #[test]
    fn unprotected_mse_matches_equation_6() {
        // Two failures at bits 31 and 3 in a 64-row memory:
        // MSE = (4^31 + 4^3) / 64.
        let faults = map(&[Fault::bit_flip(0, 31), Fault::bit_flip(17, 3)]);
        let mse = memory_mse(&Scheme::unprotected32(), &faults);
        let expected = (4.0_f64.powi(31) + 4.0_f64.powi(3)) / 64.0;
        assert!((mse - expected).abs() < expected * 1e-12);
    }

    #[test]
    fn secded_mse_is_zero_for_single_fault_per_word() {
        let faults = map(&[Fault::bit_flip(0, 31), Fault::bit_flip(17, 3)]);
        assert_eq!(memory_mse(&Scheme::secded32(), &faults), 0.0);
    }

    #[test]
    fn secded_mse_is_nonzero_for_double_fault_words() {
        let faults = map(&[Fault::bit_flip(4, 30), Fault::bit_flip(4, 2)]);
        assert!(memory_mse(&Scheme::secded32(), &faults) > 0.0);
    }

    #[test]
    fn shuffle_mse_is_bounded_by_segment_size() {
        // 10 single-fault rows, all at high-significance bits.
        let faults: Vec<Fault> = (0..10).map(|r| Fault::bit_flip(r, 31 - r)).collect();
        let faults = map(&faults);
        for n_fm in 1..=5usize {
            let scheme = Scheme::shuffle32(n_fm).unwrap();
            let s = 32usize >> n_fm;
            let per_fault_bound = 4.0_f64.powi(s as i32 - 1);
            let mse = memory_mse(&scheme, &faults);
            assert!(
                mse <= 10.0 * per_fault_bound / 64.0 + 1e-9,
                "n_FM {n_fm}: {mse}"
            );
        }
    }

    #[test]
    fn mse_ordering_matches_fig5_for_msb_faults() {
        // Faults in the MSB half: unprotected >> P-ECC-corrected == 0,
        // shuffling small but non-zero.
        let faults = map(&[Fault::bit_flip(3, 31), Fault::bit_flip(9, 29)]);
        let unprotected = memory_mse(&Scheme::unprotected32(), &faults);
        let pecc = memory_mse(&Scheme::pecc32(), &faults);
        let shuffle1 = memory_mse(&Scheme::shuffle32(1).unwrap(), &faults);
        assert!(unprotected > shuffle1);
        assert_eq!(pecc, 0.0);
        assert!(shuffle1 > 0.0);
    }

    #[test]
    fn mse_ordering_matches_fig5_for_lsb_half_faults() {
        // Faults in the unprotected P-ECC half at bit 15: P-ECC pays 4^15,
        // bit-shuffling with nFM >= 2 pays at most 4^7.
        let faults = map(&[Fault::bit_flip(3, 15), Fault::bit_flip(9, 14)]);
        let pecc = memory_mse(&Scheme::pecc32(), &faults);
        let shuffle2 = memory_mse(&Scheme::shuffle32(2).unwrap(), &faults);
        let shuffle5 = memory_mse(&Scheme::shuffle32(5).unwrap(), &faults);
        assert!(pecc > shuffle2);
        assert!(shuffle2 > shuffle5);
    }

    #[test]
    fn mse_scales_inversely_with_memory_rows() {
        let small = MemoryConfig::new(16, 32).unwrap();
        let large = MemoryConfig::new(256, 32).unwrap();
        let fault = Fault::bit_flip(1, 20);
        let small_map = FaultMap::from_faults(small, [fault]).unwrap();
        let large_map = FaultMap::from_faults(large, [fault]).unwrap();
        let scheme = Scheme::unprotected32();
        let ratio = memory_mse(&scheme, &small_map) / memory_mse(&scheme, &large_map);
        assert!((ratio - 16.0).abs() < 1e-9);
    }

    #[test]
    fn data_dependent_mse_sees_silent_stuck_at_faults() {
        let config = MemoryConfig::new(16, 32).unwrap();
        let faults = FaultMap::from_faults(config, [Fault::stuck_at_one(2, 31)]).unwrap();
        let scheme = Scheme::unprotected32();
        // Background where bit 31 of row 2 is already set: the stuck-at-one
        // fault is silent.
        let mut data = vec![0u64; 16];
        data[2] = 1 << 31;
        assert_eq!(memory_mse_for_data(&scheme, &faults, &data), 0.0);
        // All-zeros background: the same fault costs 4^31 / 16.
        let zeros = vec![0u64; 16];
        assert!(memory_mse_for_data(&scheme, &faults, &zeros) > 0.0);
    }

    #[test]
    #[should_panic(expected = "data image")]
    fn data_dependent_mse_panics_on_short_image() {
        let faults = map(&[Fault::bit_flip(0, 0)]);
        let _ = memory_mse_for_data(&Scheme::unprotected32(), &faults, &[0u64; 3]);
    }

    #[test]
    fn empty_fault_map_has_zero_mse() {
        let faults = map(&[]);
        for scheme in Scheme::fig5_catalogue() {
            assert_eq!(memory_mse(&scheme, &faults), 0.0);
        }
    }
}
