//! Plain-text table formatting used by the figure-regeneration binaries.
//!
//! Each experiment binary prints the same rows/series the paper reports;
//! [`Table`] keeps that output aligned and consistent, and the helpers format
//! quantities spanning many orders of magnitude (MSE, probabilities) in a
//! readable engineering notation.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use faultmit_analysis::report::Table;
///
/// let mut table = Table::new("Example", vec!["scheme".into(), "mse".into()]);
/// table.add_row(vec!["no-correction".into(), "4.6e18".into()]);
/// table.add_row(vec!["nFM=5".into(), "1.0".into()]);
/// let text = table.to_string();
/// assert!(text.contains("no-correction"));
/// assert!(text.contains("mse"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn add_row(&mut self, mut row: Vec<String>) {
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Title of the table.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        writeln!(f, "== {} ==", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a value in engineering/scientific notation suited to quantities
/// spanning many decades (MSE values, probabilities).
#[must_use]
pub fn format_sci(value: f64) -> String {
    if value == 0.0 {
        "0".to_owned()
    } else if value.abs() >= 0.01 && value.abs() < 10_000.0 {
        format!("{value:.4}")
    } else {
        format!("{value:.3e}")
    }
}

/// Formats a probability/yield as a percentage with enough digits to
/// distinguish "five nines" targets.
#[must_use]
pub fn format_percent(value: f64) -> String {
    format!("{:.4}%", value * 100.0)
}

/// Formats a ratio as a percentage change relative to a baseline
/// (e.g. "-83.0%" for an overhead reduction).
#[must_use]
pub fn format_relative(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "n/a".to_owned();
    }
    let change = (value - baseline) / baseline * 100.0;
    format!("{change:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_headers_and_rows() {
        let mut table = Table::new("T", vec!["a".into(), "bbbb".into()]);
        table.add_row(vec!["x".into(), "y".into()]);
        table.add_row(vec!["longer".into()]);
        let text = table.to_string();
        assert!(text.starts_with("== T =="));
        assert!(text.contains("bbbb"));
        assert!(text.contains("longer"));
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.title(), "T");
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut table = Table::new("T", vec!["a".into(), "b".into()]);
        table.add_row(vec!["1".into(), "2".into(), "3".into()]);
        table.add_row(vec![]);
        let text = table.to_string();
        assert!(!text.contains('3'));
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn sci_formatting_choices() {
        assert_eq!(format_sci(0.0), "0");
        assert_eq!(format_sci(1.0), "1.0000");
        assert!(format_sci(4.6e18).contains('e'));
        assert!(format_sci(1e-6).contains('e'));
    }

    #[test]
    fn percent_and_relative_formatting() {
        assert_eq!(format_percent(0.999_999), "99.9999%");
        assert_eq!(format_relative(0.17, 1.0), "-83.0%");
        assert_eq!(format_relative(1.3, 1.0), "+30.0%");
        assert_eq!(format_relative(1.0, 0.0), "n/a");
    }
}
